// Locality Sensitive Hashing over MinHash signatures (paper Section 4.2.2).
//
// The signature matrix is banded into ζ zones of r rows (ζ·r = t). Each
// zone of each skyline point's signature is hashed into one of B buckets;
// the point is then represented by a ζ·B-bit vector with exactly ζ set bits
// (one per zone). Two points that never share a bucket have Hamming
// distance 2ζ; each shared bucket reduces it by 2 — so the Hamming distance
// of the bit-vectors is the LSH diversity measure, and since Hamming
// distance is a metric, the 2-approximation greedy applies unchanged.
//
// The banding threshold ξ ≈ (1/ζ)^(1/r) is the similarity level at which
// the collision probability 1 − (1 − s^r)^ζ crosses its sigmoid midpoint;
// choosing ξ picks (ζ, r) and thereby trades memory for accuracy.

#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "minhash/minhash.h"

namespace skydiver {

/// Banding parameters.
struct LshParams {
  size_t zones = 0;            ///< ζ: number of zones (bands).
  size_t rows_per_zone = 0;    ///< r: signature slots per zone; ζ·r = t.
  size_t buckets_per_zone = 20;  ///< B: hash buckets per zone.

  /// The similarity threshold this banding approximates: (1/ζ)^(1/r).
  double Threshold() const;

  /// Collision probability for a pair with Jaccard similarity `s`:
  /// 1 − (1 − s^r)^ζ.
  double CollisionProbability(double s) const;
};

/// Chooses (ζ, r) with ζ·r = t whose threshold (1/ζ)^(1/r) is closest to
/// the requested ξ. Fails when t has no divisor pair (t prime and the only
/// splits 1×t / t×1 are still considered — it always succeeds for t ≥ 2).
Result<LshParams> ChooseZones(size_t signature_size, double threshold,
                              size_t buckets_per_zone = 20);

/// The LSH representation of all skyline points: one ζ·B-bit vector each.
class LshIndex {
 public:
  /// Hashes every signature column into zone buckets. `seed` draws the
  /// per-zone hash salts.
  static Result<LshIndex> Build(const SignatureMatrix& signatures,
                                const LshParams& params, uint64_t seed);

  size_t columns() const { return vectors_.size(); }
  const LshParams& params() const { return params_; }

  /// The bit-vector of skyline point j (ζ·B bits, ζ of them set).
  const BitVector& vector(size_t j) const { return vectors_[j]; }

  /// Bucket index (within [0, B)) of column j in zone z.
  size_t Bucket(size_t j, size_t zone) const { return buckets_[j * params_.zones + zone]; }

  /// LSH diversity: the Hamming distance between the two bit-vectors.
  /// Equals 2 × (number of zones where the points land in different
  /// buckets); a metric, so SelectDiverseSet keeps its guarantee.
  double Distance(size_t i, size_t j) const {
    return static_cast<double>(vectors_[i].HammingDistance(vectors_[j]));
  }

  /// Bytes held by the bit-vectors — the memory side of the paper's
  /// memory-vs-accuracy trade-off (Fig. 13).
  size_t MemoryBytes() const;

 private:
  LshParams params_;
  std::vector<BitVector> vectors_;
  std::vector<size_t> buckets_;  // m x ζ bucket assignments
};

}  // namespace skydiver
