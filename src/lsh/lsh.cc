#include "lsh/lsh.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace skydiver {

namespace {

// 64-bit mixing (splitmix64 finalizer) for zone-bucket hashing.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

double LshParams::Threshold() const {
  SKYDIVER_DCHECK(zones > 0 && rows_per_zone > 0);
  return std::pow(1.0 / static_cast<double>(zones),
                  1.0 / static_cast<double>(rows_per_zone));
}

double LshParams::CollisionProbability(double s) const {
  SKYDIVER_DCHECK(zones > 0 && rows_per_zone > 0);
  const double band_hit = std::pow(s, static_cast<double>(rows_per_zone));
  return 1.0 - std::pow(1.0 - band_hit, static_cast<double>(zones));
}

Result<LshParams> ChooseZones(size_t signature_size, double threshold,
                              size_t buckets_per_zone) {
  if (signature_size < 2) {
    return Status::InvalidArgument("signature size must be at least 2 for banding");
  }
  if (threshold <= 0.0 || threshold >= 1.0) {
    return Status::InvalidArgument("LSH threshold must lie in (0, 1)");
  }
  if (buckets_per_zone < 2) {
    return Status::InvalidArgument("need at least 2 buckets per zone");
  }
  LshParams best;
  double best_err = std::numeric_limits<double>::infinity();
  for (size_t zones = 1; zones <= signature_size; ++zones) {
    if (signature_size % zones != 0) continue;
    LshParams p;
    p.zones = zones;
    p.rows_per_zone = signature_size / zones;
    p.buckets_per_zone = buckets_per_zone;
    // Degenerate bandings (1 zone of t rows, or t zones of 1 row) have
    // thresholds pinned near 1 / near 0; they are legal but rarely closest.
    const double err = std::fabs(p.Threshold() - threshold);
    if (err < best_err) {
      best_err = err;
      best = p;
    }
  }
  return best;
}

Result<LshIndex> LshIndex::Build(const SignatureMatrix& signatures,
                                 const LshParams& params, uint64_t seed) {
  if (params.zones == 0 || params.rows_per_zone == 0) {
    return Status::InvalidArgument("LSH params are unset");
  }
  if (params.zones * params.rows_per_zone != signatures.signature_size()) {
    return Status::InvalidArgument(
        "zones x rows_per_zone must equal the signature size (" +
        std::to_string(params.zones) + " x " + std::to_string(params.rows_per_zone) +
        " != " + std::to_string(signatures.signature_size()) + ")");
  }
  if (params.buckets_per_zone < 2) {
    return Status::InvalidArgument("need at least 2 buckets per zone");
  }
  LshIndex index;
  index.params_ = params;
  const size_t m = signatures.columns();
  const size_t bits = params.zones * params.buckets_per_zone;
  index.vectors_.assign(m, BitVector(bits));
  index.buckets_.assign(m * params.zones, 0);
  for (size_t j = 0; j < m; ++j) {
    for (size_t z = 0; z < params.zones; ++z) {
      uint64_t h = Mix64(seed ^ (0x9e3779b97f4a7c15ULL * (z + 1)));
      for (size_t rr = 0; rr < params.rows_per_zone; ++rr) {
        h = Mix64(h ^ signatures.at(j, z * params.rows_per_zone + rr));
      }
      const size_t bucket = h % params.buckets_per_zone;
      index.buckets_[j * params.zones + z] = bucket;
      index.vectors_[j].Set(z * params.buckets_per_zone + bucket);
    }
  }
  return index;
}

size_t LshIndex::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& v : vectors_) bytes += v.MemoryBytes();
  return bytes;
}

}  // namespace skydiver
