// Distance-based representative skyline (Tao et al., ICDE'09 — the
// paper's reference [32]), the state-of-the-art L_p-norm competitor that
// SkyDiver's Section 2 argues against.
//
// Selects k skyline points so that every skyline point is close (in
// Euclidean distance over the attribute space) to some representative —
// the k-center objective — via the Gonzalez greedy 2-approximation.
// Implemented here as the comparison baseline: unlike the Jaccard measure
// it (a) needs numeric attributes, (b) ignores the dominated points
// entirely, and (c) is sensitive to per-dimension scaling, all three of
// which the scale-invariance benchmark demonstrates.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"

namespace skydiver {

/// Result of the Euclidean representative selection.
struct EuclideanRepresentativeResult {
  /// Indices into the skyline order, in pick order.
  std::vector<size_t> selected;
  /// k-center objective: max distance from any skyline point to its
  /// nearest representative.
  double max_covering_radius = 0.0;
};

/// Gonzalez greedy k-center over the skyline points' coordinates.
/// `skyline` indexes rows of `data`; distances are Euclidean in attribute
/// space. Deterministic: seeds with the skyline point of minimum
/// coordinate sum (the "origin-most" representative).
Result<EuclideanRepresentativeResult> EuclideanRepresentatives(
    const DataSet& data, const std::vector<RowId>& skyline, size_t k);

}  // namespace skydiver
