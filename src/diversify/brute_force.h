// Exact (exponential) dispersion solvers — the paper's Brute-Force baseline.
//
// Enumerates all C(m, k) subsets of the skyline and returns the true
// optimum. Used (a) as the BF baseline of the runtime experiments (Fig. 10,
// where the paper could only afford k = 2) and (b) as ground truth for the
// 2-approximation property tests. Monotone pruning makes the k-MMDP search
// usable on slightly larger instances than the naive enumeration: a partial
// subset whose running minimum already falls below the incumbent cannot
// improve.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "diversify/dispersion.h"

namespace skydiver {

/// Exact k-MMDP: the subset maximizing the minimum pairwise distance.
/// `max_subsets` caps the enumeration (error OutOfRange when C(m, k)
/// exceeds it) so callers cannot accidentally start an astronomically long
/// search. Distances are materialized once (O(m^2) evaluations).
Result<DispersionResult> BruteForceMaxMin(size_t m, size_t k, const DistanceFn& distance,
                                          uint64_t max_subsets = 200'000'000);

/// Exact k-MSDP: the subset maximizing the SUM of pairwise distances.
Result<DispersionResult> BruteForceMaxSum(size_t m, size_t k, const DistanceFn& distance,
                                          uint64_t max_subsets = 200'000'000);

/// C(m, k) with saturation at UINT64_MAX.
uint64_t BinomialOrSaturate(uint64_t m, uint64_t k);

}  // namespace skydiver
