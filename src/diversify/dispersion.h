// Greedy k-dispersion selection — Phase 2 of the SkyDiver framework.
//
// The k-most-diverse problem is an instance of the Max-Min Dispersion
// Problem (k-MMDP), NP-hard; `SelectDiverseSet` is the paper's Fig. 6
// greedy: seed with the skyline point of maximum domination score, then
// repeatedly add the point maximizing its minimum distance to the selected
// set (ties broken by domination score). When the distance is a metric the
// result is a 2-approximation of the optimum (paper Lemma 4).
//
// The distance is a callback, so the same selector runs over exact Jaccard
// distances (Simple-Greedy), MinHash-estimated distances (SkyDiver-MH), and
// LSH Hamming distances (SkyDiver-LSH).

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"

namespace skydiver {

/// Distance between skyline points by index; must be symmetric and
/// non-negative. The 2-approximation additionally needs the triangle
/// inequality.
using DistanceFn = std::function<double(size_t, size_t)>;

/// Score used for seeding and tie-breaking — the domination score |Γ(p)| in
/// the paper (coverage as a secondary objective).
using ScoreFn = std::function<double(size_t)>;

/// Result of a dispersion selection.
struct DispersionResult {
  /// Indices (into the skyline set) of the selected points, in pick order.
  std::vector<size_t> selected;
  /// Minimum pairwise distance among the selected points, under the
  /// distance the selection ran with (k-MMDP objective value). 0 for k < 2.
  double min_pairwise = 0.0;
  /// Number of distance evaluations performed.
  uint64_t distance_evaluations = 0;
};

/// Fig. 6: greedy 2-approximate k-MMDP over `m` skyline points.
/// O(k·m) distance evaluations (each round updates the cached min-distance
/// of every unselected point against the newest member).
Result<DispersionResult> SelectDiverseSet(size_t m, size_t k, const DistanceFn& distance,
                                          const ScoreFn& score);

/// Convenience overload for the common case across the engine, sessions
/// and the streaming monitor: scores given as the raw |Γ| domination
/// counts, one per skyline point (must have at least `m` entries).
Result<DispersionResult> SelectDiverseSet(size_t m, size_t k, const DistanceFn& distance,
                                          const std::vector<uint64_t>& domination_scores);

/// Greedy for the Max-Sum variant (k-MSDP): adds the point maximizing the
/// SUM of distances to the selected set. Provided for the paper's
/// discussion of why k-MMDP is preferred (4- vs 2-approximation; MSDP
/// tolerates small pairwise distances). Reports the same statistics.
Result<DispersionResult> SelectMaxSumSet(size_t m, size_t k, const DistanceFn& distance,
                                         const ScoreFn& score);

}  // namespace skydiver
