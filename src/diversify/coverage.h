// Greedy k-max-coverage — the competing objective (paper Section 2,
// Table 1).
//
// Coverage-based skyline reduction (Lin et al.'s "selecting stars") picks k
// skyline points maximizing the number of DISTINCT points they collectively
// dominate. SkyDiver argues this solves a different problem than
// diversification; Table 1 quantifies the difference. The standard greedy
// gives the (1 - 1/e)-approximation — and, per the paper's VC-dimension
// remark (Lemma 1), an even better ratio for this set system.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/gamma.h"

namespace skydiver {

/// Result of a coverage selection.
struct CoverageResult {
  /// Indices (into the skyline set) of the selected points, in pick order.
  std::vector<size_t> selected;
  /// Distinct non-skyline points covered by the selection.
  uint64_t covered = 0;
  /// covered / |D - S|.
  double coverage_fraction = 0.0;
};

/// Greedy k-max-coverage over materialized dominated sets. Ties are broken
/// by the smaller index (deterministic).
Result<CoverageResult> GreedyMaxCoverage(const GammaSets& gammas, size_t k);

/// Exact k-max-coverage by subset enumeration, for validating the greedy's
/// approximation quality on small instances (the classic bound is
/// 1 - 1/e; the paper's VC-dimension remark predicts better for dominance
/// set systems). `max_subsets` caps the enumeration.
Result<CoverageResult> BruteForceMaxCoverage(const GammaSets& gammas, size_t k,
                                             uint64_t max_subsets = 50'000'000);

}  // namespace skydiver
