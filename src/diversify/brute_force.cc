#include "diversify/brute_force.h"

#include <algorithm>
#include <limits>

namespace skydiver {

namespace {

Status ValidateBruteForce(size_t m, size_t k, uint64_t max_subsets) {
  if (m == 0) return Status::InvalidArgument("no skyline points to select from");
  if (k < 2) return Status::InvalidArgument("brute force requires k >= 2");
  if (k > m) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds skyline cardinality m = " + std::to_string(m));
  }
  const uint64_t subsets = BinomialOrSaturate(m, k);
  if (subsets > max_subsets) {
    return Status::OutOfRange("C(" + std::to_string(m) + ", " + std::to_string(k) +
                              ") = " + std::to_string(subsets) +
                              " subsets exceed the enumeration cap of " +
                              std::to_string(max_subsets));
  }
  return Status::OK();
}

// Dense pairwise distance matrix (symmetric, materialized once).
class DistanceTable {
 public:
  DistanceTable(size_t m, const DistanceFn& distance) : m_(m), d_(m * m, 0.0) {
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        const double v = distance(i, j);
        d_[i * m + j] = v;
        d_[j * m + i] = v;
        ++evaluations_;
      }
    }
  }
  double at(size_t i, size_t j) const { return d_[i * m_ + j]; }
  uint64_t evaluations() const { return evaluations_; }

 private:
  size_t m_;
  std::vector<double> d_;
  uint64_t evaluations_ = 0;
};

}  // namespace

uint64_t BinomialOrSaturate(uint64_t m, uint64_t k) {
  if (k > m) return 0;
  k = std::min(k, m - k);
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    const uint64_t num = m - k + i;
    // result * num may overflow; saturate.
    if (result > std::numeric_limits<uint64_t>::max() / num) {
      return std::numeric_limits<uint64_t>::max();
    }
    result = result * num / i;
  }
  return result;
}

Result<DispersionResult> BruteForceMaxMin(size_t m, size_t k, const DistanceFn& distance,
                                          uint64_t max_subsets) {
  SKYDIVER_RETURN_NOT_OK(ValidateBruteForce(m, k, max_subsets));
  DistanceTable table(m, distance);

  DispersionResult out;
  out.distance_evaluations = table.evaluations();
  std::vector<size_t> current;
  current.reserve(k);
  double best_value = -1.0;
  std::vector<size_t> best_set;

  // Depth-first subset enumeration with monotone pruning: extending a
  // subset can only lower its min pairwise distance, so any partial subset
  // whose running minimum is <= the incumbent is dead.
  auto recurse = [&](auto&& self, size_t next, double running_min) -> void {
    if (current.size() == k) {
      if (running_min > best_value) {
        best_value = running_min;
        best_set = current;
      }
      return;
    }
    const size_t needed = k - current.size();
    for (size_t i = next; i + needed <= m; ++i) {
      double new_min = running_min;
      for (size_t chosen : current) {
        new_min = std::min(new_min, table.at(chosen, i));
        if (new_min <= best_value) break;
      }
      if (new_min <= best_value) continue;  // pruned
      current.push_back(i);
      self(self, i + 1, new_min);
      current.pop_back();
    }
  };
  recurse(recurse, 0, std::numeric_limits<double>::infinity());

  out.selected = std::move(best_set);
  out.min_pairwise = best_value;
  return out;
}

Result<DispersionResult> BruteForceMaxSum(size_t m, size_t k, const DistanceFn& distance,
                                          uint64_t max_subsets) {
  SKYDIVER_RETURN_NOT_OK(ValidateBruteForce(m, k, max_subsets));
  DistanceTable table(m, distance);

  DispersionResult out;
  out.distance_evaluations = table.evaluations();
  std::vector<size_t> current;
  current.reserve(k);
  double best_sum = -std::numeric_limits<double>::infinity();
  std::vector<size_t> best_set;
  double best_min = 0.0;

  auto recurse = [&](auto&& self, size_t next, double running_sum,
                     double running_min) -> void {
    if (current.size() == k) {
      if (running_sum > best_sum) {
        best_sum = running_sum;
        best_set = current;
        best_min = running_min;
      }
      return;
    }
    const size_t needed = k - current.size();
    for (size_t i = next; i + needed <= m; ++i) {
      double add = 0.0;
      double new_min = running_min;
      for (size_t chosen : current) {
        const double d = table.at(chosen, i);
        add += d;
        new_min = std::min(new_min, d);
      }
      current.push_back(i);
      self(self, i + 1, running_sum + add, new_min);
      current.pop_back();
    }
  };
  recurse(recurse, 0, 0.0, std::numeric_limits<double>::infinity());

  out.selected = std::move(best_set);
  out.min_pairwise = best_min;
  return out;
}

}  // namespace skydiver
