// Quality evaluators for selected skyline subsets.
//
// The paper always reports result quality in the ORIGINAL space: the
// minimum exact Jaccard distance among the selected points (Figs. 12-13),
// plus the coverage fraction for Table 1 — regardless of which approximate
// distance the selector used internally.

#pragma once

#include <vector>

#include "core/gamma.h"

namespace skydiver {

/// Quality of a selected subset of skyline points.
struct QualityReport {
  /// Minimum pairwise exact Jaccard distance (the diversity score of the
  /// paper's quality plots). 0 for singleton selections.
  double min_diversity = 0.0;
  /// Mean pairwise exact Jaccard distance.
  double avg_diversity = 0.0;
  /// Fraction of non-skyline points dominated by at least one selected
  /// point (Table 1's coverage column).
  double coverage = 0.0;
};

/// Evaluates `selected` (indices into the skyline order the GammaSets were
/// built with) against the exact dominated sets.
QualityReport EvaluateSelection(const GammaSets& gammas,
                                const std::vector<size_t>& selected);

}  // namespace skydiver
