// Local-search refinement for k-MMDP selections.
//
// The greedy of Fig. 6 guarantees a 2-approximation; a swap-based local
// search can tighten its objective in practice at O(k·m) distance
// evaluations per round: repeatedly replace the selected point that
// realizes the current minimum pairwise distance with the unselected point
// that would raise the selection's minimum the most. Used by the ablation
// benchmark to quantify how much quality the paper's plain greedy leaves
// on the table (empirically: little — which supports the paper's choice).

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "diversify/dispersion.h"

namespace skydiver {

/// Refinement outcome.
struct LocalSearchResult {
  std::vector<size_t> selected;   ///< refined selection (size k)
  double min_pairwise = 0.0;      ///< objective after refinement
  uint64_t swaps = 0;             ///< accepted swaps
  uint64_t distance_evaluations = 0;
};

/// Improves `initial` (a k-subset of [0, m)) under `distance` by 1-swaps
/// until no swap improves the min pairwise distance or `max_rounds` is
/// reached. The objective never decreases.
Result<LocalSearchResult> RefineDispersion(size_t m, const std::vector<size_t>& initial,
                                           const DistanceFn& distance,
                                           size_t max_rounds = 32);

}  // namespace skydiver
