#include "diversify/dispersion.h"

#include <algorithm>
#include <limits>

namespace skydiver {

namespace {

Status ValidateSelection(size_t m, size_t k) {
  if (m == 0) return Status::InvalidArgument("no skyline points to select from");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > m) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds skyline cardinality m = " + std::to_string(m));
  }
  return Status::OK();
}

size_t MaxScoreIndex(size_t m, const ScoreFn& score) {
  size_t best = 0;
  double best_score = score(0);
  for (size_t i = 1; i < m; ++i) {
    const double s = score(i);
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

}  // namespace

Result<DispersionResult> SelectDiverseSet(size_t m, size_t k, const DistanceFn& distance,
                                          const std::vector<uint64_t>& domination_scores) {
  if (domination_scores.size() < m) {
    return Status::InvalidArgument("domination scores cover " +
                                   std::to_string(domination_scores.size()) +
                                   " points but m = " + std::to_string(m));
  }
  return SelectDiverseSet(m, k, distance, [&](size_t j) {
    return static_cast<double>(domination_scores[j]);
  });
}

Result<DispersionResult> SelectDiverseSet(size_t m, size_t k, const DistanceFn& distance,
                                          const ScoreFn& score) {
  SKYDIVER_RETURN_NOT_OK(ValidateSelection(m, k));
  DispersionResult out;
  out.selected.reserve(k);

  std::vector<bool> taken(m, false);
  // Cached minimum distance from each unselected point to the selected set
  // (the paper's "boosted SG" maintains exactly this).
  std::vector<double> min_dist(m, std::numeric_limits<double>::infinity());

  const size_t seed = MaxScoreIndex(m, score);
  out.selected.push_back(seed);
  taken[seed] = true;
  out.min_pairwise = std::numeric_limits<double>::infinity();

  while (out.selected.size() < k) {
    const size_t newest = out.selected.back();
    // Refresh caches against the newest member, then pick the argmax of the
    // cached min distance; ties resolved by domination score.
    size_t best = m;
    double best_dist = -std::numeric_limits<double>::infinity();
    double best_score = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < m; ++i) {
      if (taken[i]) continue;
      const double d = distance(i, newest);
      ++out.distance_evaluations;
      if (d < min_dist[i]) min_dist[i] = d;
      const double s = score(i);
      if (min_dist[i] > best_dist || (min_dist[i] == best_dist && s > best_score)) {
        best = i;
        best_dist = min_dist[i];
        best_score = s;
      }
    }
    out.selected.push_back(best);
    taken[best] = true;
    out.min_pairwise = std::min(out.min_pairwise, best_dist);
  }
  if (k < 2) out.min_pairwise = 0.0;
  return out;
}

Result<DispersionResult> SelectMaxSumSet(size_t m, size_t k, const DistanceFn& distance,
                                         const ScoreFn& score) {
  SKYDIVER_RETURN_NOT_OK(ValidateSelection(m, k));
  DispersionResult out;
  out.selected.reserve(k);

  std::vector<bool> taken(m, false);
  std::vector<double> sum_dist(m, 0.0);
  std::vector<double> min_dist(m, std::numeric_limits<double>::infinity());

  const size_t seed = MaxScoreIndex(m, score);
  out.selected.push_back(seed);
  taken[seed] = true;
  out.min_pairwise = std::numeric_limits<double>::infinity();

  while (out.selected.size() < k) {
    const size_t newest = out.selected.back();
    size_t best = m;
    double best_sum = -std::numeric_limits<double>::infinity();
    double best_score = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < m; ++i) {
      if (taken[i]) continue;
      const double d = distance(i, newest);
      ++out.distance_evaluations;
      sum_dist[i] += d;
      if (d < min_dist[i]) min_dist[i] = d;
      const double s = score(i);
      if (sum_dist[i] > best_sum || (sum_dist[i] == best_sum && s > best_score)) {
        best = i;
        best_sum = sum_dist[i];
        best_score = s;
      }
    }
    out.selected.push_back(best);
    taken[best] = true;
    out.min_pairwise = std::min(out.min_pairwise, min_dist[best]);
  }
  if (k < 2) out.min_pairwise = 0.0;
  return out;
}

}  // namespace skydiver
