#include "diversify/local_search.h"

#include <algorithm>
#include <limits>

namespace skydiver {

Result<LocalSearchResult> RefineDispersion(size_t m, const std::vector<size_t>& initial,
                                           const DistanceFn& distance,
                                           size_t max_rounds) {
  const size_t k = initial.size();
  if (k < 2) return Status::InvalidArgument("local search needs k >= 2");
  if (k > m) return Status::InvalidArgument("selection larger than the point set");
  std::vector<bool> taken(m, false);
  for (size_t s : initial) {
    if (s >= m) return Status::InvalidArgument("selection index out of range");
    if (taken[s]) return Status::InvalidArgument("selection contains duplicates");
    taken[s] = true;
  }

  LocalSearchResult out;
  out.selected = initial;

  std::vector<double> pair_dist(k * k, 0.0);
  for (size_t round = 0; round < max_rounds; ++round) {
    // All pairwise distances within the current selection.
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = a + 1; b < k; ++b) {
        const double d = distance(out.selected[a], out.selected[b]);
        ++out.distance_evaluations;
        pair_dist[a * k + b] = d;
        pair_dist[b * k + a] = d;
      }
    }
    // Objective and, for every potential leaver `a`, the minimum over the
    // pairs that would REMAIN without a.
    double current = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = a + 1; b < k; ++b) {
        current = std::min(current, pair_dist[a * k + b]);
      }
    }
    std::vector<double> min_without(k, std::numeric_limits<double>::infinity());
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = a + 1; b < k; ++b) {
        const double d = pair_dist[a * k + b];
        for (size_t leaver = 0; leaver < k; ++leaver) {
          if (leaver != a && leaver != b && d < min_without[leaver]) {
            min_without[leaver] = d;
          }
        }
      }
    }

    // Best 1-swap: for each candidate entrant, its distances to the
    // selection give (min1, argmin, min2); removing `leaver` keeps min1
    // unless leaver realizes it.
    double best_obj = current;
    size_t best_leaver = k, best_entrant = m;
    for (size_t entrant = 0; entrant < m; ++entrant) {
      if (taken[entrant]) continue;
      double min1 = std::numeric_limits<double>::infinity();
      double min2 = min1;
      size_t arg1 = k;
      for (size_t y = 0; y < k; ++y) {
        const double d = distance(entrant, out.selected[y]);
        ++out.distance_evaluations;
        if (d < min1) {
          min2 = min1;
          min1 = d;
          arg1 = y;
        } else if (d < min2) {
          min2 = d;
        }
      }
      for (size_t leaver = 0; leaver < k; ++leaver) {
        const double to_entrant = (leaver == arg1) ? min2 : min1;
        const double candidate_obj = std::min(min_without[leaver], to_entrant);
        if (candidate_obj > best_obj) {
          best_obj = candidate_obj;
          best_leaver = leaver;
          best_entrant = entrant;
        }
      }
    }
    if (best_entrant == m) {
      out.min_pairwise = current;
      return out;  // local optimum
    }
    taken[out.selected[best_leaver]] = false;
    taken[best_entrant] = true;
    out.selected[best_leaver] = best_entrant;
    ++out.swaps;
    out.min_pairwise = best_obj;
  }
  return out;
}

}  // namespace skydiver
