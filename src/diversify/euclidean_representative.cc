#include "diversify/euclidean_representative.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace skydiver {

namespace {

double Euclidean(const DataSet& data, RowId a, RowId b) {
  const auto pa = data.row(a);
  const auto pb = data.row(b);
  double s = 0.0;
  for (size_t i = 0; i < pa.size(); ++i) {
    const double diff = pa[i] - pb[i];
    s += diff * diff;
  }
  return std::sqrt(s);
}

}  // namespace

Result<EuclideanRepresentativeResult> EuclideanRepresentatives(
    const DataSet& data, const std::vector<RowId>& skyline, size_t k) {
  const size_t m = skyline.size();
  if (m == 0) return Status::InvalidArgument("no skyline points to select from");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > m) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds skyline cardinality m = " + std::to_string(m));
  }
  for (RowId s : skyline) {
    if (s >= data.size()) {
      return Status::InvalidArgument("skyline row " + std::to_string(s) + " out of range");
    }
  }
  EuclideanRepresentativeResult out;
  out.selected.reserve(k);

  // Deterministic seed: the skyline point with the smallest coordinate sum.
  size_t seed = 0;
  double best_sum = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < m; ++j) {
    double s = 0.0;
    for (Coord v : data.row(skyline[j])) s += v;
    if (s < best_sum) {
      best_sum = s;
      seed = j;
    }
  }
  out.selected.push_back(seed);

  // Gonzalez: repeatedly add the point farthest from its nearest center.
  std::vector<double> nearest(m, std::numeric_limits<double>::infinity());
  while (out.selected.size() < k) {
    const size_t newest = out.selected.back();
    size_t farthest = m;
    double farthest_dist = -1.0;
    for (size_t j = 0; j < m; ++j) {
      const double d = Euclidean(data, skyline[j], skyline[newest]);
      if (d < nearest[j]) nearest[j] = d;
      if (nearest[j] > farthest_dist) {
        farthest_dist = nearest[j];
        farthest = j;
      }
    }
    out.selected.push_back(farthest);
  }
  // Final covering radius (after accounting for the last center).
  const size_t newest = out.selected.back();
  double radius = 0.0;
  for (size_t j = 0; j < m; ++j) {
    const double d = Euclidean(data, skyline[j], skyline[newest]);
    if (d < nearest[j]) nearest[j] = d;
    radius = std::max(radius, nearest[j]);
  }
  out.max_covering_radius = radius;
  return out;
}

}  // namespace skydiver
