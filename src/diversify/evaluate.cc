#include "diversify/evaluate.h"

#include <algorithm>

namespace skydiver {

QualityReport EvaluateSelection(const GammaSets& gammas,
                                const std::vector<size_t>& selected) {
  QualityReport report;
  report.coverage = gammas.Coverage(selected);
  if (selected.size() < 2) return report;
  double min_d = 1.0;
  double sum_d = 0.0;
  size_t pairs = 0;
  for (size_t a = 0; a < selected.size(); ++a) {
    for (size_t b = a + 1; b < selected.size(); ++b) {
      const double d = gammas.JaccardDistance(selected[a], selected[b]);
      min_d = std::min(min_d, d);
      sum_d += d;
      ++pairs;
    }
  }
  report.min_diversity = min_d;
  report.avg_diversity = sum_d / static_cast<double>(pairs);
  return report;
}

}  // namespace skydiver
