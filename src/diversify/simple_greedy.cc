#include "diversify/simple_greedy.h"

#include "core/gamma.h"

namespace skydiver {

Result<SimpleGreedyResult> SimpleGreedy(const DataSet& data,
                                        const std::vector<RowId>& skyline, size_t k,
                                        const RTree& tree) {
  if (tree.dims() != data.dims() || tree.size() != data.size()) {
    return Status::InvalidArgument("R-tree does not index the given dataset");
  }
  for (RowId s : skyline) {
    if (s >= data.size()) {
      return Status::InvalidArgument("skyline row " + std::to_string(s) + " out of range");
    }
  }
  const IoStats io_before = tree.io_stats();
  SimpleGreedyResult out;

  const size_t m = skyline.size();
  // Domination scores |Γ(p)|, needed for seeding/tie-breaks and reused by
  // every pairwise distance (union via inclusion-exclusion).
  std::vector<uint64_t> gamma_size(m);
  for (size_t j = 0; j < m; ++j) {
    gamma_size[j] = tree.DominatedCount(data.row(skyline[j]));
    out.range_queries += 2;  // weak-region count + duplicate probe
  }

  auto distance = [&](size_t i, size_t j) {
    const uint64_t inter =
        tree.CommonDominatedCount(data.row(skyline[i]), data.row(skyline[j]));
    ++out.range_queries;
    const uint64_t uni = gamma_size[i] + gamma_size[j] - inter;
    if (uni == 0) return 0.0;  // both Γ empty: identical sets
    return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
  };
  auto score = [&](size_t j) { return static_cast<double>(gamma_size[j]); };

  auto result = SelectDiverseSet(m, k, distance, score);
  if (!result.ok()) return result.status();
  out.dispersion = std::move(result).value();

  const IoStats io_after = tree.io_stats();
  out.io.page_reads = io_after.page_reads - io_before.page_reads;
  out.io.page_faults = io_after.page_faults - io_before.page_faults;
  return out;
}

Result<DispersionResult> SimpleGreedyInMemory(const DataSet& data,
                                              const std::vector<RowId>& skyline,
                                              size_t k) {
  for (RowId s : skyline) {
    if (s >= data.size()) {
      return Status::InvalidArgument("skyline row " + std::to_string(s) + " out of range");
    }
  }
  const GammaSets gammas = GammaSets::Compute(data, skyline);
  auto distance = [&](size_t i, size_t j) { return gammas.JaccardDistance(i, j); };
  auto score = [&](size_t j) { return static_cast<double>(gammas.DominationScore(j)); };
  return SelectDiverseSet(gammas.size(), k, distance, score);
}

}  // namespace skydiver
