// Simple-Greedy (SG) — the paper's exact-distance baseline (Section 3.2).
//
// Runs the same greedy 2-approximation as SkyDiver-MH/LSH, but computes
// every Jaccard distance EXACTLY via aggregate range-count queries on the
// R*-tree: |Γ(p)| is the count of the region weakly dominated by p (minus
// duplicates), and |Γ(p) ∩ Γ(q)| is the count of the region weakly
// dominated by the component-wise max corner of p and q. These are large-
// volume range queries, which is precisely why SG drowns in I/O in the
// paper's experiments — MH/LSH exist to avoid them.

#pragma once

#include <cstdint>
#include <vector>

#include "common/io_stats.h"
#include "common/status.h"
#include "core/dataset.h"
#include "diversify/dispersion.h"
#include "rtree/rtree.h"

namespace skydiver {

/// Output of the Simple-Greedy baseline.
struct SimpleGreedyResult {
  DispersionResult dispersion;
  /// Aggregate R-tree I/O incurred by the range-count queries.
  IoStats io;
  /// Number of range-count queries issued.
  uint64_t range_queries = 0;
};

/// Selects k diverse skyline points with exact Jaccard distances computed
/// through `tree` (which must index `data`). The seed point is the one with
/// the maximum domination score, per Fig. 6.
Result<SimpleGreedyResult> SimpleGreedy(const DataSet& data,
                                        const std::vector<RowId>& skyline, size_t k,
                                        const RTree& tree);

/// In-memory variant: identical selection, but distances come from
/// materialized Γ bit-sets instead of index range queries. Used to verify
/// the index path and in index-free deployments.
Result<DispersionResult> SimpleGreedyInMemory(const DataSet& data,
                                              const std::vector<RowId>& skyline,
                                              size_t k);

}  // namespace skydiver
