#include "diversify/coverage.h"

#include "diversify/brute_force.h"

namespace skydiver {

Result<CoverageResult> GreedyMaxCoverage(const GammaSets& gammas, size_t k) {
  const size_t m = gammas.size();
  if (m == 0) return Status::InvalidArgument("no skyline points to select from");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > m) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds skyline cardinality m = " + std::to_string(m));
  }
  CoverageResult out;
  out.selected.reserve(k);
  std::vector<bool> taken(m, false);
  BitVector covered(gammas.universe_size());
  for (size_t round = 0; round < k; ++round) {
    size_t best = m;
    size_t best_gain = 0;
    for (size_t j = 0; j < m; ++j) {
      if (taken[j]) continue;
      const size_t gain = covered.NewCoverage(gammas.gamma(j));
      if (best == m || gain > best_gain) {
        best = j;
        best_gain = gain;
      }
    }
    taken[best] = true;
    out.selected.push_back(best);
    covered |= gammas.gamma(best);
  }
  out.covered = covered.Count();
  const size_t non_skyline = gammas.universe_size() - gammas.size();
  out.coverage_fraction =
      non_skyline == 0 ? 1.0
                       : static_cast<double>(out.covered) / static_cast<double>(non_skyline);
  return out;
}

Result<CoverageResult> BruteForceMaxCoverage(const GammaSets& gammas, size_t k,
                                             uint64_t max_subsets) {
  const size_t m = gammas.size();
  if (m == 0) return Status::InvalidArgument("no skyline points to select from");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > m) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds skyline cardinality m = " + std::to_string(m));
  }
  const uint64_t subsets = BinomialOrSaturate(m, k);
  if (subsets > max_subsets) {
    return Status::OutOfRange("C(" + std::to_string(m) + ", " + std::to_string(k) +
                              ") subsets exceed the enumeration cap");
  }
  std::vector<size_t> current;
  current.reserve(k);
  std::vector<size_t> best_set;
  size_t best_covered = 0;

  auto recurse = [&](auto&& self, size_t next, const BitVector& covered) -> void {
    if (current.size() == k) {
      const size_t count = covered.Count();
      if (count > best_covered || best_set.empty()) {
        best_covered = count;
        best_set = current;
      }
      return;
    }
    const size_t needed = k - current.size();
    for (size_t i = next; i + needed <= m; ++i) {
      BitVector grown = covered;
      grown |= gammas.gamma(i);
      current.push_back(i);
      self(self, i + 1, grown);
      current.pop_back();
    }
  };
  recurse(recurse, 0, BitVector(gammas.universe_size()));

  CoverageResult out;
  out.selected = std::move(best_set);
  out.covered = best_covered;
  const size_t non_skyline = gammas.universe_size() - gammas.size();
  out.coverage_fraction = non_skyline == 0 ? 1.0
                                           : static_cast<double>(best_covered) /
                                                 static_cast<double>(non_skyline);
  return out;
}

}  // namespace skydiver
