// Explicit partial orders over categorical domains.
//
// The SkyDiver measure needs nothing beyond the dominance relation, so it
// extends verbatim to attributes whose values are only PARTIALLY ordered
// (paper Sections 1-2: "partially-ordered domains or data with categorical
// features", citing Zhang et al. [37]). This module provides the domain
// machinery: a DAG of "better-than" edges over category ids, closed under
// transitivity, with cycle detection at construction.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"

namespace skydiver {

/// A partial order over category ids 0..size-1. `Leq(a, b)` reads
/// "a is at least as good as b" (matching minimization: smaller = better).
class PartialOrder {
 public:
  /// Builds from explicit better-than edges (better, worse). Fails on
  /// cycles (the order would not be antisymmetric) and on out-of-range ids.
  static Result<PartialOrder> FromEdges(
      size_t num_categories, const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  /// Total order 0 ≺ 1 ≺ ... ≺ n-1 (id 0 best) — lets categorical code
  /// paths express plain ordinal attributes.
  static PartialOrder Chain(size_t num_categories);

  /// Level order: categories in level l beat every category in levels
  /// > l; categories within a level are incomparable. `level_sizes[l]` is
  /// the number of categories in level l; ids are assigned level by level.
  static PartialOrder Levels(const std::vector<size_t>& level_sizes);

  /// Antichain: all categories mutually incomparable (pure nominal data).
  static PartialOrder Antichain(size_t num_categories);

  size_t size() const { return reach_.size(); }

  /// True iff a == b or a is transitively better than b.
  bool Leq(uint32_t a, uint32_t b) const {
    return a == b || reach_[a].Test(b);
  }

  /// True iff a is strictly better than b.
  bool Less(uint32_t a, uint32_t b) const { return a != b && reach_[a].Test(b); }

  /// True iff neither is at least as good as the other.
  bool Incomparable(uint32_t a, uint32_t b) const {
    return a != b && !reach_[a].Test(b) && !reach_[b].Test(a);
  }

  /// Number of categories strictly worse than `a`.
  size_t DownSetSize(uint32_t a) const { return reach_[a].Count(); }

 private:
  PartialOrder() = default;
  // reach_[a] holds the set of ids strictly worse than a (transitive
  // closure of the better-than DAG).
  std::vector<BitVector> reach_;
};

}  // namespace skydiver
