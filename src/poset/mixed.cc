#include "poset/mixed.h"

#include <algorithm>
#include <cmath>

#include "diversify/dispersion.h"
#include "minhash/siggen.h"

namespace skydiver {

Status MixedSchema::SetCategorical(Dim d, const PartialOrder* order) {
  if (d >= dims()) {
    return Status::InvalidArgument("dimension " + std::to_string(d) + " out of range");
  }
  if (order == nullptr) {
    return Status::InvalidArgument("categorical dimension needs a partial order");
  }
  orders_[d] = order;
  return Status::OK();
}

Status MixedSchema::Validate(const DataSet& data) const {
  if (data.dims() != dims()) {
    return Status::InvalidArgument("schema covers " + std::to_string(dims()) +
                                   " dims but data has " + std::to_string(data.dims()));
  }
  const RowId n = data.size();
  for (Dim d = 0; d < dims(); ++d) {
    const PartialOrder* order = orders_[d];
    if (order == nullptr) continue;
    for (RowId r = 0; r < n; ++r) {
      const Coord v = data.at(r, d);
      if (v < 0 || v != std::floor(v) || static_cast<size_t>(v) >= order->size()) {
        return Status::InvalidArgument(
            "row " + std::to_string(r) + " dim " + std::to_string(d) + ": value " +
            std::to_string(v) + " is not a category id in [0, " +
            std::to_string(order->size()) + ")");
      }
    }
  }
  return Status::OK();
}

bool MixedDominates(std::span<const Coord> p, std::span<const Coord> q,
                    const MixedSchema& schema) {
  bool strictly_better = false;
  const Dim d = schema.dims();
  for (Dim i = 0; i < d; ++i) {
    const PartialOrder* order = schema.order(i);
    if (order == nullptr) {
      if (p[i] > q[i]) return false;
      if (p[i] < q[i]) strictly_better = true;
    } else {
      const auto a = static_cast<uint32_t>(p[i]);
      const auto b = static_cast<uint32_t>(q[i]);
      if (!order->Leq(a, b)) return false;  // worse or incomparable
      if (a != b) strictly_better = true;
    }
  }
  return strictly_better;
}

Result<std::vector<RowId>> MixedSkyline(const DataSet& data, const MixedSchema& schema) {
  SKYDIVER_RETURN_NOT_OK(schema.Validate(data));
  std::vector<RowId> window;
  const RowId n = data.size();
  for (RowId r = 0; r < n; ++r) {
    const auto p = data.row(r);
    bool dominated = false;
    size_t keep = 0;
    for (size_t i = 0; i < window.size(); ++i) {
      const auto w = data.row(window[i]);
      if (MixedDominates(w, p, schema)) {
        dominated = true;
        for (size_t j = i; j < window.size(); ++j) window[keep++] = window[j];
        break;
      }
      if (!MixedDominates(p, w, schema)) window[keep++] = window[i];
    }
    window.resize(keep);
    if (!dominated) window.push_back(r);
  }
  std::sort(window.begin(), window.end());
  return window;
}

Result<MixedSigGenResult> MixedSigGenIF(const DataSet& data, const MixedSchema& schema,
                                        const std::vector<RowId>& skyline,
                                        const MinHashFamily& family) {
  SKYDIVER_RETURN_NOT_OK(schema.Validate(data));
  if (skyline.empty()) return Status::InvalidArgument("skyline set is empty");
  if (family.prime() <= data.size()) {
    return Status::InvalidArgument("hash family prime must exceed the dataset size");
  }
  const size_t t = family.size();
  const size_t m = skyline.size();
  const RowId n = data.size();
  MixedSigGenResult out;
  out.signatures = SignatureMatrix(t, m);
  out.domination_scores.assign(m, 0);
  std::vector<bool> is_skyline(n, false);
  for (RowId s : skyline) {
    if (s >= n) return Status::InvalidArgument("skyline row out of range");
    is_skyline[s] = true;
  }
  std::vector<uint64_t> row_hash(t);
  for (RowId r = 0; r < n; ++r) {
    if (is_skyline[r]) continue;
    const auto point = data.row(r);
    bool hashed = false;
    for (size_t j = 0; j < m; ++j) {
      if (!MixedDominates(data.row(skyline[j]), point, schema)) continue;
      ++out.domination_scores[j];
      if (!hashed) {
        for (size_t i = 0; i < t; ++i) row_hash[i] = family.Apply(i, r);
        hashed = true;
      }
      for (size_t i = 0; i < t; ++i) out.signatures.UpdateMin(j, i, row_hash[i]);
    }
  }
  const uint64_t pages = SequentialScanPages(n, data.dims(), 4096);
  out.io.page_reads = pages;
  out.io.page_faults = pages;
  return out;
}

Result<MixedDiversifyResult> DiversifyMixed(const DataSet& data,
                                            const MixedSchema& schema, size_t k,
                                            size_t signature_size, uint64_t seed) {
  auto skyline = MixedSkyline(data, schema);
  if (!skyline.ok()) return skyline.status();
  if (k > skyline->size()) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds skyline cardinality m = " +
                                   std::to_string(skyline->size()));
  }
  const auto family = MinHashFamily::Create(signature_size, data.size(), seed);
  auto sig = MixedSigGenIF(data, schema, *skyline, family);
  if (!sig.ok()) return sig.status();

  auto distance = [&](size_t a, size_t b) {
    return sig->signatures.EstimatedDistance(a, b);
  };
  auto score = [&](size_t j) {
    return static_cast<double>(sig->domination_scores[j]);
  };
  auto selection = SelectDiverseSet(skyline->size(), k, distance, score);
  if (!selection.ok()) return selection.status();

  MixedDiversifyResult out;
  out.skyline = std::move(skyline).value();
  out.objective = selection->min_pairwise;
  out.selected_rows.reserve(k);
  for (size_t idx : selection->selected) out.selected_rows.push_back(out.skyline[idx]);
  return out;
}

}  // namespace skydiver
