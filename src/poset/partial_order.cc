#include "poset/partial_order.h"

#include <queue>

namespace skydiver {

Result<PartialOrder> PartialOrder::FromEdges(
    size_t num_categories, const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  if (num_categories == 0) {
    return Status::InvalidArgument("a partial order needs at least one category");
  }
  std::vector<std::vector<uint32_t>> adj(num_categories);
  std::vector<uint32_t> indegree(num_categories, 0);
  for (const auto& [better, worse] : edges) {
    if (better >= num_categories || worse >= num_categories) {
      return Status::InvalidArgument("edge (" + std::to_string(better) + ", " +
                                     std::to_string(worse) + ") out of range");
    }
    if (better == worse) {
      return Status::InvalidArgument("self-loop on category " + std::to_string(better));
    }
    adj[better].push_back(worse);
    ++indegree[worse];
  }
  // Kahn topological order; also detects cycles.
  std::queue<uint32_t> ready;
  for (uint32_t v = 0; v < num_categories; ++v) {
    if (indegree[v] == 0) ready.push(v);
  }
  std::vector<uint32_t> topo;
  topo.reserve(num_categories);
  std::vector<uint32_t> remaining = indegree;
  while (!ready.empty()) {
    const uint32_t v = ready.front();
    ready.pop();
    topo.push_back(v);
    for (uint32_t w : adj[v]) {
      if (--remaining[w] == 0) ready.push(w);
    }
  }
  if (topo.size() != num_categories) {
    return Status::InvalidArgument(
        "better-than edges contain a cycle; a partial order must be acyclic");
  }
  // Transitive closure in reverse topological order:
  // reach(v) = union over children w of ({w} ∪ reach(w)).
  PartialOrder order;
  order.reach_.assign(num_categories, BitVector(num_categories));
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const uint32_t v = *it;
    for (uint32_t w : adj[v]) {
      order.reach_[v].Set(w);
      order.reach_[v] |= order.reach_[w];
    }
  }
  return order;
}

PartialOrder PartialOrder::Chain(size_t num_categories) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(num_categories > 0 ? num_categories - 1 : 0);
  for (uint32_t v = 0; v + 1 < num_categories; ++v) edges.emplace_back(v, v + 1);
  return FromEdges(num_categories, edges).value();
}

PartialOrder PartialOrder::Levels(const std::vector<size_t>& level_sizes) {
  size_t total = 0;
  for (size_t s : level_sizes) total += s;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  size_t level_start = 0;
  for (size_t l = 0; l + 1 < level_sizes.size(); ++l) {
    const size_t next_start = level_start + level_sizes[l];
    for (size_t a = level_start; a < next_start; ++a) {
      for (size_t b = next_start; b < next_start + level_sizes[l + 1]; ++b) {
        edges.emplace_back(static_cast<uint32_t>(a), static_cast<uint32_t>(b));
      }
    }
    level_start = next_start;
  }
  return FromEdges(total, edges).value();
}

PartialOrder PartialOrder::Antichain(size_t num_categories) {
  return FromEdges(num_categories, {}).value();
}

}  // namespace skydiver
