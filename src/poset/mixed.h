// Mixed numeric / categorical datasets and their dominance relation.
//
// A MixedSchema interprets each column of a DataSet either as a numeric
// minimization attribute or as a categorical attribute whose values are
// ids into a PartialOrder. Dominance generalizes point-wise: p ≺ q iff p
// is at least as good on EVERY dimension (numeric <=; categorical Leq) and
// strictly better on at least one. Any dimension with incomparable
// categories blocks dominance entirely — exactly the partially-ordered
// skyline semantics of Zhang et al. (PVLDB 2010) that the paper cites.
//
// Because the SkyDiver measure only consumes dominance, the whole
// diversification pipeline runs unchanged on mixed data through the
// index-free path: MixedSkyline + MixedSigGen + SelectDiverseSet.

#pragma once

#include <cstdint>
#include <vector>

#include "common/io_stats.h"
#include "common/status.h"
#include "core/dataset.h"
#include "minhash/minhash.h"
#include "poset/partial_order.h"

namespace skydiver {

/// Column interpretation for mixed dominance.
class MixedSchema {
 public:
  /// Starts with all dimensions numeric (minimize).
  explicit MixedSchema(Dim dims) : orders_(dims, nullptr) {}

  Dim dims() const { return static_cast<Dim>(orders_.size()); }

  /// Declares dimension `d` categorical under `order`. The caller keeps
  /// ownership; the order must outlive the schema.
  Status SetCategorical(Dim d, const PartialOrder* order);

  bool IsCategorical(Dim d) const { return orders_[d] != nullptr; }
  const PartialOrder* order(Dim d) const { return orders_[d]; }

  /// Checks that every categorical value in `data` is an integral id
  /// within its order's range.
  Status Validate(const DataSet& data) const;

 private:
  std::vector<const PartialOrder*> orders_;
};

/// True iff `p` dominates `q` under the mixed schema.
bool MixedDominates(std::span<const Coord> p, std::span<const Coord> q,
                    const MixedSchema& schema);

/// Skyline of a mixed dataset (BNL-style; no index, as the paper
/// prescribes for non-numeric domains). Rows ascending.
Result<std::vector<RowId>> MixedSkyline(const DataSet& data, const MixedSchema& schema);

/// Index-free MinHash signature generation under mixed dominance — the
/// paper's Fig. 3 with the generalized comparator. Returns the signature
/// matrix, exact domination scores and the charged sequential-scan I/O.
struct MixedSigGenResult {
  SignatureMatrix signatures;
  std::vector<uint64_t> domination_scores;
  IoStats io;
};
Result<MixedSigGenResult> MixedSigGenIF(const DataSet& data, const MixedSchema& schema,
                                        const std::vector<RowId>& skyline,
                                        const MinHashFamily& family);

/// End-to-end k-most-diverse selection on mixed data: skyline + IF
/// fingerprinting + greedy dispersion over estimated Jaccard distances.
struct MixedDiversifyResult {
  std::vector<RowId> skyline;
  std::vector<RowId> selected_rows;
  double objective = 0.0;  ///< min pairwise estimated Jaccard distance.
};
Result<MixedDiversifyResult> DiversifyMixed(const DataSet& data,
                                            const MixedSchema& schema, size_t k,
                                            size_t signature_size, uint64_t seed);

}  // namespace skydiver
