// Executable form of the paper's "User Guide" (Section 5.2):
//
//   "The IB method should be considered: i) when the R-tree can be memory
//    resident, assuming enough resources, whereas for a disk-resident
//    index ii) for average and high-dimensional data (d >= 4) and iii)
//    when d = 2, provided we are dealing with IND data. In the few
//    remaining cases, IF should be favored."
//
// The only data-dependent input is whether the workload is IND-like or
// anticorrelated; the advisor estimates it from the mean pairwise Pearson
// correlation of a sample.

#pragma once

#include <cstdint>
#include <string>

#include "core/dataset.h"
#include "skydiver/skydiver.h"

namespace skydiver {

/// Where the aggregate R*-tree would live.
enum class IndexResidency {
  kMemoryResident,  ///< index fits in RAM: node reads are free-ish
  kDiskResident,    ///< index pages fault from disk (the paper's default)
};

/// The advisor's verdict.
struct SigGenAdvice {
  SigGenMode mode = SigGenMode::kIndexFree;
  /// Which clause of the paper's guide fired, for logging/UIs.
  std::string rationale;
  /// The measured mean pairwise correlation of the sample.
  double mean_correlation = 0.0;
};

/// Mean pairwise Pearson correlation across dimension pairs, estimated on
/// a sample of at most `sample_rows` rows. Negative values indicate
/// anticorrelated (large-skyline) data.
double EstimateMeanCorrelation(const DataSet& data, RowId sample_rows = 10000);

/// Applies the paper's user guide to `data`.
SigGenAdvice RecommendSigGenMode(const DataSet& data, IndexResidency residency);

}  // namespace skydiver
