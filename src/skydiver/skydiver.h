// SkyDiver — the public framework API.
//
// Wires the full pipeline of the paper:
//
//   skyline (BBS over the aggregate R*-tree, or SFS when index-free)
//     -> Phase 1: fingerprinting (SigGen-IB / SigGen-IF MinHash signatures)
//     -> Phase 2: selection (greedy 2-approx k-MMDP over MinHash estimated
//        distances, or over LSH bit-vector Hamming distances)
//
// and reports per-phase CPU time, page-level I/O, and memory, under the
// paper's cost model (8 ms per charged page fault).
//
// Quickstart:
//
//   DataSet data = GenerateIndependent(100'000, 4, /*seed=*/1);
//   SkyDiverConfig config;
//   config.k = 10;
//   auto report = SkyDiver::Run(data, config);        // index-free
//   for (RowId r : report->selected_rows) { ... }     // k diverse points

#pragma once

#include <cstdint>
#include <vector>

#include "common/io_stats.h"
#include "common/status.h"
#include "core/dataset.h"
#include "core/preference.h"
#include "rtree/rtree.h"

namespace skydiver {

class DiskRTree;

/// How Phase 1 builds the MinHash signatures.
enum class SigGenMode {
  kAuto,       ///< Index-based when a tree is supplied, index-free otherwise.
  kIndexFree,  ///< Single sequential pass (paper Fig. 3).
  kIndexBased, ///< Aggregate R*-tree descent (paper Fig. 4); requires a tree.
};

/// Which distance Phase 2 greedily disperses over.
enum class SelectMode {
  kMinHash,  ///< Estimated Jaccard distance on signatures (SkyDiver-MH).
  kLsh,      ///< Hamming distance on LSH bit-vectors (SkyDiver-LSH).
};

/// Framework configuration; the defaults mirror the paper's
/// (t = 100, k = 10, ξ = 0.2, B = 20).
struct SkyDiverConfig {
  size_t k = 10;                  ///< Number of diverse skyline points.
  size_t signature_size = 100;    ///< t: MinHash slots per skyline point.
  SigGenMode siggen = SigGenMode::kAuto;
  SelectMode select = SelectMode::kMinHash;
  double lsh_threshold = 0.2;     ///< ξ: banding threshold (kLsh only).
  size_t lsh_buckets = 20;        ///< B: buckets per zone (kLsh only).
  uint64_t seed = 42;             ///< Seed for hash-family / LSH draws.
  CostModel cost_model;           ///< Page-fault charge (default 8 ms).
};

/// CPU + I/O accounting for one pipeline phase.
struct PhaseMetrics {
  double cpu_seconds = 0.0;
  IoStats io;

  /// CPU plus charged I/O time under `model`.
  double TotalSeconds(const CostModel& model) const {
    return model.TotalSeconds(cpu_seconds, io);
  }
};

/// Everything the pipeline produced.
struct SkyDiverReport {
  /// The full skyline (row ids into the input dataset, ascending).
  std::vector<RowId> skyline;
  /// Selected diverse points as indices into `skyline`, in pick order.
  std::vector<size_t> selected;
  /// The same selection as row ids into the input dataset.
  std::vector<RowId> selected_rows;
  /// k-MMDP objective achieved under the working distance (estimated
  /// Jaccard for MH, Hamming for LSH).
  double objective = 0.0;

  PhaseMetrics skyline_phase;
  PhaseMetrics fingerprint_phase;
  PhaseMetrics selection_phase;

  size_t signature_memory_bytes = 0;
  size_t lsh_memory_bytes = 0;

  /// Convenience: fingerprint + selection total (the paper's reported
  /// 2-step cost, excluding skyline computation).
  double DiversificationSeconds(const CostModel& model) const {
    return fingerprint_phase.TotalSeconds(model) + selection_phase.TotalSeconds(model);
  }
};

/// The framework entry point.
class SkyDiver {
 public:
  /// Runs the full pipeline on `data`, which must already be in
  /// minimization space. If `tree` is non-null it must index `data`; the
  /// skyline is then computed with BBS and (under kAuto / kIndexBased) the
  /// signatures with SigGen-IB. If `precomputed_skyline` is non-null the
  /// skyline phase is skipped and the given rows are used verbatim.
  static Result<SkyDiverReport> Run(const DataSet& data, const SkyDiverConfig& config,
                                    const RTree* tree = nullptr,
                                    const std::vector<RowId>* precomputed_skyline = nullptr);

  /// Same, but first maps `data` into minimization space under `pref`
  /// (e.g. maximize quality, minimize price). Row ids in the report refer
  /// to the original dataset.
  static Result<SkyDiverReport> RunWithPreference(const DataSet& data,
                                                  const Preference& pref,
                                                  const SkyDiverConfig& config);

  /// Fully indexed pipeline over a FILE-BACKED tree: BBS and SigGen-IB
  /// read real 4 KB pages through the disk tree's frame cache, so the
  /// reported fault counts are physical preads.
  static Result<SkyDiverReport> RunOnDisk(const DataSet& data,
                                          const SkyDiverConfig& config,
                                          const DiskRTree& tree,
                                          const std::vector<RowId>* precomputed_skyline = nullptr);
};

}  // namespace skydiver
