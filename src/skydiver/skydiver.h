// SkyDiver — the public framework API.
//
// Wires the full pipeline of the paper:
//
//   skyline (BBS over the aggregate R*-tree, or SFS when index-free)
//     -> Phase 1: fingerprinting (SigGen-IB / SigGen-IF MinHash signatures)
//     -> Phase 2: selection (greedy 2-approx k-MMDP over MinHash estimated
//        distances, or over LSH bit-vector Hamming distances)
//
// and reports per-phase CPU time, page-level I/O, and memory, under the
// paper's cost model (8 ms per charged page fault).
//
// Every entry point here is a thin adapter over the execution engine
// (src/engine/): the Planner resolves the config + resources into a Plan
// (one backend per stage, pooled backends picked automatically when
// config.threads >= 1), and the Engine executes it inside a QueryContext.
// The returned report carries the resolved plan and its ExplainPlan()
// rendering. Callers needing finer control (fingerprint-only pipelines,
// shared pools across queries, trace events) can drive the engine
// directly — see engine/engine.h — or build a SkySnapshot and serve
// queries against it — see engine/snapshot.h and serve/serve.h.
//
// Quickstart:
//
//   DataSet data = GenerateIndependent(100'000, 4, /*seed=*/1);
//   SkyDiverConfig config;
//   config.k = 10;
//   auto report = SkyDiver::Run(data, config);        // index-free
//   for (RowId r : report->selected_rows) { ... }     // k diverse points

#pragma once

#include <cstdint>
#include <vector>

#include "common/io_stats.h"
#include "common/phase_metrics.h"
#include "common/status.h"
#include "core/dataset.h"
#include "core/preference.h"
#include "engine/engine.h"
#include "engine/plan.h"
#include "engine/query_context.h"
#include "engine/planner.h"
#include "rtree/rtree.h"

namespace skydiver {

class DiskRTree;

/// The framework entry point.
class SkyDiver {
 public:
  /// Runs the full pipeline on `data`, which must already be in
  /// minimization space. If `tree` is non-null it must index `data`; the
  /// skyline is then computed with BBS and (under kAuto / kIndexBased) the
  /// signatures with SigGen-IB. If `precomputed_skyline` is non-null the
  /// skyline phase is skipped and the given rows are used verbatim.
  [[nodiscard]] static Result<SkyDiverReport> Run(const DataSet& data, const SkyDiverConfig& config,
                                    const RTree* tree = nullptr,
                                    const std::vector<RowId>* precomputed_skyline = nullptr);

  /// Same, but first maps `data` into minimization space under `pref`
  /// (e.g. maximize quality, minimize price). Row ids in the report refer
  /// to the original dataset.
  [[nodiscard]] static Result<SkyDiverReport> RunWithPreference(const DataSet& data,
                                                  const Preference& pref,
                                                  const SkyDiverConfig& config);

  /// Fully indexed pipeline over a FILE-BACKED tree: BBS and SigGen-IB
  /// read real 4 KB pages through the disk tree's frame cache, so the
  /// reported fault counts are physical preads.
  [[nodiscard]] static Result<SkyDiverReport> RunOnDisk(const DataSet& data,
                                          const SkyDiverConfig& config,
                                          const DiskRTree& tree,
                                          const std::vector<RowId>* precomputed_skyline = nullptr);
};

}  // namespace skydiver
