// Dataset profiling: the numbers an operator wants before running the
// pipeline — per-dimension ranges/moments, mean pairwise correlation, the
// expected skyline size of comparable uniform data (Bentley et al.), and
// the paper's §5.2 IB/IF recommendation.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"

namespace skydiver {

/// Per-dimension summary statistics.
struct DimensionProfile {
  Coord min = 0;
  Coord max = 0;
  double mean = 0;
  double stddev = 0;
  double zero_fraction = 0;  ///< fraction of exact zeros (zero inflation)
};

/// Whole-dataset profile.
struct DataProfile {
  RowId rows = 0;
  Dim dims = 0;
  std::vector<DimensionProfile> dimensions;
  double mean_pairwise_correlation = 0;
  /// Expected skyline size if the data were uniform/independent at this
  /// (n, d) — a baseline to compare the measured skyline against.
  double expected_uniform_skyline = 0;
};

/// Computes the profile in one pass (plus the correlation sample).
[[nodiscard]] Result<DataProfile> ProfileDataSet(const DataSet& data);

/// Renders the profile as a human-readable multi-line report.
std::string FormatProfile(const DataProfile& profile);

}  // namespace skydiver
