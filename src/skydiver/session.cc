#include "skydiver/session.h"

#include <utility>

#include "common/binio.h"
#include "engine/plan.h"
#include "engine/query_context.h"
#include "engine/runtime.h"

namespace skydiver {

namespace {
constexpr char kSessionMagic[8] = {'S', 'K', 'Y', 'D', 'S', 'E', 'S', '1'};

// Answers one query against the session's snapshot with a fresh serial
// context (the session API is synchronous; concurrent serving goes through
// serve/serve.h instead).
Result<std::vector<RowId>> RunQuery(const SkySnapshot& snapshot, const QuerySpec& spec) {
  QueryContext ctx(Runtime::Create(0), CostModel{}, BandingSeed(snapshot.seed(), spec));
  auto result = snapshot.Select(spec, ctx);
  if (!result.ok()) return result.status();
  return std::move(result.value().rows);
}

}  // namespace

Result<SkyDiverSession> SkyDiverSession::Create(const DataSet& data,
                                                size_t signature_size, uint64_t seed,
                                                const RTree* tree) {
  SkyDiverConfig config;
  config.signature_size = signature_size;
  config.seed = seed;
  PlanResources resources;
  resources.tree = tree;
  auto snapshot = SkySnapshot::Build(data, config, resources);
  if (!snapshot.ok()) return snapshot.status();

  SkyDiverSession session;
  session.snapshot_ = std::move(snapshot).value();
  return session;
}

Result<std::vector<RowId>> SkyDiverSession::SelectMinHash(size_t k) const {
  QuerySpec spec;
  spec.mode = SelectMode::kMinHash;
  spec.k = k;
  return RunQuery(*snapshot_, spec);
}

Result<std::vector<RowId>> SkyDiverSession::SelectLsh(size_t k, double threshold,
                                                      size_t buckets) const {
  QuerySpec spec;
  spec.mode = SelectMode::kLsh;
  spec.k = k;
  spec.lsh_threshold = threshold;
  spec.lsh_buckets = buckets;
  return RunQuery(*snapshot_, spec);
}

Status SkyDiverSession::SaveToFile(const std::string& path) const {
  const auto& skyline = snapshot_->skyline();
  const auto& scores = snapshot_->domination_scores();
  const SignatureMatrix& signatures = snapshot_->signatures();
  BinaryWriter writer(path, kSessionMagic);
  if (!writer.ok()) return Status::IoError("cannot open '" + path + "' for writing");
  writer.WriteU64(snapshot_->seed());
  writer.WriteU64(skyline.size());
  for (RowId r : skyline) writer.WriteU32(r);
  for (uint64_t s : scores) writer.WriteU64(s);
  writer.WriteU64(signatures.signature_size());
  for (size_t j = 0; j < signatures.columns(); ++j) {
    for (size_t i = 0; i < signatures.signature_size(); ++i) {
      writer.WriteU64(signatures.at(j, i));
    }
  }
  return writer.Finish();
}

Result<SkyDiverSession> SkyDiverSession::LoadFromFile(const std::string& path) {
  BinaryReader reader(path, kSessionMagic);
  SKYDIVER_RETURN_NOT_OK(reader.status());
  uint64_t seed = 0;
  uint64_t m = 0;
  if (!reader.ReadU64(&seed) || !reader.ReadU64(&m)) {
    return Status::IoError("'" + path + "': truncated session header");
  }
  std::vector<RowId> skyline(m);
  for (auto& r : skyline) {
    if (!reader.ReadU32(&r)) return Status::IoError("'" + path + "': truncated skyline");
  }
  std::vector<uint64_t> scores(m);
  for (auto& s : scores) {
    if (!reader.ReadU64(&s)) return Status::IoError("'" + path + "': truncated scores");
  }
  uint64_t t = 0;
  if (!reader.ReadU64(&t)) return Status::IoError("'" + path + "': truncated header");
  SignatureMatrix signatures(t, m);
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 0; i < t; ++i) {
      uint64_t v = 0;
      if (!reader.ReadU64(&v)) {
        return Status::IoError("'" + path + "': truncated signatures");
      }
      signatures.UpdateMin(j, i, v);
    }
  }
  SKYDIVER_RETURN_NOT_OK(reader.VerifyChecksum());
  auto snapshot = SkySnapshot::Adopt(std::move(skyline), std::move(scores),
                                     std::move(signatures), seed);
  if (!snapshot.ok()) return snapshot.status();
  SkyDiverSession session;
  session.snapshot_ = std::move(snapshot).value();
  return session;
}

}  // namespace skydiver
