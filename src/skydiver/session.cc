#include "skydiver/session.h"

#include "common/binio.h"
#include "diversify/dispersion.h"
#include "engine/engine.h"
#include "engine/exec_context.h"
#include "engine/planner.h"
#include "lsh/lsh.h"

namespace skydiver {

namespace {
constexpr char kSessionMagic[8] = {'S', 'K', 'Y', 'D', 'S', 'E', 'S', '1'};
}  // namespace

Result<SkyDiverSession> SkyDiverSession::Create(const DataSet& data,
                                                size_t signature_size, uint64_t seed,
                                                const RTree* tree) {
  // A session is a fingerprint-only plan: skyline + SigGen run through the
  // engine (identical accounting and backend choice as the batch API),
  // selection is deferred to the Select* queries.
  SkyDiverConfig config;
  config.signature_size = signature_size;
  config.seed = seed;
  PlanResources resources;
  resources.tree = tree;
  auto plan = Planner::Resolve(config, resources, /*run_selection=*/false);
  if (!plan.ok()) return plan.status();
  ExecContext ctx(config);
  auto output = Engine::Execute(ctx, plan.value(), config, data, resources);
  if (!output.ok()) return output.status();

  SkyDiverSession session;
  session.seed_ = seed;
  session.skyline_ = std::move(output.value().report.skyline);
  session.signatures_ = std::move(output.value().signatures);
  session.scores_ = std::move(output.value().domination_scores);
  return session;
}

Result<std::vector<RowId>> SkyDiverSession::SelectMinHash(size_t k) const {
  auto distance = [this](size_t a, size_t b) {
    return signatures_.EstimatedDistance(a, b);
  };
  auto selection = SelectDiverseSet(skyline_.size(), k, distance, scores_);
  if (!selection.ok()) return selection.status();
  std::vector<RowId> rows;
  rows.reserve(k);
  for (size_t idx : selection->selected) rows.push_back(skyline_[idx]);
  return rows;
}

Result<std::vector<RowId>> SkyDiverSession::SelectLsh(size_t k, double threshold,
                                                      size_t buckets) const {
  auto params = ChooseZones(signatures_.signature_size(), threshold, buckets);
  if (!params.ok()) return params.status();
  auto index = LshIndex::Build(signatures_, params.value(), seed_ ^ 0xdecaf);
  if (!index.ok()) return index.status();
  auto distance = [&](size_t a, size_t b) { return index->Distance(a, b); };
  auto selection = SelectDiverseSet(skyline_.size(), k, distance, scores_);
  if (!selection.ok()) return selection.status();
  std::vector<RowId> rows;
  rows.reserve(k);
  for (size_t idx : selection->selected) rows.push_back(skyline_[idx]);
  return rows;
}

Status SkyDiverSession::SaveToFile(const std::string& path) const {
  BinaryWriter writer(path, kSessionMagic);
  if (!writer.ok()) return Status::IoError("cannot open '" + path + "' for writing");
  writer.WriteU64(seed_);
  writer.WriteU64(skyline_.size());
  for (RowId r : skyline_) writer.WriteU32(r);
  for (uint64_t s : scores_) writer.WriteU64(s);
  writer.WriteU64(signatures_.signature_size());
  for (size_t j = 0; j < signatures_.columns(); ++j) {
    for (size_t i = 0; i < signatures_.signature_size(); ++i) {
      writer.WriteU64(signatures_.at(j, i));
    }
  }
  return writer.Finish();
}

Result<SkyDiverSession> SkyDiverSession::LoadFromFile(const std::string& path) {
  BinaryReader reader(path, kSessionMagic);
  SKYDIVER_RETURN_NOT_OK(reader.status());
  SkyDiverSession session;
  uint64_t m = 0;
  if (!reader.ReadU64(&session.seed_) || !reader.ReadU64(&m)) {
    return Status::IoError("'" + path + "': truncated session header");
  }
  session.skyline_.resize(m);
  for (auto& r : session.skyline_) {
    if (!reader.ReadU32(&r)) return Status::IoError("'" + path + "': truncated skyline");
  }
  session.scores_.resize(m);
  for (auto& s : session.scores_) {
    if (!reader.ReadU64(&s)) return Status::IoError("'" + path + "': truncated scores");
  }
  uint64_t t = 0;
  if (!reader.ReadU64(&t)) return Status::IoError("'" + path + "': truncated header");
  session.signatures_ = SignatureMatrix(t, m);
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 0; i < t; ++i) {
      uint64_t v = 0;
      if (!reader.ReadU64(&v)) {
        return Status::IoError("'" + path + "': truncated signatures");
      }
      session.signatures_.UpdateMin(j, i, v);
    }
  }
  SKYDIVER_RETURN_NOT_OK(reader.VerifyChecksum());
  return session;
}

}  // namespace skydiver
