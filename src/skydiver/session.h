// SkyDiverSession — fingerprint once, diversify many times.
//
// Phase 1 (skyline + MinHash fingerprinting) is the expensive part of the
// pipeline; Phase 2 (greedy selection) costs O(k·m) signature comparisons.
// A session materializes Phase 1's products — skyline rows, domination
// scores, the signature matrix — and then answers any number of selection
// queries with different k, different LSH bandings, or the MH distance,
// without touching the data again. Creation routes through the execution
// engine (a fingerprint-only plan), so sessions share the batch API's
// backend choice and accounting. Sessions persist to a single
// checksummed file and can be reloaded WITHOUT the dataset: selection
// needs only the fingerprints (the paper's index-independence taken to its
// conclusion — ship the 100-slot signatures, not the 5M points).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "minhash/minhash.h"
#include "rtree/rtree.h"

namespace skydiver {

/// Reusable Phase-1 state with repeated Phase-2 queries.
class SkyDiverSession {
 public:
  /// Runs the skyline (SFS, or BBS when `tree` is given) and fingerprints
  /// it (SigGen-IF, or SigGen-IB when `tree` is given).
  [[nodiscard]] static Result<SkyDiverSession> Create(const DataSet& data, size_t signature_size,
                                        uint64_t seed, const RTree* tree = nullptr);

  /// The skyline rows the fingerprints describe, ascending.
  const std::vector<RowId>& skyline() const { return skyline_; }
  /// Exact |Γ(s_j)| per skyline point.
  const std::vector<uint64_t>& domination_scores() const { return scores_; }
  const SignatureMatrix& signatures() const { return signatures_; }

  /// k most diverse skyline rows under the MinHash estimated distance
  /// (SkyDiver-MH's Phase 2). Pick order = progressive ranking.
  [[nodiscard]] Result<std::vector<RowId>> SelectMinHash(size_t k) const;

  /// Same under an LSH banding at threshold ξ with B buckets per zone
  /// (SkyDiver-LSH's Phase 2); a fresh banding is derived per call, so the
  /// memory/accuracy knob can be explored on one set of fingerprints.
  [[nodiscard]] Result<std::vector<RowId>> SelectLsh(size_t k, double threshold,
                                       size_t buckets) const;

  /// Persists skyline rows, domination scores and signatures to one
  /// checksummed file (format SKYDSES1).
  [[nodiscard]] Status SaveToFile(const std::string& path) const;

  /// Reloads a session. No dataset required: every Select* works on the
  /// fingerprints alone.
  [[nodiscard]] static Result<SkyDiverSession> LoadFromFile(const std::string& path);

 private:
  SkyDiverSession() = default;

  std::vector<RowId> skyline_;
  std::vector<uint64_t> scores_;
  SignatureMatrix signatures_;
  uint64_t seed_ = 0;
};

}  // namespace skydiver
