// SkyDiverSession — fingerprint once, diversify many times.
//
// Phase 1 (skyline + MinHash fingerprinting) is the expensive part of the
// pipeline; Phase 2 (greedy selection) costs O(k·m) signature comparisons.
// A session is a thin convenience wrapper over an immutable `SkySnapshot`
// (engine/snapshot.h): Create() builds the snapshot through the engine's
// fingerprint-only plan (identical backend choice and accounting as the
// batch API), and every Select* answers one query against it. Sessions
// persist to a single checksummed file and can be reloaded WITHOUT the
// dataset: selection needs only the fingerprints (the paper's
// index-independence taken to its conclusion — ship the 100-slot
// signatures, not the 5M points).
//
// For concurrent serving — many clients querying one snapshot, with plan
// and result caching — take snapshot() and hand it to a SkyServer
// (serve/serve.h); the session itself answers queries serially.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "engine/snapshot.h"
#include "minhash/minhash.h"
#include "rtree/rtree.h"

namespace skydiver {

/// Reusable Phase-1 state with repeated Phase-2 queries.
class SkyDiverSession {
 public:
  /// Runs the skyline (SFS, or BBS when `tree` is given) and fingerprints
  /// it (SigGen-IF, or SigGen-IB when `tree` is given), freezing the
  /// products into a snapshot.
  [[nodiscard]] static Result<SkyDiverSession> Create(const DataSet& data, size_t signature_size,
                                        uint64_t seed, const RTree* tree = nullptr);

  /// The snapshot this session queries. Shareable: keep a copy of the
  /// shared_ptr and the Phase-1 state outlives the session.
  const std::shared_ptr<const SkySnapshot>& snapshot() const { return snapshot_; }

  /// The skyline rows the fingerprints describe, ascending.
  const std::vector<RowId>& skyline() const { return snapshot_->skyline(); }
  /// Exact |Γ(s_j)| per skyline point.
  const std::vector<uint64_t>& domination_scores() const {
    return snapshot_->domination_scores();
  }
  const SignatureMatrix& signatures() const { return snapshot_->signatures(); }

  /// k most diverse skyline rows under the MinHash estimated distance
  /// (SkyDiver-MH's Phase 2). Pick order = progressive ranking.
  [[nodiscard]] Result<std::vector<RowId>> SelectMinHash(size_t k) const;

  /// Same under an LSH banding at threshold ξ with B buckets per zone
  /// (SkyDiver-LSH's Phase 2), so the memory/accuracy knob can be explored
  /// on one set of fingerprints.
  ///
  /// Banding determinism rule: the banding Rng is seeded by a functional
  /// mix of (session seed, k, ξ, B) — see BandingSeed in engine/snapshot.h.
  /// Equal arguments therefore always derive the same banding and return
  /// the same rows, on any thread, in any call order, live or reloaded;
  /// different (k, ξ, B) tuples draw independent bandings.
  [[nodiscard]] Result<std::vector<RowId>> SelectLsh(size_t k, double threshold,
                                       size_t buckets) const;

  /// Persists skyline rows, domination scores and signatures to one
  /// checksummed file (format SKYDSES1).
  [[nodiscard]] Status SaveToFile(const std::string& path) const;

  /// Reloads a session. No dataset required: every Select* works on the
  /// fingerprints alone.
  [[nodiscard]] static Result<SkyDiverSession> LoadFromFile(const std::string& path);

 private:
  SkyDiverSession() = default;

  std::shared_ptr<const SkySnapshot> snapshot_;
};

}  // namespace skydiver
