#include "skydiver/advisor.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace skydiver {

double EstimateMeanCorrelation(const DataSet& data, RowId sample_rows) {
  const Dim d = data.dims();
  if (d < 2 || data.size() < 2) return 0.0;
  const RowId n = std::min(data.size(), sample_rows);
  const RowId stride = std::max<RowId>(1, data.size() / n);

  // Accumulate first/second moments per dimension and cross-moments per
  // dimension pair over the strided sample.
  std::vector<double> sum(d, 0.0), sum_sq(d, 0.0);
  std::vector<double> cross(static_cast<size_t>(d) * d, 0.0);
  RowId count = 0;
  for (RowId r = 0; r < data.size(); r += stride) {
    const auto row = data.row(r);
    for (Dim i = 0; i < d; ++i) {
      sum[i] += row[i];
      sum_sq[i] += row[i] * row[i];
      for (Dim j = static_cast<Dim>(i + 1); j < d; ++j) {
        cross[static_cast<size_t>(i) * d + j] += row[i] * row[j];
      }
    }
    ++count;
  }
  const auto nn = static_cast<double>(count);
  double corr_sum = 0.0;
  size_t pairs = 0;
  for (Dim i = 0; i < d; ++i) {
    for (Dim j = static_cast<Dim>(i + 1); j < d; ++j) {
      const double cov = cross[static_cast<size_t>(i) * d + j] / nn -
                         (sum[i] / nn) * (sum[j] / nn);
      const double var_i = sum_sq[i] / nn - (sum[i] / nn) * (sum[i] / nn);
      const double var_j = sum_sq[j] / nn - (sum[j] / nn) * (sum[j] / nn);
      if (var_i > 0 && var_j > 0) {
        corr_sum += cov / std::sqrt(var_i * var_j);
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0 : corr_sum / static_cast<double>(pairs);
}

SigGenAdvice RecommendSigGenMode(const DataSet& data, IndexResidency residency) {
  SigGenAdvice advice;
  advice.mean_correlation = EstimateMeanCorrelation(data);
  const Dim d = data.dims();
  // Anticorrelation threshold: clearly negative mean pairwise correlation.
  const bool anticorrelated = advice.mean_correlation < -0.1;

  if (residency == IndexResidency::kMemoryResident) {
    advice.mode = SigGenMode::kIndexBased;
    advice.rationale = "guide (i): memory-resident index -> IB";
    return advice;
  }
  if (d >= 4) {
    advice.mode = SigGenMode::kIndexBased;
    advice.rationale = "guide (ii): disk-resident index, d >= 4 -> IB";
    return advice;
  }
  if (d == 2 && !anticorrelated) {
    advice.mode = SigGenMode::kIndexBased;
    advice.rationale = "guide (iii): d = 2 on IND-like data -> IB";
    return advice;
  }
  advice.mode = SigGenMode::kIndexFree;
  advice.rationale = anticorrelated
                         ? "remaining case: low-dimensional anticorrelated data -> IF"
                         : "remaining case: d = 3 disk-resident -> IF";
  return advice;
}

}  // namespace skydiver
