#include "skydiver/profile.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "skydiver/advisor.h"
#include "skyline/cardinality.h"

namespace skydiver {

Result<DataProfile> ProfileDataSet(const DataSet& data) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  DataProfile profile;
  profile.rows = data.size();
  profile.dims = data.dims();
  profile.dimensions.resize(data.dims());

  std::vector<double> sum(data.dims(), 0.0), sum_sq(data.dims(), 0.0);
  std::vector<uint64_t> zeros(data.dims(), 0);
  for (Dim i = 0; i < data.dims(); ++i) {
    profile.dimensions[i].min = std::numeric_limits<Coord>::infinity();
    profile.dimensions[i].max = -std::numeric_limits<Coord>::infinity();
  }
  for (RowId r = 0; r < data.size(); ++r) {
    const auto row = data.row(r);
    for (Dim i = 0; i < data.dims(); ++i) {
      const Coord v = row[i];
      auto& d = profile.dimensions[i];
      if (v < d.min) d.min = v;
      if (v > d.max) d.max = v;
      sum[i] += v;
      sum_sq[i] += v * v;
      zeros[i] += (v == 0.0);
    }
  }
  const auto n = static_cast<double>(data.size());
  for (Dim i = 0; i < data.dims(); ++i) {
    auto& d = profile.dimensions[i];
    d.mean = sum[i] / n;
    const double var = sum_sq[i] / n - d.mean * d.mean;
    d.stddev = var > 0 ? std::sqrt(var) : 0.0;
    d.zero_fraction = static_cast<double>(zeros[i]) / n;
  }
  profile.mean_pairwise_correlation = EstimateMeanCorrelation(data);
  profile.expected_uniform_skyline =
      ExpectedSkylineSizeUniform(data.size(), data.dims());
  return profile;
}

std::string FormatProfile(const DataProfile& profile) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  os << "rows: " << profile.rows << ", dims: " << profile.dims << "\n";
  os << "dim        min         max         mean        stddev      zeros%\n";
  for (Dim i = 0; i < profile.dims; ++i) {
    const auto& d = profile.dimensions[i];
    os << i << "          " << d.min << "      " << d.max << "      " << d.mean
       << "      " << d.stddev << "      " << 100.0 * d.zero_fraction << "\n";
  }
  os << "mean pairwise correlation: " << profile.mean_pairwise_correlation;
  if (profile.mean_pairwise_correlation < -0.1) {
    os << "  (anticorrelated: expect a LARGE skyline)";
  } else if (profile.mean_pairwise_correlation > 0.1) {
    os << "  (correlated: expect a small skyline)";
  }
  os << "\nexpected skyline if uniform/independent: "
     << profile.expected_uniform_skyline << " points\n";
  return os.str();
}

}  // namespace skydiver
