#include "skydiver/skydiver.h"

#include <utility>

#include "rtree/disk_rtree.h"

namespace skydiver {

namespace {

// The shared adapter: plan, build a context, execute, unwrap the report.
Result<SkyDiverReport> PlanAndExecute(const DataSet& data, const SkyDiverConfig& config,
                                      const PlanResources& resources) {
  auto plan = Planner::Resolve(config, resources);
  if (!plan.ok()) return plan.status();
  QueryContext ctx(config);
  auto output = Engine::Execute(ctx, plan.value(), config, data, resources);
  if (!output.ok()) return output.status();
  return std::move(output.value().report);
}

}  // namespace

Result<SkyDiverReport> SkyDiver::Run(const DataSet& data, const SkyDiverConfig& config,
                                     const RTree* tree,
                                     const std::vector<RowId>* precomputed_skyline) {
  PlanResources resources;
  resources.tree = tree;
  resources.precomputed_skyline = precomputed_skyline;
  return PlanAndExecute(data, config, resources);
}

Result<SkyDiverReport> SkyDiver::RunOnDisk(const DataSet& data,
                                           const SkyDiverConfig& config,
                                           const DiskRTree& tree,
                                           const std::vector<RowId>* precomputed_skyline) {
  PlanResources resources;
  resources.disk_tree = &tree;
  resources.precomputed_skyline = precomputed_skyline;
  return PlanAndExecute(data, config, resources);
}

Result<SkyDiverReport> SkyDiver::RunWithPreference(const DataSet& data,
                                                   const Preference& pref,
                                                   const SkyDiverConfig& config) {
  auto canonical = data.Canonicalize(pref);
  if (!canonical.ok()) return canonical.status();
  return Run(canonical.value(), config);
}

}  // namespace skydiver
