#include "skydiver/skydiver.h"

#include <algorithm>

#include "common/timer.h"
#include "rtree/disk_rtree.h"
#include "diversify/dispersion.h"
#include "lsh/lsh.h"
#include "minhash/minhash.h"
#include "minhash/siggen.h"
#include "skyline/skyline.h"

namespace skydiver {

namespace {

// Pipeline over any indexed backend (RTree or DiskRTree) — or none.
template <typename Tree>
Result<SkyDiverReport> RunImpl(const DataSet& data, const SkyDiverConfig& config,
                               const Tree* tree,
                               const std::vector<RowId>* precomputed_skyline) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (config.k == 0) return Status::InvalidArgument("k must be positive");
  if (config.signature_size == 0) {
    return Status::InvalidArgument("signature size must be positive");
  }
  if (config.siggen == SigGenMode::kIndexBased && tree == nullptr) {
    return Status::InvalidArgument("index-based signature generation requires an R-tree");
  }
  if (tree != nullptr && (tree->dims() != data.dims() || tree->size() != data.size())) {
    return Status::InvalidArgument("R-tree does not index the given dataset");
  }

  SkyDiverReport report;

  // --- Skyline ------------------------------------------------------------
  {
    CpuTimer cpu;
    if (precomputed_skyline != nullptr) {
      report.skyline = *precomputed_skyline;
      std::sort(report.skyline.begin(), report.skyline.end());
    } else if (tree != nullptr) {
      const IoStats before = tree->io_stats();
      auto result = SkylineBBS(data, *tree);
      if (!result.ok()) return result.status();
      report.skyline = std::move(result.value().rows);
      const IoStats after = tree->io_stats();
      report.skyline_phase.io.page_reads = after.page_reads - before.page_reads;
      report.skyline_phase.io.page_faults = after.page_faults - before.page_faults;
    } else {
      report.skyline = SkylineSFS(data).rows;
      const uint64_t pages = SequentialScanPages(data.size(), data.dims(), 4096);
      report.skyline_phase.io.page_reads = pages;
      report.skyline_phase.io.page_faults = pages;
    }
    report.skyline_phase.cpu_seconds = cpu.ElapsedSeconds();
  }
  const size_t m = report.skyline.size();
  if (config.k > m) {
    return Status::InvalidArgument("k = " + std::to_string(config.k) +
                                   " exceeds skyline cardinality m = " + std::to_string(m));
  }

  // --- Phase 1: fingerprinting ---------------------------------------------
  const bool use_index =
      config.siggen == SigGenMode::kIndexBased ||
      (config.siggen == SigGenMode::kAuto && tree != nullptr);
  MinHashFamily family =
      MinHashFamily::Create(config.signature_size, data.size(), config.seed);
  SignatureMatrix signatures;
  std::vector<uint64_t> domination_scores;
  {
    CpuTimer cpu;
    Result<SigGenResult> result =
        use_index ? SigGenIB(data, report.skyline, family, *tree)
                  : SigGenIF(data, report.skyline, family);
    if (!result.ok()) return result.status();
    signatures = std::move(result.value().signatures);
    domination_scores = std::move(result.value().domination_scores);
    report.fingerprint_phase.io = result.value().io;
    report.fingerprint_phase.cpu_seconds = cpu.ElapsedSeconds();
  }
  report.signature_memory_bytes = signatures.MemoryBytes();

  // --- Phase 2: selection ---------------------------------------------------
  {
    CpuTimer cpu;
    // Exact domination scores |Γ(s_j)| (byproduct of fingerprinting) seed
    // the greedy and break ties, per Fig. 6.
    auto score = [&](size_t j) { return static_cast<double>(domination_scores[j]); };

    Result<DispersionResult> selection = Status::Internal("unset");
    LshIndex lsh_index;
    if (config.select == SelectMode::kMinHash) {
      auto distance = [&](size_t a, size_t b) {
        return signatures.EstimatedDistance(a, b);
      };
      selection = SelectDiverseSet(m, config.k, distance, score);
    } else {
      auto params = ChooseZones(config.signature_size, config.lsh_threshold,
                                config.lsh_buckets);
      if (!params.ok()) return params.status();
      auto built = LshIndex::Build(signatures, params.value(), config.seed ^ 0xdecaf);
      if (!built.ok()) return built.status();
      lsh_index = std::move(built).value();
      report.lsh_memory_bytes = lsh_index.MemoryBytes();
      auto distance = [&](size_t a, size_t b) { return lsh_index.Distance(a, b); };
      selection = SelectDiverseSet(m, config.k, distance, score);
    }
    if (!selection.ok()) return selection.status();
    report.selected = std::move(selection.value().selected);
    report.objective = selection.value().min_pairwise;
    report.selection_phase.cpu_seconds = cpu.ElapsedSeconds();
  }

  report.selected_rows.reserve(report.selected.size());
  for (size_t idx : report.selected) {
    report.selected_rows.push_back(report.skyline[idx]);
  }
  return report;
}

}  // namespace

Result<SkyDiverReport> SkyDiver::Run(const DataSet& data, const SkyDiverConfig& config,
                                     const RTree* tree,
                                     const std::vector<RowId>* precomputed_skyline) {
  return RunImpl(data, config, tree, precomputed_skyline);
}

Result<SkyDiverReport> SkyDiver::RunOnDisk(const DataSet& data,
                                           const SkyDiverConfig& config,
                                           const DiskRTree& tree,
                                           const std::vector<RowId>* precomputed_skyline) {
  return RunImpl(data, config, &tree, precomputed_skyline);
}

Result<SkyDiverReport> SkyDiver::RunWithPreference(const DataSet& data,
                                                   const Preference& pref,
                                                   const SkyDiverConfig& config) {
  auto canonical = data.Canonicalize(pref);
  if (!canonical.ok()) return canonical.status();
  return Run(canonical.value(), config);
}

}  // namespace skydiver
