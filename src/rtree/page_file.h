// Read-only paged file access with two physical backends.
//
// `PageFile` is the lowest layer of the disk path: it maps (page index,
// page size) to bytes and nothing else — no cache, no deserialization, no
// stats. Two backends share the interface:
//
//   kPread  positional pread(2) into a caller-supplied scratch buffer.
//           Every offset is computed in uint64_t and passed as off_t, so
//           files past 2 GiB address correctly (the predecessor funneled
//           offsets through fseek(long), which truncates at 2^31 on LP32
//           and silently relied on it everywhere else).
//   kMmap   one read-only shared mapping of the whole file; ViewPage
//           returns a zero-copy span into the map. The OS page cache IS
//           the warm path, so the frame cache above only pays
//           deserialization on a hit-miss.
//
// pread is positional and the mapping is immutable, so a PageFile is safe
// for concurrent readers with no locking at all; the PageCache above it
// serializes only its own frame table.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace skydiver {

/// Physical read strategy for a page file.
enum class DiskBackend {
  kPread,  ///< Positional pread(2) per page (default).
  kMmap,   ///< One read-only mapping; zero-copy page views.
};

const char* ToString(DiskBackend backend);

/// Parses "pread" / "mmap" (the --disk-backend CLI spelling).
[[nodiscard]] Result<DiskBackend> ParseDiskBackend(const std::string& name);

/// A read-only file addressed in fixed-size pages.
class PageFile {
 public:
  /// Opens `path` read-only with the given backend. kMmap maps the whole
  /// file eagerly and fails if the file is empty.
  [[nodiscard]] static Result<PageFile> Open(const std::string& path,
                                             DiskBackend backend = DiskBackend::kPread);

  PageFile(PageFile&& other) noexcept;
  PageFile& operator=(PageFile&& other) noexcept;
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;
  ~PageFile();

  /// Bytes of page `index` (byte range [index * page_size, +page_size)).
  /// kPread copies into `scratch` (resized as needed) and returns a span
  /// over it; kMmap returns a span straight into the mapping and leaves
  /// `scratch` untouched. Fails with IoError if the range falls outside
  /// the file — short reads are loud, never UB.
  [[nodiscard]] Result<std::span<const unsigned char>> ViewPage(
      uint64_t index, uint32_t page_size, std::vector<unsigned char>& scratch) const;

  uint64_t file_size() const { return file_size_; }
  DiskBackend backend() const { return backend_; }
  const std::string& path() const { return path_; }

 private:
  PageFile() = default;

  void Close();

  std::string path_;
  DiskBackend backend_ = DiskBackend::kPread;
  int fd_ = -1;
  uint64_t file_size_ = 0;
  const unsigned char* map_ = nullptr;  // kMmap only
};

}  // namespace skydiver
