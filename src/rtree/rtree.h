// Aggregate R*-tree over a simulated page file.
//
// This is the index substrate of the paper: an aggregate R*-tree (Papadias
// et al.'s aRtree) where every internal entry carries the COUNT of data
// points in its subtree. The SkyDiver experiments use it for: BBS skyline
// computation, the index-based signature generator (Fig. 4), and the
// Simple-Greedy baseline's range-count queries.
//
// Node layout follows a 4 KB page discipline: the node fanout is derived
// from the configured page size and the dimensionality exactly as a
// disk-resident tree's would be, and every node access goes through an LRU
// `BufferPool` so that page faults can be charged per the paper's 8 ms
// cost model. Construction supports both dynamic R*-style insertion
// (choose-subtree by minimum overlap enlargement, split by the R* axis /
// distribution criteria) and STR bulk loading.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "rtree/buffer_pool.h"
#include "rtree/mbr.h"

namespace skydiver {

/// Construction and paging parameters.
struct RTreeConfig {
  /// Simulated disk page size in bytes (paper: 4 KB).
  uint32_t page_size = 4096;
  /// Minimum node fill as a fraction of capacity (R* default 40%).
  double min_fill = 0.4;
  /// Buffer-pool size as a fraction of the tree's pages (paper: 20%).
  double cache_fraction = 0.2;
};

/// One slot of a node: a child subtree (internal) or a data point (leaf).
struct RTreeEntry {
  Mbr mbr;
  PageId child = kInvalidPageId;  ///< Child page (internal entries only).
  uint64_t count = 0;             ///< Aggregate: points below (1 for leaf entries).
  RowId row = kInvalidRowId;      ///< Data row (leaf entries only).
};

/// One node, occupying one simulated page.
struct RTreeNode {
  PageId id = kInvalidPageId;
  bool is_leaf = true;
  std::vector<RTreeEntry> entries;

  /// Tight bounding box of all entries.
  Mbr ComputeMbr(Dim dims) const;
  /// Sum of entry counts.
  uint64_t TotalCount() const;
};

/// Aggregate R*-tree.
class RTree {
 public:
  /// Creates an empty tree over `dims`-dimensional points.
  RTree(Dim dims, RTreeConfig config = {});

  /// Bulk-loads the whole dataset with Sort-Tile-Recursive packing, then
  /// finalizes the buffer pool. Replaces any existing content.
  [[nodiscard]] static Result<RTree> BulkLoad(const DataSet& data, RTreeConfig config = {});

  /// Builds by repeated dynamic insertion (exercises the R* split paths).
  [[nodiscard]] static Result<RTree> InsertLoad(const DataSet& data, RTreeConfig config = {});

  /// Inserts one point. O(log n) amortized.
  void Insert(std::span<const Coord> point, RowId row);

  /// Sizes the buffer pool to `cache_fraction` of the current page count
  /// and clears its contents. Call after construction, before measuring.
  void FinalizeCache();

  Dim dims() const { return dims_; }
  uint64_t size() const { return size_; }
  size_t PageCount() const { return store_.size(); }
  PageId root() const { return root_; }
  uint32_t height() const { return height_; }
  const RTreeConfig& config() const { return config_; }

  /// Maximum entries per leaf / internal page for this dimensionality.
  size_t LeafCapacity() const { return leaf_capacity_; }
  size_t InternalCapacity() const { return internal_capacity_; }

  /// Reads a node through the buffer pool (records a logical page read and
  /// possibly a fault).
  const RTreeNode& ReadNode(PageId id) const;

  /// Reads a node WITHOUT touching the buffer pool. The pool is internally
  /// locked, so ReadNode is also safe for concurrent readers — PeekNode
  /// additionally skips the pool's lock and its I/O accounting; used by the
  /// parallel algorithms, where per-access lock traffic would serialize the
  /// sweep.
  const RTreeNode& PeekNode(PageId id) const { return store_[id]; }

  /// Number of points inside the closed box [lo, hi] — aggregate-aware:
  /// fully contained subtrees contribute their count without descending.
  uint64_t RangeCount(std::span<const Coord> lo, std::span<const Coord> hi) const;

  /// Row ids of all points inside the closed box [lo, hi].
  std::vector<RowId> RangeSearch(std::span<const Coord> lo,
                                 std::span<const Coord> hi) const;

  /// A nearest-neighbor result.
  struct Neighbor {
    RowId row = kInvalidRowId;
    double distance = 0.0;  ///< Euclidean distance to the query point.
  };

  /// The k nearest neighbors of `point` (Euclidean), nearest first — the
  /// classic best-first search over MBR mindists (Hjaltason & Samet).
  /// Returns fewer than k when the tree is smaller than k.
  std::vector<Neighbor> NearestNeighbors(std::span<const Coord> point, size_t k) const;

  /// Number of points strictly dominated by `p` (weak-region count minus
  /// duplicates of p), computed with aggregate range counting — the
  /// primitive behind the Simple-Greedy baseline. |Γ(p)|.
  uint64_t DominatedCount(std::span<const Coord> p) const;

  /// |Γ(p) ∩ Γ(q)| for two distinct skyline points: the count of points
  /// weakly dominated by the component-wise maximum corner of p and q.
  uint64_t CommonDominatedCount(std::span<const Coord> p,
                                std::span<const Coord> q) const;

  /// I/O statistics of the underlying buffer pool (a consistent copy; the
  /// pool is internally locked).
  IoStats io_stats() const { return pool_.stats(); }
  void ResetIoStats() const { pool_.ResetStats(); }
  BufferPool& pool() const { return pool_; }

  /// Structural invariant check (tests): MBR tightness, aggregate-count
  /// consistency, fill factors, uniform leaf depth. Returns a non-OK status
  /// describing the first violation found.
  [[nodiscard]] Status CheckInvariants() const;

  /// Persists the whole tree (config, nodes, aggregates) to a checksummed
  /// binary file, so an index built once can be reloaded without another
  /// bulk load.
  [[nodiscard]] Status SaveToFile(const std::string& path) const;

  /// Loads a tree written by SaveToFile; verifies magic and checksum, and
  /// finalizes a fresh buffer pool.
  [[nodiscard]] static Result<RTree> LoadFromFile(const std::string& path);

 private:
  RTreeNode& Node(PageId id) { return store_[id]; }
  const RTreeNode& NodeNoIo(PageId id) const { return store_[id]; }
  PageId AllocateNode(bool is_leaf);

  // Returns the index of the child entry to descend for `mbr`.
  size_t ChooseSubtree(const RTreeNode& node, const Mbr& mbr) const;
  // Splits an over-full node; returns the new sibling's page id.
  PageId SplitNode(PageId node_id);
  // Recursive insert; returns sibling page id if `node_id` split, else
  // kInvalidPageId. Updates entry MBRs/counts along the path.
  PageId InsertRec(PageId node_id, const RTreeEntry& entry);

  void BulkLoadInternal(const DataSet& data);

  Dim dims_;
  RTreeConfig config_;
  size_t leaf_capacity_;
  size_t internal_capacity_;
  std::deque<RTreeNode> store_;  // the simulated page file
  PageId root_ = kInvalidPageId;
  uint64_t size_ = 0;
  uint32_t height_ = 0;
  // skylint:allow(guarded-mutex): internally synchronized — the pool owns
  // a SharedMutex capability guarding all of its state (buffer_pool.h).
  mutable BufferPool pool_;
};

}  // namespace skydiver
