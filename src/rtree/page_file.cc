#include "rtree/page_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace skydiver {

const char* ToString(DiskBackend backend) {
  switch (backend) {
    case DiskBackend::kPread: return "pread";
    case DiskBackend::kMmap: return "mmap";
  }
  return "?";
}

Result<DiskBackend> ParseDiskBackend(const std::string& name) {
  if (name == "pread") return DiskBackend::kPread;
  if (name == "mmap") return DiskBackend::kMmap;
  return Status::InvalidArgument("unknown disk backend '" + name +
                                 "' (expected pread|mmap)");
}

Result<PageFile> PageFile::Open(const std::string& path, DiskBackend backend) {
  PageFile file;
  file.path_ = path;
  file.backend_ = backend;
  file.fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (file.fd_ < 0) {
    return Status::IoError("cannot open '" + path + "': " + std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(file.fd_, &st) != 0) {
    return Status::IoError("fstat('" + path + "'): " + std::strerror(errno));
  }
  file.file_size_ = static_cast<uint64_t>(st.st_size);
  if (backend == DiskBackend::kMmap) {
    if (file.file_size_ == 0) {
      return Status::IoError("cannot mmap empty file '" + path + "'");
    }
    void* map = ::mmap(nullptr, file.file_size_, PROT_READ, MAP_SHARED, file.fd_, 0);
    if (map == MAP_FAILED) {
      return Status::IoError("mmap('" + path + "'): " + std::strerror(errno));
    }
    file.map_ = static_cast<const unsigned char*>(map);
  }
  return file;
}

PageFile::PageFile(PageFile&& other) noexcept
    : path_(std::move(other.path_)),
      backend_(other.backend_),
      fd_(std::exchange(other.fd_, -1)),
      file_size_(std::exchange(other.file_size_, 0)),
      map_(std::exchange(other.map_, nullptr)) {}

PageFile& PageFile::operator=(PageFile&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    backend_ = other.backend_;
    fd_ = std::exchange(other.fd_, -1);
    file_size_ = std::exchange(other.file_size_, 0);
    map_ = std::exchange(other.map_, nullptr);
  }
  return *this;
}

PageFile::~PageFile() { Close(); }

void PageFile::Close() {
  if (map_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(map_), file_size_);
    map_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::span<const unsigned char>> PageFile::ViewPage(
    uint64_t index, uint32_t page_size, std::vector<unsigned char>& scratch) const {
  // All offset math in uint64_t; the off_t cast below is the only narrowing
  // and off_t is 64-bit on every supported target (static_assert'd).
  static_assert(sizeof(off_t) == 8, "disk path requires 64-bit file offsets");
  const uint64_t offset = index * static_cast<uint64_t>(page_size);
  if (offset / page_size != index || offset + page_size > file_size_) {
    return Status::IoError("page " + std::to_string(index) + " (offset " +
                           std::to_string(offset) + ", size " +
                           std::to_string(page_size) + ") lies outside '" + path_ +
                           "' (" + std::to_string(file_size_) + " bytes)");
  }
  if (backend_ == DiskBackend::kMmap) {
    return std::span<const unsigned char>(map_ + offset, page_size);
  }
  scratch.resize(page_size);
  size_t done = 0;
  while (done < page_size) {
    const ssize_t got = ::pread(fd_, scratch.data() + done, page_size - done,
                                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pread('" + path_ + "', page " + std::to_string(index) +
                             "): " + std::strerror(errno));
    }
    if (got == 0) {
      return Status::IoError("short read of page " + std::to_string(index) +
                             " from '" + path_ + "' (file truncated?)");
    }
    done += static_cast<size_t>(got);
  }
  return std::span<const unsigned char>(scratch.data(), page_size);
}

}  // namespace skydiver
