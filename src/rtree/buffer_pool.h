// LRU buffer pool over simulated pages.
//
// The paper's experimental setup dedicates a cache of 20% of the R*-tree's
// blocks and charges 8 ms per page fault. This pool reproduces that: every
// node access is a logical read; accesses that miss the LRU working set are
// physical faults. The pages themselves live in memory (see DESIGN.md §4 —
// the substitution preserves the I/O counts, which drive the timing model).
//
// Thread-safety: the pool is internally synchronized behind a SharedMutex
// capability. Today every operation that touches the LRU chain takes the
// writer side (even a logical read splices the recency list), so the
// reader/writer split only pays off for the stats accessors — but the
// capability is declared now so the ROADMAP's per-page reader-writer access
// (snapshots building while queries run) migrates onto an already-annotated
// lock instead of retrofitting one.

#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/io_stats.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace skydiver {

/// Page identifier within a simulated page file.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = ~PageId{0};

/// LRU page cache that records hit/miss statistics. Internally locked; see
/// the file comment for the capability story.
class BufferPool {
 public:
  /// Pool with room for `capacity_pages` pages (minimum 1).
  explicit BufferPool(size_t capacity_pages = 1) { SetCapacity(capacity_pages); }

  /// Moves transfer the cached pages and counters into a pool with a fresh
  /// lock. They are NOT thread-safe: moving a pool while any thread uses
  /// either side is a caller bug (the contract every std container has),
  /// which is why the analysis is opted out here and nowhere else.
  BufferPool(BufferPool&& other) noexcept SKYDIVER_NO_THREAD_SAFETY_ANALYSIS
      : capacity_(other.capacity_),
        lru_(std::move(other.lru_)),
        index_(std::move(other.index_)),
        stats_(other.stats_) {}
  BufferPool& operator=(BufferPool&& other) noexcept
      SKYDIVER_NO_THREAD_SAFETY_ANALYSIS {
    capacity_ = other.capacity_;
    lru_ = std::move(other.lru_);
    index_ = std::move(other.index_);
    stats_ = other.stats_;
    return *this;
  }

  /// Resizes the pool; keeps the most recently used pages that still fit.
  void SetCapacity(size_t capacity_pages);

  size_t capacity() const;

  /// Registers an access to `page`. Returns true on a hit; on a miss the
  /// page is (logically) fetched, a fault is recorded, and the LRU victim
  /// is evicted.
  bool Access(PageId page);

  /// Registers a page write (index construction); does not populate the pool.
  void RecordWrite();

  /// Drops all cached pages (does not reset statistics).
  void Clear();

  /// A consistent copy of the I/O counters (by value: a reference into
  /// guarded state would escape the critical section).
  IoStats stats() const;
  void ResetStats();

  size_t cached_pages() const;

 private:
  // The pool capability: guards the LRU chain, its index, and the counters.
  mutable SharedMutex mutex_;
  size_t capacity_ SKYDIVER_GUARDED_BY(mutex_) = 1;
  std::list<PageId> lru_ SKYDIVER_GUARDED_BY(mutex_);  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> index_
      SKYDIVER_GUARDED_BY(mutex_);
  IoStats stats_ SKYDIVER_GUARDED_BY(mutex_);
};

}  // namespace skydiver
