// LRU buffer pool over simulated pages.
//
// The paper's experimental setup dedicates a cache of 20% of the R*-tree's
// blocks and charges 8 ms per page fault. This pool reproduces that: every
// node access is a logical read; accesses that miss the LRU working set are
// physical faults. The pages themselves live in memory (see DESIGN.md §4 —
// the substitution preserves the I/O counts, which drive the timing model).

#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/io_stats.h"

namespace skydiver {

/// Page identifier within a simulated page file.
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = ~PageId{0};

/// LRU page cache that records hit/miss statistics.
class BufferPool {
 public:
  /// Pool with room for `capacity_pages` pages (minimum 1).
  explicit BufferPool(size_t capacity_pages = 1) { SetCapacity(capacity_pages); }

  /// Resizes the pool; keeps the most recently used pages that still fit.
  void SetCapacity(size_t capacity_pages);

  size_t capacity() const { return capacity_; }

  /// Registers an access to `page`. Returns true on a hit; on a miss the
  /// page is (logically) fetched, a fault is recorded, and the LRU victim
  /// is evicted.
  bool Access(PageId page);

  /// Registers a page write (index construction); does not populate the pool.
  void RecordWrite() { ++stats_.page_writes; }

  /// Drops all cached pages (does not reset statistics).
  void Clear();

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  size_t cached_pages() const { return lru_.size(); }

 private:
  size_t capacity_ = 1;
  std::list<PageId> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
  IoStats stats_;
};

}  // namespace skydiver
