// File-backed aggregate R*-tree: real 4 KB pages on a real file.
//
// `RTree` simulates the disk (nodes in memory, faults charged by the
// buffer pool). `DiskRTree` is the honest version: an `RTree` is
// serialized into a page file (one fixed-size page per node, binary node
// layout matching the capacity math), and queries read pages back through
// an LRU frame cache — a miss performs an actual pread + deserialization.
// It exposes the same access surface as RTree (ReadNode / root / dims /
// size), so every templated traversal in rtree/traversal.h and the
// index-based algorithms (BBS, SigGen-IB) run on it unchanged.
//
// The page file is read-only once written; build with RTree, persist with
// DiskRTree::Write, reopen with DiskRTree::Open.

#pragma once

#include <cstdint>
#include <cstdio>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/io_stats.h"
#include "common/status.h"
#include "rtree/rtree.h"

namespace skydiver {

/// Read-only file-backed aggregate R*-tree.
class DiskRTree {
 public:
  /// Serializes `tree` into a page file at `path`: a 4 KB header page
  /// (magic, geometry, root, checksum of the header fields) followed by
  /// one `page_size` page per node.
  [[nodiscard]] static Status Write(const RTree& tree, const std::string& path);

  /// Opens a page file written by Write. `cache_fraction` sizes the frame
  /// cache relative to the file's node pages (paper default 20%).
  [[nodiscard]] static Result<DiskRTree> Open(const std::string& path, double cache_fraction = 0.2);

  DiskRTree(DiskRTree&&) = default;
  DiskRTree& operator=(DiskRTree&&) = default;

  Dim dims() const { return dims_; }
  uint64_t size() const { return size_; }
  PageId root() const { return root_; }
  uint32_t height() const { return height_; }
  size_t PageCount() const { return node_count_; }
  uint32_t page_size() const { return page_size_; }

  /// Reads a node. Cache hit: no file I/O. Miss: pread of the page +
  /// deserialization, recorded as a physical fault.
  const RTreeNode& ReadNode(PageId id) const;

  /// Physical/logical page access counters (mirrors RTree::io_stats()).
  const IoStats& io_stats() const { return stats_; }
  void ResetIoStats() const { stats_.Reset(); }

  /// Drops all cached frames (cold-cache measurements).
  void DropCache() const;

  // Queries — same surface as RTree, running on the shared traversals.
  uint64_t RangeCount(std::span<const Coord> lo, std::span<const Coord> hi) const;
  std::vector<RowId> RangeSearch(std::span<const Coord> lo,
                                 std::span<const Coord> hi) const;
  uint64_t DominatedCount(std::span<const Coord> p) const;
  uint64_t CommonDominatedCount(std::span<const Coord> p,
                                std::span<const Coord> q) const;

 private:
  DiskRTree() = default;

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  Dim dims_ = 0;
  uint32_t page_size_ = 4096;
  uint64_t size_ = 0;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;
  size_t node_count_ = 0;
  size_t cache_capacity_ = 1;

  std::unique_ptr<std::FILE, FileCloser> file_;
  // LRU frame cache of deserialized nodes. Deliberately unguarded: a
  // DiskRTree is a per-query, single-threaded reader (ReadNode hands out
  // `const RTreeNode&` references into frames_ that would escape any
  // critical section); per-page rwlocks are the ROADMAP's shared-access
  // step.
  // skylint:allow(guarded-mutex): single-threaded frame cache (see above)
  mutable std::list<PageId> lru_;
  // skylint:allow(guarded-mutex): single-threaded frame cache (see above)
  mutable std::unordered_map<PageId,
                             std::pair<RTreeNode, std::list<PageId>::iterator>>
      frames_;
  // skylint:allow(guarded-mutex): single-threaded frame cache (see above)
  mutable IoStats stats_;
};

}  // namespace skydiver
