// File-backed aggregate R*-tree: real pages on a real file.
//
// `RTree` simulates the disk (nodes in memory, faults charged by the
// buffer pool). `DiskRTree` is the honest version: an `RTree` is
// serialized into a page file (one fixed-size page per node, binary node
// layout matching the capacity math), and queries read pages back through
// a pinned, internally-synchronized `PageCache` (rtree/page_cache.h) over
// a `PageFile` (rtree/page_file.h) with a pread or mmap physical backend.
//
// ReadNode returns `Result<PageRef>` — a pinned handle whose node cannot
// be evicted while the handle lives, safe under any cache capacity and
// from any number of threads; read failures (truncated file, corrupt
// page) surface as Status instead of aborting. With a prefetch pool
// attached (DiskTreeOptions::prefetch_pool), `PrefetchChildren` warms all
// child pages of a popped inner node asynchronously via morsel-style
// claims — BBS's heap-ordered pops then hit resident frames. Prefetch
// changes timing only, never results.
//
// The page file is read-only once written; build with RTree, persist with
// DiskRTree::Write, reopen with DiskRTree::Open.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/io_stats.h"
#include "common/status.h"
#include "rtree/page_cache.h"
#include "rtree/page_file.h"
#include "rtree/rtree.h"

namespace skydiver {

class ThreadPool;

/// Open-time knobs for a DiskRTree.
struct DiskTreeOptions {
  /// Frame-cache size relative to the file's node pages (paper: 20%).
  double cache_fraction = 0.2;
  /// Physical read strategy (rtree/page_file.h).
  DiskBackend backend = DiskBackend::kPread;
  /// Non-null enables async child prefetch onto this pool (the shared
  /// Runtime pool in planned executions). The pool must outlive the tree
  /// and every query run against it.
  ThreadPool* prefetch_pool = nullptr;
};

namespace detail {

/// Serializes `node` into `*page` (resized/zeroed to `page_size`).
/// Checks remaining capacity BEFORE writing each entry, so an oversized
/// node is a clean Internal error — never an out-of-bounds write.
[[nodiscard]] Status SerializeNode(const RTreeNode& node, Dim dims,
                                   uint32_t page_size,
                                   std::vector<unsigned char>* page);

/// Deserializes one node page. Validates the leaf flag and that the
/// declared entry count fits the page before reading a byte of payload, so
/// a corrupted page fails loudly instead of reading out of bounds.
[[nodiscard]] Status DeserializeNode(std::span<const unsigned char> page,
                                     Dim dims, PageId id, RTreeNode* out);

}  // namespace detail

/// Read-only file-backed aggregate R*-tree. Internally synchronized: any
/// number of threads may run ReadNode / queries concurrently against one
/// instance (the frame cache pins what callers hold).
class DiskRTree {
 public:
  /// Serializes `tree` into a page file at `path`: a header page (magic,
  /// geometry, root, checksum of the header fields) followed by one
  /// `page_size` page per node. Reads nodes via PeekNode, so the tree's
  /// measured I/O stats are untouched (serialization is not a query).
  [[nodiscard]] static Status Write(const RTree& tree, const std::string& path);

  /// Opens a page file written by Write, validating header geometry
  /// against the actual file size before trusting any of it.
  [[nodiscard]] static Result<DiskRTree> Open(const std::string& path,
                                              const DiskTreeOptions& options);

  /// Legacy convenience: pread backend, no prefetch. `cache_fraction`
  /// sizes the frame cache relative to the file's node pages.
  [[nodiscard]] static Result<DiskRTree> Open(const std::string& path,
                                              double cache_fraction = 0.2);

  DiskRTree(DiskRTree&&) = default;
  DiskRTree& operator=(DiskRTree&&) = default;

  Dim dims() const { return dims_; }
  uint64_t size() const { return size_; }
  PageId root() const { return root_; }
  uint32_t height() const { return height_; }
  size_t PageCount() const { return node_count_; }
  uint32_t page_size() const { return page_size_; }
  size_t cache_capacity() const;
  DiskBackend backend() const;
  bool prefetch_enabled() const { return prefetch_pool_ != nullptr; }

  /// Reads a node through the pinned frame cache. Cache hit: no file I/O.
  /// Miss: physical page read + deserialization, recorded as a fault.
  /// The returned handle keeps the node resident until destroyed; bind it
  /// to a named local and borrow the node from it (pin discipline —
  /// rtree/page_cache.h).
  [[nodiscard]] Result<PageRef> ReadNode(PageId id) const;

  /// Issues async loads for every child page of an inner node onto the
  /// prefetch pool (no-op without one, or for leaves). Fire-and-forget:
  /// the tasks co-own the underlying store, so they stay valid even if
  /// this tree is destroyed first. Results are unaffected — only which
  /// access pays the physical read changes.
  void PrefetchChildren(const RTreeNode& node) const;

  /// Physical/logical page access counters (mirrors RTree::io_stats()).
  /// A consistent copy — the cache is internally locked.
  IoStats io_stats() const;
  void ResetIoStats() const;

  /// Drops all unpinned cached frames (cold-cache measurements).
  void DropCache() const;

  // Queries — same surface as RTree, running on the shared traversals;
  // fallible because every page read is.
  [[nodiscard]] Result<uint64_t> RangeCount(std::span<const Coord> lo,
                                            std::span<const Coord> hi) const;
  [[nodiscard]] Result<std::vector<RowId>> RangeSearch(
      std::span<const Coord> lo, std::span<const Coord> hi) const;
  [[nodiscard]] Result<uint64_t> DominatedCount(std::span<const Coord> p) const;
  [[nodiscard]] Result<uint64_t> CommonDominatedCount(
      std::span<const Coord> p, std::span<const Coord> q) const;

 private:
  DiskRTree() = default;

  // The disk-resident state: page file, geometry, and the frame cache.
  // Held by shared_ptr so in-flight prefetch tasks co-own it — a task that
  // outlives the tree still has a live file and cache to load into.
  struct Store;

  Dim dims_ = 0;
  uint32_t page_size_ = 4096;
  uint64_t size_ = 0;
  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;
  size_t node_count_ = 0;

  std::shared_ptr<Store> store_;
  ThreadPool* prefetch_pool_ = nullptr;
};

}  // namespace skydiver
