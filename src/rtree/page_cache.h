// Pinned, thread-safe LRU page cache for the disk-backed tree.
//
// This replaces DiskRTree's ad-hoc mutable frame map, whose `const
// RTreeNode&` returns pointed into evictable storage: one more ReadNode
// could evict the frame under the caller — a use-after-free the old code
// "prevented" by documenting the tree as single-threaded. The cache fixes
// both problems at once:
//
//   Pinning.  Get() returns a `PageRef`, an RAII pin on the frame. A
//   pinned frame is never evicted (eviction walks the LRU tail and skips
//   frames with live pins), so the reference a caller holds stays valid
//   until the ref is destroyed — under ASan, across threads, at any cache
//   capacity. When every frame is pinned the cache runs over capacity
//   transiently rather than invalidating a caller.
//
//   Synchronization.  All frame-table state lives behind an annotated
//   SharedMutex capability (PR 8 discipline; the BufferPool pattern).
//   Lookups take the writer side (even a hit splices the LRU chain);
//   PAGE DATA is read with no lock at all — a frame's node is immutable
//   once loaded, and the pin keeps it alive — so N queries deserialize and
//   scan pages truly concurrently, and disk-backed snapshots can be built
//   while queries run (the ROADMAP serving item).
//
//   In-flight deduplication.  A miss installs a "loading" frame and
//   performs the physical read OUTSIDE the lock; concurrent readers of the
//   same page park on a SharedCondVar instead of issuing a duplicate read.
//   Loading frames are invisible to eviction and Clear().
//
//   Prefetch.  Prefetch(id) is the async half: it installs and loads a
//   frame exactly like a miss but counts `page_prefetches` instead of a
//   demand fault, swallows I/O errors (the demand read will surface them),
//   and pins nothing. Prefetch only changes WHICH access pays the
//   physical read — never the bytes — so results are bit-identical with
//   prefetch on or off (asserted by FNV parity tests).
//
// The pin discipline at call sites is linted (skylint `pin-discipline`):
// never bind `const RTreeNode&` directly to a ReadNode() call — name the
// ref (or the Result holding it) first, then borrow the node from it:
//
//   decltype(auto) ref = tree.ReadNode(id);
//   if (!RefOk(ref)) return RefStatus(ref);
//   const RTreeNode& node = NodeOf(ref);   // borrows from `ref`
//
// The RefOk/RefStatus/NodeOf overloads below make that pattern generic
// over both tree backends (RTree's infallible `const RTreeNode&` and
// DiskRTree's `Result<PageRef>`), which is what keeps the templated
// traversals single-source.

#pragma once

#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/io_stats.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "rtree/buffer_pool.h"
#include "rtree/rtree.h"

namespace skydiver {

class PageCache;

namespace internal {

/// One cache frame. Namespace-scope (not nested) only so PageRef can
/// dereference the node without seeing PageCache's internals. The node is
/// immutable once `loading` drops; the bookkeeping fields are guarded by
/// the owning cache's mutex.
struct PageFrame {
  RTreeNode node;
  size_t pins = 0;
  bool loading = true;
  std::list<PageId>::iterator lru_pos{};
};

}  // namespace internal

/// RAII pin on a cache frame: while a PageRef lives, its node cannot be
/// evicted. Movable, not copyable; the empty state (default-constructed or
/// moved-from) holds no pin. node() needs no lock — see the file comment.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept
      : cache_(std::exchange(other.cache_, nullptr)),
        frame_(std::exchange(other.frame_, nullptr)) {}
  PageRef& operator=(PageRef&& other) noexcept {
    if (this != &other) {
      Reset();
      cache_ = std::exchange(other.cache_, nullptr);
      frame_ = std::exchange(other.frame_, nullptr);
    }
    return *this;
  }
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef() { Reset(); }

  const RTreeNode& node() const { return frame_->node; }
  const RTreeNode& operator*() const { return frame_->node; }
  const RTreeNode* operator->() const { return &frame_->node; }
  explicit operator bool() const { return frame_ != nullptr; }

  /// Drops the pin (no-op when empty).
  void Reset();

 private:
  friend class PageCache;
  PageRef(PageCache* cache, internal::PageFrame* frame)
      : cache_(cache), frame_(frame) {}

  PageCache* cache_ = nullptr;
  internal::PageFrame* frame_ = nullptr;
};

/// Internally-synchronized pinned LRU cache of deserialized nodes.
/// Immovable: outstanding PageRefs point into it. Must outlive every ref
/// it handed out (DiskRTree guarantees this by holding the cache in a
/// shared store that prefetch tasks co-own).
class PageCache {
 public:
  /// Loads page `id` into `*node`. Called OUTSIDE the cache lock; must be
  /// safe to run concurrently for distinct pages (PageFile is).
  using Loader = std::function<Status(PageId, RTreeNode*)>;

  PageCache(size_t capacity_pages, Loader loader);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Reads a page: a resident frame is a hit (LRU touch + pin), otherwise
  /// the page is loaded (one physical read even under concurrent misses —
  /// racers wait). Counts a logical read always and a fault on a demand
  /// miss. Fails only if the loader fails.
  [[nodiscard]] Result<PageRef> Get(PageId id);

  /// Asynchronously-warmable load: makes `id` resident without pinning.
  /// No-op if resident or in flight. Counts `page_prefetches` (never reads
  /// or faults); load errors are swallowed — the demand Get() reports them.
  void Prefetch(PageId id);

  /// Drops every unpinned, fully-loaded frame (cold-cache measurements).
  /// Pinned and in-flight frames survive; statistics are untouched.
  void Clear();

  size_t capacity() const { return capacity_; }

  /// Consistent copy of the I/O counters (by value, house style).
  IoStats stats() const;
  void ResetStats();

  size_t cached_pages() const;
  size_t pinned_pages() const;
  bool Contains(PageId id) const;

 private:
  friend class PageRef;

  void Unpin(internal::PageFrame* frame);

  /// Evicts LRU-tail frames until the table fits `capacity_`, skipping
  /// pinned frames (loading frames are not on the LRU chain yet). May
  /// leave the table over capacity when everything is pinned/in flight.
  void EvictOverCapacity() SKYDIVER_REQUIRES(mutex_);

  const size_t capacity_;
  const Loader loader_;

  // The cache capability: guards the frame table, the LRU chain, the
  // counters, and every frame's bookkeeping fields. Node payloads are
  // immutable once loaded and are read outside it (see file comment).
  mutable SharedMutex mutex_;
  SharedCondVar loaded_;  ///< signaled when any in-flight load finishes
  std::list<PageId> lru_ SKYDIVER_GUARDED_BY(mutex_);  // front = most recent
  std::unordered_map<PageId, std::unique_ptr<internal::PageFrame>> frames_
      SKYDIVER_GUARDED_BY(mutex_);
  IoStats stats_ SKYDIVER_GUARDED_BY(mutex_);
};

inline void PageRef::Reset() {
  if (cache_ != nullptr) cache_->Unpin(frame_);
  cache_ = nullptr;
  frame_ = nullptr;
}

// ---------------------------------------------------------------------------
// Generic node access over both ReadNode return shapes (see file comment).
// ---------------------------------------------------------------------------

inline bool RefOk(const RTreeNode&) { return true; }
inline Status RefStatus(const RTreeNode&) { return Status::OK(); }
inline const RTreeNode& NodeOf(const RTreeNode& node) { return node; }

inline bool RefOk(const Result<PageRef>& ref) { return ref.ok(); }
inline Status RefStatus(const Result<PageRef>& ref) { return ref.status(); }
inline const RTreeNode& NodeOf(const Result<PageRef>& ref) {
  return ref.value().node();
}

}  // namespace skydiver
