#include "rtree/page_cache.h"

#include "common/check.h"

namespace skydiver {

PageCache::PageCache(size_t capacity_pages, Loader loader)
    : capacity_(capacity_pages == 0 ? 1 : capacity_pages),
      loader_(std::move(loader)) {
  SKYDIVER_CHECK(loader_ != nullptr, "PageCache needs a loader");
}

Result<PageRef> PageCache::Get(PageId id) {
  internal::PageFrame* frame = nullptr;
  {
    WriterMutexLock lock(mutex_);
    ++stats_.page_reads;
    while (true) {
      auto it = frames_.find(id);
      if (it == frames_.end()) break;
      internal::PageFrame* resident = it->second.get();
      if (resident->loading) {
        // Another thread is reading this page; park instead of issuing a
        // duplicate read. Re-find after the wakeup — a failed load erases
        // the frame, in which case we fall through to retry the read.
        loaded_.Wait(mutex_);
        continue;
      }
      lru_.splice(lru_.begin(), lru_, resident->lru_pos);
      ++resident->pins;
      return PageRef(this, resident);
    }
    // Demand miss: install a loading frame, pinned by us so neither
    // eviction nor Clear() can touch it while the read is in flight.
    ++stats_.page_faults;
    auto inserted = frames_.emplace(id, std::make_unique<internal::PageFrame>());
    frame = inserted.first->second.get();
    frame->pins = 1;
    frame->loading = true;
    EvictOverCapacity();
  }

  // The physical read runs outside the lock: concurrent Gets of other
  // pages (and their loads) proceed in parallel.
  RTreeNode node;
  const Status load = loader_(id, &node);

  WriterMutexLock lock(mutex_);
  if (!load.ok()) {
    frames_.erase(id);
    loaded_.NotifyAll();
    return load;
  }
  frame->node = std::move(node);
  frame->loading = false;
  lru_.push_front(id);
  frame->lru_pos = lru_.begin();
  loaded_.NotifyAll();
  return PageRef(this, frame);
}

void PageCache::Prefetch(PageId id) {
  internal::PageFrame* frame = nullptr;
  {
    WriterMutexLock lock(mutex_);
    if (frames_.count(id) != 0) return;  // resident or already in flight
    ++stats_.page_prefetches;
    auto inserted = frames_.emplace(id, std::make_unique<internal::PageFrame>());
    frame = inserted.first->second.get();
    frame->pins = 0;
    frame->loading = true;
    EvictOverCapacity();
  }

  RTreeNode node;
  const Status load = loader_(id, &node);

  WriterMutexLock lock(mutex_);
  if (!load.ok()) {
    // Swallowed by design: a speculative read owes nobody an answer. The
    // demand Get() of this page will retry and surface the error.
    frames_.erase(id);
    loaded_.NotifyAll();
    return;
  }
  frame->node = std::move(node);
  frame->loading = false;
  lru_.push_front(id);
  frame->lru_pos = lru_.begin();
  loaded_.NotifyAll();
}

void PageCache::Unpin(internal::PageFrame* frame) {
  WriterMutexLock lock(mutex_);
  SKYDIVER_DCHECK(frame->pins > 0, "unpin of an unpinned frame");
  --frame->pins;
}

void PageCache::EvictOverCapacity() {
  auto pos = lru_.end();
  while (frames_.size() > capacity_ && pos != lru_.begin()) {
    --pos;
    auto it = frames_.find(*pos);
    SKYDIVER_DCHECK(it != frames_.end());
    if (it->second->pins != 0) continue;  // pinned: skip, caller holds a ref
    pos = lru_.erase(pos);
    frames_.erase(it);
  }
}

void PageCache::Clear() {
  WriterMutexLock lock(mutex_);
  for (auto it = frames_.begin(); it != frames_.end();) {
    internal::PageFrame* frame = it->second.get();
    if (frame->pins != 0 || frame->loading) {
      ++it;
      continue;
    }
    lru_.erase(frame->lru_pos);
    it = frames_.erase(it);
  }
}

IoStats PageCache::stats() const {
  ReaderMutexLock lock(mutex_);
  return stats_;
}

void PageCache::ResetStats() {
  WriterMutexLock lock(mutex_);
  stats_.Reset();
}

size_t PageCache::cached_pages() const {
  ReaderMutexLock lock(mutex_);
  return frames_.size();
}

size_t PageCache::pinned_pages() const {
  ReaderMutexLock lock(mutex_);
  size_t pinned = 0;
  for (const auto& [id, frame] : frames_) {
    if (frame->pins != 0) ++pinned;
  }
  return pinned;
}

bool PageCache::Contains(PageId id) const {
  ReaderMutexLock lock(mutex_);
  return frames_.count(id) != 0;
}

}  // namespace skydiver
