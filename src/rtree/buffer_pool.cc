#include "rtree/buffer_pool.h"

namespace skydiver {

void BufferPool::SetCapacity(size_t capacity_pages) {
  WriterMutexLock lock(mutex_);
  capacity_ = capacity_pages == 0 ? 1 : capacity_pages;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
}

size_t BufferPool::capacity() const {
  ReaderMutexLock lock(mutex_);
  return capacity_;
}

bool BufferPool::Access(PageId page) {
  // Writer side even for a hit: touching a page splices the LRU chain.
  WriterMutexLock lock(mutex_);
  ++stats_.page_reads;
  auto it = index_.find(page);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return true;
  }
  ++stats_.page_faults;
  lru_.push_front(page);
  index_[page] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  return false;
}

void BufferPool::RecordWrite() {
  WriterMutexLock lock(mutex_);
  ++stats_.page_writes;
}

void BufferPool::Clear() {
  WriterMutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
}

IoStats BufferPool::stats() const {
  ReaderMutexLock lock(mutex_);
  return stats_;
}

void BufferPool::ResetStats() {
  WriterMutexLock lock(mutex_);
  stats_.Reset();
}

size_t BufferPool::cached_pages() const {
  ReaderMutexLock lock(mutex_);
  return lru_.size();
}

}  // namespace skydiver
