#include "rtree/buffer_pool.h"

namespace skydiver {

void BufferPool::SetCapacity(size_t capacity_pages) {
  capacity_ = capacity_pages == 0 ? 1 : capacity_pages;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
}

bool BufferPool::Access(PageId page) {
  ++stats_.page_reads;
  auto it = index_.find(page);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return true;
  }
  ++stats_.page_faults;
  lru_.push_front(page);
  index_[page] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  return false;
}

void BufferPool::Clear() {
  lru_.clear();
  index_.clear();
}

}  // namespace skydiver
