// Minimum bounding rectangles and their dominance relations.
//
// The index-based signature generator (paper Fig. 4) and BBS both prune
// R-tree subtrees through MBR-level dominance: a skyline point s *fully*
// dominates an MBR e when s dominates e's lower-left corner (hence every
// point inside e), and *partially* dominates e when s dominates e's
// upper-right corner but not its lower-left (some points inside may be
// dominated). If s does not dominate the upper-right corner, no point of e
// is dominated by s.

#pragma once

#include <limits>
#include <span>
#include <vector>

#include "common/check.h"
#include "core/dominance.h"
#include "core/types.h"

namespace skydiver {

/// Axis-aligned minimum bounding rectangle in d dimensions.
class Mbr {
 public:
  Mbr() = default;

  /// Empty (inverted) MBR ready to be expanded.
  explicit Mbr(Dim dims)
      : lo_(dims, std::numeric_limits<Coord>::infinity()),
        hi_(dims, -std::numeric_limits<Coord>::infinity()) {}

  /// Degenerate MBR around a single point.
  static Mbr OfPoint(std::span<const Coord> p) {
    Mbr m;
    m.lo_.assign(p.begin(), p.end());
    m.hi_.assign(p.begin(), p.end());
    return m;
  }

  Dim dims() const { return static_cast<Dim>(lo_.size()); }
  std::span<const Coord> lo() const { return lo_; }
  std::span<const Coord> hi() const { return hi_; }
  Coord lo(Dim i) const { return lo_[i]; }
  Coord hi(Dim i) const { return hi_[i]; }

  bool IsEmpty() const {
    return lo_.empty() || lo_[0] > hi_[0];
  }

  /// Grows this MBR to cover `p`.
  void Expand(std::span<const Coord> p) {
    SKYDIVER_DCHECK_EQ(p.size(), lo_.size());
    for (size_t i = 0; i < p.size(); ++i) {
      if (p[i] < lo_[i]) lo_[i] = p[i];
      if (p[i] > hi_[i]) hi_[i] = p[i];
    }
  }

  /// Grows this MBR to cover `other`.
  void Expand(const Mbr& other) {
    SKYDIVER_DCHECK_EQ(other.dims(), dims());
    if (other.IsEmpty()) return;
    for (size_t i = 0; i < lo_.size(); ++i) {
      if (other.lo_[i] < lo_[i]) lo_[i] = other.lo_[i];
      if (other.hi_[i] > hi_[i]) hi_[i] = other.hi_[i];
    }
  }

  /// Hyper-volume (product of extents).
  double Area() const {
    if (IsEmpty()) return 0.0;
    double a = 1.0;
    for (size_t i = 0; i < lo_.size(); ++i) a *= (hi_[i] - lo_[i]);
    return a;
  }

  /// Sum of edge lengths (the R*-tree "margin").
  double Margin() const {
    if (IsEmpty()) return 0.0;
    double s = 0.0;
    for (size_t i = 0; i < lo_.size(); ++i) s += (hi_[i] - lo_[i]);
    return s;
  }

  /// Volume of the intersection with `other` (0 when disjoint).
  double OverlapArea(const Mbr& other) const {
    double a = 1.0;
    for (size_t i = 0; i < lo_.size(); ++i) {
      const Coord l = std::max(lo_[i], other.lo_[i]);
      const Coord h = std::min(hi_[i], other.hi_[i]);
      if (h <= l) return 0.0;
      a *= (h - l);
    }
    return a;
  }

  /// Area increase needed to absorb `other`.
  double Enlargement(const Mbr& other) const {
    Mbr grown = *this;
    grown.Expand(other);
    return grown.Area() - Area();
  }

  /// True iff the boxes intersect (closed boxes).
  bool Intersects(const Mbr& other) const {
    for (size_t i = 0; i < lo_.size(); ++i) {
      if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
    }
    return true;
  }

  /// True iff `other` lies completely inside this box (closed).
  bool Contains(const Mbr& other) const {
    for (size_t i = 0; i < lo_.size(); ++i) {
      if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
    }
    return true;
  }

  /// True iff point `p` lies inside this box (closed).
  bool ContainsPoint(std::span<const Coord> p) const {
    for (size_t i = 0; i < lo_.size(); ++i) {
      if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
    }
    return true;
  }

  /// L1 distance of the lower-left corner from the origin — the BBS
  /// priority ("mindist" of the box under sum-of-coordinates scoring).
  double MinDistL1() const {
    double s = 0.0;
    for (Coord v : lo_) s += v;
    return s;
  }

  /// True iff skyline point `s` dominates every point of this MBR
  /// (s ≺ lower-left corner).
  bool FullyDominatedBy(std::span<const Coord> s) const {
    return Dominates(s, lo_);
  }

  /// True iff `s` dominates the upper-right corner: at least part of the
  /// MBR may be dominated. (Full dominance implies this.)
  bool UpperCornerDominatedBy(std::span<const Coord> s) const {
    return Dominates(s, hi_);
  }

  bool operator==(const Mbr& other) const { return lo_ == other.lo_ && hi_ == other.hi_; }

 private:
  std::vector<Coord> lo_;
  std::vector<Coord> hi_;
};

}  // namespace skydiver
