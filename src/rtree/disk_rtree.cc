#include "rtree/disk_rtree.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/binio.h"
#include "common/check.h"
#include "parallel/thread_pool.h"
#include "rtree/traversal.h"

namespace skydiver {

namespace {

constexpr char kMagic[8] = {'S', 'K', 'Y', 'D', 'P', 'A', 'G', '1'};

/// Fixed node-page header: u8 leaf flag + 3 pad + u32 entry count + 8
/// reserved.
constexpr size_t kNodeHeaderBytes = 16;

constexpr size_t EntryBytes(bool is_leaf, Dim dims) {
  // Leaf: dims lo-coordinates + row id. Internal: lo + hi corners + child
  // page + aggregate count.
  return is_leaf ? dims * sizeof(double) + sizeof(uint32_t)
                 : 2 * dims * sizeof(double) + sizeof(uint32_t) + sizeof(uint64_t);
}

// Little-endian scalar (de)serialization into/out of a page buffer. The
// callers bound-check before every Put/Get group (that is the OOB fix —
// the old code serialized first and range-checked after).
template <typename T>
void Put(std::vector<unsigned char>& buf, size_t* off, T v) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    buf[*off + i] = static_cast<unsigned char>(v & 0xff);
    v = static_cast<T>(v >> 8);
  }
  *off += sizeof(T);
}

template <typename T>
T Get(std::span<const unsigned char> buf, size_t* off) {
  T v = 0;
  for (size_t i = sizeof(T); i-- > 0;) {
    v = static_cast<T>((v << 8) | buf[*off + i]);
  }
  *off += sizeof(T);
  return v;
}

void PutDouble(std::vector<unsigned char>& buf, size_t* off, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  Put(buf, off, bits);
}

double GetDouble(std::span<const unsigned char> buf, size_t* off) {
  const uint64_t bits = Get<uint64_t>(buf, off);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};

}  // namespace

namespace detail {

Status SerializeNode(const RTreeNode& node, Dim dims, uint32_t page_size,
                     std::vector<unsigned char>* page) {
  page->assign(page_size, 0);
  if (page_size < kNodeHeaderBytes) {
    return Status::Internal("page size " + std::to_string(page_size) +
                            " cannot hold a node header");
  }
  size_t off = 0;
  Put<uint8_t>(*page, &off, node.is_leaf ? 1 : 0);
  off += 3;  // padding
  Put<uint32_t>(*page, &off, static_cast<uint32_t>(node.entries.size()));
  off += 8;  // reserved — completes the 16-byte node header
  const size_t entry_bytes = EntryBytes(node.is_leaf, dims);
  for (const auto& e : node.entries) {
    // Capacity check BEFORE serializing: the old code Put() the entry
    // first and compared offsets after, by which point an oversized node
    // had already written past the page buffer (heap overflow).
    if (off + entry_bytes > page_size) {
      return Status::Internal(
          "node " + std::to_string(node.id) + " overflows its page (" +
          std::to_string(node.entries.size()) + " entries of " +
          std::to_string(entry_bytes) + " bytes each in a " +
          std::to_string(page_size) + "-byte page)");
    }
    if (node.is_leaf) {
      for (Dim i = 0; i < dims; ++i) PutDouble(*page, &off, e.mbr.lo(i));
      Put<uint32_t>(*page, &off, e.row);
    } else {
      for (Dim i = 0; i < dims; ++i) PutDouble(*page, &off, e.mbr.lo(i));
      for (Dim i = 0; i < dims; ++i) PutDouble(*page, &off, e.mbr.hi(i));
      Put<uint32_t>(*page, &off, e.child);
      Put<uint64_t>(*page, &off, e.count);
    }
  }
  return Status::OK();
}

Status DeserializeNode(std::span<const unsigned char> page, Dim dims, PageId id,
                       RTreeNode* out) {
  if (page.size() < kNodeHeaderBytes) {
    return Status::IoError("node page " + std::to_string(id) + " is only " +
                           std::to_string(page.size()) + " bytes");
  }
  size_t off = 0;
  const uint8_t leaf_flag = Get<uint8_t>(page, &off);
  if (leaf_flag > 1) {
    return Status::IoError("corrupt node page " + std::to_string(id) +
                           ": leaf flag is " + std::to_string(leaf_flag));
  }
  off += 3;
  const uint32_t entry_count = Get<uint32_t>(page, &off);
  off += 8;
  // Validate the declared geometry against the page BEFORE reading any
  // payload: a corrupted count must fail loudly, not read out of bounds.
  const uint64_t payload =
      static_cast<uint64_t>(entry_count) * EntryBytes(leaf_flag != 0, dims);
  if (kNodeHeaderBytes + payload > page.size()) {
    return Status::IoError(
        "corrupt node page " + std::to_string(id) + ": " +
        std::to_string(entry_count) + " declared entries (" +
        std::to_string(payload) + " bytes) overflow the " +
        std::to_string(page.size()) + "-byte page");
  }

  RTreeNode node;
  node.id = id;
  node.is_leaf = leaf_flag != 0;
  node.entries.reserve(entry_count);
  std::vector<Coord> lo(dims), hi(dims);
  for (uint32_t e = 0; e < entry_count; ++e) {
    RTreeEntry entry;
    if (node.is_leaf) {
      for (Dim i = 0; i < dims; ++i) lo[i] = GetDouble(page, &off);
      entry.mbr = Mbr::OfPoint(lo);
      entry.row = Get<uint32_t>(page, &off);
      entry.count = 1;
    } else {
      for (Dim i = 0; i < dims; ++i) lo[i] = GetDouble(page, &off);
      for (Dim i = 0; i < dims; ++i) hi[i] = GetDouble(page, &off);
      entry.mbr = Mbr::OfPoint(lo);
      entry.mbr.Expand(hi);
      entry.child = Get<uint32_t>(page, &off);
      entry.count = Get<uint64_t>(page, &off);
    }
    node.entries.push_back(std::move(entry));
  }
  *out = std::move(node);
  return Status::OK();
}

}  // namespace detail

// The disk-resident state shared by the tree and its in-flight prefetch
// tasks. The PageCache's loader captures `this`, which is safe because the
// cache is a member: it can never outlive the Store around it.
struct DiskRTree::Store {
  PageFile file;
  Dim dims;
  uint32_t page_size;
  size_t node_count;
  PageCache cache;

  Store(PageFile file_in, Dim dims_in, uint32_t page_size_in,
        size_t node_count_in, size_t capacity)
      : file(std::move(file_in)),
        dims(dims_in),
        page_size(page_size_in),
        node_count(node_count_in),
        cache(capacity,
              [this](PageId id, RTreeNode* out) { return Load(id, out); }) {}

  Status Load(PageId id, RTreeNode* out) {
    std::vector<unsigned char> scratch;
    auto page =
        file.ViewPage(static_cast<uint64_t>(id) + 1, page_size, scratch);
    if (!page.ok()) return page.status();
    return detail::DeserializeNode(page.value(), dims, id, out);
  }
};

Status DiskRTree::Write(const RTree& tree, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open '" + path + "' for writing");
  std::unique_ptr<std::FILE, FileCloser> file(f);

  const uint32_t page_size = tree.config().page_size;
  const Dim dims = tree.dims();

  // Header page.
  std::vector<unsigned char> page(page_size, 0);
  {
    size_t off = 0;
    std::memcpy(page.data(), kMagic, 8);
    off = 8;
    Put<uint32_t>(page, &off, dims);
    Put<uint32_t>(page, &off, page_size);
    Put<uint64_t>(page, &off, tree.size());
    Put<uint32_t>(page, &off, tree.root());
    Put<uint32_t>(page, &off, tree.height());
    Put<uint64_t>(page, &off, tree.PageCount());
    // Header checksum over the meaningful prefix.
    Fnv1a sum;
    sum.Update(page.data(), off);
    Put<uint64_t>(page, &off, sum.digest());
    if (std::fwrite(page.data(), 1, page_size, f) != page_size) {
      return Status::IoError("short write of header page");
    }
  }

  // Node pages, one per page id (dense ids by construction). PeekNode
  // bypasses the buffer pool AND its accounting, so serialization is
  // stats-neutral by construction: the tree's measured I/O counters are
  // bit-for-bit what they were before Write (asserted in
  // disk_rtree_test.cc). The old code claimed to save/restore the stats
  // around ReadNode and did neither.
  for (PageId id = 0; id < tree.PageCount(); ++id) {
    const RTreeNode& node = tree.PeekNode(id);
    SKYDIVER_RETURN_NOT_OK(detail::SerializeNode(node, dims, page_size, &page));
    if (std::fwrite(page.data(), 1, page_size, f) != page_size) {
      return Status::IoError("short write of node page " + std::to_string(id));
    }
  }
  if (std::fflush(f) != 0) return Status::IoError("flush of '" + path + "' failed");
  return Status::OK();
}

Result<DiskRTree> DiskRTree::Open(const std::string& path,
                                  const DiskTreeOptions& options) {
  auto file = PageFile::Open(path, options.backend);
  if (!file.ok()) return file.status();
  if (file.value().file_size() < 64) {
    return Status::IoError("'" + path + "': truncated header");
  }

  std::vector<unsigned char> scratch;
  auto head = file.value().ViewPage(0, 64, scratch);
  if (!head.ok()) return head.status();
  if (std::memcmp(head.value().data(), kMagic, 8) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a SkyDiver page file");
  }

  DiskRTree tree;
  size_t off = 8;
  tree.dims_ = Get<uint32_t>(head.value(), &off);
  tree.page_size_ = Get<uint32_t>(head.value(), &off);
  tree.size_ = Get<uint64_t>(head.value(), &off);
  tree.root_ = Get<uint32_t>(head.value(), &off);
  tree.height_ = Get<uint32_t>(head.value(), &off);
  tree.node_count_ = static_cast<size_t>(Get<uint64_t>(head.value(), &off));
  Fnv1a sum;
  sum.Update(head.value().data(), off);
  const uint64_t stored = Get<uint64_t>(head.value(), &off);
  if (stored != sum.digest()) {
    return Status::IoError("'" + path + "': header checksum mismatch");
  }

  // The checksum says the header was written by us; the geometry checks
  // say it describes THIS file. Everything below used to be trusted.
  if (tree.dims_ == 0 || tree.page_size_ < 64) {
    return Status::InvalidArgument("'" + path + "': implausible geometry");
  }
  const uint64_t expected_size =
      (static_cast<uint64_t>(tree.node_count_) + 1) * tree.page_size_;
  if (file.value().file_size() != expected_size) {
    return Status::IoError(
        "'" + path + "': header declares " + std::to_string(tree.node_count_) +
        " node pages of " + std::to_string(tree.page_size_) + " bytes (" +
        std::to_string(expected_size) + " total) but the file holds " +
        std::to_string(file.value().file_size()) + " bytes — truncated or corrupt");
  }
  if (tree.node_count_ == 0) {
    if (tree.root_ != kInvalidPageId || tree.size_ != 0) {
      return Status::IoError("'" + path + "': empty page file with a root node");
    }
  } else if (tree.root_ >= tree.node_count_) {
    return Status::IoError("'" + path + "': root page " +
                           std::to_string(tree.root_) + " out of range (" +
                           std::to_string(tree.node_count_) + " node pages)");
  }

  const size_t capacity = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(options.cache_fraction *
                                       static_cast<double>(tree.node_count_))));
  tree.store_ = std::make_shared<Store>(std::move(file).value(), tree.dims_,
                                        tree.page_size_, tree.node_count_, capacity);
  tree.prefetch_pool_ = options.prefetch_pool;
  return tree;
}

Result<DiskRTree> DiskRTree::Open(const std::string& path, double cache_fraction) {
  DiskTreeOptions options;
  options.cache_fraction = cache_fraction;
  return Open(path, options);
}

size_t DiskRTree::cache_capacity() const { return store_->cache.capacity(); }

DiskBackend DiskRTree::backend() const { return store_->file.backend(); }

Result<PageRef> DiskRTree::ReadNode(PageId id) const {
  if (id >= node_count_) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " out of range (" + std::to_string(node_count_) +
                              " node pages)");
  }
  return store_->cache.Get(id);
}

void DiskRTree::PrefetchChildren(const RTreeNode& node) const {
  if (prefetch_pool_ == nullptr || node.is_leaf || node.entries.empty()) return;

  // Morsel-style dispatch (parallel/morsel.h): workers claim child pages
  // from a shared counter, so a slow read never strands the rest of the
  // batch behind it. The batch co-owns the store: a task that runs after
  // the tree is gone still has a live file and cache.
  struct Batch {
    std::shared_ptr<Store> store;
    std::vector<PageId> pages;
    // skylint:allow(relaxed-ordering): claim counter — fetch_add
    // uniqueness is all it needs (each claim takes an exclusive page);
    // the PageCache's own mutex orders every touch of the frames the
    // loads publish, exactly like the MorselQueue claim counter.
    std::atomic<size_t> next{0};
  };
  auto batch = std::make_shared<Batch>();
  batch->store = store_;
  batch->pages.reserve(node.entries.size());
  for (const auto& e : node.entries) batch->pages.push_back(e.child);

  const size_t workers = std::min(prefetch_pool_->size(), batch->pages.size());
  for (size_t w = 0; w < workers; ++w) {
    const bool submitted = prefetch_pool_->Submit([batch] {
      size_t claim;
      // skylint:allow(relaxed-ordering): see the Batch::next comment.
      while ((claim = batch->next.fetch_add(1, std::memory_order_relaxed)) <
             batch->pages.size()) {
        batch->store->cache.Prefetch(batch->pages[claim]);
      }
    });
    if (!submitted) break;  // pool shutting down — prefetch is best-effort
  }
}

IoStats DiskRTree::io_stats() const { return store_->cache.stats(); }

void DiskRTree::ResetIoStats() const { store_->cache.ResetStats(); }

void DiskRTree::DropCache() const { store_->cache.Clear(); }

Result<uint64_t> DiskRTree::RangeCount(std::span<const Coord> lo,
                                       std::span<const Coord> hi) const {
  return traversal::RangeCount(*this, lo, hi);
}

Result<std::vector<RowId>> DiskRTree::RangeSearch(std::span<const Coord> lo,
                                                  std::span<const Coord> hi) const {
  return traversal::RangeSearch(*this, lo, hi);
}

Result<uint64_t> DiskRTree::DominatedCount(std::span<const Coord> p) const {
  return traversal::DominatedCount(*this, p);
}

Result<uint64_t> DiskRTree::CommonDominatedCount(std::span<const Coord> p,
                                                 std::span<const Coord> q) const {
  return traversal::CommonDominatedCount(*this, p, q);
}

}  // namespace skydiver
