#include "rtree/disk_rtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/binio.h"
#include "rtree/traversal.h"

namespace skydiver {

namespace {

constexpr char kMagic[8] = {'S', 'K', 'Y', 'D', 'P', 'A', 'G', '1'};

// Little-endian scalar (de)serialization into a page buffer.
template <typename T>
void Put(std::vector<unsigned char>& buf, size_t* off, T v) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    buf[*off + i] = static_cast<unsigned char>(v & 0xff);
    v = static_cast<T>(v >> 8);
  }
  *off += sizeof(T);
}

template <typename T>
T Get(const std::vector<unsigned char>& buf, size_t* off) {
  T v = 0;
  for (size_t i = sizeof(T); i-- > 0;) {
    v = static_cast<T>((v << 8) | buf[*off + i]);
  }
  *off += sizeof(T);
  return v;
}

void PutDouble(std::vector<unsigned char>& buf, size_t* off, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  Put(buf, off, bits);
}

double GetDouble(const std::vector<unsigned char>& buf, size_t* off) {
  const uint64_t bits = Get<uint64_t>(buf, off);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

Status DiskRTree::Write(const RTree& tree, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open '" + path + "' for writing");
  std::unique_ptr<std::FILE, FileCloser> file(f);

  const uint32_t page_size = tree.config().page_size;
  const Dim dims = tree.dims();

  // Header page.
  std::vector<unsigned char> page(page_size, 0);
  {
    size_t off = 0;
    std::memcpy(page.data(), kMagic, 8);
    off = 8;
    Put<uint32_t>(page, &off, dims);
    Put<uint32_t>(page, &off, page_size);
    Put<uint64_t>(page, &off, tree.size());
    Put<uint32_t>(page, &off, tree.root());
    Put<uint32_t>(page, &off, tree.height());
    Put<uint64_t>(page, &off, tree.PageCount());
    // Header checksum over the meaningful prefix.
    Fnv1a sum;
    sum.Update(page.data(), off);
    Put<uint64_t>(page, &off, sum.digest());
    if (std::fwrite(page.data(), 1, page_size, f) != page_size) {
      return Status::IoError("short write of header page");
    }
  }

  // Node pages, one per page id (dense ids by construction). Reads bypass
  // the tree's buffer pool: serialization is not a measured query.
  for (PageId id = 0; id < tree.PageCount(); ++id) {
    // ReadNode records pool traffic; acceptable at write time, but keep
    // the tree's measured stats clean by saving/restoring them.
    const RTreeNode& node = tree.ReadNode(id);
    std::fill(page.begin(), page.end(), 0);
    size_t off = 0;
    Put<uint8_t>(page, &off, node.is_leaf ? 1 : 0);
    off += 3;  // padding
    Put<uint32_t>(page, &off, static_cast<uint32_t>(node.entries.size()));
    off += 8;  // reserved — completes the 16-byte node header
    for (const auto& e : node.entries) {
      if (node.is_leaf) {
        for (Dim i = 0; i < dims; ++i) PutDouble(page, &off, e.mbr.lo(i));
        Put<uint32_t>(page, &off, e.row);
      } else {
        for (Dim i = 0; i < dims; ++i) PutDouble(page, &off, e.mbr.lo(i));
        for (Dim i = 0; i < dims; ++i) PutDouble(page, &off, e.mbr.hi(i));
        Put<uint32_t>(page, &off, e.child);
        Put<uint64_t>(page, &off, e.count);
      }
      if (off > page_size) {
        return Status::Internal("node " + std::to_string(id) + " overflows its page");
      }
    }
    if (std::fwrite(page.data(), 1, page_size, f) != page_size) {
      return Status::IoError("short write of node page " + std::to_string(id));
    }
  }
  if (std::fflush(f) != 0) return Status::IoError("flush of '" + path + "' failed");
  return Status::OK();
}

Result<DiskRTree> DiskRTree::Open(const std::string& path, double cache_fraction) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open '" + path + "' for reading");
  DiskRTree tree;
  tree.file_.reset(f);

  // Read a minimal header first to learn the page size.
  std::vector<unsigned char> head(64, 0);
  if (std::fread(head.data(), 1, head.size(), f) != head.size()) {
    return Status::IoError("'" + path + "': truncated header");
  }
  if (std::memcmp(head.data(), kMagic, 8) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a SkyDiver page file");
  }
  size_t off = 8;
  tree.dims_ = Get<uint32_t>(head, &off);
  tree.page_size_ = Get<uint32_t>(head, &off);
  tree.size_ = Get<uint64_t>(head, &off);
  tree.root_ = Get<uint32_t>(head, &off);
  tree.height_ = Get<uint32_t>(head, &off);
  tree.node_count_ = static_cast<size_t>(Get<uint64_t>(head, &off));
  Fnv1a sum;
  sum.Update(head.data(), off);
  const uint64_t stored = Get<uint64_t>(head, &off);
  if (stored != sum.digest()) {
    return Status::IoError("'" + path + "': header checksum mismatch");
  }
  if (tree.dims_ == 0 || tree.page_size_ < 64) {
    return Status::InvalidArgument("'" + path + "': implausible geometry");
  }
  tree.cache_capacity_ = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(cache_fraction *
                                       static_cast<double>(tree.node_count_))));
  return tree;
}

const RTreeNode& DiskRTree::ReadNode(PageId id) const {
  ++stats_.page_reads;
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.second);
    return it->second.first;
  }
  ++stats_.page_faults;

  // Physical read.
  std::vector<unsigned char> page(page_size_);
  const auto offset =
      static_cast<long>((static_cast<uint64_t>(id) + 1) * page_size_);
  if (std::fseek(file_.get(), offset, SEEK_SET) != 0 ||
      std::fread(page.data(), 1, page_size_, file_.get()) != page_size_) {
    // A read failure on a live file is unrecoverable for the caller's
    // reference; fail loudly.
    std::abort();
  }
  size_t off = 0;
  RTreeNode node;
  node.id = id;
  node.is_leaf = Get<uint8_t>(page, &off) != 0;
  off += 3;
  const uint32_t entry_count = Get<uint32_t>(page, &off);
  off += 8;
  node.entries.reserve(entry_count);
  std::vector<Coord> lo(dims_), hi(dims_);
  for (uint32_t e = 0; e < entry_count; ++e) {
    RTreeEntry entry;
    if (node.is_leaf) {
      for (Dim i = 0; i < dims_; ++i) lo[i] = GetDouble(page, &off);
      entry.mbr = Mbr::OfPoint(lo);
      entry.row = Get<uint32_t>(page, &off);
      entry.count = 1;
    } else {
      for (Dim i = 0; i < dims_; ++i) lo[i] = GetDouble(page, &off);
      for (Dim i = 0; i < dims_; ++i) hi[i] = GetDouble(page, &off);
      entry.mbr = Mbr::OfPoint(lo);
      entry.mbr.Expand(hi);
      entry.child = Get<uint32_t>(page, &off);
      entry.count = Get<uint64_t>(page, &off);
    }
    node.entries.push_back(std::move(entry));
  }

  lru_.push_front(id);
  auto [pos, inserted] =
      frames_.emplace(id, std::make_pair(std::move(node), lru_.begin()));
  if (frames_.size() > cache_capacity_) {
    const PageId victim = lru_.back();
    lru_.pop_back();
    frames_.erase(victim);
  }
  return pos->second.first;
}

void DiskRTree::DropCache() const {
  lru_.clear();
  frames_.clear();
}

uint64_t DiskRTree::RangeCount(std::span<const Coord> lo,
                               std::span<const Coord> hi) const {
  return traversal::RangeCount(*this, lo, hi);
}

std::vector<RowId> DiskRTree::RangeSearch(std::span<const Coord> lo,
                                          std::span<const Coord> hi) const {
  return traversal::RangeSearch(*this, lo, hi);
}

uint64_t DiskRTree::DominatedCount(std::span<const Coord> p) const {
  return traversal::DominatedCount(*this, p);
}

uint64_t DiskRTree::CommonDominatedCount(std::span<const Coord> p,
                                         std::span<const Coord> q) const {
  return traversal::CommonDominatedCount(*this, p, q);
}

}  // namespace skydiver
