// Binary persistence for the aggregate R*-tree (format SKYDRTR1).
//
// Layout after the magic: dims, page size, min_fill, cache_fraction, tree
// size, root page, height, node count; then each node as (id, is_leaf,
// entry count, entries). Leaf entries store the point (as a degenerate
// MBR) and the row id; internal entries store the MBR, child page and
// aggregate count. A trailing FNV-1a checksum covers everything.

#include "common/binio.h"
#include "rtree/rtree.h"

namespace skydiver {

namespace {
constexpr char kMagic[8] = {'S', 'K', 'Y', 'D', 'R', 'T', 'R', '1'};
}  // namespace

Status RTree::SaveToFile(const std::string& path) const {
  BinaryWriter writer(path, kMagic);
  if (!writer.ok()) return Status::IoError("cannot open '" + path + "' for writing");
  writer.WriteU32(dims_);
  writer.WriteU32(config_.page_size);
  writer.WriteDouble(config_.min_fill);
  writer.WriteDouble(config_.cache_fraction);
  writer.WriteU64(size_);
  writer.WriteU32(root_);
  writer.WriteU32(height_);
  writer.WriteU64(store_.size());
  for (const RTreeNode& node : store_) {
    writer.WriteU32(node.id);
    writer.WriteU8(node.is_leaf ? 1 : 0);
    writer.WriteU32(static_cast<uint32_t>(node.entries.size()));
    for (const RTreeEntry& e : node.entries) {
      for (Dim i = 0; i < dims_; ++i) writer.WriteDouble(e.mbr.lo(i));
      for (Dim i = 0; i < dims_; ++i) writer.WriteDouble(e.mbr.hi(i));
      writer.WriteU32(e.child);
      writer.WriteU64(e.count);
      writer.WriteU32(e.row);
    }
  }
  return writer.Finish();
}

Result<RTree> RTree::LoadFromFile(const std::string& path) {
  BinaryReader reader(path, kMagic);
  SKYDIVER_RETURN_NOT_OK(reader.status());
  auto truncated = [&path]() {
    return Status::IoError("'" + path + "': truncated R-tree file");
  };
  uint32_t dims = 0;
  RTreeConfig config;
  uint64_t size = 0;
  uint32_t root = kInvalidPageId;
  uint32_t height = 0;
  uint64_t node_count = 0;
  if (!reader.ReadU32(&dims) || !reader.ReadU32(&config.page_size) ||
      !reader.ReadDouble(&config.min_fill) || !reader.ReadDouble(&config.cache_fraction) ||
      !reader.ReadU64(&size) || !reader.ReadU32(&root) || !reader.ReadU32(&height) ||
      !reader.ReadU64(&node_count)) {
    return truncated();
  }
  if (dims == 0) return Status::InvalidArgument("'" + path + "': zero dimensionality");

  RTree tree(dims, config);
  for (uint64_t nidx = 0; nidx < node_count; ++nidx) {
    uint32_t id = 0;
    uint8_t is_leaf = 0;
    uint32_t entry_count = 0;
    if (!reader.ReadU32(&id) || !reader.ReadU8(&is_leaf) || !reader.ReadU32(&entry_count)) {
      return truncated();
    }
    if (id != nidx) {
      return Status::InvalidArgument("'" + path + "': node ids out of order");
    }
    const PageId page = tree.AllocateNode(is_leaf != 0);
    RTreeNode& node = tree.Node(page);
    node.entries.reserve(entry_count);
    std::vector<Coord> lo(dims), hi(dims);
    for (uint32_t eidx = 0; eidx < entry_count; ++eidx) {
      RTreeEntry e;
      for (Dim i = 0; i < dims; ++i) {
        if (!reader.ReadDouble(&lo[i])) return truncated();
      }
      for (Dim i = 0; i < dims; ++i) {
        if (!reader.ReadDouble(&hi[i])) return truncated();
      }
      e.mbr = Mbr::OfPoint(lo);
      e.mbr.Expand(hi);
      if (!reader.ReadU32(&e.child) || !reader.ReadU64(&e.count) || !reader.ReadU32(&e.row)) {
        return truncated();
      }
      node.entries.push_back(std::move(e));
    }
  }
  SKYDIVER_RETURN_NOT_OK(reader.VerifyChecksum());
  if (root >= tree.store_.size() && node_count > 0) {
    return Status::InvalidArgument("'" + path + "': root page out of range");
  }
  tree.root_ = root;
  tree.height_ = height;
  tree.size_ = size;
  SKYDIVER_RETURN_NOT_OK(tree.CheckInvariants());
  tree.FinalizeCache();
  return tree;
}

}  // namespace skydiver
