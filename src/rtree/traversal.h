// Index traversals, templated over the tree backend.
//
// Both `RTree` (in-memory simulated pages) and `DiskRTree` (real
// file-backed 4 KB pages) expose the same access surface — ReadNode(),
// root(), dims(), size() — so every query and every index-based algorithm
// (aggregate range counting, BBS, SigGen-IB) is written once here and
// works against either backend.

#pragma once

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"
#include "core/dominance.h"
#include "core/types.h"
#include "rtree/buffer_pool.h"
#include "rtree/mbr.h"

namespace skydiver::traversal {

/// Aggregate-aware count of points in the closed box [lo, hi]: fully
/// contained subtrees contribute their stored count without being read.
template <typename Tree>
uint64_t RangeCount(const Tree& tree, std::span<const Coord> lo,
                    std::span<const Coord> hi) {
  if (tree.size() == 0) return 0;
  Mbr box = Mbr::OfPoint(lo);
  box.Expand(hi);
  uint64_t count = 0;
  std::vector<PageId> stack{tree.root()};
  while (!stack.empty()) {
    const auto& node = tree.ReadNode(stack.back());
    stack.pop_back();
    for (const auto& e : node.entries) {
      if (node.is_leaf) {
        if (box.ContainsPoint(e.mbr.lo())) ++count;
      } else if (box.Contains(e.mbr)) {
        count += e.count;
      } else if (box.Intersects(e.mbr)) {
        stack.push_back(e.child);
      }
    }
  }
  return count;
}

/// Row ids of all points inside the closed box [lo, hi].
template <typename Tree>
std::vector<RowId> RangeSearch(const Tree& tree, std::span<const Coord> lo,
                               std::span<const Coord> hi) {
  std::vector<RowId> out;
  if (tree.size() == 0) return out;
  Mbr box = Mbr::OfPoint(lo);
  box.Expand(hi);
  std::vector<PageId> stack{tree.root()};
  while (!stack.empty()) {
    const auto& node = tree.ReadNode(stack.back());
    stack.pop_back();
    for (const auto& e : node.entries) {
      if (node.is_leaf) {
        if (box.ContainsPoint(e.mbr.lo())) out.push_back(e.row);
      } else if (box.Intersects(e.mbr)) {
        stack.push_back(e.child);
      }
    }
  }
  return out;
}

/// |Γ(p)|: points strictly dominated by p.
template <typename Tree>
uint64_t DominatedCount(const Tree& tree, std::span<const Coord> p) {
  std::vector<Coord> inf(tree.dims(), std::numeric_limits<Coord>::infinity());
  const uint64_t weak = RangeCount(tree, p, inf);
  const uint64_t dups = RangeCount(tree, p, p);
  return weak - dups;
}

/// |Γ(p) ∩ Γ(q)| via the component-wise max corner (see RTree docs).
template <typename Tree>
uint64_t CommonDominatedCount(const Tree& tree, std::span<const Coord> p,
                              std::span<const Coord> q) {
  const Dim d = tree.dims();
  SKYDIVER_DCHECK(p.size() == d && q.size() == d);
  const bool q_weak_p = WeaklyDominates(q, p);
  const bool p_weak_q = WeaklyDominates(p, q);
  if (q_weak_p && p_weak_q) return DominatedCount(tree, p);  // p == q
  std::vector<Coord> corner(d);
  for (Dim i = 0; i < d; ++i) corner[i] = std::max(p[i], q[i]);
  std::vector<Coord> inf(d, std::numeric_limits<Coord>::infinity());
  uint64_t total = RangeCount(tree, corner, inf);
  if (q_weak_p) total -= RangeCount(tree, p, p);
  if (p_weak_q) total -= RangeCount(tree, q, q);
  return total;
}

}  // namespace skydiver::traversal
