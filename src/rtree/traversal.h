// Index traversals, templated over the tree backend.
//
// Both `RTree` (in-memory simulated pages) and `DiskRTree` (real
// file-backed pages) expose the same access surface — ReadNode(), root(),
// dims(), size() — so every query and every index-based algorithm
// (aggregate range counting, BBS, SigGen-IB) is written once here and
// works against either backend.
//
// ReadNode differs in shape between the backends: RTree's is infallible
// (`const RTreeNode&`), DiskRTree's is a fallible pinned handle
// (`Result<PageRef>` — rtree/page_cache.h). The traversals therefore
// return Result<> and use the generic RefOk/RefStatus/NodeOf accessors
// with the pin-discipline pattern: bind the ref to a named local, check
// it, then borrow the node. For RTree the checks compile to nothing.

#pragma once

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "core/dominance.h"
#include "core/types.h"
#include "rtree/buffer_pool.h"
#include "rtree/mbr.h"
#include "rtree/page_cache.h"

namespace skydiver::traversal {

/// Aggregate-aware count of points in the closed box [lo, hi]: fully
/// contained subtrees contribute their stored count without being read.
template <typename Tree>
Result<uint64_t> RangeCount(const Tree& tree, std::span<const Coord> lo,
                            std::span<const Coord> hi) {
  if (tree.size() == 0) return uint64_t{0};
  Mbr box = Mbr::OfPoint(lo);
  box.Expand(hi);
  uint64_t count = 0;
  std::vector<PageId> stack{tree.root()};
  while (!stack.empty()) {
    decltype(auto) ref = tree.ReadNode(stack.back());
    if (!RefOk(ref)) return RefStatus(ref);
    const RTreeNode& node = NodeOf(ref);
    stack.pop_back();
    for (const auto& e : node.entries) {
      if (node.is_leaf) {
        if (box.ContainsPoint(e.mbr.lo())) ++count;
      } else if (box.Contains(e.mbr)) {
        count += e.count;
      } else if (box.Intersects(e.mbr)) {
        stack.push_back(e.child);
      }
    }
  }
  return count;
}

/// Row ids of all points inside the closed box [lo, hi].
template <typename Tree>
Result<std::vector<RowId>> RangeSearch(const Tree& tree, std::span<const Coord> lo,
                                       std::span<const Coord> hi) {
  std::vector<RowId> out;
  if (tree.size() == 0) return out;
  Mbr box = Mbr::OfPoint(lo);
  box.Expand(hi);
  std::vector<PageId> stack{tree.root()};
  while (!stack.empty()) {
    decltype(auto) ref = tree.ReadNode(stack.back());
    if (!RefOk(ref)) return RefStatus(ref);
    const RTreeNode& node = NodeOf(ref);
    stack.pop_back();
    for (const auto& e : node.entries) {
      if (node.is_leaf) {
        if (box.ContainsPoint(e.mbr.lo())) out.push_back(e.row);
      } else if (box.Intersects(e.mbr)) {
        stack.push_back(e.child);
      }
    }
  }
  return out;
}

/// |Γ(p)|: points strictly dominated by p.
template <typename Tree>
Result<uint64_t> DominatedCount(const Tree& tree, std::span<const Coord> p) {
  std::vector<Coord> inf(tree.dims(), std::numeric_limits<Coord>::infinity());
  const auto weak = RangeCount(tree, p, inf);
  if (!weak.ok()) return weak.status();
  const auto dups = RangeCount(tree, p, p);
  if (!dups.ok()) return dups.status();
  return weak.value() - dups.value();
}

/// |Γ(p) ∩ Γ(q)| via the component-wise max corner (see RTree docs).
template <typename Tree>
Result<uint64_t> CommonDominatedCount(const Tree& tree, std::span<const Coord> p,
                                      std::span<const Coord> q) {
  const Dim d = tree.dims();
  SKYDIVER_DCHECK(p.size() == d && q.size() == d);
  const bool q_weak_p = WeaklyDominates(q, p);
  const bool p_weak_q = WeaklyDominates(p, q);
  if (q_weak_p && p_weak_q) return DominatedCount(tree, p);  // p == q
  std::vector<Coord> corner(d);
  for (Dim i = 0; i < d; ++i) corner[i] = std::max(p[i], q[i]);
  std::vector<Coord> inf(d, std::numeric_limits<Coord>::infinity());
  const auto total = RangeCount(tree, corner, inf);
  if (!total.ok()) return total.status();
  uint64_t count = total.value();
  if (q_weak_p) {
    const auto dups = RangeCount(tree, p, p);
    if (!dups.ok()) return dups.status();
    count -= dups.value();
  }
  if (p_weak_q) {
    const auto dups = RangeCount(tree, q, q);
    if (!dups.ok()) return dups.status();
    count -= dups.value();
  }
  return count;
}

}  // namespace skydiver::traversal
