// Corner-tile extraction for the tile-aware BBS traversal.
//
// When BBS pops a node it must decide, for every entry, whether the
// entry's best corner (the MBR lo-corner — the point of the subtree
// closest to the origin on every dimension) is already dominated by the
// accumulated skyline. Transposing all those corners into one column-major
// `Tile` lets the whole node be pruned with batched `PruneCorners` sweeps
// instead of one `AnyDominator` probe per entry.
//
// Tile-local ids are the entry indices, so a surviving kernel-mask row
// maps straight back to `node.entries[tile->id(r)]`.

#pragma once

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "core/data_view.h"
#include "kernels/tile_view.h"
#include "rtree/rtree.h"

namespace skydiver {

/// Transposes the MBR lo-corners of `node.entries[begin, end)` into
/// `tile` (cleared first). The range must fit one tile; callers chunk
/// nodes whose fanout exceeds kTileRows.
inline void MaterializeLoCorners(const RTreeNode& node, size_t begin, size_t end,
                                 Tile* tile) {
  SKYDIVER_DCHECK_LE(end, node.entries.size());
  SKYDIVER_DCHECK_LE(end - begin, kTileRows);
  tile->Clear();
  for (size_t i = begin; i < end; ++i) {
    tile->PushRow(static_cast<RowId>(i), node.entries[i].mbr.lo());
  }
}

/// Query-shaped corner extraction: entries whose MBR misses the view's
/// constraint box are dropped outright (for a leaf the MBR is the point
/// itself, so this is an exact in-box filter); the survivors' lo-corners
/// are CLIPPED against the box (max(lo, box.lo) per dimension — a
/// componentwise lower bound of every in-box subtree point, so strict
/// dominance of the clipped corner still implies the subtree is prunable)
/// and PROJECTED into the view's subspace before transposition. Under the
/// identity query this takes the zero-copy full-span path and is
/// byte-identical to MaterializeLoCorners.
inline void MaterializeQueryCorners(const RTreeNode& node, size_t begin, size_t end,
                                    const DataView& view, std::vector<Coord>& scratch,
                                    Tile* tile) {
  SKYDIVER_DCHECK_LE(end, node.entries.size());
  SKYDIVER_DCHECK_LE(end - begin, kTileRows);
  tile->Clear();
  const SkyQuery& q = view.query();
  const bool boxed = q.constrained();
  const auto proj = view.proj();
  for (size_t i = begin; i < end; ++i) {
    const Mbr& mbr = node.entries[i].mbr;
    if (boxed) {
      bool miss = false;
      for (Dim d = 0; d < static_cast<Dim>(q.lo.size()); ++d) {
        if (mbr.hi(d) < q.lo[d] || mbr.lo(d) > q.hi[d]) {
          miss = true;
          break;
        }
      }
      if (miss) continue;
    }
    if (!boxed && view.full_space()) {
      tile->PushRow(static_cast<RowId>(i), mbr.lo());
      continue;
    }
    scratch.resize(proj.size());
    for (size_t k = 0; k < proj.size(); ++k) {
      const Dim pd = proj[k];
      const Coord v = mbr.lo(pd);
      scratch[k] = boxed ? std::max(v, q.lo[pd]) : v;
    }
    tile->PushRow(static_cast<RowId>(i), scratch);
  }
}

}  // namespace skydiver
