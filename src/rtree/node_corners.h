// Corner-tile extraction for the tile-aware BBS traversal.
//
// When BBS pops a node it must decide, for every entry, whether the
// entry's best corner (the MBR lo-corner — the point of the subtree
// closest to the origin on every dimension) is already dominated by the
// accumulated skyline. Transposing all those corners into one column-major
// `Tile` lets the whole node be pruned with batched `PruneCorners` sweeps
// instead of one `AnyDominator` probe per entry.
//
// Tile-local ids are the entry indices, so a surviving kernel-mask row
// maps straight back to `node.entries[tile->id(r)]`.

#pragma once

#include "common/check.h"
#include "kernels/tile_view.h"
#include "rtree/rtree.h"

namespace skydiver {

/// Transposes the MBR lo-corners of `node.entries[begin, end)` into
/// `tile` (cleared first). The range must fit one tile; callers chunk
/// nodes whose fanout exceeds kTileRows.
inline void MaterializeLoCorners(const RTreeNode& node, size_t begin, size_t end,
                                 Tile* tile) {
  SKYDIVER_DCHECK_LE(end, node.entries.size());
  SKYDIVER_DCHECK_LE(end - begin, kTileRows);
  tile->Clear();
  for (size_t i = begin; i < end; ++i) {
    tile->PushRow(static_cast<RowId>(i), node.entries[i].mbr.lo());
  }
}

}  // namespace skydiver
