#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "common/check.h"
#include "rtree/traversal.h"

namespace skydiver {

namespace {

// Per-node on-page header bytes: leaf flag, entry count, padding.
constexpr size_t kNodeHeaderBytes = 16;

size_t LeafEntryBytes(Dim d) { return sizeof(Coord) * d + sizeof(RowId); }
size_t InternalEntryBytes(Dim d) {
  return 2 * sizeof(Coord) * d + sizeof(PageId) + sizeof(uint64_t);
}

size_t CapacityFor(uint32_t page_size, size_t entry_bytes) {
  const size_t usable = page_size > kNodeHeaderBytes ? page_size - kNodeHeaderBytes : 0;
  return std::max<size_t>(2, usable / entry_bytes);
}

// Evenly splits [0, size) into `k` contiguous chunks; returns chunk borders.
std::vector<size_t> EvenChunks(size_t size, size_t k) {
  std::vector<size_t> borders(k + 1);
  for (size_t g = 0; g <= k; ++g) borders[g] = g * size / k;
  return borders;
}

}  // namespace

Mbr RTreeNode::ComputeMbr(Dim dims) const {
  Mbr m(dims);
  for (const auto& e : entries) m.Expand(e.mbr);
  return m;
}

uint64_t RTreeNode::TotalCount() const {
  uint64_t c = 0;
  for (const auto& e : entries) c += e.count;
  return c;
}

RTree::RTree(Dim dims, RTreeConfig config)
    : dims_(dims),
      config_(config),
      leaf_capacity_(CapacityFor(config.page_size, LeafEntryBytes(dims))),
      internal_capacity_(CapacityFor(config.page_size, InternalEntryBytes(dims))) {
  SKYDIVER_DCHECK_GE(dims, 1u);
}

Result<RTree> RTree::BulkLoad(const DataSet& data, RTreeConfig config) {
  if (data.empty()) return Status::InvalidArgument("cannot bulk-load an empty dataset");
  RTree tree(data.dims(), config);
  tree.BulkLoadInternal(data);
  tree.FinalizeCache();
  return tree;
}

Result<RTree> RTree::InsertLoad(const DataSet& data, RTreeConfig config) {
  if (data.empty()) return Status::InvalidArgument("cannot load an empty dataset");
  RTree tree(data.dims(), config);
  const RowId n = data.size();
  for (RowId r = 0; r < n; ++r) tree.Insert(data.row(r), r);
  tree.FinalizeCache();
  return tree;
}

PageId RTree::AllocateNode(bool is_leaf) {
  const PageId id = static_cast<PageId>(store_.size());
  store_.emplace_back();
  store_.back().id = id;
  store_.back().is_leaf = is_leaf;
  pool_.RecordWrite();
  return id;
}

void RTree::FinalizeCache() {
  const auto pages = static_cast<double>(PageCount());
  const auto cap = static_cast<size_t>(std::ceil(config_.cache_fraction * pages));
  pool_.SetCapacity(std::max<size_t>(1, cap));
  pool_.Clear();
  pool_.ResetStats();
}

const RTreeNode& RTree::ReadNode(PageId id) const {
  pool_.Access(id);
  return store_[id];
}

// ---------------------------------------------------------------------------
// Dynamic insertion (R*-style).
// ---------------------------------------------------------------------------

size_t RTree::ChooseSubtree(const RTreeNode& node, const Mbr& mbr) const {
  SKYDIVER_DCHECK(!node.is_leaf && !node.entries.empty());
  const bool children_are_leaves = NodeNoIo(node.entries[0].child).is_leaf;
  size_t best = 0;
  if (children_are_leaves) {
    // R*: minimize overlap enlargement; break ties by area enlargement, then area.
    double best_overlap_delta = std::numeric_limits<double>::infinity();
    double best_area_delta = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.entries.size(); ++i) {
      Mbr grown = node.entries[i].mbr;
      grown.Expand(mbr);
      double overlap_before = 0.0;
      double overlap_after = 0.0;
      for (size_t j = 0; j < node.entries.size(); ++j) {
        if (j == i) continue;
        overlap_before += node.entries[i].mbr.OverlapArea(node.entries[j].mbr);
        overlap_after += grown.OverlapArea(node.entries[j].mbr);
      }
      const double overlap_delta = overlap_after - overlap_before;
      const double area_delta = node.entries[i].mbr.Enlargement(mbr);
      const double area = node.entries[i].mbr.Area();
      if (overlap_delta < best_overlap_delta ||
          (overlap_delta == best_overlap_delta &&
           (area_delta < best_area_delta ||
            (area_delta == best_area_delta && area < best_area)))) {
        best = i;
        best_overlap_delta = overlap_delta;
        best_area_delta = area_delta;
        best_area = area;
      }
    }
  } else {
    // Minimize area enlargement; break ties by area.
    double best_area_delta = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const double area_delta = node.entries[i].mbr.Enlargement(mbr);
      const double area = node.entries[i].mbr.Area();
      if (area_delta < best_area_delta ||
          (area_delta == best_area_delta && area < best_area)) {
        best = i;
        best_area_delta = area_delta;
        best_area = area;
      }
    }
  }
  return best;
}

PageId RTree::SplitNode(PageId node_id) {
  RTreeNode& node = Node(node_id);
  const size_t total = node.entries.size();
  const size_t cap = node.is_leaf ? leaf_capacity_ : internal_capacity_;
  const auto min_entries =
      std::max<size_t>(1, static_cast<size_t>(std::floor(config_.min_fill * static_cast<double>(cap))));
  SKYDIVER_DCHECK_GT(total, cap);
  SKYDIVER_DCHECK_GE(total, 2 * min_entries);

  // R* split, step 1: choose the axis minimizing the total margin over all
  // legal distributions of the lo-sorted order.
  std::vector<size_t> order(total);
  std::iota(order.begin(), order.end(), 0);
  auto margin_for_axis = [&](Dim axis, std::vector<size_t>* out_order) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const auto& ma = node.entries[a].mbr;
      const auto& mb = node.entries[b].mbr;
      if (ma.lo(axis) != mb.lo(axis)) return ma.lo(axis) < mb.lo(axis);
      return ma.hi(axis) < mb.hi(axis);
    });
    // Prefix / suffix MBRs of the sorted order.
    std::vector<Mbr> prefix(total, Mbr(dims_));
    std::vector<Mbr> suffix(total, Mbr(dims_));
    for (size_t i = 0; i < total; ++i) {
      prefix[i] = i ? prefix[i - 1] : Mbr(dims_);
      prefix[i].Expand(node.entries[order[i]].mbr);
    }
    for (size_t i = total; i-- > 0;) {
      suffix[i] = (i + 1 < total) ? suffix[i + 1] : Mbr(dims_);
      suffix[i].Expand(node.entries[order[i]].mbr);
    }
    double margin_sum = 0.0;
    for (size_t k = min_entries; k <= total - min_entries; ++k) {
      margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
    }
    if (out_order) *out_order = order;
    return margin_sum;
  };

  Dim best_axis = 0;
  double best_margin = std::numeric_limits<double>::infinity();
  for (Dim axis = 0; axis < dims_; ++axis) {
    const double m = margin_for_axis(axis, nullptr);
    if (m < best_margin) {
      best_margin = m;
      best_axis = axis;
    }
  }

  // Step 2: on the chosen axis, pick the split position minimizing overlap,
  // breaking ties by combined area.
  std::vector<size_t> axis_order;
  margin_for_axis(best_axis, &axis_order);
  std::vector<Mbr> prefix(total, Mbr(dims_));
  std::vector<Mbr> suffix(total, Mbr(dims_));
  for (size_t i = 0; i < total; ++i) {
    prefix[i] = i ? prefix[i - 1] : Mbr(dims_);
    prefix[i].Expand(node.entries[axis_order[i]].mbr);
  }
  for (size_t i = total; i-- > 0;) {
    suffix[i] = (i + 1 < total) ? suffix[i + 1] : Mbr(dims_);
    suffix[i].Expand(node.entries[axis_order[i]].mbr);
  }
  size_t best_k = min_entries;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t k = min_entries; k <= total - min_entries; ++k) {
    const double overlap = prefix[k - 1].OverlapArea(suffix[k]);
    const double area = prefix[k - 1].Area() + suffix[k].Area();
    if (overlap < best_overlap || (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  // Materialize the two groups.
  const PageId sibling_id = AllocateNode(node.is_leaf);
  RTreeNode& fresh = Node(node_id);  // re-fetch: AllocateNode may not move (deque) but be safe
  RTreeNode& sibling = Node(sibling_id);
  std::vector<RTreeEntry> group1, group2;
  group1.reserve(best_k);
  group2.reserve(total - best_k);
  for (size_t i = 0; i < total; ++i) {
    (i < best_k ? group1 : group2).push_back(std::move(fresh.entries[axis_order[i]]));
  }
  fresh.entries = std::move(group1);
  sibling.entries = std::move(group2);
  pool_.RecordWrite();  // both pages rewritten
  return sibling_id;
}

PageId RTree::InsertRec(PageId node_id, const RTreeEntry& entry) {
  RTreeNode& node = Node(node_id);
  if (node.is_leaf) {
    node.entries.push_back(entry);
  } else {
    const size_t idx = ChooseSubtree(node, entry.mbr);
    const PageId child = node.entries[idx].child;
    const PageId sibling = InsertRec(child, entry);
    RTreeNode& refreshed = Node(node_id);
    refreshed.entries[idx].mbr = NodeNoIo(child).ComputeMbr(dims_);
    refreshed.entries[idx].count = NodeNoIo(child).TotalCount();
    if (sibling != kInvalidPageId) {
      RTreeEntry se;
      se.mbr = NodeNoIo(sibling).ComputeMbr(dims_);
      se.child = sibling;
      se.count = NodeNoIo(sibling).TotalCount();
      refreshed.entries.push_back(se);
    }
  }
  RTreeNode& current = Node(node_id);
  const size_t cap = current.is_leaf ? leaf_capacity_ : internal_capacity_;
  if (current.entries.size() > cap) return SplitNode(node_id);
  return kInvalidPageId;
}

void RTree::Insert(std::span<const Coord> point, RowId row) {
  SKYDIVER_DCHECK_EQ(point.size(), dims_);
  if (root_ == kInvalidPageId) {
    root_ = AllocateNode(/*is_leaf=*/true);
    height_ = 1;
  }
  RTreeEntry entry;
  entry.mbr = Mbr::OfPoint(point);
  entry.count = 1;
  entry.row = row;
  const PageId sibling = InsertRec(root_, entry);
  if (sibling != kInvalidPageId) {
    const PageId new_root = AllocateNode(/*is_leaf=*/false);
    RTreeNode& root_node = Node(new_root);
    for (PageId child : {root_, sibling}) {
      RTreeEntry e;
      e.mbr = NodeNoIo(child).ComputeMbr(dims_);
      e.child = child;
      e.count = NodeNoIo(child).TotalCount();
      root_node.entries.push_back(e);
    }
    root_ = new_root;
    ++height_;
  }
  ++size_;
}

// ---------------------------------------------------------------------------
// STR bulk load.
// ---------------------------------------------------------------------------

namespace {

// Recursive Sort-Tile-Recursive partitioning of `idx` into groups of at
// most `cap` rows, tiling one dimension at a time. Groups are balanced so
// every group holds at least ~cap/2 rows (satisfying the min-fill invariant).
void TileRec(const DataSet& data, std::span<RowId> idx, Dim dim, size_t cap,
             std::vector<std::pair<size_t, size_t>>* groups, size_t base) {
  const size_t n = idx.size();
  if (n <= cap) {
    groups->emplace_back(base, base + n);
    return;
  }
  const size_t num_groups = (n + cap - 1) / cap;
  const Dim dims = data.dims();
  auto sort_by = [&](Dim d) {
    std::sort(idx.begin(), idx.end(),
              [&](RowId a, RowId b) { return data.at(a, d) < data.at(b, d); });
  };
  if (dim + 1 >= dims) {
    sort_by(dim);
    const auto borders = EvenChunks(n, num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      groups->emplace_back(base + borders[g], base + borders[g + 1]);
    }
    return;
  }
  const auto slabs = static_cast<size_t>(std::ceil(
      std::pow(static_cast<double>(num_groups), 1.0 / static_cast<double>(dims - dim))));
  sort_by(dim);
  const auto borders = EvenChunks(n, std::max<size_t>(1, slabs));
  for (size_t s = 0; s + 1 < borders.size(); ++s) {
    TileRec(data, idx.subspan(borders[s], borders[s + 1] - borders[s]), dim + 1, cap,
            groups, base + borders[s]);
  }
}

}  // namespace

void RTree::BulkLoadInternal(const DataSet& data) {
  const RowId n = data.size();
  std::vector<RowId> idx(n);
  std::iota(idx.begin(), idx.end(), RowId{0});
  std::vector<std::pair<size_t, size_t>> groups;
  TileRec(data, idx, 0, leaf_capacity_, &groups, 0);

  // Leaf level.
  std::vector<PageId> level;
  level.reserve(groups.size());
  for (const auto& [begin, end] : groups) {
    const PageId id = AllocateNode(/*is_leaf=*/true);
    RTreeNode& node = Node(id);
    node.entries.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      RTreeEntry e;
      e.mbr = Mbr::OfPoint(data.row(idx[i]));
      e.count = 1;
      e.row = idx[i];
      node.entries.push_back(std::move(e));
    }
    level.push_back(id);
  }
  height_ = 1;

  // Upper levels: pack sequential runs (leaves are already space-ordered).
  while (level.size() > 1) {
    const size_t num_groups = (level.size() + internal_capacity_ - 1) / internal_capacity_;
    const auto borders = EvenChunks(level.size(), num_groups);
    std::vector<PageId> next;
    next.reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      const PageId id = AllocateNode(/*is_leaf=*/false);
      RTreeNode& node = Node(id);
      for (size_t i = borders[g]; i < borders[g + 1]; ++i) {
        RTreeEntry e;
        e.mbr = NodeNoIo(level[i]).ComputeMbr(dims_);
        e.child = level[i];
        e.count = NodeNoIo(level[i]).TotalCount();
        node.entries.push_back(std::move(e));
      }
      next.push_back(id);
    }
    level = std::move(next);
    ++height_;
  }
  root_ = level.front();
  size_ = n;
}

// ---------------------------------------------------------------------------
// Queries.
// ---------------------------------------------------------------------------

uint64_t RTree::RangeCount(std::span<const Coord> lo, std::span<const Coord> hi) const {
  // Infallible unwrap: RTree::ReadNode cannot fail, so the shared
  // traversal's Result is always OK here (DiskRTree's is the fallible one).
  return traversal::RangeCount(*this, lo, hi).value();
}

std::vector<RowId> RTree::RangeSearch(std::span<const Coord> lo,
                                      std::span<const Coord> hi) const {
  return traversal::RangeSearch(*this, lo, hi).value();
}

std::vector<RTree::Neighbor> RTree::NearestNeighbors(std::span<const Coord> point,
                                                     size_t k) const {
  std::vector<Neighbor> out;
  if (root_ == kInvalidPageId || k == 0) return out;
  SKYDIVER_DCHECK_EQ(point.size(), dims_);

  // Squared Euclidean distance from `point` to the nearest corner of `m`.
  auto min_dist2 = [&](const Mbr& m) {
    double s = 0.0;
    for (Dim i = 0; i < dims_; ++i) {
      double diff = 0.0;
      if (point[i] < m.lo(i)) {
        diff = m.lo(i) - point[i];
      } else if (point[i] > m.hi(i)) {
        diff = point[i] - m.hi(i);
      }
      s += diff * diff;
    }
    return s;
  };

  struct HeapItem {
    double dist2;
    bool is_point;
    PageId child;
    RowId row;
    bool operator>(const HeapItem& other) const { return dist2 > other.dist2; }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  heap.push(HeapItem{0.0, false, root_, kInvalidRowId});
  while (!heap.empty() && out.size() < k) {
    const HeapItem item = heap.top();
    heap.pop();
    if (item.is_point) {
      out.push_back(Neighbor{item.row, std::sqrt(item.dist2)});
      continue;
    }
    // skylint:allow(pin-discipline): RTree's own ReadNode hands out stable
    // references into the deque store — nothing to pin.
    const RTreeNode& node = ReadNode(item.child);
    for (const auto& e : node.entries) {
      if (node.is_leaf) {
        heap.push(HeapItem{min_dist2(e.mbr), true, kInvalidPageId, e.row});
      } else {
        heap.push(HeapItem{min_dist2(e.mbr), false, e.child, kInvalidRowId});
      }
    }
  }
  return out;
}

uint64_t RTree::DominatedCount(std::span<const Coord> p) const {
  return traversal::DominatedCount(*this, p).value();
}

uint64_t RTree::CommonDominatedCount(std::span<const Coord> p,
                                     std::span<const Coord> q) const {
  return traversal::CommonDominatedCount(*this, p, q).value();
}

// ---------------------------------------------------------------------------
// Invariants.
// ---------------------------------------------------------------------------

Status RTree::CheckInvariants() const {
  if (root_ == kInvalidPageId) {
    return size_ == 0 ? Status::OK() : Status::Internal("no root but non-zero size");
  }
  struct Item {
    PageId id;
    uint32_t depth;
  };
  std::vector<Item> stack{{root_, 1}};
  uint64_t points = 0;
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    const RTreeNode& node = NodeNoIo(id);
    const size_t cap = node.is_leaf ? leaf_capacity_ : internal_capacity_;
    if (node.entries.size() > cap) {
      return Status::Internal("node " + std::to_string(id) + " overflows capacity");
    }
    if (node.entries.empty() && id != root_) {
      return Status::Internal("non-root node " + std::to_string(id) + " is empty");
    }
    if (node.is_leaf) {
      if (depth != height_) {
        return Status::Internal("leaf " + std::to_string(id) + " at depth " +
                                std::to_string(depth) + ", expected " +
                                std::to_string(height_));
      }
      for (const auto& e : node.entries) {
        if (e.count != 1 || e.row == kInvalidRowId) {
          return Status::Internal("malformed leaf entry in node " + std::to_string(id));
        }
        ++points;
      }
    } else {
      for (const auto& e : node.entries) {
        const RTreeNode& child = NodeNoIo(e.child);
        if (!(e.mbr == child.ComputeMbr(dims_))) {
          return Status::Internal("stale MBR for child " + std::to_string(e.child));
        }
        if (e.count != child.TotalCount()) {
          return Status::Internal("stale aggregate count for child " +
                                  std::to_string(e.child));
        }
        stack.push_back({e.child, depth + 1});
      }
    }
  }
  if (points != size_) {
    return Status::Internal("leaf entries " + std::to_string(points) +
                            " != tree size " + std::to_string(size_));
  }
  return Status::OK();
}

}  // namespace skydiver
