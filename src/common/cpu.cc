#include "common/cpu.h"

#include <cstdlib>
#include <string_view>

namespace skydiver {

const char* ToString(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kNone: return "none";
    case SimdIsa::kPortable: return "portable";
    case SimdIsa::kAvx2: return "avx2";
    case SimdIsa::kNeon: return "neon";
  }
  return "?";
}

SimdIsa ProbeSimdIsa() {
#if defined(__aarch64__)
  // Advanced SIMD is mandatory in AArch64; no HWCAP read needed.
  return SimdIsa::kNeon;
#elif (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") ? SimdIsa::kAvx2 : SimdIsa::kNone;
#else
  return SimdIsa::kNone;
#endif
}

SimdIsa ApplyIsaOverride(SimdIsa probed, const char* force) {
  if (force == nullptr) return probed;
  const std::string_view name(force);
  if (name.empty()) return probed;
  if (name == "scalar" || name == "none") return SimdIsa::kNone;
  if (name == "portable") return SimdIsa::kPortable;
  // A named ISA can only be kept, never enabled: forcing one the probe did
  // not find reports kNone (fail safe — we must never execute instructions
  // the hardware lacks).
  if (name == "avx2") return probed == SimdIsa::kAvx2 ? probed : SimdIsa::kNone;
  if (name == "neon") return probed == SimdIsa::kNeon ? probed : SimdIsa::kNone;
  return probed;  // unrecognized values are ignored
}

SimdIsa DetectSimdIsa() {
  static const SimdIsa resolved =
      ApplyIsaOverride(ProbeSimdIsa(), std::getenv("SKYDIVER_FORCE_ISA"));
  return resolved;
}

bool SimdAvailable() { return DetectSimdIsa() != SimdIsa::kNone; }

}  // namespace skydiver
