// Dense dynamic bit vector with popcount-based set algebra.
//
// Used for (a) materialized dominated sets Γ(p) in exact Jaccard /
// max-coverage computations and (b) the LSH bucket bit-vectors, whose
// diversity is the Hamming distance.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace skydiver {

/// Fixed-size bit vector over 64-bit words.
class BitVector {
 public:
  BitVector() = default;

  /// All-zero bit vector with `n` bits.
  explicit BitVector(size_t n) : size_(n), words_((n + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void Set(size_t i) {
    SKYDIVER_DCHECK_LT(i, size_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void Clear(size_t i) {
    SKYDIVER_DCHECK_LT(i, size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  bool Test(size_t i) const {
    SKYDIVER_DCHECK_LT(i, size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(std::popcount(w));
    return c;
  }

  /// |this AND other|; sizes must match.
  size_t AndCount(const BitVector& other) const {
    SKYDIVER_DCHECK_EQ(size_, other.size_);
    size_t c = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      c += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
    }
    return c;
  }

  /// |this OR other|; sizes must match.
  size_t OrCount(const BitVector& other) const {
    SKYDIVER_DCHECK_EQ(size_, other.size_);
    size_t c = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      c += static_cast<size_t>(std::popcount(words_[i] | other.words_[i]));
    }
    return c;
  }

  /// Hamming distance (|this XOR other|); sizes must match.
  size_t HammingDistance(const BitVector& other) const {
    SKYDIVER_DCHECK_EQ(size_, other.size_);
    size_t c = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      c += static_cast<size_t>(std::popcount(words_[i] ^ other.words_[i]));
    }
    return c;
  }

  /// In-place union.
  BitVector& operator|=(const BitVector& other) {
    SKYDIVER_DCHECK_EQ(size_, other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  /// Number of bits set in `other` but not in this (gain of adding `other`
  /// to a running union) — the greedy max-coverage inner loop.
  size_t NewCoverage(const BitVector& other) const {
    SKYDIVER_DCHECK_EQ(size_, other.size_);
    size_t c = 0;
    for (size_t i = 0; i < words_.size(); ++i) {
      c += static_cast<size_t>(std::popcount(other.words_[i] & ~words_[i]));
    }
    return c;
  }

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Heap bytes used (for the memory-consumption experiments).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace skydiver
