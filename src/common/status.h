// Status / Result error model for the SkyDiver library.
//
// SkyDiver follows the RocksDB/Arrow convention: recoverable errors are
// reported through `Status` (or `Result<T>` for value-returning functions)
// rather than exceptions. Programming errors (violated preconditions that
// indicate a bug in the caller) abort through the SKYDIVER_DCHECK layer
// (common/check.h) in debug builds.
//
// Both types are [[nodiscard]]: silently dropping an error is itself an
// error, enforced by the compiler at -Werror and by skylint's
// discarded-status rule for builds that disable warnings.

#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/check.h"

namespace skydiver {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kNotSupported,
  kIoError,
  kInternal,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail.
///
/// A `Status` is either OK (the default) or carries a code plus a
/// human-readable message. It is cheap to copy in the OK case.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type T or an error `Status`.
///
/// Accessing the value of an errored Result is a programming error and
/// asserts in debug builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    SKYDIVER_DCHECK(!std::get<Status>(payload_).ok(), "Result constructed from OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status; OK if this result holds a value.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    SKYDIVER_DCHECK(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    SKYDIVER_DCHECK(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    SKYDIVER_DCHECK(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller.
#define SKYDIVER_RETURN_NOT_OK(expr)             \
  do {                                           \
    ::skydiver::Status _st = (expr);             \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace skydiver
