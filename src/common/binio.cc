#include "common/binio.h"

#include <cstring>

namespace skydiver {

namespace {

// All values are serialized little-endian regardless of host order.
template <typename T>
void ToLittleEndian(T v, unsigned char* out) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out[i] = static_cast<unsigned char>(v & 0xff);
    v = static_cast<T>(v >> 8);
  }
}

template <typename T>
T FromLittleEndian(const unsigned char* in) {
  T v = 0;
  for (size_t i = sizeof(T); i-- > 0;) {
    v = static_cast<T>((v << 8) | in[i]);
  }
  return v;
}

}  // namespace

BinaryWriter::BinaryWriter(const std::string& path, const char magic[8])
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (out_) out_.write(magic, 8);
}

void BinaryWriter::WriteRaw(const void* data, size_t len) {
  checksum_.Update(data, len);
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
}

void BinaryWriter::WriteU32(uint32_t v) {
  unsigned char buf[4];
  ToLittleEndian(v, buf);
  WriteRaw(buf, sizeof(buf));
}

void BinaryWriter::WriteU64(uint64_t v) {
  unsigned char buf[8];
  ToLittleEndian(v, buf);
  WriteRaw(buf, sizeof(buf));
}

void BinaryWriter::WriteDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

Status BinaryWriter::Finish() {
  unsigned char buf[8];
  ToLittleEndian(checksum_.digest(), buf);
  out_.write(reinterpret_cast<const char*>(buf), sizeof(buf));
  out_.flush();
  if (!out_) return Status::IoError("write failed while finishing file");
  return Status::OK();
}

BinaryReader::BinaryReader(const std::string& path, const char magic[8])
    : in_(path, std::ios::binary) {
  if (!in_) {
    status_ = Status::IoError("cannot open '" + path + "' for reading");
    return;
  }
  char found[8];
  in_.read(found, 8);
  if (!in_ || std::memcmp(found, magic, 8) != 0) {
    status_ = Status::InvalidArgument("'" + path + "' has the wrong magic — not a " +
                                      std::string(magic, 8) + " file");
  }
}

bool BinaryReader::ReadRaw(void* data, size_t len) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(len));
  if (!in_) return false;
  checksum_.Update(data, len);
  return true;
}

bool BinaryReader::ReadU32(uint32_t* v) {
  unsigned char buf[4];
  if (!ReadRaw(buf, sizeof(buf))) return false;
  *v = FromLittleEndian<uint32_t>(buf);
  return true;
}

bool BinaryReader::ReadU64(uint64_t* v) {
  unsigned char buf[8];
  if (!ReadRaw(buf, sizeof(buf))) return false;
  *v = FromLittleEndian<uint64_t>(buf);
  return true;
}

bool BinaryReader::ReadDouble(double* v) {
  uint64_t bits;
  if (!ReadU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

Status BinaryReader::VerifyChecksum() {
  const uint64_t computed = checksum_.digest();
  unsigned char buf[8];
  in_.read(reinterpret_cast<char*>(buf), sizeof(buf));
  if (!in_) return Status::IoError("file truncated before checksum");
  const uint64_t stored = FromLittleEndian<uint64_t>(buf);
  if (stored != computed) {
    return Status::IoError("checksum mismatch: file is corrupted");
  }
  return Status::OK();
}

}  // namespace skydiver
