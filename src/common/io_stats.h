// I/O accounting and the simulated disk cost model.
//
// The SkyDiver paper measures "total time" as CPU time plus a default charge
// of 8 ms per page fault (EDBT'13, Section 5.1). We reproduce that cost model
// exactly: every component that touches pages (the aggregate R*-tree through
// its buffer pool, and the sequential data-file scan of the index-free
// signature generator) records logical and physical page accesses in an
// `IoStats`, and `CostModel` converts fault counts into charged seconds.

#pragma once

#include <cstdint>

namespace skydiver {

/// Counters for page-level I/O activity.
struct IoStats {
  /// Logical page requests (buffer-pool lookups or sequential page reads).
  uint64_t page_reads = 0;
  /// Physical reads: logical requests that missed the buffer pool. For
  /// sequential file scans every page read is a fault (no cache assumed).
  uint64_t page_faults = 0;
  /// Pages written (index construction).
  uint64_t page_writes = 0;
  /// Speculative physical reads issued by the async prefetcher. Kept out of
  /// page_reads/page_faults on purpose: faults stay "demand misses", so the
  /// 8 ms cost model and the sim-vs-real parity checks keep their meaning
  /// whether prefetch is on or off.
  uint64_t page_prefetches = 0;

  void Reset() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& other) {
    page_reads += other.page_reads;
    page_faults += other.page_faults;
    page_writes += other.page_writes;
    page_prefetches += other.page_prefetches;
    return *this;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }

  double HitRate() const {
    return page_reads == 0
               ? 0.0
               : 1.0 - static_cast<double>(page_faults) / static_cast<double>(page_reads);
  }
};

/// Converts fault counts into charged time, per the paper's measurement model.
struct CostModel {
  /// Default page-fault penalty from the paper: 8 ms.
  double seconds_per_fault = 0.008;

  /// Charged I/O time for the given stats, in seconds.
  double IoSeconds(const IoStats& stats) const {
    return seconds_per_fault * static_cast<double>(stats.page_faults);
  }

  /// Total simulated time: measured CPU seconds + charged I/O seconds.
  double TotalSeconds(double cpu_seconds, const IoStats& stats) const {
    return cpu_seconds + IoSeconds(stats);
  }
};

}  // namespace skydiver
