// Minimal command-line flag parser for the benchmark harness binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--name` /
// `--no-name` forms. Unknown flags are reported as errors so typos in
// experiment invocations fail loudly.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace skydiver {

/// Declarative flag set: register flags, then Parse(argc, argv).
class Flags {
 public:
  /// Registers a flag bound to `target` with a help string.
  void AddInt64(const std::string& name, int64_t* target, std::string help);
  void AddDouble(const std::string& name, double* target, std::string help);
  void AddBool(const std::string& name, bool* target, std::string help);
  void AddString(const std::string& name, std::string* target, std::string help);

  /// Parses argv; on error returns InvalidArgument with an explanation.
  /// Recognizes --help and sets help_requested().
  [[nodiscard]] Status Parse(int argc, char** argv);

  bool help_requested() const { return help_requested_; }

  /// Renders a usage message listing all registered flags and defaults.
  std::string Usage(const std::string& program) const;

 private:
  enum class Kind { kInt64, kDouble, kBool, kString };
  struct Entry {
    Kind kind;
    void* target;
    std::string help;
    std::string default_value;
  };

  [[nodiscard]] Status Assign(const std::string& name, const std::string& value);

  std::map<std::string, Entry> entries_;
  bool help_requested_ = false;
};

}  // namespace skydiver
