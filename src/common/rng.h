// Deterministic pseudo-random number generation.
//
// All stochastic components of SkyDiver (data generators, MinHash parameter
// draws, LSH bucket hashing) consume randomness through `Rng`, a seedable
// xoshiro256++ generator, so that every experiment is reproducible from its
// seed alone.

#pragma once

#include <cstdint>
#include <cmath>

namespace skydiver {

/// \brief Seedable xoshiro256++ pseudo-random generator.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it can also be
/// plugged into <random> distributions when convenient. Not cryptographic.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator via SplitMix64 state expansion.
  void Seed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit draw.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound); bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal draw (Marsaglia polar method).
  double NextGaussian();

  /// Normal draw with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Exponential draw with the given rate lambda (> 0).
  double NextExponential(double lambda);

  /// Splits off an independent child generator (for parallel streams).
  Rng Split();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace skydiver
