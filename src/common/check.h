// SkyDiver's single invariant-checking layer.
//
// Programming errors (violated preconditions, broken data-structure
// invariants) abort through the macros below instead of bare `assert`:
// failures log the expression, file:line, the operand values for the
// comparison forms, and an optional message before calling abort(), so a
// crashed CI job or production run says *what* broke, not just where.
//
// - SKYDIVER_CHECK*  — always on, in every build type. Use for cheap
//   checks guarding memory safety or on cold paths.
// - SKYDIVER_DCHECK* — compiled out under NDEBUG (Release/RelWithDebInfo).
//   Use freely on hot paths; the Debug CI lane runs them.
//
// This header is the only place in the tree allowed to reference the
// lowercase `assert` machinery; skylint (tools/skylint) enforces that no
// other file under src/, tools/ or bench/ uses `assert(` directly.

#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace skydiver {
namespace internal {

/// Prints "SKYDIVER CHECK failed: <expr> (<detail>) at <file>:<line>" to
/// stderr and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              std::string_view detail);

/// Renders one comparison operand for the failure message.
template <typename T>
std::string CheckOpValue(const T& v) {
  if constexpr (std::is_convertible_v<const T&, std::string_view>) {
    return std::string(std::string_view(v));
  } else {
    std::ostringstream out;
    out << v;
    return out.str();
  }
}

/// Failure detail for SKYDIVER_CHECK_OK: works for both `Status` (has
/// ToString) and `Result<T>` (has status()) without including status.h —
/// this header sits below it.
template <typename T>
std::string StatusDetail(const T& st) {
  if constexpr (requires { st.status(); }) {  // skylint:allow(discarded-status)
    return st.status().ToString();
  } else {
    return st.ToString();
  }
}

template <typename A, typename B>
[[noreturn]] void CheckOpFailed(const char* expr, const char* file, int line,
                                const A& a, const B& b, std::string_view msg) {
  std::string detail = CheckOpValue(a) + " vs. " + CheckOpValue(b);
  if (!msg.empty()) {
    detail += ": ";
    detail += msg;
  }
  CheckFailed(expr, file, line, detail);
}

}  // namespace internal
}  // namespace skydiver

/// Aborts with a diagnostic unless `cond` holds. An optional extra argument
/// (anything streamable into the message) is appended to the diagnostic.
#define SKYDIVER_CHECK(cond, ...)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::skydiver::internal::CheckFailed(                                   \
          #cond, __FILE__, __LINE__,                                       \
          ::skydiver::internal::CheckOpValue(std::string_view(             \
              "" __VA_ARGS__)));                                           \
    }                                                                      \
  } while (false)

/// Aborts unless `status_expr` yields an OK Status/Result; the failure
/// message carries the status's ToString().
#define SKYDIVER_CHECK_OK(status_expr)                                      \
  do {                                                                      \
    auto&& _skydiver_st = (status_expr);                                    \
    if (!_skydiver_st.ok()) {                                               \
      ::skydiver::internal::CheckFailed(                                    \
          #status_expr, __FILE__, __LINE__,                                 \
          ::skydiver::internal::StatusDetail(_skydiver_st));                \
    }                                                                       \
  } while (false)

#define SKYDIVER_CHECK_OP_(op, a, b, ...)                                    \
  do {                                                                       \
    auto&& _skydiver_a = (a);                                                \
    auto&& _skydiver_b = (b);                                                \
    if (!(_skydiver_a op _skydiver_b)) {                                     \
      ::skydiver::internal::CheckOpFailed(#a " " #op " " #b, __FILE__,       \
                                          __LINE__, _skydiver_a,             \
                                          _skydiver_b, "" __VA_ARGS__);      \
    }                                                                        \
  } while (false)

#define SKYDIVER_CHECK_EQ(a, b, ...) SKYDIVER_CHECK_OP_(==, a, b, __VA_ARGS__)
#define SKYDIVER_CHECK_NE(a, b, ...) SKYDIVER_CHECK_OP_(!=, a, b, __VA_ARGS__)
#define SKYDIVER_CHECK_LT(a, b, ...) SKYDIVER_CHECK_OP_(<, a, b, __VA_ARGS__)
#define SKYDIVER_CHECK_LE(a, b, ...) SKYDIVER_CHECK_OP_(<=, a, b, __VA_ARGS__)
#define SKYDIVER_CHECK_GT(a, b, ...) SKYDIVER_CHECK_OP_(>, a, b, __VA_ARGS__)
#define SKYDIVER_CHECK_GE(a, b, ...) SKYDIVER_CHECK_OP_(>=, a, b, __VA_ARGS__)

// Debug-only forms. Under NDEBUG they expand to a dead branch so the
// condition still type-checks (no -Wunused fallout) but is never evaluated.
#ifdef NDEBUG
#define SKYDIVER_DCHECK_ACTIVE_ 0
#else
#define SKYDIVER_DCHECK_ACTIVE_ 1
#endif

#if SKYDIVER_DCHECK_ACTIVE_
#define SKYDIVER_DCHECK(cond, ...) SKYDIVER_CHECK(cond, __VA_ARGS__)
#define SKYDIVER_DCHECK_OK(expr) SKYDIVER_CHECK_OK(expr)
#define SKYDIVER_DCHECK_EQ(a, b, ...) SKYDIVER_CHECK_EQ(a, b, __VA_ARGS__)
#define SKYDIVER_DCHECK_NE(a, b, ...) SKYDIVER_CHECK_NE(a, b, __VA_ARGS__)
#define SKYDIVER_DCHECK_LT(a, b, ...) SKYDIVER_CHECK_LT(a, b, __VA_ARGS__)
#define SKYDIVER_DCHECK_LE(a, b, ...) SKYDIVER_CHECK_LE(a, b, __VA_ARGS__)
#define SKYDIVER_DCHECK_GT(a, b, ...) SKYDIVER_CHECK_GT(a, b, __VA_ARGS__)
#define SKYDIVER_DCHECK_GE(a, b, ...) SKYDIVER_CHECK_GE(a, b, __VA_ARGS__)
#else
#define SKYDIVER_DCHECK_NOOP_(cond)     \
  do {                                  \
    if (false) {                        \
      (void)(cond);                     \
    }                                   \
  } while (false)
#define SKYDIVER_DCHECK(cond, ...) SKYDIVER_DCHECK_NOOP_(cond)
#define SKYDIVER_DCHECK_OK(expr) SKYDIVER_DCHECK_NOOP_((expr).ok())
#define SKYDIVER_DCHECK_EQ(a, b, ...) SKYDIVER_DCHECK_NOOP_((a) == (b))
#define SKYDIVER_DCHECK_NE(a, b, ...) SKYDIVER_DCHECK_NOOP_((a) != (b))
#define SKYDIVER_DCHECK_LT(a, b, ...) SKYDIVER_DCHECK_NOOP_((a) < (b))
#define SKYDIVER_DCHECK_LE(a, b, ...) SKYDIVER_DCHECK_NOOP_((a) <= (b))
#define SKYDIVER_DCHECK_GT(a, b, ...) SKYDIVER_DCHECK_NOOP_((a) > (b))
#define SKYDIVER_DCHECK_GE(a, b, ...) SKYDIVER_DCHECK_NOOP_((a) >= (b))
#endif
