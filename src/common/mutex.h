// Annotated synchronization primitives — the project's ONLY sanctioned
// mutex/condition-variable types inside src/.
//
// Raw std::mutex / std::condition_variable / std::lock_guard are invisible
// to Clang Thread Safety Analysis: the analysis only tracks types declared
// as capabilities and RAII guards declared as scoped capabilities. These
// thin wrappers carry those declarations (common/thread_annotations.h), so
// every critical section in the tree is statically checked in the
// `thread-safety` CI lane, and skylint's `guarded-mutex` /
// `lock-discipline` rules reject raw primitives and naked lock()/unlock()
// calls that would punch holes in the analysis.
//
// Usage pattern:
//
//   class Thing {
//    public:
//     void Touch() {
//       MutexLock lock(mutex_);
//       ++count_;                       // OK: mutex_ held
//     }
//    private:
//     mutable Mutex mutex_;
//     size_t count_ SKYDIVER_GUARDED_BY(mutex_) = 0;
//   };
//
// Condition waits are single-cycle by design: `CondVar::Wait` performs ONE
// wait (it may wake spuriously) so the predicate loop lives in the caller,
// where the analysis can see the lock held across the guarded reads:
//
//   MutexLock lock(mutex_);
//   while (queue_.empty()) ready_.Wait(mutex_);
//
// (A predicate-lambda overload would move the guarded reads into an
// unannotated closure the analysis cannot attribute to the lock.)
//
// This file is the one sanctioned home of the underlying std primitives;
// skylint exempts it from the concurrency rules it enforces everywhere
// else under src/.

#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace skydiver {

/// Exclusive mutex, declared as a thread-safety capability. Prefer the
/// RAII guards (MutexLock) over calling Lock/Unlock directly — skylint's
/// `lock-discipline` rule enforces exactly that outside this header.
class SKYDIVER_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SKYDIVER_ACQUIRE() { mu_.lock(); }
  void Unlock() SKYDIVER_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() SKYDIVER_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader-writer mutex capability. Exclusive mode for writers, shared mode
/// for readers (ReaderMutexLock / WriterMutexLock below).
class SKYDIVER_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SKYDIVER_ACQUIRE() { mu_.lock(); }
  void Unlock() SKYDIVER_RELEASE() { mu_.unlock(); }
  void LockShared() SKYDIVER_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() SKYDIVER_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex (the std::lock_guard replacement the
/// analysis can follow).
class SKYDIVER_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SKYDIVER_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SKYDIVER_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class SKYDIVER_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SKYDIVER_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() SKYDIVER_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex. The destructor is
/// RELEASE_GENERIC: a scoped capability may hold either mode, and generic
/// release is the annotation that matches whichever was acquired.
class SKYDIVER_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SKYDIVER_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() SKYDIVER_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with Mutex. Wait() is ONE wait cycle — it
/// releases `mu`, blocks until notified (or a spurious wakeup), reacquires
/// `mu`, and returns; callers therefore loop on their predicate with the
/// lock held, which is both the correct use of condition variables and the
/// shape the thread-safety analysis can check.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One wait cycle on `mu`, which must be held (and is held again on
  /// return). May wake spuriously: loop on the predicate.
  void Wait(Mutex& mu) SKYDIVER_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    // Single-cycle by contract: every caller loops on its predicate under
    // the lock (see class comment), which is what the spurious-wakeup
    // checker wants to see at the call site it cannot look up to.
    cv_.wait(lock);  // NOLINT(bugprone-spuriously-wake-up-functions)
    lock.release();  // ownership stays with the caller's scoped guard
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Condition variable paired with the EXCLUSIVE side of a SharedMutex
/// (condition_variable_any under the hood). Same single-cycle contract as
/// CondVar: one wait per call, the predicate loop lives in the caller under
/// a WriterMutexLock. Used by internally-synchronized caches whose state
/// lives behind a SharedMutex capability (rtree/page_cache.h) and whose
/// loading protocol needs to park waiters without giving up the capability
/// annotation story.
class SharedCondVar {
 public:
  SharedCondVar() = default;
  SharedCondVar(const SharedCondVar&) = delete;
  SharedCondVar& operator=(const SharedCondVar&) = delete;

  /// One wait cycle on `mu`, which must be held EXCLUSIVE (and is held
  /// again on return). May wake spuriously: loop on the predicate.
  void Wait(SharedMutex& mu) SKYDIVER_REQUIRES(mu) {
    ExclusiveAdapter adapter(mu);
    // Single-cycle by contract (see CondVar::Wait): callers loop on their
    // predicate under the writer lock.
    cv_.wait(adapter);  // NOLINT(bugprone-spuriously-wake-up-functions)
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // BasicLockable view of a SharedMutex's exclusive side, for
  // condition_variable_any. The annotations balance each call so the
  // thread-safety analysis tracks the capability across the wait exactly
  // as it does for CondVar's adopt_lock dance.
  class ExclusiveAdapter {
   public:
    explicit ExclusiveAdapter(SharedMutex& mu) : mu_(mu) {}
    void lock() SKYDIVER_ACQUIRE(mu_) { mu_.Lock(); }
    void unlock() SKYDIVER_RELEASE(mu_) { mu_.Unlock(); }

   private:
    SharedMutex& mu_;
  };

  std::condition_variable_any cv_;
};

}  // namespace skydiver
