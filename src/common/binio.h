// Checksummed little-endian binary file I/O.
//
// Backs the persistence of datasets and R*-trees (save once, reload across
// sessions without rebuilding). Format discipline: an 8-byte magic, a
// fixed-width header, the payload, and a trailing FNV-1a checksum covering
// everything after the magic. Readers verify the checksum before any
// loaded structure is handed to the caller.

#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "common/status.h"

namespace skydiver {

/// Incremental 64-bit FNV-1a.
class Fnv1a {
 public:
  void Update(const void* data, size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/// Buffered writer with running checksum (checksum excludes the magic).
class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the 8-byte `magic`.
  BinaryWriter(const std::string& path, const char magic[8]);

  bool ok() const { return static_cast<bool>(out_); }

  void WriteU8(uint8_t v) { WriteRaw(&v, 1); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteDouble(double v);
  void WriteBytes(const void* data, size_t len) { WriteRaw(data, len); }

  /// Appends the checksum and flushes. Returns IoError on write failure.
  [[nodiscard]] Status Finish();

 private:
  void WriteRaw(const void* data, size_t len);
  std::ofstream out_;
  Fnv1a checksum_;
};

/// Reader mirroring BinaryWriter; all Read* return false past EOF.
class BinaryReader {
 public:
  /// Opens `path` and checks the magic. Call status() before reading.
  BinaryReader(const std::string& path, const char magic[8]);

  const Status& status() const { return status_; }

  bool ReadU8(uint8_t* v) { return ReadRaw(v, 1); }
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadDouble(double* v);
  bool ReadBytes(void* data, size_t len) { return ReadRaw(data, len); }

  /// Reads the trailing checksum and compares with the running digest.
  [[nodiscard]] Status VerifyChecksum();

 private:
  bool ReadRaw(void* data, size_t len);
  std::ifstream in_;
  Fnv1a checksum_;
  Status status_;
};

}  // namespace skydiver
