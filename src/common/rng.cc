#include "common/rng.h"

#include "common/check.h"

namespace skydiver {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  has_cached_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits into the [0,1) mantissa range.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SKYDIVER_DCHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * mul;
  has_cached_gaussian_ = true;
  return u * mul;
}

double Rng::NextExponential(double lambda) {
  SKYDIVER_DCHECK_GT(lambda, 0.0);
  // Inverse CDF; guard against log(0).
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

Rng Rng::Split() { return Rng(Next()); }

}  // namespace skydiver
