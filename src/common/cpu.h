// CPU feature detection for the SIMD dominance kernels.
//
// `DetectSimdIsa()` answers "which vector ISA may the `simd` kernel
// flavour use?" once per process: AVX2 on x86-64 hosts whose CPUID
// reports it, NEON on AArch64 (where Advanced SIMD is architecturally
// mandatory), and kNone elsewhere. The probe result is cached; every
// dispatch point (the kernel vtable, the planner, `EffectiveKernel`)
// reads the same resolved value, so one process never mixes ISAs.
//
// The `SKYDIVER_FORCE_ISA` environment variable overrides the probe FOR
// TESTING. It can only restrict — it never enables an ISA the hardware
// lacks:
//
//   SKYDIVER_FORCE_ISA=scalar (or none)  report no vector ISA; the planner
//                                        and EffectiveKernel downgrade
//                                        kSimd plans to kTiled, proving the
//                                        fallback path in CI
//   SKYDIVER_FORCE_ISA=portable         keep the simd flavour but route it
//                                        through the portable word-mask
//                                        sweep (tests the fallback backend
//                                        on any host)
//   SKYDIVER_FORCE_ISA=avx2 | neon      keep the named ISA if the probe
//                                        found it, otherwise report kNone
//
// Unrecognized values are ignored (the probe result stands).

#pragma once

#include <cstdint>

namespace skydiver {

/// Vector ISA resolved for the `simd` dominance-kernel flavour.
enum class SimdIsa : uint8_t {
  kNone,      ///< No vector ISA: kSimd downgrades to kTiled.
  kPortable,  ///< Forced portable word-mask sweep (testing only).
  kAvx2,      ///< 4 x double lanes, compare-to-mask + movemask.
  kNeon,      ///< 2 x double lanes (AArch64 Advanced SIMD).
};

const char* ToString(SimdIsa isa);

/// Raw hardware/compiler probe, uncached and override-free.
SimdIsa ProbeSimdIsa();

/// Applies a SKYDIVER_FORCE_ISA-style override string to a probe result.
/// Pure (no environment access) so the clamp rules are unit-testable;
/// `force` may be nullptr or empty (no override).
SimdIsa ApplyIsaOverride(SimdIsa probed, const char* force);

/// Cached: ApplyIsaOverride(ProbeSimdIsa(), getenv("SKYDIVER_FORCE_ISA")),
/// evaluated once on first use.
SimdIsa DetectSimdIsa();

/// True when DetectSimdIsa() resolved to something the simd flavour can
/// run on (any value but kNone; the forced-portable backend counts).
bool SimdAvailable();

}  // namespace skydiver
