#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace skydiver {
namespace internal {

void CheckFailed(const char* expr, const char* file, int line,
                 std::string_view detail) {
  if (detail.empty()) {
    std::fprintf(stderr, "SKYDIVER CHECK failed: %s at %s:%d\n", expr, file, line);
  } else {
    std::fprintf(stderr, "SKYDIVER CHECK failed: %s (%.*s) at %s:%d\n", expr,
                 static_cast<int>(detail.size()), detail.data(), file, line);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace skydiver
