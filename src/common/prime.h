// Primality testing and prime search.
//
// MinHash hash functions have the form h(x) = (a*x + b) mod P where P must be
// a prime larger than the number of hashed rows (n - m in the paper). This
// header provides a deterministic Miller-Rabin test valid for all 64-bit
// inputs and a next-prime search built on it.

#pragma once

#include <cstdint>

namespace skydiver {

/// Returns true iff `n` is prime. Deterministic for all 64-bit inputs.
bool IsPrime(uint64_t n);

/// Returns the smallest prime strictly greater than `n`.
/// Precondition: a prime > n must fit in 64 bits (always true for n below
/// 2^63; asserts otherwise).
uint64_t NextPrime(uint64_t n);

}  // namespace skydiver
