#include "common/prime.h"

#include <initializer_list>

#include "common/check.h"

namespace skydiver {

namespace {

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>(static_cast<__uint128_t>(a) * b % m);
}

uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t mod) {
  uint64_t result = 1;
  base %= mod;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base, mod);
    base = MulMod(base, base, mod);
    exp >>= 1;
  }
  return result;
}

// One Miller-Rabin round with witness `a`; n-1 = d * 2^r, d odd.
bool MillerRabinRound(uint64_t n, uint64_t a, uint64_t d, int r) {
  a %= n;
  if (a == 0) return true;
  uint64_t x = PowMod(a, d, n);
  if (x == 1 || x == n - 1) return true;
  for (int i = 1; i < r; ++i) {
    x = MulMod(x, x, n);
    if (x == n - 1) return true;
  }
  return false;
}

}  // namespace

bool IsPrime(uint64_t n) {
  if (n < 2) return false;
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL,
                     29ULL, 31ULL, 37ULL}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 2^64 (Sinclair, 2011).
  for (uint64_t a : {2ULL, 325ULL, 9375ULL, 28178ULL, 450775ULL, 9780504ULL,
                     1795265022ULL}) {
    if (!MillerRabinRound(n, a, d, r)) return false;
  }
  return true;
}

uint64_t NextPrime(uint64_t n) {
  SKYDIVER_DCHECK(n < (1ULL << 63), "next prime must fit in 64 bits");
  if (n < 2) return 2;
  uint64_t candidate = n + 1;
  if (candidate % 2 == 0) {
    if (candidate == 2) return 2;
    ++candidate;
  }
  while (!IsPrime(candidate)) candidate += 2;
  return candidate;
}

}  // namespace skydiver
