#include "common/flags.h"

#include <cstdlib>
#include <sstream>

namespace skydiver {

void Flags::AddInt64(const std::string& name, int64_t* target, std::string help) {
  entries_[name] = Entry{Kind::kInt64, target, std::move(help), std::to_string(*target)};
}

void Flags::AddDouble(const std::string& name, double* target, std::string help) {
  std::ostringstream os;
  os << *target;
  entries_[name] = Entry{Kind::kDouble, target, std::move(help), os.str()};
}

void Flags::AddBool(const std::string& name, bool* target, std::string help) {
  entries_[name] = Entry{Kind::kBool, target, std::move(help), *target ? "true" : "false"};
}

void Flags::AddString(const std::string& name, std::string* target, std::string help) {
  entries_[name] = Entry{Kind::kString, target, std::move(help), *target};
}

Status Flags::Assign(const std::string& name, const std::string& value) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Entry& e = it->second;
  errno = 0;
  char* end = nullptr;
  switch (e.kind) {
    case Kind::kInt64: {
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
        return Status::InvalidArgument("flag --" + name + ": bad integer '" + value + "'");
      }
      *static_cast<int64_t*>(e.target) = v;
      return Status::OK();
    }
    case Kind::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
        return Status::InvalidArgument("flag --" + name + ": bad number '" + value + "'");
      }
      *static_cast<double*>(e.target) = v;
      return Status::OK();
    }
    case Kind::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(e.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(e.target) = false;
      } else {
        return Status::InvalidArgument("flag --" + name + ": bad bool '" + value + "'");
      }
      return Status::OK();
    }
    case Kind::kString:
      *static_cast<std::string*>(e.target) = value;
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument '" + arg + "'");
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      SKYDIVER_RETURN_NOT_OK(Assign(arg.substr(0, eq), arg.substr(eq + 1)));
      continue;
    }
    // Boolean shorthand: --flag / --no-flag.
    auto it = entries_.find(arg);
    if (it != entries_.end() && it->second.kind == Kind::kBool) {
      *static_cast<bool*>(it->second.target) = true;
      continue;
    }
    if (arg.rfind("no-", 0) == 0) {
      auto neg = entries_.find(arg.substr(3));
      if (neg != entries_.end() && neg->second.kind == Kind::kBool) {
        *static_cast<bool*>(neg->second.target) = false;
        continue;
      }
    }
    // --flag value form.
    if (i + 1 < argc) {
      SKYDIVER_RETURN_NOT_OK(Assign(arg, argv[++i]));
      continue;
    }
    return Status::InvalidArgument("flag --" + arg + " is missing a value");
  }
  return Status::OK();
}

std::string Flags::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "Usage: " << program << " [flags]\n";
  for (const auto& [name, e] : entries_) {
    os << "  --" << name << " (default: " << e.default_value << ")\n      " << e.help
       << "\n";
  }
  return os.str();
}

}  // namespace skydiver
