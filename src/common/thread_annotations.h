// Clang Thread Safety Analysis attribute macros.
//
// These make lock discipline a COMPILE-TIME property: a type wrapping a
// mutex is declared a *capability*, the data it protects is tied to it
// with SKYDIVER_GUARDED_BY, and functions declare what they acquire,
// release, or require. Clang's `-Wthread-safety` then rejects, at build
// time, any access to guarded state outside its critical section and any
// unbalanced acquire/release — the static complement to the TSan lane,
// which can only see the interleavings the tests happen to exercise.
//
// Under any compiler other than clang the macros expand to nothing, so
// the annotations are free documentation everywhere and enforced in the
// dedicated `thread-safety` CI lane (clang, `-Wthread-safety
// -Wthread-safety-beta -Werror`; see .github/workflows/ci.yml).
//
// The vocabulary (mirrors the clang documentation's canonical macros):
//
//   SKYDIVER_CAPABILITY(name)       class is a capability (a lock)
//   SKYDIVER_SCOPED_CAPABILITY      RAII class acquiring in ctor, releasing in dtor
//   SKYDIVER_GUARDED_BY(mu)        data member readable/writable only under mu
//   SKYDIVER_PT_GUARDED_BY(mu)     pointee protected by mu (the pointer is not)
//   SKYDIVER_REQUIRES(mu)          callee runs with mu held (caller acquires)
//   SKYDIVER_REQUIRES_SHARED(mu)   as above, shared (reader) mode suffices
//   SKYDIVER_ACQUIRE(mu)           function acquires mu, holds it on return
//   SKYDIVER_ACQUIRE_SHARED(mu)    as above, in shared mode
//   SKYDIVER_RELEASE(mu)           function releases mu
//   SKYDIVER_RELEASE_SHARED(mu)    as above, shared mode
//   SKYDIVER_RELEASE_GENERIC(mu)   releases whichever mode is held
//   SKYDIVER_TRY_ACQUIRE(ok, mu)   acquires mu iff it returns `ok`
//   SKYDIVER_EXCLUDES(mu)          caller must NOT hold mu (deadlock guard)
//   SKYDIVER_ASSERT_CAPABILITY(mu) runtime assertion that mu is held
//   SKYDIVER_RETURN_CAPABILITY(mu) function returns a reference to mu
//   SKYDIVER_ACQUIRED_BEFORE/AFTER lock-ordering declarations
//   SKYDIVER_NO_THREAD_SAFETY_ANALYSIS  opt a function out (use sparingly,
//                                       with a comment saying why)

#pragma once

#if defined(__clang__)
#define SKYDIVER_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SKYDIVER_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define SKYDIVER_CAPABILITY(x) SKYDIVER_THREAD_ANNOTATION(capability(x))

#define SKYDIVER_SCOPED_CAPABILITY SKYDIVER_THREAD_ANNOTATION(scoped_lockable)

#define SKYDIVER_GUARDED_BY(x) SKYDIVER_THREAD_ANNOTATION(guarded_by(x))

#define SKYDIVER_PT_GUARDED_BY(x) SKYDIVER_THREAD_ANNOTATION(pt_guarded_by(x))

#define SKYDIVER_ACQUIRED_BEFORE(...) \
  SKYDIVER_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define SKYDIVER_ACQUIRED_AFTER(...) \
  SKYDIVER_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define SKYDIVER_REQUIRES(...) \
  SKYDIVER_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define SKYDIVER_REQUIRES_SHARED(...) \
  SKYDIVER_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define SKYDIVER_ACQUIRE(...) \
  SKYDIVER_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define SKYDIVER_ACQUIRE_SHARED(...) \
  SKYDIVER_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define SKYDIVER_RELEASE(...) \
  SKYDIVER_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define SKYDIVER_RELEASE_SHARED(...) \
  SKYDIVER_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define SKYDIVER_RELEASE_GENERIC(...) \
  SKYDIVER_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

#define SKYDIVER_TRY_ACQUIRE(...) \
  SKYDIVER_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define SKYDIVER_TRY_ACQUIRE_SHARED(...) \
  SKYDIVER_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define SKYDIVER_EXCLUDES(...) SKYDIVER_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define SKYDIVER_ASSERT_CAPABILITY(x) \
  SKYDIVER_THREAD_ANNOTATION(assert_capability(x))

#define SKYDIVER_ASSERT_SHARED_CAPABILITY(x) \
  SKYDIVER_THREAD_ANNOTATION(assert_shared_capability(x))

#define SKYDIVER_RETURN_CAPABILITY(x) SKYDIVER_THREAD_ANNOTATION(lock_returned(x))

#define SKYDIVER_NO_THREAD_SAFETY_ANALYSIS \
  SKYDIVER_THREAD_ANNOTATION(no_thread_safety_analysis)
