// Wall-clock and CPU timers used by the benchmark harness.

#pragma once

#include <chrono>
#include <ctime>

namespace skydiver {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU-time stopwatch (user + system across all threads).
///
/// The paper reports "CPU processing time" separately from total time that
/// includes charged page faults; this timer supplies the CPU component.
class CpuTimer {
 public:
  CpuTimer() { Restart(); }

  void Restart() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  static double Now() {
    timespec ts{};
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  double start_;
};

}  // namespace skydiver
