// Per-stage CPU + I/O accounting, shared by every pipeline entry point.
//
// A pipeline stage (skyline, fingerprinting, selection) measures its own
// CPU time and page-level I/O; `CostModel` converts the fault count into
// charged seconds per the paper's measurement model (8 ms per fault).
// Lives in common/ because both the execution engine and the user-facing
// report types speak this vocabulary.

#pragma once

#include <cstdint>

#include "common/io_stats.h"

namespace skydiver {

/// CPU + I/O accounting for one pipeline phase.
struct PhaseMetrics {
  double cpu_seconds = 0.0;
  IoStats io;
  /// Dominance tests the stage performed (pooled backends fold their
  /// workers' counts back into the running thread, so this covers them).
  uint64_t dominance_checks = 0;
  /// The subset of `dominance_checks` charged by tiled kernel sweeps
  /// (equal to it on fully tiled paths, 0 on scalar ones).
  uint64_t dominance_checks_tiled = 0;

  /// CPU plus charged I/O time under `model`.
  double TotalSeconds(const CostModel& model) const {
    return model.TotalSeconds(cpu_seconds, io);
  }
};

}  // namespace skydiver
