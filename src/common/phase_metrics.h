// Per-stage CPU + I/O accounting, shared by every pipeline entry point.
//
// A pipeline stage (skyline, fingerprinting, selection) measures its own
// CPU time and page-level I/O; `CostModel` converts the fault count into
// charged seconds per the paper's measurement model (8 ms per fault).
// Lives in common/ because both the execution engine and the user-facing
// report types speak this vocabulary.

#pragma once

#include "common/io_stats.h"

namespace skydiver {

/// CPU + I/O accounting for one pipeline phase.
struct PhaseMetrics {
  double cpu_seconds = 0.0;
  IoStats io;

  /// CPU plus charged I/O time under `model`.
  double TotalSeconds(const CostModel& model) const {
    return model.TotalSeconds(cpu_seconds, io);
  }
};

}  // namespace skydiver
