// Portable word-mask sweep — the simd flavour's fallback backend. Same
// mask layout as the ISA paths, plain C++ only, kept in its own TU so it
// is never compiled with ISA-specific target flags (a -mavx2'd "fallback"
// would defeat the runtime dispatch it exists to back up).

#include "kernels/simd_sweep.h"

namespace skydiver::kernel_internal {

namespace {

void SweepPortableImpl(const Coord* p, const TileView& tile, SweepStop stop,
                       uint64_t* lt_out, uint64_t* gt_out) {
  const uint64_t full = tile.FullMask();
  const size_t rows = tile.rows;
  uint64_t lt = 0;
  uint64_t gt = 0;
  for (size_t d = 0; d < tile.dims; ++d) {
    const Coord pd = p[d];
    const Coord* col = tile.cols + d * kTileRows;
    uint64_t lt_d = 0;
    uint64_t gt_d = 0;
    for (size_t r = 0; r < rows; ++r) {
      lt_d |= static_cast<uint64_t>(pd < col[r]) << r;
      gt_d |= static_cast<uint64_t>(pd > col[r]) << r;
    }
    lt |= lt_d;
    gt |= gt_d;
    if (SweepFrozen(stop, lt, gt, full)) break;
  }
  *lt_out = lt;
  *gt_out = gt;
}

}  // namespace

SweepFn PortableSweep() { return &SweepPortableImpl; }

}  // namespace skydiver::kernel_internal
