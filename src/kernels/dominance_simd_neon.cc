// NEON sweep backend (AArch64 Advanced SIMD): 2 x double compares per
// step, lane masks folded into the per-row lt/gt words. Double-precision
// NEON compares (vcltq_f64 / vcgtq_f64) are AArch64-only, so 32-bit ARM
// builds fall back to the portable sweep.
//
// Ragged tiles are handled exactly like the AVX2 path: the row count is
// rounded up to a whole vector over the padded column and the junk bits
// are masked off with FullMask() before returning.

#include "kernels/simd_sweep.h"

#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace skydiver::kernel_internal {

#if defined(__aarch64__) && defined(__ARM_NEON)

namespace {

void SweepNeonImpl(const Coord* p, const TileView& tile, SweepStop stop,
                   uint64_t* lt_out, uint64_t* gt_out) {
  const uint64_t full = tile.FullMask();
  const size_t padded = (tile.rows + 1) & ~size_t{1};
  uint64_t lt = 0;
  uint64_t gt = 0;
  for (size_t d = 0; d < tile.dims; ++d) {
    const float64x2_t pv = vdupq_n_f64(p[d]);
    const Coord* col = tile.cols + d * kTileRows;
    uint64_t lt_d = 0;
    uint64_t gt_d = 0;
    for (size_t r = 0; r < padded; r += 2) {
      const float64x2_t cv = vld1q_f64(col + r);
      const uint64x2_t lt_m = vcltq_f64(pv, cv);
      const uint64x2_t gt_m = vcgtq_f64(pv, cv);
      lt_d |= ((vgetq_lane_u64(lt_m, 0) & 1) | ((vgetq_lane_u64(lt_m, 1) & 1) << 1))
              << r;
      gt_d |= ((vgetq_lane_u64(gt_m, 0) & 1) | ((vgetq_lane_u64(gt_m, 1) & 1) << 1))
              << r;
    }
    lt |= lt_d;
    gt |= gt_d;
    if (SweepFrozen(stop, lt, gt, full)) break;
  }
  *lt_out = lt & full;
  *gt_out = gt & full;
}

}  // namespace

SweepFn NeonSweep() { return &SweepNeonImpl; }

#else

SweepFn NeonSweep() { return nullptr; }

#endif

}  // namespace skydiver::kernel_internal
