// AVX2 sweep backend: 4 x double compares per step, _mm256_cmp_pd to a
// lane mask, movemask into the per-row lt/gt words. This TU is compiled
// with -mavx2 (see CMakeLists.txt) and its body must only run after the
// runtime probe (common/cpu.h) has confirmed the ISA — which the dispatch
// in dominance_kernel.cc guarantees.
//
// Ragged tiles: columns are padded to kTileRows entries holding stale but
// finite doubles, so the sweep rounds the row count up to a whole vector
// and masks the junk bits off with FullMask() before returning.

#include "kernels/simd_sweep.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace skydiver::kernel_internal {

#if defined(__AVX2__)

namespace {

void SweepAvx2Impl(const Coord* p, const TileView& tile, SweepStop stop,
                   uint64_t* lt_out, uint64_t* gt_out) {
  const uint64_t full = tile.FullMask();
  const size_t padded = (tile.rows + 3) & ~size_t{3};
  uint64_t lt = 0;
  uint64_t gt = 0;
  for (size_t d = 0; d < tile.dims; ++d) {
    const __m256d pv = _mm256_set1_pd(p[d]);
    const Coord* col = tile.cols + d * kTileRows;
    uint64_t lt_d = 0;
    uint64_t gt_d = 0;
    for (size_t r = 0; r < padded; r += 4) {
      const __m256d cv = _mm256_loadu_pd(col + r);
      lt_d |= static_cast<uint64_t>(
                  _mm256_movemask_pd(_mm256_cmp_pd(pv, cv, _CMP_LT_OQ)))
              << r;
      gt_d |= static_cast<uint64_t>(
                  _mm256_movemask_pd(_mm256_cmp_pd(pv, cv, _CMP_GT_OQ)))
              << r;
    }
    lt |= lt_d;
    gt |= gt_d;
    if (SweepFrozen(stop, lt, gt, full)) break;
  }
  *lt_out = lt & full;
  *gt_out = gt & full;
}

}  // namespace

SweepFn Avx2Sweep() { return &SweepAvx2Impl; }

#else

SweepFn Avx2Sweep() { return nullptr; }

#endif

}  // namespace skydiver::kernel_internal
