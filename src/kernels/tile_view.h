// Cache-resident, column-major tiles of points — the batched dominance
// kernels' working layout.
//
// A `Tile` holds up to kTileRows (= 64, one mask bit per row) points
// transposed into column-major order: all values of dimension 0, then all
// of dimension 1, and so on, each column padded to kTileRows entries. The
// transposition turns the per-pair d-length early-exit loops of
// core/dominance.h into branch-free sweeps over one dimension at a time
// (kernels/dominance_kernel.h), with every per-row outcome landing in a
// 64-bit mask. `TileSet` is a dynamic sequence of tiles supporting append
// and mask-driven compaction — the shape the BNL window, the SFS admitted
// set, and the BBS skyline take under the tiled kernel.

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "core/data_view.h"
#include "core/dataset.h"
#include "core/types.h"

namespace skydiver {

/// Rows per tile. Equals the bit width of a kernel result mask.
inline constexpr size_t kTileRows = 64;

/// Non-owning column-major view of up to kTileRows points. `cols` stores
/// dimension d at `cols[d * kTileRows + r]`; `ids` maps a tile-local row
/// index to whatever identifier the producer tracks (a DataSet RowId, a
/// signature column index, ...).
struct TileView {
  const Coord* cols = nullptr;
  const RowId* ids = nullptr;
  size_t rows = 0;
  size_t dims = 0;

  Coord at(size_t r, size_t d) const { return cols[d * kTileRows + r]; }

  /// Mask with one bit set per occupied row.
  uint64_t FullMask() const {
    return rows >= 64 ? ~uint64_t{0} : (uint64_t{1} << rows) - 1;
  }
};

/// Owning fixed-capacity tile.
class Tile {
 public:
  explicit Tile(Dim dims)
      : dims_(dims), values_(static_cast<size_t>(dims) * kTileRows) {
    SKYDIVER_DCHECK_GE(dims, 1u);
  }

  Dim dims() const { return dims_; }
  size_t rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  bool full() const { return rows_ == kTileRows; }
  RowId id(size_t r) const {
    SKYDIVER_DCHECK_LT(r, rows_);
    return ids_[r];
  }

  void Clear() { rows_ = 0; }

  /// Appends one point (transposing it into the columns). Must not be full.
  void PushRow(RowId id, std::span<const Coord> point) {
    SKYDIVER_DCHECK(!full());
    SKYDIVER_DCHECK_EQ(point.size(), dims_);
    for (size_t d = 0; d < dims_; ++d) values_[d * kTileRows + rows_] = point[d];
    ids_[rows_] = id;
    ++rows_;
  }

  /// Keeps exactly the rows whose bit is set in `keep` (order preserved).
  void Compact(uint64_t keep) {
    size_t out = 0;
    for (size_t r = 0; r < rows_; ++r) {
      if ((keep >> r & 1) == 0) continue;
      if (out != r) {
        for (size_t d = 0; d < dims_; ++d) {
          values_[d * kTileRows + out] = values_[d * kTileRows + r];
        }
        ids_[out] = ids_[r];
      }
      ++out;
    }
    rows_ = out;
  }

  TileView view() const {
    return TileView{values_.data(), ids_.data(), rows_, dims_};
  }

  /// Debug-only structural verifier: the column storage must span exactly
  /// dims * kTileRows coordinates (the column-major stride every kernel
  /// sweep assumes) and the row count must fit the mask width.
  void CheckInvariants() const {
    SKYDIVER_DCHECK_EQ(values_.size(), static_cast<size_t>(dims_) * kTileRows,
                       "tile column storage does not match its stride");
    SKYDIVER_DCHECK_LE(rows_, kTileRows);
  }

 private:
  Dim dims_;
  size_t rows_ = 0;
  std::vector<Coord> values_;  // column-major, stride kTileRows
  std::array<RowId, kTileRows> ids_{};
};

/// Dynamic sequence of tiles. Appends go to the last tile (a new one opens
/// when it fills); mask-driven compaction may leave interior tiles ragged,
/// which the kernels handle (every tile carries its own row count).
///
/// A TileSet that will be shared read-only across threads (the pooled
/// backends sweep one skyline tiling from every shard) should be Freeze()d
/// first: mutations after freezing are a caller bug and abort under
/// SKYDIVER_DCHECK in debug builds.
class TileSet {
 public:
  explicit TileSet(Dim dims) : dims_(dims) {}

  Dim dims() const { return dims_; }
  size_t size() const { return total_rows_; }
  bool empty() const { return total_rows_ == 0; }
  const std::vector<Tile>& tiles() const { return tiles_; }

  void Append(RowId id, std::span<const Coord> point) {
    SKYDIVER_DCHECK(!frozen_, "Append on a frozen TileSet");
    if (tiles_.empty() || tiles_.back().full()) tiles_.emplace_back(dims_);
    tiles_.back().PushRow(id, point);
    ++total_rows_;
  }

  /// Compacts tile `i` to the rows in `keep`; empty tiles stay in place
  /// (cheap) until DropEmptyTiles().
  void CompactTile(size_t i, uint64_t keep) {
    SKYDIVER_DCHECK(!frozen_, "CompactTile on a frozen TileSet");
    SKYDIVER_DCHECK_LT(i, tiles_.size());
    const size_t before = tiles_[i].rows();
    tiles_[i].Compact(keep);
    total_rows_ -= before - tiles_[i].rows();
  }

  /// Erases tiles left empty by compaction, preserving tile order.
  void DropEmptyTiles() {
    SKYDIVER_DCHECK(!frozen_, "DropEmptyTiles on a frozen TileSet");
    size_t out = 0;
    for (size_t i = 0; i < tiles_.size(); ++i) {
      if (tiles_[i].empty()) continue;
      if (out != i) tiles_[out] = std::move(tiles_[i]);
      ++out;
    }
    tiles_.resize(out, Tile(dims_));
  }

  void Clear() {
    tiles_.clear();
    total_rows_ = 0;
    frozen_ = false;
  }

  /// Marks the set immutable (e.g. before handing it to pool workers) and
  /// verifies its structural invariants in debug builds. Clear() is the
  /// only way back to a mutable set.
  void Freeze() {
    CheckInvariants();
    frozen_ = true;
  }
  bool frozen() const { return frozen_; }

  /// Debug-only verifier: per-tile column-major layout, per-tile dims
  /// matching the set's, and the cached total row count agreeing with the
  /// sum over tiles.
  void CheckInvariants() const {
#if SKYDIVER_DCHECK_ACTIVE_
    size_t total = 0;
    for (const Tile& tile : tiles_) {
      tile.CheckInvariants();
      SKYDIVER_DCHECK_EQ(tile.dims(), dims_, "tile dims diverge from the set's");
      total += tile.rows();
    }
    SKYDIVER_DCHECK_EQ(total, total_rows_, "cached row total is stale");
#endif
  }

 private:
  Dim dims_;
  size_t total_rows_ = 0;
  bool frozen_ = false;
  std::vector<Tile> tiles_;
};

/// Materializes the rows of `ids` into a TileSet (tile ids = the given row
/// ids, in order).
inline TileSet MaterializeTiles(const DataSet& data, std::span<const RowId> ids) {
  TileSet tiles(data.dims());
  for (RowId r : ids) tiles.Append(r, data.row(r));
  return tiles;
}

/// View-scoped materialization: tiles carry only the projected columns
/// (d' = view.dims()), so the dimension-count-generic kernels sweep the
/// query subspace without knowing a mask exists. Under the full-space
/// projection this is byte-identical to the DataSet overload.
inline TileSet MaterializeTiles(const DataView& view, std::span<const RowId> ids) {
  TileSet tiles(view.dims());
  std::vector<Coord> scratch;
  for (RowId r : ids) tiles.Append(r, view.ProjectedRow(r, scratch));
  return tiles;
}

}  // namespace skydiver
