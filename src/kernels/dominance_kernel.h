// Batched dominance kernels — tiled point-vs-block filters.
//
// Every hot loop in the library bottoms out in dominance tests of one
// probe point against a set of candidates (a BNL window, the admitted SFS
// skyline, the skyline columns of SigGen-IF, ...). `DominanceKernel`
// offers those tests as batch operations over a column-major `TileView`
// of up to 64 candidates, returning one result bit per row:
//
//   FilterDominated(p, tile)  -> mask of rows strictly dominated by p
//   FilterDominators(p, tile) -> mask of rows that strictly dominate p
//   AnyDominator(p, tile)     -> true iff some row dominates p
//   ClassifyBlock(p, tile)    -> both masks in one sweep (rows in neither
//                                mask are incomparable with / equal to p)
//   FilterWeaklyDominated(p, tile) -> mask of rows with p <= row everywhere
//
// Two implementations sit behind the `DomKernel` selector:
//
//   * kScalar — reference: per-row calls into core/dominance.h, with the
//     same early exits the pre-kernel loops had. Counter behaviour is
//     identical to hand-written loops.
//   * kTiled  — one branch-free sweep per dimension over the transposed
//     tile, accumulating per-row "probe is less somewhere" / "probe is
//     greater somewhere" flags, from which all five results derive.
//
// Both report identical masks; only the dominance-check accounting
// differs. COUNTING RULE: the tiled kernel charges exactly `tile.rows`
// point-level tests per call — one per (probe, row) pair in the tile —
// added to both DominanceCounter::Count() and ::TiledCount(). It never
// discounts early exits the scalar loops would have taken (AnyDominator
// stops scanning on the first scalar hit but sweeps whole tiles), so
// tiled counts can exceed scalar counts for early-exit call sites, and
// agree exactly for exhaustive ones (SigGen-IF, Γ-set construction).

#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "common/status.h"
#include "core/dominance.h"
#include "core/types.h"
#include "kernels/tile_view.h"

namespace skydiver {

/// Which dominance kernel a plan (or a direct algorithm call) runs with.
enum class DomKernel : uint8_t {
  kScalar,  ///< Reference per-pair loops (core/dominance.h).
  kTiled,   ///< Branch-free 64-row column-major tile sweeps.
};

const char* ToString(DomKernel kernel);

/// Parses "scalar" / "tiled" (the CLI --kernel vocabulary).
Result<DomKernel> ParseDomKernel(std::string_view name);

/// Tiling only pays off past one tile of candidates; below that the scalar
/// reference runs (results are identical either way, so consumers may apply
/// this per call site with whatever candidate-count estimate they have).
inline DomKernel EffectiveKernel(DomKernel kernel, size_t candidates) {
  return kernel == DomKernel::kTiled && candidates < kTileRows ? DomKernel::kScalar
                                                               : kernel;
}

/// Three-way outcome of one probe against a tile; disjoint masks, rows in
/// neither are incomparable with (or equal to) the probe.
struct BlockClassification {
  uint64_t dominated = 0;   ///< rows the probe strictly dominates
  uint64_t dominators = 0;  ///< rows that strictly dominate the probe
};

/// Batched dominance tests behind a kernel selector. Cheap to copy.
class DominanceKernel {
 public:
  explicit DominanceKernel(DomKernel kind = DomKernel::kTiled) : kind_(kind) {}

  DomKernel kind() const { return kind_; }
  bool tiled() const { return kind_ == DomKernel::kTiled; }

  /// Mask of tile rows strictly dominated by `p` (p ≺ row).
  uint64_t FilterDominated(std::span<const Coord> p, const TileView& tile) const;

  /// Mask of tile rows that strictly dominate `p` (row ≺ p).
  uint64_t FilterDominators(std::span<const Coord> p, const TileView& tile) const;

  /// Mask of tile rows weakly dominated by `p` (p <= row on every dim).
  uint64_t FilterWeaklyDominated(std::span<const Coord> p, const TileView& tile) const;

  /// True iff some tile row strictly dominates `p`. The scalar kernel
  /// early-exits per row; the tiled kernel sweeps the whole tile (see the
  /// counting rule above).
  bool AnyDominator(std::span<const Coord> p, const TileView& tile) const;

  /// Both direction masks from one sweep.
  BlockClassification ClassifyBlock(std::span<const Coord> p,
                                    const TileView& tile) const;

 private:
  DomKernel kind_;
};

}  // namespace skydiver
