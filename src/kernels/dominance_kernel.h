// Batched dominance kernels — tiled point-vs-block filters.
//
// Every hot loop in the library bottoms out in dominance tests of one
// probe point against a set of candidates (a BNL window, the admitted SFS
// skyline, the skyline columns of SigGen-IF, ...). `DominanceKernel`
// offers those tests as batch operations over a column-major `TileView`
// of up to 64 candidates, returning one result bit per row:
//
//   FilterDominated(p, tile)  -> mask of rows strictly dominated by p
//   FilterDominators(p, tile) -> mask of rows that strictly dominate p
//   AnyDominator(p, tile)     -> true iff some row dominates p
//   ClassifyBlock(p, tile)    -> both masks in one sweep (rows in neither
//                                mask are incomparable with / equal to p)
//   FilterWeaklyDominated(p, tile) -> mask of rows with p <= row everywhere
//   PruneCorners(corners, skyline) -> mask of corner rows some skyline row
//                                dominates (the BBS node-prune criterion,
//                                tile-of-probes against tile-of-candidates)
//
// Three implementations sit behind the `DomKernel` selector, resolved to
// one per-flavour dispatch table at construction so all six entry points
// route through the same implementation:
//
//   * kScalar — reference: per-row calls into core/dominance.h, with the
//     same early exits the pre-kernel loops had. Counter behaviour is
//     identical to hand-written loops.
//   * kTiled  — one branch-free sweep per dimension over the transposed
//     tile, accumulating per-row "probe is less somewhere" / "probe is
//     greater somewhere" byte flags, from which all results derive.
//   * kSimd   — the same sweep with explicit compare-to-mask vector
//     instructions accumulating the flags as 64-bit words: AVX2 (4 x
//     double lanes, movemask) or NEON (2 x double lanes), chosen by the
//     runtime CPU probe in common/cpu.h, with a portable word-mask
//     fallback. SKYDIVER_FORCE_ISA overrides the probe for testing.
//
// All flavours report identical masks; only the dominance-check
// accounting differs. COUNTING RULE: the batched flavours (kTiled and
// kSimd) charge exactly `tile.rows` point-level tests per call — one per
// (probe, row) pair in the tile — added to both DominanceCounter::Count()
// and ::TiledCount(). They never discount early exits the scalar loops
// would have taken (AnyDominator stops scanning on the first scalar hit
// but sweeps whole tiles), so batched counts can exceed scalar counts for
// early-exit call sites, and agree exactly for exhaustive ones (SigGen-IF,
// Γ-set construction). PruneCorners takes two tiles and charges per sweep
// it actually performs — see its declaration.

#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "common/cpu.h"
#include "common/status.h"
#include "core/dominance.h"
#include "core/types.h"
#include "kernels/tile_view.h"

namespace skydiver {

/// Which dominance kernel a plan (or a direct algorithm call) runs with.
enum class DomKernel : uint8_t {
  kScalar,  ///< Reference per-pair loops (core/dominance.h).
  kTiled,   ///< Branch-free 64-row column-major tile sweeps (byte flags).
  kSimd,    ///< Explicit AVX2/NEON compare-to-mask sweeps (word flags).
};

const char* ToString(DomKernel kernel);

/// Parses "scalar" / "tiled" / "simd" (the CLI --kernel vocabulary).
Result<DomKernel> ParseDomKernel(std::string_view name);

/// True for the flavours that sweep whole tiles (kTiled, kSimd) rather
/// than running per-pair scalar loops. Call sites branch on this to pick
/// the TileSet batch path over the scalar loop path; a batched consumer
/// works identically under either batched flavour.
inline bool IsBatched(DomKernel kernel) { return kernel != DomKernel::kScalar; }

/// THE downgrade policy, applied in this order (both steps documented
/// here, enforced nowhere else):
///
///   1. Missing ISA: kSimd needs the runtime CPU probe (common/cpu.h) to
///      have found a vector ISA; without one it downgrades to kTiled — the
///      strongest flavour that needs no hardware support. The planner
///      applies the same rule when resolving plans, so a plan never
///      carries kSimd on a host that cannot honor it.
///   2. Small tile: batching only pays off past one tile of candidates;
///      below kTileRows ANY batched flavour runs the scalar reference.
///
/// Results are identical either way, so consumers may apply this per call
/// site with whatever candidate-count estimate they have.
inline DomKernel EffectiveKernel(DomKernel kernel, size_t candidates) {
  if (kernel == DomKernel::kSimd && !SimdAvailable()) kernel = DomKernel::kTiled;
  if (IsBatched(kernel) && candidates < kTileRows) return DomKernel::kScalar;
  return kernel;
}

/// Three-way outcome of one probe against a tile; disjoint masks, rows in
/// neither are incomparable with (or equal to) the probe.
struct BlockClassification {
  uint64_t dominated = 0;   ///< rows the probe strictly dominates
  uint64_t dominators = 0;  ///< rows that strictly dominate the probe
};

namespace kernel_internal {
struct KernelOps;  // per-flavour dispatch table (dominance_kernel.cc)
}  // namespace kernel_internal

/// Batched dominance tests behind a kernel selector. Cheap to copy. The
/// flavour (and, for kSimd, the probed ISA backend) is resolved once at
/// construction into a function-pointer table.
class DominanceKernel {
 public:
  explicit DominanceKernel(DomKernel kind = DomKernel::kTiled);

  DomKernel kind() const { return kind_; }
  bool batched() const { return IsBatched(kind_); }

  /// Mask of tile rows strictly dominated by `p` (p ≺ row).
  uint64_t FilterDominated(std::span<const Coord> p, const TileView& tile) const;

  /// Mask of tile rows that strictly dominate `p` (row ≺ p).
  uint64_t FilterDominators(std::span<const Coord> p, const TileView& tile) const;

  /// Mask of tile rows weakly dominated by `p` (p <= row on every dim).
  uint64_t FilterWeaklyDominated(std::span<const Coord> p, const TileView& tile) const;

  /// True iff some tile row strictly dominates `p`. The scalar kernel
  /// early-exits per row; the batched kernels sweep the whole tile (see
  /// the counting rule above).
  bool AnyDominator(std::span<const Coord> p, const TileView& tile) const;

  /// Both direction masks from one sweep.
  BlockClassification ClassifyBlock(std::span<const Coord> p,
                                    const TileView& tile) const;

  /// Mask of `corners` rows strictly dominated by some `skyline` row — the
  /// BBS node-prune test, batched on both sides: one call decides a whole
  /// node's worth of MBR lo-corners against one skyline tile. The scalar
  /// kernel early-exits per corner on its first dominator. The batched
  /// kernels screen first: one sweep of the corner tile's ceiling (its
  /// componentwise max) over the skyline tile finds every row that could
  /// dominate ANY corner — usually none, because corners are R-tree
  /// siblings and sit in a tight box — then each candidate row is swept
  /// across the corner tile until the pruned mask saturates. Counting:
  /// `skyline.rows` for the screen plus `corners.rows` per candidate row
  /// actually swept, to both counters.
  uint64_t PruneCorners(const TileView& corners, const TileView& skyline) const;

 private:
  DomKernel kind_;
  const kernel_internal::KernelOps* ops_;
};

}  // namespace skydiver
