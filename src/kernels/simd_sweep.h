// Internal contract between the simd kernel flavour's dispatch point
// (dominance_kernel.cc) and its per-ISA sweep backends. Each backend
// compiles in its own translation unit so the ISA-specific one can be
// built with the matching target flags (-mavx2) without letting the
// compiler emit those instructions into code that runs before the CPUID
// probe has confirmed them.
//
// A sweep computes, for one probe against one tile, the two per-row
// comparison WORDS every dominance outcome derives from:
//
//   bit r of *lt  —  probe strictly less than row r on some visited dim
//   bit r of *gt  —  probe strictly greater than row r on some visited dim
//
// This is the word-mask analogue of the tiled flavour's byte flags: the
// ISA paths produce the bits with compare-to-mask + movemask instead of
// byte ops. Bits at and above tile.rows are always zero on return.
//
// Backends may stop sweeping dimensions early once every occupied row is
// frozen for the condition in `stop` (same contract as the tiled
// flavour's StopWhen): with gt[r] set row r can never be (weakly)
// dominated, with lt[r] set it can never dominate the probe, so the
// caller's masks are identical whether or not later dimensions were
// visited. The dominance charge is per (probe, row) pair and unaffected.

#pragma once

#include <cstdint>

#include "core/types.h"
#include "kernels/tile_view.h"

namespace skydiver::kernel_internal {

/// Which rows' flag words must saturate before a sweep may stop early.
enum class SweepStop : uint8_t { kNever, kAllLt, kAllGt, kAllBoth };

/// True once every occupied row (per `full`, the tile's FullMask) is
/// frozen for `stop`. Shared by every backend so early exits agree.
inline bool SweepFrozen(SweepStop stop, uint64_t lt, uint64_t gt, uint64_t full) {
  switch (stop) {
    case SweepStop::kNever: return false;
    case SweepStop::kAllLt: return (lt & full) == full;
    case SweepStop::kAllGt: return (gt & full) == full;
    case SweepStop::kAllBoth: return (lt & gt & full) == full;
  }
  return false;
}

using SweepFn = void (*)(const Coord* p, const TileView& tile, SweepStop stop,
                         uint64_t* lt, uint64_t* gt);

/// Plain-C++ word-mask sweep; always available (the kSimd fallback when no
/// vector ISA is present or the forced-portable override is set).
SweepFn PortableSweep();

/// AVX2 sweep (4 x double compare + movemask); nullptr when this build has
/// no AVX2 backend (non-x86 target or a compiler without -mavx2 support).
SweepFn Avx2Sweep();

/// NEON sweep (2 x double compare, AArch64); nullptr when not compiled in.
SweepFn NeonSweep();

}  // namespace skydiver::kernel_internal
