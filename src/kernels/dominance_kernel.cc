#include "kernels/dominance_kernel.h"

#include <bit>
#include <cstring>
#include <vector>

#include "kernels/simd_sweep.h"

namespace skydiver {

const char* ToString(DomKernel kernel) {
  switch (kernel) {
    case DomKernel::kScalar: return "scalar";
    case DomKernel::kTiled: return "tiled";
    case DomKernel::kSimd: return "simd";
  }
  return "?";
}

Result<DomKernel> ParseDomKernel(std::string_view name) {
  if (name == "scalar") return DomKernel::kScalar;
  if (name == "tiled") return DomKernel::kTiled;
  if (name == "simd") return DomKernel::kSimd;
  return Status::InvalidArgument("unknown dominance kernel '" + std::string(name) +
                                 "' (expected 'scalar', 'tiled' or 'simd')");
}

namespace kernel_internal {

/// One resolved implementation per flavour; every DominanceKernel entry
/// point forwards through exactly one of these tables, so adding a
/// flavour means adding a table — call sites never branch on the kind.
struct KernelOps {
  uint64_t (*filter_dominated)(std::span<const Coord> p, const TileView& tile);
  uint64_t (*filter_dominators)(std::span<const Coord> p, const TileView& tile);
  uint64_t (*filter_weakly_dominated)(std::span<const Coord> p, const TileView& tile);
  bool (*any_dominator)(std::span<const Coord> p, const TileView& tile);
  BlockClassification (*classify_block)(std::span<const Coord> p,
                                        const TileView& tile);
  uint64_t (*prune_corners)(const TileView& corners, const TileView& skyline);
};

}  // namespace kernel_internal

namespace {

using kernel_internal::KernelOps;
using kernel_internal::SweepFn;
using kernel_internal::SweepStop;

// The batched counting rule: one point-level test per (probe, row) pair.
void ChargeTile(const TileView& tile) {
  DominanceCounter::Count() += tile.rows;
  DominanceCounter::TiledCount() += tile.rows;
}

// -------------------------------------------------------------------------
// Scalar flavour: per-row calls with the pre-kernel loops' early exits.
// -------------------------------------------------------------------------

uint64_t ScalarFilterDominated(std::span<const Coord> p, const TileView& tile) {
  uint64_t mask = 0;
  for (size_t r = 0; r < tile.rows; ++r) {
    ++DominanceCounter::Count();
    bool strictly_better = false;
    bool dominated = true;
    for (size_t d = 0; d < tile.dims; ++d) {
      const Coord pd = p[d];
      const Coord rv = tile.at(r, d);
      if (pd > rv) {
        dominated = false;
        break;
      }
      if (pd < rv) strictly_better = true;
    }
    if (dominated && strictly_better) mask |= uint64_t{1} << r;
  }
  return mask;
}

uint64_t ScalarFilterDominators(std::span<const Coord> p, const TileView& tile) {
  uint64_t mask = 0;
  for (size_t r = 0; r < tile.rows; ++r) {
    ++DominanceCounter::Count();
    bool strictly_better = false;
    bool dominates = true;
    for (size_t d = 0; d < tile.dims; ++d) {
      const Coord pd = p[d];
      const Coord rv = tile.at(r, d);
      if (rv > pd) {
        dominates = false;
        break;
      }
      if (rv < pd) strictly_better = true;
    }
    if (dominates && strictly_better) mask |= uint64_t{1} << r;
  }
  return mask;
}

uint64_t ScalarFilterWeaklyDominated(std::span<const Coord> p, const TileView& tile) {
  uint64_t mask = 0;
  for (size_t r = 0; r < tile.rows; ++r) {
    ++DominanceCounter::Count();
    bool weakly = true;
    for (size_t d = 0; d < tile.dims; ++d) {
      if (p[d] > tile.at(r, d)) {
        weakly = false;
        break;
      }
    }
    if (weakly) mask |= uint64_t{1} << r;
  }
  return mask;
}

bool ScalarAnyDominator(std::span<const Coord> p, const TileView& tile) {
  for (size_t r = 0; r < tile.rows; ++r) {
    ++DominanceCounter::Count();
    bool strictly_better = false;
    bool dominates = true;
    for (size_t d = 0; d < tile.dims; ++d) {
      const Coord pd = p[d];
      const Coord rv = tile.at(r, d);
      if (rv > pd) {
        dominates = false;
        break;
      }
      if (rv < pd) strictly_better = true;
    }
    if (dominates && strictly_better) return true;
  }
  return false;
}

BlockClassification ScalarClassifyBlock(std::span<const Coord> p,
                                        const TileView& tile) {
  BlockClassification out;
  for (size_t r = 0; r < tile.rows; ++r) {
    ++DominanceCounter::Count();
    bool p_better = false;
    bool r_better = false;
    for (size_t d = 0; d < tile.dims; ++d) {
      const Coord pd = p[d];
      const Coord rv = tile.at(r, d);
      if (pd < rv) {
        p_better = true;
      } else if (rv < pd) {
        r_better = true;
      }
      if (p_better && r_better) break;
    }
    if (p_better && !r_better) out.dominated |= uint64_t{1} << r;
    if (r_better && !p_better) out.dominators |= uint64_t{1} << r;
  }
  return out;
}

uint64_t ScalarPruneCorners(const TileView& corners, const TileView& skyline) {
  uint64_t pruned = 0;
  for (size_t c = 0; c < corners.rows; ++c) {
    for (size_t s = 0; s < skyline.rows; ++s) {
      ++DominanceCounter::Count();
      bool strictly_better = false;
      bool dominates = true;
      for (size_t d = 0; d < corners.dims; ++d) {
        const Coord cv = corners.at(c, d);
        const Coord sv = skyline.at(s, d);
        if (sv > cv) {
          dominates = false;
          break;
        }
        if (sv < cv) strictly_better = true;
      }
      if (dominates && strictly_better) {
        pruned |= uint64_t{1} << c;
        break;  // first dominator settles this corner
      }
    }
  }
  return pruned;
}

constexpr KernelOps kScalarOps = {
    &ScalarFilterDominated,       &ScalarFilterDominators,
    &ScalarFilterWeaklyDominated, &ScalarAnyDominator,
    &ScalarClassifyBlock,         &ScalarPruneCorners,
};

// -------------------------------------------------------------------------
// Tiled flavour: branch-free byte-flag sweeps (the autovectorized layout).
// -------------------------------------------------------------------------

// Per-row comparison flags accumulated across one dimension sweep:
// lt[r] != 0 iff the probe is strictly less than row r on some dimension,
// gt[r] != 0 iff strictly greater on some dimension. Every dominance
// outcome is a boolean function of (lt[r], gt[r]):
//   probe dominates row r   <=>  lt[r] && !gt[r]
//   row r dominates probe   <=>  gt[r] && !lt[r]
//   probe weakly <= row r   <=>  !gt[r]
//   equal                   <=>  !lt[r] && !gt[r]
// The two inner loops are branch-free byte ops over a 64-entry column —
// the layout the compiler's vectorizer was built for.
struct SweepFlags {
  alignas(kTileRows) uint8_t lt[kTileRows];
  alignas(kTileRows) uint8_t gt[kTileRows];
};

// The sweep may stop early once every row's outcome is frozen: with lt[r]
// set row r can never dominate the probe, with gt[r] set it can never be
// (weakly) dominated, and with both set the pair is incomparable for good.
// Callers pick the weakest condition covering the flags they read; the
// dominance charge is per (probe, row) pair and unaffected by how many
// dimensions the sweep actually visited.
enum class StopWhen : uint8_t { kNever, kAllLt, kAllGt, kAllBoth };

template <StopWhen kStop>
void SweepImpl(std::span<const Coord> p, const TileView& tile, SweepFlags* flags) {
  std::memset(flags->lt, 0, sizeof(flags->lt));
  std::memset(flags->gt, 0, sizeof(flags->gt));
  const size_t rows = tile.rows;
  for (size_t d = 0; d < tile.dims; ++d) {
    const Coord pd = p[d];
    const Coord* col = tile.cols + d * kTileRows;
    for (size_t r = 0; r < rows; ++r) {
      flags->lt[r] |= static_cast<uint8_t>(pd < col[r]);
      flags->gt[r] |= static_cast<uint8_t>(pd > col[r]);
    }
    if constexpr (kStop != StopWhen::kNever) {
      uint8_t frozen = 1;  // flag bytes are 0/1, so AND-reduction works
      for (size_t r = 0; r < rows; ++r) {
        if constexpr (kStop == StopWhen::kAllLt) {
          frozen &= flags->lt[r];
        } else if constexpr (kStop == StopWhen::kAllGt) {
          frozen &= flags->gt[r];
        } else {
          frozen &= static_cast<uint8_t>(flags->lt[r] & flags->gt[r]);
        }
      }
      if (frozen) return;
    }
  }
}

// Packs `take(r)` over the occupied rows into a bitmask.
template <typename Fn>
uint64_t Pack(const TileView& tile, Fn take) {
  uint64_t mask = 0;
  for (size_t r = 0; r < tile.rows; ++r) {
    mask |= static_cast<uint64_t>(take(r) ? 1 : 0) << r;
  }
  return mask;
}

uint64_t TiledFilterDominated(std::span<const Coord> p, const TileView& tile) {
  SweepFlags flags;
  SweepImpl<StopWhen::kAllGt>(p, tile, &flags);
  ChargeTile(tile);
  return Pack(tile, [&](size_t r) { return flags.lt[r] && !flags.gt[r]; });
}

uint64_t TiledFilterDominators(std::span<const Coord> p, const TileView& tile) {
  SweepFlags flags;
  SweepImpl<StopWhen::kAllLt>(p, tile, &flags);
  ChargeTile(tile);
  return Pack(tile, [&](size_t r) { return flags.gt[r] && !flags.lt[r]; });
}

uint64_t TiledFilterWeaklyDominated(std::span<const Coord> p, const TileView& tile) {
  SweepFlags flags;
  SweepImpl<StopWhen::kAllGt>(p, tile, &flags);
  ChargeTile(tile);
  return Pack(tile, [&](size_t r) { return !flags.gt[r]; });
}

bool TiledAnyDominator(std::span<const Coord> p, const TileView& tile) {
  return TiledFilterDominators(p, tile) != 0;
}

BlockClassification TiledClassifyBlock(std::span<const Coord> p,
                                       const TileView& tile) {
  SweepFlags flags;
  SweepImpl<StopWhen::kAllBoth>(p, tile, &flags);
  ChargeTile(tile);
  BlockClassification out;
  out.dominated = Pack(tile, [&](size_t r) { return flags.lt[r] && !flags.gt[r]; });
  out.dominators = Pack(tile, [&](size_t r) { return flags.gt[r] && !flags.lt[r]; });
  return out;
}

// Transposes one tile row back into a contiguous probe for the sweeps.
// Thread-local scratch keeps the batched PruneCorners allocation-free in
// steady state (and race-free under the pooled backends).
std::span<const Coord> GatherRow(const TileView& tile, size_t r) {
  thread_local std::vector<Coord> buf;
  if (buf.size() < tile.dims) buf.resize(tile.dims);
  for (size_t d = 0; d < tile.dims; ++d) buf[d] = tile.at(r, d);
  return std::span<const Coord>(buf.data(), tile.dims);
}

// Componentwise maximum of a tile's occupied rows — the hi-corner of the
// tile's own bounding box. Thread-local scratch for the same reason as
// GatherRow's.
std::span<const Coord> TileCeiling(const TileView& tile) {
  thread_local std::vector<Coord> ceiling;
  if (ceiling.size() < tile.dims) ceiling.resize(tile.dims);
  for (size_t d = 0; d < tile.dims; ++d) {
    const Coord* col = tile.cols + d * kTileRows;
    Coord hi = col[0];
    for (size_t r = 1; r < tile.rows; ++r) hi = col[r] > hi ? col[r] : hi;
    ceiling[d] = hi;
  }
  return std::span<const Coord>(ceiling.data(), tile.dims);
}

// The batched prune screens the skyline tile before sweeping it: a
// skyline row can dominate SOME corner only if it sits at or below the
// corner tile's CEILING (the componentwise max) on every dimension, and
// one sweep of the ceiling over the skyline tile finds all such candidate
// rows at once. Corners are R-tree siblings — a tight box — so most
// skyline tiles hold no candidate at all and the whole (node, tile) pair
// retires for the cost of that single sweep, where the per-entry
// formulation pays one full skyline sweep per undecided corner. Each
// surviving candidate is then swept across the corner tile (transposed:
// probe = skyline row, tile = corners), accumulating the pruned mask and
// stopping once it saturates.
uint64_t TiledPruneCorners(const TileView& corners, const TileView& skyline) {
  if (corners.rows == 0 || skyline.rows == 0) return 0;
  SweepFlags screen;
  SweepImpl<StopWhen::kAllLt>(TileCeiling(corners), skyline, &screen);
  ChargeTile(skyline);  // the screen: one virtual probe against every row
  const uint64_t full = corners.FullMask();
  uint64_t pruned = 0;
  SweepFlags flags;
  for (size_t s = 0; s < skyline.rows && pruned != full; ++s) {
    if (screen.lt[s]) continue;  // row exceeds the ceiling somewhere
    SweepImpl<StopWhen::kAllGt>(GatherRow(skyline, s), corners, &flags);
    ChargeTile(corners);
    for (size_t c = 0; c < corners.rows; ++c) {
      if (flags.lt[c] && !flags.gt[c]) pruned |= uint64_t{1} << c;
    }
  }
  return pruned;
}

constexpr KernelOps kTiledOps = {
    &TiledFilterDominated,       &TiledFilterDominators,
    &TiledFilterWeaklyDominated, &TiledAnyDominator,
    &TiledClassifyBlock,         &TiledPruneCorners,
};

// -------------------------------------------------------------------------
// Simd flavour: word-mask sweeps behind the runtime ISA dispatch. The
// sweep backend (AVX2 / NEON / portable) is picked once per process from
// the cached CPU probe; every entry point derives its mask from the same
// (lt, gt) words the tiled flavour keeps as bytes, so masks are
// bit-identical across all three flavours by construction.
// -------------------------------------------------------------------------

SweepFn ResolvedSweep() {
  static const SweepFn fn = [] {
    switch (DetectSimdIsa()) {
      case SimdIsa::kAvx2:
        if (const SweepFn avx2 = kernel_internal::Avx2Sweep()) return avx2;
        break;
      case SimdIsa::kNeon:
        if (const SweepFn neon = kernel_internal::NeonSweep()) return neon;
        break;
      case SimdIsa::kPortable:
      case SimdIsa::kNone:
        break;
    }
    return kernel_internal::PortableSweep();
  }();
  return fn;
}

uint64_t SimdFilterDominated(std::span<const Coord> p, const TileView& tile) {
  uint64_t lt = 0, gt = 0;
  ResolvedSweep()(p.data(), tile, SweepStop::kAllGt, &lt, &gt);
  ChargeTile(tile);
  return lt & ~gt;
}

uint64_t SimdFilterDominators(std::span<const Coord> p, const TileView& tile) {
  uint64_t lt = 0, gt = 0;
  ResolvedSweep()(p.data(), tile, SweepStop::kAllLt, &lt, &gt);
  ChargeTile(tile);
  return gt & ~lt;
}

uint64_t SimdFilterWeaklyDominated(std::span<const Coord> p, const TileView& tile) {
  uint64_t lt = 0, gt = 0;
  ResolvedSweep()(p.data(), tile, SweepStop::kAllGt, &lt, &gt);
  ChargeTile(tile);
  return tile.FullMask() & ~gt;
}

bool SimdAnyDominator(std::span<const Coord> p, const TileView& tile) {
  return SimdFilterDominators(p, tile) != 0;
}

BlockClassification SimdClassifyBlock(std::span<const Coord> p,
                                      const TileView& tile) {
  uint64_t lt = 0, gt = 0;
  ResolvedSweep()(p.data(), tile, SweepStop::kAllBoth, &lt, &gt);
  ChargeTile(tile);
  return BlockClassification{lt & ~gt, gt & ~lt};
}

uint64_t SimdPruneCorners(const TileView& corners, const TileView& skyline) {
  if (corners.rows == 0 || skyline.rows == 0) return 0;
  const SweepFn sweep = ResolvedSweep();
  uint64_t lt = 0, gt = 0;
  sweep(TileCeiling(corners).data(), skyline, SweepStop::kAllLt, &lt, &gt);
  ChargeTile(skyline);  // the ceiling screen (see TiledPruneCorners)
  uint64_t candidates = skyline.FullMask() & ~lt;
  const uint64_t full = corners.FullMask();
  uint64_t pruned = 0;
  while (candidates != 0 && pruned != full) {
    const size_t s = static_cast<size_t>(std::countr_zero(candidates));
    candidates &= candidates - 1;
    sweep(GatherRow(skyline, s).data(), corners, SweepStop::kAllGt, &lt, &gt);
    ChargeTile(corners);
    pruned |= lt & ~gt;  // this skyline row strictly dominates these corners
  }
  return pruned;
}

constexpr KernelOps kSimdOps = {
    &SimdFilterDominated,       &SimdFilterDominators,
    &SimdFilterWeaklyDominated, &SimdAnyDominator,
    &SimdClassifyBlock,         &SimdPruneCorners,
};

const KernelOps* Resolve(DomKernel kind) {
  switch (kind) {
    case DomKernel::kScalar: return &kScalarOps;
    case DomKernel::kTiled: return &kTiledOps;
    case DomKernel::kSimd: return &kSimdOps;
  }
  return &kScalarOps;
}

}  // namespace

DominanceKernel::DominanceKernel(DomKernel kind)
    : kind_(kind), ops_(Resolve(kind)) {}

uint64_t DominanceKernel::FilterDominated(std::span<const Coord> p,
                                          const TileView& tile) const {
  return ops_->filter_dominated(p, tile);
}

uint64_t DominanceKernel::FilterDominators(std::span<const Coord> p,
                                           const TileView& tile) const {
  return ops_->filter_dominators(p, tile);
}

uint64_t DominanceKernel::FilterWeaklyDominated(std::span<const Coord> p,
                                                const TileView& tile) const {
  return ops_->filter_weakly_dominated(p, tile);
}

bool DominanceKernel::AnyDominator(std::span<const Coord> p,
                                   const TileView& tile) const {
  return ops_->any_dominator(p, tile);
}

BlockClassification DominanceKernel::ClassifyBlock(std::span<const Coord> p,
                                                   const TileView& tile) const {
  return ops_->classify_block(p, tile);
}

uint64_t DominanceKernel::PruneCorners(const TileView& corners,
                                       const TileView& skyline) const {
  return ops_->prune_corners(corners, skyline);
}

}  // namespace skydiver
