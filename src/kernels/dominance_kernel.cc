#include "kernels/dominance_kernel.h"

#include <cstring>

namespace skydiver {

const char* ToString(DomKernel kernel) {
  switch (kernel) {
    case DomKernel::kScalar: return "scalar";
    case DomKernel::kTiled: return "tiled";
  }
  return "?";
}

Result<DomKernel> ParseDomKernel(std::string_view name) {
  if (name == "scalar") return DomKernel::kScalar;
  if (name == "tiled") return DomKernel::kTiled;
  return Status::InvalidArgument("unknown dominance kernel '" + std::string(name) +
                                 "' (expected 'scalar' or 'tiled')");
}

namespace {

// Per-row comparison flags accumulated across one dimension sweep:
// lt[r] != 0 iff the probe is strictly less than row r on some dimension,
// gt[r] != 0 iff strictly greater on some dimension. Every dominance
// outcome is a boolean function of (lt[r], gt[r]):
//   probe dominates row r   <=>  lt[r] && !gt[r]
//   row r dominates probe   <=>  gt[r] && !lt[r]
//   probe weakly <= row r   <=>  !gt[r]
//   equal                   <=>  !lt[r] && !gt[r]
// The two inner loops are branch-free byte ops over a 64-entry column —
// the layout the compiler's vectorizer was built for.
struct SweepFlags {
  alignas(kTileRows) uint8_t lt[kTileRows];
  alignas(kTileRows) uint8_t gt[kTileRows];
};

// The sweep may stop early once every row's outcome is frozen: with lt[r]
// set row r can never dominate the probe, with gt[r] set it can never be
// (weakly) dominated, and with both set the pair is incomparable for good.
// Callers pick the weakest condition covering the flags they read; the
// dominance charge is per (probe, row) pair and unaffected by how many
// dimensions the sweep actually visited.
enum class StopWhen : uint8_t { kNever, kAllLt, kAllGt, kAllBoth };

template <StopWhen kStop>
void SweepImpl(std::span<const Coord> p, const TileView& tile, SweepFlags* flags) {
  std::memset(flags->lt, 0, sizeof(flags->lt));
  std::memset(flags->gt, 0, sizeof(flags->gt));
  const size_t rows = tile.rows;
  for (size_t d = 0; d < tile.dims; ++d) {
    const Coord pd = p[d];
    const Coord* col = tile.cols + d * kTileRows;
    for (size_t r = 0; r < rows; ++r) {
      flags->lt[r] |= static_cast<uint8_t>(pd < col[r]);
      flags->gt[r] |= static_cast<uint8_t>(pd > col[r]);
    }
    if constexpr (kStop != StopWhen::kNever) {
      uint8_t frozen = 1;  // flag bytes are 0/1, so AND-reduction works
      for (size_t r = 0; r < rows; ++r) {
        if constexpr (kStop == StopWhen::kAllLt) {
          frozen &= flags->lt[r];
        } else if constexpr (kStop == StopWhen::kAllGt) {
          frozen &= flags->gt[r];
        } else {
          frozen &= static_cast<uint8_t>(flags->lt[r] & flags->gt[r]);
        }
      }
      if (frozen) return;
    }
  }
}


// Packs `take(r)` over the occupied rows into a bitmask.
template <typename Fn>
uint64_t Pack(const TileView& tile, Fn take) {
  uint64_t mask = 0;
  for (size_t r = 0; r < tile.rows; ++r) {
    mask |= static_cast<uint64_t>(take(r) ? 1 : 0) << r;
  }
  return mask;
}

// The tiled counting rule: one point-level test per (probe, row) pair.
void ChargeTile(const TileView& tile) {
  DominanceCounter::Count() += tile.rows;
  DominanceCounter::TiledCount() += tile.rows;
}

}  // namespace

uint64_t DominanceKernel::FilterDominated(std::span<const Coord> p,
                                          const TileView& tile) const {
  if (kind_ == DomKernel::kScalar) {
    uint64_t mask = 0;
    for (size_t r = 0; r < tile.rows; ++r) {
      ++DominanceCounter::Count();
      bool strictly_better = false;
      bool dominated = true;
      for (size_t d = 0; d < tile.dims; ++d) {
        const Coord pd = p[d];
        const Coord rv = tile.at(r, d);
        if (pd > rv) {
          dominated = false;
          break;
        }
        if (pd < rv) strictly_better = true;
      }
      if (dominated && strictly_better) mask |= uint64_t{1} << r;
    }
    return mask;
  }
  SweepFlags flags;
  SweepImpl<StopWhen::kAllGt>(p, tile, &flags);
  ChargeTile(tile);
  return Pack(tile, [&](size_t r) { return flags.lt[r] && !flags.gt[r]; });
}

uint64_t DominanceKernel::FilterDominators(std::span<const Coord> p,
                                           const TileView& tile) const {
  if (kind_ == DomKernel::kScalar) {
    uint64_t mask = 0;
    for (size_t r = 0; r < tile.rows; ++r) {
      ++DominanceCounter::Count();
      bool strictly_better = false;
      bool dominates = true;
      for (size_t d = 0; d < tile.dims; ++d) {
        const Coord pd = p[d];
        const Coord rv = tile.at(r, d);
        if (rv > pd) {
          dominates = false;
          break;
        }
        if (rv < pd) strictly_better = true;
      }
      if (dominates && strictly_better) mask |= uint64_t{1} << r;
    }
    return mask;
  }
  SweepFlags flags;
  SweepImpl<StopWhen::kAllLt>(p, tile, &flags);
  ChargeTile(tile);
  return Pack(tile, [&](size_t r) { return flags.gt[r] && !flags.lt[r]; });
}

uint64_t DominanceKernel::FilterWeaklyDominated(std::span<const Coord> p,
                                                const TileView& tile) const {
  if (kind_ == DomKernel::kScalar) {
    uint64_t mask = 0;
    for (size_t r = 0; r < tile.rows; ++r) {
      ++DominanceCounter::Count();
      bool weakly = true;
      for (size_t d = 0; d < tile.dims; ++d) {
        if (p[d] > tile.at(r, d)) {
          weakly = false;
          break;
        }
      }
      if (weakly) mask |= uint64_t{1} << r;
    }
    return mask;
  }
  SweepFlags flags;
  SweepImpl<StopWhen::kAllGt>(p, tile, &flags);
  ChargeTile(tile);
  return Pack(tile, [&](size_t r) { return !flags.gt[r]; });
}

bool DominanceKernel::AnyDominator(std::span<const Coord> p,
                                   const TileView& tile) const {
  if (kind_ == DomKernel::kScalar) {
    for (size_t r = 0; r < tile.rows; ++r) {
      ++DominanceCounter::Count();
      bool strictly_better = false;
      bool dominates = true;
      for (size_t d = 0; d < tile.dims; ++d) {
        const Coord pd = p[d];
        const Coord rv = tile.at(r, d);
        if (rv > pd) {
          dominates = false;
          break;
        }
        if (rv < pd) strictly_better = true;
      }
      if (dominates && strictly_better) return true;
    }
    return false;
  }
  return FilterDominators(p, tile) != 0;
}

BlockClassification DominanceKernel::ClassifyBlock(std::span<const Coord> p,
                                                   const TileView& tile) const {
  if (kind_ == DomKernel::kScalar) {
    BlockClassification out;
    for (size_t r = 0; r < tile.rows; ++r) {
      ++DominanceCounter::Count();
      bool p_better = false;
      bool r_better = false;
      for (size_t d = 0; d < tile.dims; ++d) {
        const Coord pd = p[d];
        const Coord rv = tile.at(r, d);
        if (pd < rv) {
          p_better = true;
        } else if (rv < pd) {
          r_better = true;
        }
        if (p_better && r_better) break;
      }
      if (p_better && !r_better) out.dominated |= uint64_t{1} << r;
      if (r_better && !p_better) out.dominators |= uint64_t{1} << r;
    }
    return out;
  }
  SweepFlags flags;
  SweepImpl<StopWhen::kAllBoth>(p, tile, &flags);
  ChargeTile(tile);
  BlockClassification out;
  out.dominated = Pack(tile, [&](size_t r) { return flags.lt[r] && !flags.gt[r]; });
  out.dominators = Pack(tile, [&](size_t r) { return flags.gt[r] && !flags.lt[r]; });
  return out;
}

}  // namespace skydiver
