// Top-k dominating queries (Yiu & Mamoulis, VLDB'07 — the paper's
// reference [36] for dominance-based ranking).
//
// Returns the k points with the largest domination scores |Γ(p)|. This is
// the ranking primitive the paper builds its intuition on ("dominance
// power as a predominant quality characteristic of a skyline point") and a
// natural companion API: SkyDiver diversifies, top-k-dominating ranks.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "rtree/rtree.h"

namespace skydiver {

/// One ranked point.
struct DominatingPoint {
  RowId row = kInvalidRowId;
  uint64_t score = 0;  ///< |Γ(row)|
};

/// Exact top-k dominating points by full scan (O(n^2) dominance tests).
/// Intended for validation and small inputs.
Result<std::vector<DominatingPoint>> TopKDominatingScan(const DataSet& data, size_t k);

/// Exact top-k dominating points using aggregate range counting on `tree`
/// (one DominatedCount query per candidate). Candidates can be restricted
/// to the skyline — the global top-1 always lies on the skyline, and for
/// most analytics the skyline points are the candidates of interest; pass
/// nullptr to rank every point.
Result<std::vector<DominatingPoint>> TopKDominating(
    const DataSet& data, const RTree& tree, size_t k,
    const std::vector<RowId>* candidates = nullptr);

}  // namespace skydiver
