// External-memory skyline with a bounded window (the setting of the
// paper's reference [29], Sheng & Tao, PODS'11: exact skylines in the I/O
// model without an index).
//
// LESS-style algorithm: rows are (externally) sorted by a monotone score;
// each pass streams the remaining rows against a bounded in-memory window.
// A row dominated by a confirmed skyline point or a window member is
// discarded; a row that finds the window full overflows to the next pass.
// At the end of a pass every window member is confirmed: any potential
// dominator precedes it in score order, so it was either confirmed
// earlier, in the window (and checked), or overflowed — in which case the
// later row overflowed too and the pair meets again next pass.
//
// Every pass charges sequential read I/O for the rows it scans and write
// I/O for the rows it overflows, so the CPU/I/O trade-off of bounded
// memory is measurable under the paper's cost model.

#pragma once

#include <cstdint>
#include <vector>

#include "common/io_stats.h"
#include "common/status.h"
#include "core/dataset.h"

namespace skydiver {

/// Outcome of the external skyline computation.
struct ExternalSkylineResult {
  /// Skyline row ids, ascending — identical to any in-memory algorithm.
  std::vector<RowId> rows;
  /// Passes over the (shrinking) data file, including the first.
  uint32_t passes = 0;
  /// Charged sequential I/O: reads of scanned rows + writes of overflowed
  /// rows, in 4 KB pages (the sort's I/O is charged as one read+write pass,
  /// run formation, plus merge passes at fan-in 8).
  IoStats io;
  uint64_t dominance_checks = 0;
};

/// Computes the exact skyline with at most `window_rows` points of working
/// memory (>= 1). Small windows mean more passes and more I/O; a window
/// of at least the skyline size finishes in one pass.
Result<ExternalSkylineResult> SkylineExternal(const DataSet& data, size_t window_rows);

/// The ORIGINAL multi-pass BNL (Börzsönyi et al., ICDE'01): no presort.
/// Without score order a window point may be dominated by a later arrival
/// and may have missed comparisons against earlier overflowed points, so
/// confirmation uses the classic position rule: at the end of a pass, a
/// surviving window point is skyline iff it entered the window before the
/// pass's first overflow write; unconfirmed survivors stay in the window
/// for the next pass (they are then compared against every remaining
/// point). Charges the same sequential read/spill I/O model as
/// SkylineExternal, minus the sort.
Result<ExternalSkylineResult> SkylineExternalBNL(const DataSet& data,
                                                 size_t window_rows);

}  // namespace skydiver
