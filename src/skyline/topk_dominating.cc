#include "skyline/topk_dominating.h"

// skylint:allow-file(view-loops) — top-k dominating queries score points
// by full-space domination counts over the whole dataset (a different
// query class from skylines); they sit outside the SkyQuery surface, so
// the raw-dimensionality check here is intentional.

#include <algorithm>

#include "core/dominance.h"

namespace skydiver {

namespace {

// Sorts by score descending, ties by row ascending, and truncates to k.
std::vector<DominatingPoint> TopK(std::vector<DominatingPoint> scored, size_t k) {
  std::sort(scored.begin(), scored.end(),
            [](const DominatingPoint& a, const DominatingPoint& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.row < b.row;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace

Result<std::vector<DominatingPoint>> TopKDominatingScan(const DataSet& data, size_t k) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  const RowId n = data.size();
  std::vector<DominatingPoint> scored(n);
  for (RowId r = 0; r < n; ++r) {
    scored[r].row = r;
    const auto p = data.row(r);
    for (RowId q = 0; q < n; ++q) {
      if (q != r && Dominates(p, data.row(q))) ++scored[r].score;
    }
  }
  return TopK(std::move(scored), k);
}

Result<std::vector<DominatingPoint>> TopKDominating(
    const DataSet& data, const RTree& tree, size_t k,
    const std::vector<RowId>* candidates) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (tree.dims() != data.dims() || tree.size() != data.size()) {
    return Status::InvalidArgument("R-tree does not index the given dataset");
  }
  std::vector<DominatingPoint> scored;
  if (candidates != nullptr) {
    scored.reserve(candidates->size());
    for (RowId r : *candidates) {
      if (r >= data.size()) {
        return Status::InvalidArgument("candidate row " + std::to_string(r) +
                                       " out of range");
      }
      scored.push_back({r, tree.DominatedCount(data.row(r))});
    }
  } else {
    const RowId n = data.size();
    scored.reserve(n);
    for (RowId r = 0; r < n; ++r) {
      scored.push_back({r, tree.DominatedCount(data.row(r))});
    }
  }
  return TopK(std::move(scored), k);
}

}  // namespace skydiver
