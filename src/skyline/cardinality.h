// Expected skyline cardinality for independent uniform data.
//
// The paper's motivation rests on the classical result of Bentley, Kung,
// Schkolnick & Thompson (JACM 1978): the expected number of maxima of n
// i.i.d. points with independent coordinates is O((ln n)^{d-1}) — large
// enough that "the user cannot inspect the skyline manually". This module
// provides both the exact expectation (via the standard recurrence) and
// the closed-form asymptotic, so users can size k and predict signature
// memory before running anything.

#pragma once

#include <cstdint>

#include "core/types.h"

namespace skydiver {

/// Exact expected skyline size of n i.i.d. points with independent,
/// continuous (tie-free) coordinates in d dimensions, via the recurrence
///   E(n, 1) = 1,   E(n, d) = E(n-1, d) + E(n, d-1) / n.
/// O(n·d) time, O(n) space. n must be >= 1, d >= 1.
double ExpectedSkylineSizeUniform(uint64_t n, Dim d);

/// First-order asymptotic (ln n)^{d-1} / (d-1)!.
double AsymptoticSkylineSizeUniform(uint64_t n, Dim d);

}  // namespace skydiver
