// Tile-aware BBS: one best-first traversal behind both the progressive
// scan and the batch SkylineBBS entry points.
//
// The paper prefers BBS among skyline algorithms for two properties —
// result progressiveness and I/O optimality (Section 2). `BbsScan` exposes
// the progressiveness: skyline points are emitted one at a time in
// ascending coordinate-sum (mindist) order, reading only the index pages
// needed so far. An application that wants the "first few" pareto points
// for a preview pays a fraction of the full traversal; SkylineBBS simply
// drains the scan to exhaustion, so both paths share one implementation.
//
// The scan is query-shaped: it runs over a `DataView`, clipping every
// entry MBR against the view's constraint box before the corner prune
// (entries that miss the box are dropped — for leaves this is an exact
// in-box point filter) and evaluating dominance and mindist in the
// projected subspace. The R-tree itself is query-independent: one tree
// built on the full dataset serves every SkyQuery. The identity view runs
// the historical full-space arithmetic bit-for-bit.
//
// Node pruning is batched the way SFS/BNL batch their window checks: when
// a node is popped, the clipped+projected MBR lo-corners of its surviving
// entries are transposed into one scratch corner `Tile`
// (rtree/node_corners.h) and the whole node is decided with `PruneCorners`
// calls against the accumulated skyline `TileSet`. The batched kernels
// exploit that the corners are R-tree siblings — a tight box: one sweep of
// the corner tile's ceiling over each skyline tile finds the few rows that
// could dominate any corner at all (usually none, retiring the whole
// node/tile pair in one sweep), then sweeps just those candidates across
// the corner tile until the pruned mask saturates. Corners are compacted
// away between skyline tiles. The kernel flavour honors the plan's
// `DomKernel`, downgraded PER PROBE on the current skyline size (the
// skyline starts empty, so an up-front EffectiveKernel decision would
// never batch).
//
// Heap order is a deterministic total order: mindist first, then points
// before nodes (a tied point admitted first prunes the node's other
// entries — and never the reverse, since a node cannot dominate a point
// tied with its own corner), then row/child id. Emission order is
// therefore identical across kernel flavours, tree backends, and stdlib
// heap implementations.
//
// Templated over the tree backend (RTree / DiskRTree), like the other
// traversals. Every dominance probe is charged to DominanceCounter and
// accumulated into dominance_checks(), so progressive scans report the
// same check counts a batch SkylineBBS call does.

#pragma once

#include <algorithm>
#include <optional>
#include <queue>
#include <vector>

#include "common/status.h"
#include "core/data_view.h"
#include "core/dataset.h"
#include "core/dominance.h"
#include "kernels/dominance_kernel.h"
#include "kernels/tile_view.h"
#include "rtree/node_corners.h"
#include "rtree/page_cache.h"
#include "rtree/rtree.h"

namespace skydiver {

/// Incremental best-first skyline scan with batched node pruning.
template <typename Tree>
class BbsScan {
 public:
  /// `view` and `tree` must outlive the scan; the tree must index the
  /// view's FULL dataset (same row ids — the query shapes the traversal,
  /// not the tree). `kernel` picks the dominance flavour for probes once
  /// the skyline spans at least one tile (below that the scalar reference
  /// runs).
  BbsScan(const DataView& view, const Tree& tree,
          DomKernel kernel = DomKernel::kScalar)
      : view_(&view),
        tree_(tree),
        scalar_(DomKernel::kScalar),
        batched_(EffectiveKernel(kernel, kTileRows)),
        skyline_tiles_(view.dims()),
        corners_(view.dims()) {
    if (tree.size() > 0) {
      heap_.push(Item{0.0, false, tree.root(), kInvalidRowId});
    }
  }

  /// Identity-view convenience: scans the full-space skyline of `data`.
  /// (owned_ is the first member, so view_ may point into it here.)
  BbsScan(const DataSet& data, const Tree& tree,
          DomKernel kernel = DomKernel::kScalar)
      : owned_(std::in_place, data),
        view_(&*owned_),
        tree_(tree),
        scalar_(DomKernel::kScalar),
        batched_(EffectiveKernel(kernel, kTileRows)),
        skyline_tiles_(owned_->dims()),
        corners_(owned_->dims()) {
    if (tree.size() > 0) {
      heap_.push(Item{0.0, false, tree.root(), kInvalidRowId});
    }
  }

  /// The next skyline row in (masked) mindist order, or nullopt when
  /// exhausted — or when a page read failed, which parks the error in
  /// status() and ends the scan (the RocksDB iterator contract: drain,
  /// then check status()).
  std::optional<RowId> Next() {
    const uint64_t before = DominanceCounter::Count();
    std::optional<RowId> out;
    while (status_.ok() && !heap_.empty()) {
      const Item item = heap_.top();
      heap_.pop();
      if (item.is_point) {
        const auto p = view_->ProjectedRow(item.row, probe_scratch_);
        if (!DominatedBySkyline(p)) {
          skyline_tiles_.Append(item.row, p);
          emitted_.push_back(item.row);
          out = item.row;
          break;
        }
        continue;
      }
      // Pin discipline (rtree/page_cache.h): name the ref, check it,
      // borrow the node. RTree's infallible shape compiles the check away.
      decltype(auto) ref = tree_.ReadNode(item.child);
      if (!RefOk(ref)) {
        status_ = RefStatus(ref);
        heap_ = {};  // a partial frontier is useless; fail the whole scan
        break;
      }
      const RTreeNode& node = NodeOf(ref);
      // Async prefetch hook: a backend with a prefetcher (DiskRTree with a
      // pool attached) warms all child pages of the popped node while this
      // thread prunes it, so heap-ordered pops land on resident frames.
      // Prefetch never changes results — only which access pays the read.
      if constexpr (requires { tree_.PrefetchChildren(node); }) {
        tree_.PrefetchChildren(node);
      }
      PruneAndPushNode(node);
    }
    dominance_checks_ += DominanceCounter::Count() - before;
    return out;
  }

  /// OK while the scan is healthy; the first page-read error otherwise
  /// (after which Next() returns nullopt forever). Check after draining.
  Status status() const { return status_; }

  /// Skyline rows emitted so far, in emission (mindist) order.
  const std::vector<RowId>& emitted() const { return emitted_; }

  /// Point-level dominance tests charged by the scan so far.
  uint64_t dominance_checks() const { return dominance_checks_; }

 private:
  struct Item {
    double mindist;
    bool is_point;
    PageId child;  // when !is_point
    RowId row;     // when is_point
    // Deterministic total order: mindist, then points before nodes, then
    // id — no two live items compare equal (rows and pages are unique),
    // so pop order never depends on the stdlib's heap layout.
    bool operator>(const Item& other) const {
      if (mindist != other.mindist) return mindist > other.mindist;
      if (is_point != other.is_point) return !is_point;
      const uint32_t id = is_point ? row : child;
      const uint32_t other_id = other.is_point ? other.row : other.child;
      return id > other_id;
    }
  };

  // Masked L1 mindist of an MBR: the sum of its box-clipped lo-corner over
  // the projected dimensions. Admissible for in-box subtree points (the
  // clipped corner lower-bounds them componentwise), so emission order
  // stays progressive. Identity views sum lo coordinates in dimension
  // order — the exact additions of Mbr::MinDistL1.
  double ViewMinDist(const Mbr& mbr) const {
    double s = 0.0;
    if (!view_->constrained()) {
      for (const Dim pd : view_->proj()) s += mbr.lo(pd);
      return s;
    }
    const SkyQuery& q = view_->query();
    for (const Dim pd : view_->proj()) s += std::max(mbr.lo(pd), q.lo[pd]);
    return s;
  }

  // Per-probe downgrade (the skyline grows from empty): scalar until the
  // accumulated skyline fills a tile, the requested batched flavour after.
  const DominanceKernel& ProbeKernel() const {
    return skyline_tiles_.size() < kTileRows ? scalar_ : batched_;
  }

  bool DominatedBySkyline(std::span<const Coord> p) const {
    const DominanceKernel& kernel = ProbeKernel();
    for (const Tile& t : skyline_tiles_.tiles()) {
      if (kernel.AnyDominator(p, t.view())) return true;
    }
    return false;
  }

  // Batched node prune: materialize the entries' clipped+projected
  // lo-corners into the scratch tile (box-missing entries never enter),
  // sweep skyline tiles over it (compacting dominated corners away between
  // tiles), and push the survivors. This is exactly the BBS criterion that
  // yields I/O optimality — an entry is dropped iff its best reachable
  // corner is already dominated or its subtree cannot intersect the box.
  void PruneAndPushNode(const RTreeNode& node) {
    const DominanceKernel& kernel = ProbeKernel();
    for (size_t begin = 0; begin < node.entries.size(); begin += kTileRows) {
      const size_t end = std::min(begin + kTileRows, node.entries.size());
      MaterializeQueryCorners(node, begin, end, *view_, corner_scratch_, &corners_);
      for (const Tile& t : skyline_tiles_.tiles()) {
        if (corners_.empty()) break;
        const uint64_t pruned = kernel.PruneCorners(corners_.view(), t.view());
        if (pruned != 0) corners_.Compact(corners_.view().FullMask() & ~pruned);
      }
      for (size_t r = 0; r < corners_.rows(); ++r) {
        const RTreeEntry& e = node.entries[corners_.id(r)];
        if (node.is_leaf) {
          heap_.push(Item{ViewMinDist(e.mbr), true, kInvalidPageId, e.row});
        } else {
          heap_.push(Item{ViewMinDist(e.mbr), false, e.child, kInvalidRowId});
        }
      }
    }
  }

  std::optional<DataView> owned_;  // set only by the DataSet ctor
  const DataView* view_;
  const Tree& tree_;
  DominanceKernel scalar_;
  DominanceKernel batched_;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
  TileSet skyline_tiles_;
  Tile corners_;                       // scratch: one node's corners per chunk
  std::vector<Coord> corner_scratch_;  // scratch: one clipped+projected corner
  std::vector<Coord> probe_scratch_;   // scratch: one projected point probe
  std::vector<RowId> emitted_;
  uint64_t dominance_checks_ = 0;
  Status status_;  // first page-read failure; sticky
};

}  // namespace skydiver
