// Progressive BBS: skyline points on demand.
//
// The paper prefers BBS among skyline algorithms for two properties —
// result progressiveness and I/O optimality (Section 2). `BbsScan` exposes
// the progressiveness: skyline points are emitted one at a time in
// ascending coordinate-sum (mindist) order, reading only the index pages
// needed so far. An application that wants the "first few" pareto points
// for a preview pays a fraction of the full traversal.
//
// Templated over the tree backend (RTree / DiskRTree), like the other
// traversals.

#pragma once

#include <optional>
#include <queue>
#include <vector>

#include "core/dataset.h"
#include "core/dominance.h"
#include "rtree/buffer_pool.h"
#include "rtree/mbr.h"

namespace skydiver {

/// Incremental best-first skyline scan.
template <typename Tree>
class BbsScan {
 public:
  /// `data` and `tree` must outlive the scan; the tree must index `data`.
  BbsScan(const DataSet& data, const Tree& tree) : data_(data), tree_(tree) {
    if (tree.size() > 0) {
      heap_.push(Item{0.0, false, tree.root(), kInvalidRowId});
    }
  }

  /// The next skyline row in mindist order, or nullopt when exhausted.
  std::optional<RowId> Next() {
    while (!heap_.empty()) {
      const Item item = heap_.top();
      heap_.pop();
      if (item.is_point) {
        const auto p = data_.row(item.row);
        if (!DominatedBySkyline(p)) {
          emitted_.push_back(item.row);
          return item.row;
        }
        continue;
      }
      const auto& node = tree_.ReadNode(item.child);
      for (const auto& e : node.entries) {
        if (DominatedBySkyline(e.mbr.lo())) continue;
        if (node.is_leaf) {
          heap_.push(Item{e.mbr.MinDistL1(), true, kInvalidPageId, e.row});
        } else {
          heap_.push(Item{e.mbr.MinDistL1(), false, e.child, kInvalidRowId});
        }
      }
    }
    return std::nullopt;
  }

  /// Skyline rows emitted so far, in emission (mindist) order.
  const std::vector<RowId>& emitted() const { return emitted_; }

 private:
  struct Item {
    double mindist;
    bool is_point;
    PageId child;
    RowId row;
    bool operator>(const Item& other) const { return mindist > other.mindist; }
  };

  bool DominatedBySkyline(std::span<const Coord> corner) const {
    for (RowId s : emitted_) {
      if (Dominates(data_.row(s), corner)) return true;
    }
    return false;
  }

  const DataSet& data_;
  const Tree& tree_;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap_;
  std::vector<RowId> emitted_;
};

}  // namespace skydiver
