// Skyline computation algorithms.
//
// SkyDiver consumes a skyline set produced by any algorithm; this module
// provides the three classic ones the paper discusses:
//   * BNL  — block-nested-loops (Börzsönyi et al., ICDE'01): no index, no
//            presort; maintains a window of incomparable candidates.
//   * SFS  — sort-filter-skyline (Chomicki et al.): presorts by a monotone
//            score so candidates, once admitted, are final.
//   * BBS  — branch-and-bound skyline on the aggregate R*-tree (Papadias et
//            al., TODS'05): progressive and I/O-optimal; the paper calls it
//            the preferred index-based method.
//
// All algorithms operate in minimization space and use strict dominance, so
// duplicate points are all retained in the skyline (none dominates another).
// They return row ids sorted in ascending order, so results are directly
// comparable across algorithms.

// Every algorithm takes a `DomKernel` selector: kScalar (the default,
// matching the historical per-pair loops and their early-exit dominance
// counts exactly) or kTiled, which runs the window / candidate filters
// through the batched 64-row kernels of kernels/dominance_kernel.h. Both
// kernels return identical skyline rows; only the dominance-check
// accounting differs (tiled sweeps whole tiles where scalar early-exits).
// Inputs smaller than one tile fall back to the scalar reference.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "kernels/dominance_kernel.h"
#include "rtree/rtree.h"

namespace skydiver {

/// Output of a skyline computation.
struct SkylineResult {
  /// Row ids of the skyline points, ascending.
  std::vector<RowId> rows;
  /// Point-level dominance tests executed (CPU cost proxy).
  uint64_t dominance_checks = 0;
};

/// Block-nested-loops skyline. O(n·m) dominance tests; the in-memory window
/// is unbounded (the multi-pass disk variant degenerates to this when the
/// window fits in memory, which it does for all our workloads). Under
/// kTiled the window lives in column-major tiles and every arrival is
/// classified block-at-a-time.
SkylineResult SkylineBNL(const DataSet& data,
                         DomKernel kernel = DomKernel::kScalar);

/// Sort-filter-skyline: presorts rows by the sum of coordinates (a monotone
/// scoring function), after which every admitted candidate is definitively
/// in the skyline — no candidate can be dominated by a later point. Under
/// kTiled the admitted set is tiled and admission is one AnyDominator
/// sweep per tile.
SkylineResult SkylineSFS(const DataSet& data,
                         DomKernel kernel = DomKernel::kScalar);

/// Divide-and-conquer skyline (Börzsönyi et al.): recursively splits on
/// the median of a cycling dimension, computes sub-skylines, and merges by
/// cross-filtering the two candidate sets (tie-safe: both directions are
/// checked, so duplicate coordinates on the split dimension are handled).
/// `leaf_size` is the recursion cutoff below which BNL runs directly.
/// Under kTiled both the leaf BNL and the merge cross-filter are batched.
SkylineResult SkylineDC(const DataSet& data, size_t leaf_size = 256,
                        DomKernel kernel = DomKernel::kScalar);

/// Branch-and-bound skyline over the aggregate R*-tree built on `data`.
/// Progressive (emits skyline points in mindist order) and I/O-optimal
/// (visits only nodes whose MBR is not dominated). The tree must index
/// exactly `data` (same row ids). Implemented as a full drain of the
/// unified tile-aware traversal (bbs_scan.h): each popped node's entry
/// lo-corners are transposed into one corner tile and pruned with batched
/// PruneCorners sweeps against the accumulated skyline TileSet, with the
/// kernel flavour downgraded per probe on the current skyline size. Heap
/// ties break deterministically (points before nodes, then id), so
/// results AND emission order are identical across flavours and backends.
Result<SkylineResult> SkylineBBS(const DataSet& data, const RTree& tree,
                                 DomKernel kernel = DomKernel::kScalar);

/// BBS over a file-backed tree (real page reads through its frame cache).
class DiskRTree;
Result<SkylineResult> SkylineBBS(const DataSet& data, const DiskRTree& tree,
                                 DomKernel kernel = DomKernel::kScalar);

/// Reference check (tests): true iff `rows` is exactly the skyline of
/// `data` by exhaustive O(n^2) comparison. Intended for small inputs.
bool IsSkyline(const DataSet& data, const std::vector<RowId>& rows);

/// Cheap structural validation of externally supplied skyline rows (a
/// caller's precomputed skyline, a reloaded session, a streaming export):
/// non-empty, strictly ascending (hence duplicate-free), and every id in
/// range for `n` rows. O(m); does NOT verify dominance — that is
/// IsSkyline's exhaustive job.
[[nodiscard]] Status ValidateSkylineRows(std::span<const RowId> rows, size_t n);

}  // namespace skydiver
