// Skyline computation algorithms.
//
// SkyDiver consumes a skyline set produced by any algorithm; this module
// provides the three classic ones the paper discusses:
//   * BNL  — block-nested-loops (Börzsönyi et al., ICDE'01): no index, no
//            presort; maintains a window of incomparable candidates.
//   * SFS  — sort-filter-skyline (Chomicki et al.): presorts by a monotone
//            score so candidates, once admitted, are final.
//   * BBS  — branch-and-bound skyline on the aggregate R*-tree (Papadias et
//            al., TODS'05): progressive and I/O-optimal; the paper calls it
//            the preferred index-based method.
//
// All algorithms operate in minimization space and use strict dominance, so
// duplicate points are all retained in the skyline (none dominates another).
// They return row ids sorted in ascending order, so results are directly
// comparable across algorithms.
//
// Every algorithm computes over a query-scoped `DataView` (core/data_view.h):
// only rows inside the query's constraint box participate, and dominance is
// evaluated in the projected subspace. Returned row ids are always ids into
// the ORIGINAL dataset. The `DataSet` overloads run the identity view and
// are bit-identical to the historical full-space paths.

// Every algorithm takes a `DomKernel` selector: kScalar (the default,
// matching the historical per-pair loops and their early-exit dominance
// counts exactly) or kTiled, which runs the window / candidate filters
// through the batched 64-row kernels of kernels/dominance_kernel.h. Both
// kernels return identical skyline rows; only the dominance-check
// accounting differs (tiled sweeps whole tiles where scalar early-exits).
// Inputs smaller than one tile fall back to the scalar reference.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/data_view.h"
#include "core/dataset.h"
#include "kernels/dominance_kernel.h"
#include "rtree/rtree.h"

namespace skydiver {

/// Output of a skyline computation.
struct SkylineResult {
  /// Row ids of the skyline points, ascending.
  std::vector<RowId> rows;
  /// Point-level dominance tests executed (CPU cost proxy).
  uint64_t dominance_checks = 0;
};

/// Block-nested-loops skyline. O(n·m) dominance tests; the in-memory window
/// is unbounded (the multi-pass disk variant degenerates to this when the
/// window fits in memory, which it does for all our workloads). Under
/// kTiled the window lives in column-major tiles and every arrival is
/// classified block-at-a-time.
SkylineResult SkylineBNL(const DataView& view,
                         DomKernel kernel = DomKernel::kScalar);
SkylineResult SkylineBNL(const DataSet& data,
                         DomKernel kernel = DomKernel::kScalar);

/// Sort-filter-skyline: presorts rows by the sum of (projected) coordinates
/// — a monotone scoring function — after which every admitted candidate is
/// definitively in the skyline: no candidate can be dominated by a later
/// point. Under kTiled the admitted set is tiled and admission is one
/// AnyDominator sweep per tile.
SkylineResult SkylineSFS(const DataView& view,
                         DomKernel kernel = DomKernel::kScalar);
SkylineResult SkylineSFS(const DataSet& data,
                         DomKernel kernel = DomKernel::kScalar);

/// SFS restricted to an explicit subset of the view's rows (callers pass a
/// chunk of view.rows()): the building block for the sharded backend and
/// the pooled SFS shards. Returns original row ids, ascending.
SkylineResult SkylineSFSRows(const DataView& view, std::span<const RowId> rows,
                             DomKernel kernel = DomKernel::kScalar);

/// Divide-and-conquer skyline (Börzsönyi et al.): recursively splits on
/// the median of a cycling (projected) dimension, computes sub-skylines,
/// and merges by cross-filtering the two candidate sets (tie-safe: both
/// directions are checked, so duplicate coordinates on the split dimension
/// are handled). `leaf_size` is the recursion cutoff below which BNL runs
/// directly. Under kTiled both the leaf BNL and the merge cross-filter are
/// batched.
SkylineResult SkylineDC(const DataView& view, size_t leaf_size = 256,
                        DomKernel kernel = DomKernel::kScalar);
SkylineResult SkylineDC(const DataSet& data, size_t leaf_size = 256,
                        DomKernel kernel = DomKernel::kScalar);

/// The D&C cross-filter merge of two antichains: members of `a` not
/// dominated by any member of `b` plus members of `b` not dominated by any
/// member of `a` (both directions — tie/duplicate safe). If `a` and `b`
/// are the skylines of row sets A and B, the result is the skyline of
/// A ∪ B. Exposed for the sharded backend's shard merge.
std::vector<RowId> CrossFilterMerge(const DataView& view, const std::vector<RowId>& a,
                                    const std::vector<RowId>& b, DomKernel kernel);

/// Sharded skyline: splits the view's rows into `shards` contiguous
/// chunks, computes each chunk's local SFS skyline, and folds the local
/// skylines together with the D&C cross-filter. Serial; the pooled
/// variant that computes the shard phase on a thread pool is
/// parallel/parallel_ops.h's ShardedSkyline. shards <= 1 degenerates to
/// one chunk (rows identical to SkylineSFS).
SkylineResult SkylineSharded(const DataView& view, size_t shards,
                             DomKernel kernel = DomKernel::kScalar);

/// Branch-and-bound skyline over the aggregate R*-tree built on the FULL
/// dataset (the tree is query-independent; the query is applied during the
/// traversal). Progressive (emits skyline points in masked-mindist order)
/// and I/O-optimal (visits only nodes whose clipped MBR is not dominated).
/// The tree must index exactly `view.data()` (same row ids). Implemented
/// as a full drain of the unified tile-aware traversal (bbs_scan.h): each
/// popped node's entry lo-corners — clipped against the constraint box and
/// projected — are transposed into one corner tile and pruned with batched
/// PruneCorners sweeps against the accumulated skyline TileSet, with the
/// kernel flavour downgraded per probe on the current skyline size.
/// Entries whose MBR misses the constraint box are dropped outright. Heap
/// ties break deterministically (points before nodes, then id), so
/// results AND emission order are identical across flavours and backends.
Result<SkylineResult> SkylineBBS(const DataView& view, const RTree& tree,
                                 DomKernel kernel = DomKernel::kScalar);
Result<SkylineResult> SkylineBBS(const DataSet& data, const RTree& tree,
                                 DomKernel kernel = DomKernel::kScalar);

/// BBS over a file-backed tree (real page reads through its frame cache).
class DiskRTree;
Result<SkylineResult> SkylineBBS(const DataView& view, const DiskRTree& tree,
                                 DomKernel kernel = DomKernel::kScalar);
Result<SkylineResult> SkylineBBS(const DataSet& data, const DiskRTree& tree,
                                 DomKernel kernel = DomKernel::kScalar);

/// Reference check (tests): true iff `rows` is exactly the skyline of
/// `data` by exhaustive O(n^2) comparison. Intended for small inputs.
bool IsSkyline(const DataSet& data, const std::vector<RowId>& rows);

/// View-scoped reference check: true iff `rows` is exactly the skyline of
/// the view — every row inside the constraint box, and in the result iff
/// no other in-box row dominates it in the projected subspace. This is the
/// mask-aware validator; the full-space overload above rejects correct
/// subspace skylines by design (it checks full-space dominance).
bool IsSkyline(const DataView& view, const std::vector<RowId>& rows);

/// Cheap structural validation of externally supplied skyline rows (a
/// caller's precomputed skyline, a reloaded session, a streaming export):
/// non-empty, strictly ascending (hence duplicate-free), and every id in
/// range for `n` rows. O(m); does NOT verify dominance — that is
/// IsSkyline's exhaustive job.
[[nodiscard]] Status ValidateSkylineRows(std::span<const RowId> rows, size_t n);

/// View-scoped structural validation: ascending, in range, and every row
/// inside the view's constraint box. A constrained view may legitimately
/// have an EMPTY skyline (the box can exclude every point), so emptiness
/// is only an error for unconstrained views.
[[nodiscard]] Status ValidateSkylineRows(std::span<const RowId> rows,
                                         const DataView& view);

}  // namespace skydiver
