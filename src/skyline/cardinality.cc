#include "skyline/cardinality.h"

#include <cmath>
#include <vector>

#include "common/check.h"

namespace skydiver {

double ExpectedSkylineSizeUniform(uint64_t n, Dim d) {
  SKYDIVER_DCHECK(n >= 1 && d >= 1);
  // E(i, 1) = 1 for all i; roll the recurrence dimension by dimension.
  // current[i] holds E(i+1, dim) while filling dimension `dim`.
  std::vector<double> current(n, 1.0);
  for (Dim dim = 2; dim <= d; ++dim) {
    double prefix = 0.0;  // E(i-1, dim) accumulator
    for (uint64_t i = 1; i <= n; ++i) {
      // E(i, dim) = E(i-1, dim) + E(i, dim-1) / i.
      prefix += current[i - 1] / static_cast<double>(i);
      current[i - 1] = prefix;
    }
  }
  return current[n - 1];
}

double AsymptoticSkylineSizeUniform(uint64_t n, Dim d) {
  SKYDIVER_DCHECK(n >= 1 && d >= 1);
  double result = 1.0;
  const double ln_n = std::log(static_cast<double>(n));
  for (Dim i = 1; i < d; ++i) {
    result *= ln_n / static_cast<double>(i);
  }
  return result;
}

}  // namespace skydiver
