#include "skyline/skyline.h"

#include <algorithm>
#include <numeric>

#include "core/dominance.h"
#include "kernels/tile_view.h"
#include "rtree/disk_rtree.h"
#include "skyline/bbs_scan.h"

namespace skydiver {

namespace {

// Tracks dominance tests performed within one algorithm invocation.
class CheckScope {
 public:
  CheckScope() : start_(DominanceCounter::Count()) {}
  uint64_t Delta() const { return DominanceCounter::Count() - start_; }

 private:
  uint64_t start_;
};

// Scalar BNL window pass over `rows`; returns survivors in window order.
std::vector<RowId> ScalarBnlWindow(const DataSet& data, std::span<const RowId> rows) {
  std::vector<RowId> window;
  for (RowId r : rows) {
    const auto p = data.row(r);
    bool dominated = false;
    size_t keep = 0;
    for (size_t i = 0; i < window.size(); ++i) {
      const DomRelation rel = Compare(data.row(window[i]), p);
      if (rel == DomRelation::kDominates) {
        dominated = true;
        // Everything before i survives; nothing after i has been filtered
        // yet, so copy the tail and stop.
        for (size_t j = i; j < window.size(); ++j) window[keep++] = window[j];
        break;
      }
      if (rel != DomRelation::kDominatedBy) {
        window[keep++] = window[i];  // incomparable: candidate survives
      }
      // Window entries dominated by p are dropped (not copied).
    }
    window.resize(keep);
    if (!dominated) window.push_back(r);
  }
  return window;
}

// Tiled BNL window pass: the window is a TileSet; each arrival is
// classified against whole tiles. A dominated arrival never dominates any
// window entry (the window is an antichain), so breaking on the first
// dominator leaves the window untouched — exactly the scalar semantics.
std::vector<RowId> TiledBnlWindow(const DataSet& data, std::span<const RowId> rows,
                                  const DominanceKernel& kernel) {
  TileSet window(data.dims());
  std::vector<uint64_t> dominated_masks;
  for (RowId r : rows) {
    const auto p = data.row(r);
    const auto& tiles = window.tiles();
    dominated_masks.assign(tiles.size(), 0);
    bool dominated = false;
    for (size_t ti = 0; ti < tiles.size(); ++ti) {
      const BlockClassification cls = kernel.ClassifyBlock(p, tiles[ti].view());
      if (cls.dominators != 0) {
        dominated = true;
        break;
      }
      dominated_masks[ti] = cls.dominated;
    }
    if (dominated) continue;
    bool dropped = false;
    for (size_t ti = 0; ti < dominated_masks.size(); ++ti) {
      if (dominated_masks[ti] == 0) continue;
      window.CompactTile(ti, tiles[ti].view().FullMask() & ~dominated_masks[ti]);
      dropped = true;
    }
    if (dropped) window.DropEmptyTiles();
    window.Append(r, p);
  }
  std::vector<RowId> out;
  out.reserve(window.size());
  for (const Tile& t : window.tiles()) {
    for (size_t i = 0; i < t.rows(); ++i) out.push_back(t.id(i));
  }
  return out;
}

std::vector<RowId> BnlWindow(const DataSet& data, std::span<const RowId> rows,
                             DomKernel kernel) {
  const DomKernel effective = EffectiveKernel(kernel, rows.size());
  if (!IsBatched(effective)) return ScalarBnlWindow(data, rows);
  return TiledBnlWindow(data, rows, DominanceKernel(effective));
}

}  // namespace

SkylineResult SkylineBNL(const DataSet& data, DomKernel kernel) {
  CheckScope checks;
  std::vector<RowId> rows(data.size());
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<RowId> window = BnlWindow(data, rows, kernel);
  std::sort(window.begin(), window.end());
  return SkylineResult{std::move(window), checks.Delta()};
}

SkylineResult SkylineSFS(const DataSet& data, DomKernel kernel) {
  CheckScope checks;
  const RowId n = data.size();
  kernel = EffectiveKernel(kernel, n);
  std::vector<RowId> order(n);
  std::iota(order.begin(), order.end(), RowId{0});
  // Monotone score: if p dominates q then score(p) < score(q), so a point
  // can only be dominated by points sorted before it.
  std::vector<double> score(n);
  for (RowId r = 0; r < n; ++r) {
    double s = 0.0;
    for (Coord v : data.row(r)) s += v;
    score[r] = s;
  }
  std::sort(order.begin(), order.end(),
            [&](RowId a, RowId b) { return score[a] < score[b]; });
  std::vector<RowId> skyline;
  if (IsBatched(kernel)) {
    const DominanceKernel batch(kernel);
    TileSet admitted(data.dims());
    for (RowId r : order) {
      const auto p = data.row(r);
      bool dominated = false;
      for (const Tile& t : admitted.tiles()) {
        if (batch.AnyDominator(p, t.view())) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        skyline.push_back(r);
        admitted.Append(r, p);
      }
    }
  } else {
    for (RowId r : order) {
      const auto p = data.row(r);
      bool dominated = false;
      for (RowId s : skyline) {
        if (Dominates(data.row(s), p)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) skyline.push_back(r);
    }
  }
  std::sort(skyline.begin(), skyline.end());
  return SkylineResult{std::move(skyline), checks.Delta()};
}

namespace {

// One direction of the D&C merge: survivors of `candidates` not dominated
// by any member of `against`.
void MergeFilter(const DataSet& data, const std::vector<RowId>& candidates,
                 const std::vector<RowId>& against, DomKernel kernel,
                 std::vector<RowId>* merged) {
  const DomKernel effective = EffectiveKernel(kernel, against.size());
  if (IsBatched(effective)) {
    const DominanceKernel batch(effective);
    const TileSet tiles = MaterializeTiles(data, against);
    for (RowId c : candidates) {
      const auto p = data.row(c);
      bool dominated = false;
      for (const Tile& t : tiles.tiles()) {
        if (batch.AnyDominator(p, t.view())) {
          dominated = true;
          break;
        }
      }
      if (!dominated) merged->push_back(c);
    }
    return;
  }
  for (RowId c : candidates) {
    bool dominated = false;
    for (RowId a : against) {
      if (Dominates(data.row(a), data.row(c))) {
        dominated = true;
        break;
      }
    }
    if (!dominated) merged->push_back(c);
  }
}

// Recursive worker over an index range [begin, end) of `rows`. Rows are
// reordered in place; returns the skyline rows of the range.
std::vector<RowId> DCRec(const DataSet& data, std::vector<RowId>& rows, size_t begin,
                         size_t end, Dim split_dim, size_t leaf_size,
                         DomKernel kernel) {
  const size_t n = end - begin;
  if (n <= leaf_size) {
    // BNL over the small range.
    return BnlWindow(data, std::span<const RowId>(rows).subspan(begin, n), kernel);
  }

  // Split at the median of the current dimension (ties may straddle the
  // pivot; the merge below is tie-safe regardless).
  const size_t mid = begin + n / 2;
  std::nth_element(rows.begin() + static_cast<ptrdiff_t>(begin),
                   rows.begin() + static_cast<ptrdiff_t>(mid),
                   rows.begin() + static_cast<ptrdiff_t>(end),
                   [&](RowId a, RowId b) {
                     return data.at(a, split_dim) < data.at(b, split_dim);
                   });
  const Dim next_dim = static_cast<Dim>((split_dim + 1) % data.dims());
  std::vector<RowId> left = DCRec(data, rows, begin, mid, next_dim, leaf_size, kernel);
  std::vector<RowId> right = DCRec(data, rows, mid, end, next_dim, leaf_size, kernel);

  // Merge: a left candidate survives unless some right candidate dominates
  // it, and vice versa (both directions needed when split values tie).
  std::vector<RowId> merged;
  merged.reserve(left.size() + right.size());
  MergeFilter(data, left, right, kernel, &merged);
  MergeFilter(data, right, left, kernel, &merged);
  return merged;
}

}  // namespace

SkylineResult SkylineDC(const DataSet& data, size_t leaf_size, DomKernel kernel) {
  CheckScope checks;
  std::vector<RowId> rows(data.size());
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<RowId> skyline =
      data.empty() ? std::vector<RowId>{}
                   : DCRec(data, rows, 0, rows.size(), 0, std::max<size_t>(1, leaf_size),
                           kernel);
  std::sort(skyline.begin(), skyline.end());
  return SkylineResult{std::move(skyline), checks.Delta()};
}

namespace {

// BBS over any backend exposing ReadNode / root / dims / size: validate,
// then drain the unified tile-aware traversal (bbs_scan.h) — the batch
// and progressive paths are the same code, so check counts, emission
// order, and pruning behaviour cannot diverge between them.
template <typename Tree>
Result<SkylineResult> SkylineBBSImpl(const DataSet& data, const Tree& tree,
                                     DomKernel kernel) {
  if (tree.dims() != data.dims()) {
    return Status::InvalidArgument("tree dimensionality does not match dataset");
  }
  if (tree.size() != data.size()) {
    return Status::InvalidArgument("tree cardinality does not match dataset");
  }
  CheckScope checks;
  BbsScan<Tree> scan(data, tree, kernel);
  while (scan.Next()) {
  }
  std::vector<RowId> skyline = scan.emitted();
  std::sort(skyline.begin(), skyline.end());
  return SkylineResult{std::move(skyline), checks.Delta()};
}

}  // namespace

Result<SkylineResult> SkylineBBS(const DataSet& data, const RTree& tree,
                                 DomKernel kernel) {
  return SkylineBBSImpl(data, tree, kernel);
}

Result<SkylineResult> SkylineBBS(const DataSet& data, const DiskRTree& tree,
                                 DomKernel kernel) {
  return SkylineBBSImpl(data, tree, kernel);
}

bool IsSkyline(const DataSet& data, const std::vector<RowId>& rows) {
  const RowId n = data.size();
  std::vector<bool> in_result(n, false);
  for (RowId r : rows) {
    if (r >= n) return false;
    in_result[r] = true;
  }
  for (RowId r = 0; r < n; ++r) {
    bool dominated = false;
    for (RowId q = 0; q < n; ++q) {
      if (q != r && Dominates(data.row(q), data.row(r))) {
        dominated = true;
        break;
      }
    }
    if (dominated == in_result[r]) return false;  // must be in iff not dominated
  }
  return true;
}

Status ValidateSkylineRows(std::span<const RowId> rows, size_t n) {
  if (rows.empty()) return Status::InvalidArgument("skyline row set is empty");
  RowId prev = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= n) {
      return Status::InvalidArgument("skyline row " + std::to_string(rows[i]) +
                                     " is out of range for n = " + std::to_string(n));
    }
    if (i > 0 && rows[i] <= prev) {
      return Status::InvalidArgument(
          "skyline rows are not strictly ascending at index " + std::to_string(i));
    }
    prev = rows[i];
  }
  return Status::OK();
}

}  // namespace skydiver
