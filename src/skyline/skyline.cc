#include "skyline/skyline.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "core/dominance.h"
#include "rtree/disk_rtree.h"

namespace skydiver {

namespace {

// Tracks dominance tests performed within one algorithm invocation.
class CheckScope {
 public:
  CheckScope() : start_(DominanceCounter::Count()) {}
  uint64_t Delta() const { return DominanceCounter::Count() - start_; }

 private:
  uint64_t start_;
};

}  // namespace

SkylineResult SkylineBNL(const DataSet& data) {
  CheckScope checks;
  std::vector<RowId> window;
  const RowId n = data.size();
  for (RowId r = 0; r < n; ++r) {
    const auto p = data.row(r);
    bool dominated = false;
    size_t keep = 0;
    for (size_t i = 0; i < window.size(); ++i) {
      const auto w = data.row(window[i]);
      const DomRelation rel = Compare(w, p);
      if (rel == DomRelation::kDominates) {
        dominated = true;
        // Everything before i survives; nothing after i has been filtered
        // yet, so copy the tail and stop.
        for (size_t j = i; j < window.size(); ++j) window[keep++] = window[j];
        break;
      }
      if (rel != DomRelation::kDominatedBy) {
        window[keep++] = window[i];  // incomparable: candidate survives
      }
      // Window entries dominated by p are dropped (not copied).
    }
    window.resize(keep);
    if (!dominated) window.push_back(r);
  }
  std::sort(window.begin(), window.end());
  return SkylineResult{std::move(window), checks.Delta()};
}

SkylineResult SkylineSFS(const DataSet& data) {
  CheckScope checks;
  const RowId n = data.size();
  std::vector<RowId> order(n);
  std::iota(order.begin(), order.end(), RowId{0});
  // Monotone score: if p dominates q then score(p) < score(q), so a point
  // can only be dominated by points sorted before it.
  std::vector<double> score(n);
  for (RowId r = 0; r < n; ++r) {
    double s = 0.0;
    for (Coord v : data.row(r)) s += v;
    score[r] = s;
  }
  std::sort(order.begin(), order.end(),
            [&](RowId a, RowId b) { return score[a] < score[b]; });
  std::vector<RowId> skyline;
  for (RowId r : order) {
    const auto p = data.row(r);
    bool dominated = false;
    for (RowId s : skyline) {
      if (Dominates(data.row(s), p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(r);
  }
  std::sort(skyline.begin(), skyline.end());
  return SkylineResult{std::move(skyline), checks.Delta()};
}

namespace {

// Recursive worker over an index range [begin, end) of `rows`. Rows are
// reordered in place; returns the skyline rows of the range.
std::vector<RowId> DCRec(const DataSet& data, std::vector<RowId>& rows, size_t begin,
                         size_t end, Dim split_dim, size_t leaf_size) {
  const size_t n = end - begin;
  if (n <= leaf_size) {
    // BNL over the small range.
    std::vector<RowId> window;
    for (size_t i = begin; i < end; ++i) {
      const auto p = data.row(rows[i]);
      bool dominated = false;
      size_t keep = 0;
      for (size_t w = 0; w < window.size(); ++w) {
        const DomRelation rel = Compare(data.row(window[w]), p);
        if (rel == DomRelation::kDominates) {
          dominated = true;
          for (size_t j = w; j < window.size(); ++j) window[keep++] = window[j];
          break;
        }
        if (rel != DomRelation::kDominatedBy) window[keep++] = window[w];
      }
      window.resize(keep);
      if (!dominated) window.push_back(rows[i]);
    }
    return window;
  }

  // Split at the median of the current dimension (ties may straddle the
  // pivot; the merge below is tie-safe regardless).
  const size_t mid = begin + n / 2;
  std::nth_element(rows.begin() + static_cast<ptrdiff_t>(begin),
                   rows.begin() + static_cast<ptrdiff_t>(mid),
                   rows.begin() + static_cast<ptrdiff_t>(end),
                   [&](RowId a, RowId b) {
                     return data.at(a, split_dim) < data.at(b, split_dim);
                   });
  const Dim next_dim = static_cast<Dim>((split_dim + 1) % data.dims());
  std::vector<RowId> left = DCRec(data, rows, begin, mid, next_dim, leaf_size);
  std::vector<RowId> right = DCRec(data, rows, mid, end, next_dim, leaf_size);

  // Merge: a left candidate survives unless some right candidate dominates
  // it, and vice versa (both directions needed when split values tie).
  std::vector<RowId> merged;
  merged.reserve(left.size() + right.size());
  for (RowId l : left) {
    bool dominated = false;
    for (RowId r : right) {
      if (Dominates(data.row(r), data.row(l))) {
        dominated = true;
        break;
      }
    }
    if (!dominated) merged.push_back(l);
  }
  for (RowId r : right) {
    bool dominated = false;
    for (RowId l : left) {
      if (Dominates(data.row(l), data.row(r))) {
        dominated = true;
        break;
      }
    }
    if (!dominated) merged.push_back(r);
  }
  return merged;
}

}  // namespace

SkylineResult SkylineDC(const DataSet& data, size_t leaf_size) {
  CheckScope checks;
  std::vector<RowId> rows(data.size());
  std::iota(rows.begin(), rows.end(), RowId{0});
  std::vector<RowId> skyline =
      data.empty() ? std::vector<RowId>{}
                   : DCRec(data, rows, 0, rows.size(), 0, std::max<size_t>(1, leaf_size));
  std::sort(skyline.begin(), skyline.end());
  return SkylineResult{std::move(skyline), checks.Delta()};
}

namespace {

// BBS over any backend exposing ReadNode / root / dims / size.
template <typename Tree>
Result<SkylineResult> SkylineBBSImpl(const DataSet& data, const Tree& tree) {
  if (tree.dims() != data.dims()) {
    return Status::InvalidArgument("tree dimensionality does not match dataset");
  }
  if (tree.size() != data.size()) {
    return Status::InvalidArgument("tree cardinality does not match dataset");
  }
  CheckScope checks;

  struct HeapItem {
    double mindist;
    bool is_point;
    PageId child;  // when !is_point
    RowId row;     // when is_point
    // For points we keep the coordinates implicit (resolved via `data`).
    bool operator>(const HeapItem& other) const { return mindist > other.mindist; }
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  std::vector<RowId> skyline;
  auto dominated_by_skyline = [&](std::span<const Coord> corner) {
    for (RowId s : skyline) {
      if (Dominates(data.row(s), corner)) return true;
    }
    return false;
  };

  if (tree.size() > 0) {
    heap.push(HeapItem{0.0, false, tree.root(), kInvalidRowId});
  }
  while (!heap.empty()) {
    const HeapItem item = heap.top();
    heap.pop();
    if (item.is_point) {
      const auto p = data.row(item.row);
      if (!dominated_by_skyline(p)) skyline.push_back(item.row);
      continue;
    }
    const RTreeNode& node = tree.ReadNode(item.child);
    for (const auto& e : node.entries) {
      // Prune any entry whose best corner is already dominated; this is
      // exactly the BBS criterion that yields I/O optimality.
      if (dominated_by_skyline(e.mbr.lo())) continue;
      if (node.is_leaf) {
        heap.push(HeapItem{e.mbr.MinDistL1(), true, kInvalidPageId, e.row});
      } else {
        heap.push(HeapItem{e.mbr.MinDistL1(), false, e.child, kInvalidRowId});
      }
    }
  }
  std::sort(skyline.begin(), skyline.end());
  return SkylineResult{std::move(skyline), checks.Delta()};
}

}  // namespace

Result<SkylineResult> SkylineBBS(const DataSet& data, const RTree& tree) {
  return SkylineBBSImpl(data, tree);
}

Result<SkylineResult> SkylineBBS(const DataSet& data, const DiskRTree& tree) {
  return SkylineBBSImpl(data, tree);
}

bool IsSkyline(const DataSet& data, const std::vector<RowId>& rows) {
  const RowId n = data.size();
  std::vector<bool> in_result(n, false);
  for (RowId r : rows) {
    if (r >= n) return false;
    in_result[r] = true;
  }
  for (RowId r = 0; r < n; ++r) {
    bool dominated = false;
    for (RowId q = 0; q < n; ++q) {
      if (q != r && Dominates(data.row(q), data.row(r))) {
        dominated = true;
        break;
      }
    }
    if (dominated == in_result[r]) return false;  // must be in iff not dominated
  }
  return true;
}

}  // namespace skydiver
