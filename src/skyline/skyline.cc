#include "skyline/skyline.h"

#include <algorithm>
#include <numeric>

#include "core/dominance.h"
#include "kernels/tile_view.h"
#include "rtree/disk_rtree.h"
#include "skyline/bbs_scan.h"

namespace skydiver {

namespace {

// Tracks dominance tests performed within one algorithm invocation.
class CheckScope {
 public:
  CheckScope() : start_(DominanceCounter::Count()) {}
  uint64_t Delta() const { return DominanceCounter::Count() - start_; }

 private:
  uint64_t start_;
};

// Monotone SFS score of a row: the sum of its projected coordinates. If p
// dominates q in the projected subspace then score(p) < score(q). For the
// full-space view the additions run in dimension order 0..d-1, exactly the
// historical arithmetic.
double SfsScore(const DataView& view, RowId r) {
  const auto row = view.data().row(r);
  double s = 0.0;
  for (const Dim i : view.proj()) s += row[i];
  return s;
}

// Scalar BNL window pass over `rows`; returns survivors in window order.
std::vector<RowId> ScalarBnlWindow(const DataView& view, std::span<const RowId> rows) {
  const DataSet& data = view.data();
  const auto proj = view.proj();
  std::vector<RowId> window;
  for (RowId r : rows) {
    const auto p = data.row(r);
    bool dominated = false;
    size_t keep = 0;
    for (size_t i = 0; i < window.size(); ++i) {
      const DomRelation rel = Compare(data.row(window[i]), p, proj);
      if (rel == DomRelation::kDominates) {
        dominated = true;
        // Everything before i survives; nothing after i has been filtered
        // yet, so copy the tail and stop.
        for (size_t j = i; j < window.size(); ++j) window[keep++] = window[j];
        break;
      }
      if (rel != DomRelation::kDominatedBy) {
        window[keep++] = window[i];  // incomparable: candidate survives
      }
      // Window entries dominated by p are dropped (not copied).
    }
    window.resize(keep);
    if (!dominated) window.push_back(r);
  }
  return window;
}

// Tiled BNL window pass: the window is a TileSet of projected columns;
// each arrival is classified against whole tiles. A dominated arrival
// never dominates any window entry (the window is an antichain), so
// breaking on the first dominator leaves the window untouched — exactly
// the scalar semantics.
std::vector<RowId> TiledBnlWindow(const DataView& view, std::span<const RowId> rows,
                                  const DominanceKernel& kernel) {
  TileSet window(view.dims());
  std::vector<Coord> scratch;
  std::vector<uint64_t> dominated_masks;
  for (RowId r : rows) {
    const auto p = view.ProjectedRow(r, scratch);
    const auto& tiles = window.tiles();
    dominated_masks.assign(tiles.size(), 0);
    bool dominated = false;
    for (size_t ti = 0; ti < tiles.size(); ++ti) {
      const BlockClassification cls = kernel.ClassifyBlock(p, tiles[ti].view());
      if (cls.dominators != 0) {
        dominated = true;
        break;
      }
      dominated_masks[ti] = cls.dominated;
    }
    if (dominated) continue;
    bool dropped = false;
    for (size_t ti = 0; ti < dominated_masks.size(); ++ti) {
      if (dominated_masks[ti] == 0) continue;
      window.CompactTile(ti, tiles[ti].view().FullMask() & ~dominated_masks[ti]);
      dropped = true;
    }
    if (dropped) window.DropEmptyTiles();
    window.Append(r, p);
  }
  std::vector<RowId> out;
  out.reserve(window.size());
  for (const Tile& t : window.tiles()) {
    for (size_t i = 0; i < t.rows(); ++i) out.push_back(t.id(i));
  }
  return out;
}

std::vector<RowId> BnlWindow(const DataView& view, std::span<const RowId> rows,
                             DomKernel kernel) {
  const DomKernel effective = EffectiveKernel(kernel, rows.size());
  if (!IsBatched(effective)) return ScalarBnlWindow(view, rows);
  return TiledBnlWindow(view, rows, DominanceKernel(effective));
}

}  // namespace

SkylineResult SkylineBNL(const DataView& view, DomKernel kernel) {
  CheckScope checks;
  std::vector<RowId> window = BnlWindow(view, view.rows(), kernel);
  std::sort(window.begin(), window.end());
  return SkylineResult{std::move(window), checks.Delta()};
}

SkylineResult SkylineBNL(const DataSet& data, DomKernel kernel) {
  return SkylineBNL(DataView(data), kernel);
}

SkylineResult SkylineSFSRows(const DataView& view, std::span<const RowId> rows,
                             DomKernel kernel) {
  CheckScope checks;
  const size_t n = rows.size();
  kernel = EffectiveKernel(kernel, n);
  const DataSet& data = view.data();
  const auto proj = view.proj();
  // Positions into `rows`, sorted by the monotone score: a point can only
  // be dominated by points sorted before it.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::vector<double> score(n);
  for (size_t i = 0; i < n; ++i) score[i] = SfsScore(view, rows[i]);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return score[a] < score[b]; });
  std::vector<RowId> skyline;
  if (IsBatched(kernel)) {
    const DominanceKernel batch(kernel);
    TileSet admitted(view.dims());
    std::vector<Coord> scratch;
    for (size_t i : order) {
      const RowId r = rows[i];
      const auto p = view.ProjectedRow(r, scratch);
      bool dominated = false;
      for (const Tile& t : admitted.tiles()) {
        if (batch.AnyDominator(p, t.view())) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        skyline.push_back(r);
        admitted.Append(r, p);
      }
    }
  } else {
    for (size_t i : order) {
      const RowId r = rows[i];
      const auto p = data.row(r);
      bool dominated = false;
      for (RowId s : skyline) {
        if (Dominates(data.row(s), p, proj)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) skyline.push_back(r);
    }
  }
  std::sort(skyline.begin(), skyline.end());
  return SkylineResult{std::move(skyline), checks.Delta()};
}

SkylineResult SkylineSFS(const DataView& view, DomKernel kernel) {
  return SkylineSFSRows(view, view.rows(), kernel);
}

SkylineResult SkylineSFS(const DataSet& data, DomKernel kernel) {
  return SkylineSFS(DataView(data), kernel);
}

namespace {

// One direction of the D&C merge: survivors of `candidates` not dominated
// by any member of `against`.
void MergeFilter(const DataView& view, const std::vector<RowId>& candidates,
                 const std::vector<RowId>& against, DomKernel kernel,
                 std::vector<RowId>* merged) {
  const DataSet& data = view.data();
  const auto proj = view.proj();
  const DomKernel effective = EffectiveKernel(kernel, against.size());
  if (IsBatched(effective)) {
    const DominanceKernel batch(effective);
    const TileSet tiles = MaterializeTiles(view, against);
    std::vector<Coord> scratch;
    for (RowId c : candidates) {
      const auto p = view.ProjectedRow(c, scratch);
      bool dominated = false;
      for (const Tile& t : tiles.tiles()) {
        if (batch.AnyDominator(p, t.view())) {
          dominated = true;
          break;
        }
      }
      if (!dominated) merged->push_back(c);
    }
    return;
  }
  for (RowId c : candidates) {
    bool dominated = false;
    for (RowId a : against) {
      if (Dominates(data.row(a), data.row(c), proj)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) merged->push_back(c);
  }
}

// Recursive worker over an index range [begin, end) of `rows`. Rows are
// reordered in place; returns the skyline rows of the range. `split_vd`
// is a VIEW dimension (an index into view.proj()).
std::vector<RowId> DCRec(const DataView& view, std::vector<RowId>& rows, size_t begin,
                         size_t end, Dim split_vd, size_t leaf_size,
                         DomKernel kernel) {
  const size_t n = end - begin;
  if (n <= leaf_size) {
    // BNL over the small range.
    return BnlWindow(view, std::span<const RowId>(rows).subspan(begin, n), kernel);
  }

  // Split at the median of the current dimension (ties may straddle the
  // pivot; the merge below is tie-safe regardless).
  const size_t mid = begin + n / 2;
  std::nth_element(rows.begin() + static_cast<ptrdiff_t>(begin),
                   rows.begin() + static_cast<ptrdiff_t>(mid),
                   rows.begin() + static_cast<ptrdiff_t>(end),
                   [&](RowId a, RowId b) {
                     return view.at(a, split_vd) < view.at(b, split_vd);
                   });
  const Dim next_vd = static_cast<Dim>((split_vd + 1) % view.dims());
  std::vector<RowId> left = DCRec(view, rows, begin, mid, next_vd, leaf_size, kernel);
  std::vector<RowId> right = DCRec(view, rows, mid, end, next_vd, leaf_size, kernel);

  // Merge: a left candidate survives unless some right candidate dominates
  // it, and vice versa (both directions needed when split values tie).
  std::vector<RowId> merged;
  merged.reserve(left.size() + right.size());
  MergeFilter(view, left, right, kernel, &merged);
  MergeFilter(view, right, left, kernel, &merged);
  return merged;
}

}  // namespace

std::vector<RowId> CrossFilterMerge(const DataView& view, const std::vector<RowId>& a,
                                    const std::vector<RowId>& b, DomKernel kernel) {
  std::vector<RowId> merged;
  merged.reserve(a.size() + b.size());
  MergeFilter(view, a, b, kernel, &merged);
  MergeFilter(view, b, a, kernel, &merged);
  return merged;
}

SkylineResult SkylineDC(const DataView& view, size_t leaf_size, DomKernel kernel) {
  CheckScope checks;
  std::vector<RowId> rows = view.rows();
  std::vector<RowId> skyline =
      rows.empty() ? std::vector<RowId>{}
                   : DCRec(view, rows, 0, rows.size(), 0, std::max<size_t>(1, leaf_size),
                           kernel);
  std::sort(skyline.begin(), skyline.end());
  return SkylineResult{std::move(skyline), checks.Delta()};
}

SkylineResult SkylineDC(const DataSet& data, size_t leaf_size, DomKernel kernel) {
  return SkylineDC(DataView(data), leaf_size, kernel);
}

SkylineResult SkylineSharded(const DataView& view, size_t shards, DomKernel kernel) {
  CheckScope checks;
  const std::vector<RowId>& all = view.rows();
  if (all.empty()) return SkylineResult{{}, checks.Delta()};
  shards = std::clamp<size_t>(shards, 1, all.size());
  const size_t chunk = (all.size() + shards - 1) / shards;

  // Shard phase: each contiguous chunk's local skyline (absolute row ids).
  std::vector<std::vector<RowId>> locals;
  locals.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    const size_t begin = s * chunk;
    const size_t end = std::min(begin + chunk, all.size());
    if (begin >= end) break;
    locals.push_back(
        SkylineSFSRows(view, std::span<const RowId>(all).subspan(begin, end - begin),
                       kernel)
            .rows);
  }

  // Merge phase: fold the local antichains with the D&C cross-filter —
  // the skyline of a union is the cross-filtered union of the skylines.
  std::vector<RowId> merged = std::move(locals.front());
  for (size_t s = 1; s < locals.size(); ++s) {
    merged = CrossFilterMerge(view, merged, locals[s], kernel);
  }
  std::sort(merged.begin(), merged.end());
  return SkylineResult{std::move(merged), checks.Delta()};
}

namespace {

// BBS over any backend exposing ReadNode / root / dims / size: validate,
// then drain the unified tile-aware traversal (bbs_scan.h) — the batch
// and progressive paths are the same code, so check counts, emission
// order, and pruning behaviour cannot diverge between them.
template <typename Tree>
Result<SkylineResult> SkylineBBSImpl(const DataView& view, const Tree& tree,
                                     DomKernel kernel) {
  if (tree.dims() != view.data().dims()) {
    return Status::InvalidArgument("tree dimensionality does not match dataset");
  }
  if (tree.size() != view.data().size()) {
    return Status::InvalidArgument("tree cardinality does not match dataset");
  }
  CheckScope checks;
  BbsScan<Tree> scan(view, tree, kernel);
  while (scan.Next()) {
  }
  // Disk-backed scans end early on a page-read failure (truncated file,
  // corrupt page); the iterator parks the error rather than emitting a
  // partial skyline as if it were complete.
  SKYDIVER_RETURN_NOT_OK(scan.status());
  std::vector<RowId> skyline = scan.emitted();
  std::sort(skyline.begin(), skyline.end());
  return SkylineResult{std::move(skyline), checks.Delta()};
}

}  // namespace

Result<SkylineResult> SkylineBBS(const DataView& view, const RTree& tree,
                                 DomKernel kernel) {
  return SkylineBBSImpl(view, tree, kernel);
}

Result<SkylineResult> SkylineBBS(const DataSet& data, const RTree& tree,
                                 DomKernel kernel) {
  return SkylineBBSImpl(DataView(data), tree, kernel);
}

Result<SkylineResult> SkylineBBS(const DataView& view, const DiskRTree& tree,
                                 DomKernel kernel) {
  return SkylineBBSImpl(view, tree, kernel);
}

Result<SkylineResult> SkylineBBS(const DataSet& data, const DiskRTree& tree,
                                 DomKernel kernel) {
  return SkylineBBSImpl(DataView(data), tree, kernel);
}

bool IsSkyline(const DataSet& data, const std::vector<RowId>& rows) {
  const RowId n = data.size();
  std::vector<bool> in_result(n, false);
  for (RowId r : rows) {
    if (r >= n) return false;
    in_result[r] = true;
  }
  for (RowId r = 0; r < n; ++r) {
    bool dominated = false;
    for (RowId q = 0; q < n; ++q) {
      if (q != r && Dominates(data.row(q), data.row(r))) {
        dominated = true;
        break;
      }
    }
    if (dominated == in_result[r]) return false;  // must be in iff not dominated
  }
  return true;
}

bool IsSkyline(const DataView& view, const std::vector<RowId>& rows) {
  const DataSet& data = view.data();
  const auto proj = view.proj();
  const RowId n = data.size();
  std::vector<bool> in_result(n, false);
  for (RowId r : rows) {
    if (r >= n || !view.InBox(data.row(r))) return false;
    in_result[r] = true;
  }
  const std::vector<RowId>& universe = view.rows();
  for (RowId r : universe) {
    bool dominated = false;
    for (RowId q : universe) {
      if (q != r && Dominates(data.row(q), data.row(r), proj)) {
        dominated = true;
        break;
      }
    }
    if (dominated == in_result[r]) return false;  // must be in iff not dominated
  }
  return true;
}

Status ValidateSkylineRows(std::span<const RowId> rows, size_t n) {
  if (rows.empty()) return Status::InvalidArgument("skyline row set is empty");
  RowId prev = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= n) {
      return Status::InvalidArgument("skyline row " + std::to_string(rows[i]) +
                                     " is out of range for n = " + std::to_string(n));
    }
    if (i > 0 && rows[i] <= prev) {
      return Status::InvalidArgument(
          "skyline rows are not strictly ascending at index " + std::to_string(i));
    }
    prev = rows[i];
  }
  return Status::OK();
}

Status ValidateSkylineRows(std::span<const RowId> rows, const DataView& view) {
  if (rows.empty()) {
    // A constraint box may legitimately exclude every point; an empty
    // full-space skyline of non-empty data is impossible.
    if (view.constrained()) return Status::OK();
    return Status::InvalidArgument("skyline row set is empty");
  }
  SKYDIVER_RETURN_NOT_OK(ValidateSkylineRows(rows, view.data().size()));
  for (RowId r : rows) {
    if (!view.InBox(view.data().row(r))) {
      return Status::InvalidArgument("skyline row " + std::to_string(r) +
                                     " lies outside the query's constraint box");
    }
  }
  return Status::OK();
}

}  // namespace skydiver
