#include "skyline/external.h"

// skylint:allow-file(view-loops) — the external-memory skyline is a
// full-dataset, full-space algorithm by contract (it models the disk-bound
// regime of the paper's experiments); it sits outside the SkyQuery surface
// and legitimately scans every dimension of every record.

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/dominance.h"

namespace skydiver {

namespace {

// 4 KB pages a sequential scan of `rows` records (d doubles + 4-byte id)
// touches — the same charge model as SigGen-IF.
uint64_t ScanPages(uint64_t rows, Dim d) {
  const uint64_t record_bytes = sizeof(Coord) * d + sizeof(RowId);
  const uint64_t per_page = std::max<uint64_t>(1, 4096 / record_bytes);
  return (rows + per_page - 1) / per_page;
}

}  // namespace

Result<ExternalSkylineResult> SkylineExternal(const DataSet& data, size_t window_rows) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (window_rows == 0) {
    return Status::InvalidArgument("the window must hold at least one row");
  }
  const uint64_t checks_before = DominanceCounter::Count();
  ExternalSkylineResult out;
  const RowId n = data.size();
  const Dim d = data.dims();

  // External sort by the monotone score sum(x): charge one read+write pass
  // for run formation and one read+write pass per merge level at fan-in 8.
  std::vector<RowId> order(n);
  std::iota(order.begin(), order.end(), RowId{0});
  std::vector<double> score(n);
  for (RowId r = 0; r < n; ++r) {
    double s = 0.0;
    for (Coord v : data.row(r)) s += v;
    score[r] = s;
  }
  std::sort(order.begin(), order.end(),
            [&](RowId a, RowId b) { return score[a] < score[b]; });
  {
    const uint64_t pass_pages = ScanPages(n, d);
    const auto runs = static_cast<double>((n + window_rows - 1) / window_rows);
    const auto merge_levels =
        runs <= 1.0 ? 0u
                    : static_cast<uint32_t>(std::ceil(std::log(runs) / std::log(8.0)));
    const uint64_t sort_passes = 1 + merge_levels;
    out.io.page_reads += sort_passes * pass_pages;
    out.io.page_faults += sort_passes * pass_pages;
    out.io.page_writes += sort_passes * pass_pages;
  }

  // Multi-pass bounded-window filtering.
  std::vector<RowId> confirmed;           // skyline so far (score order)
  std::vector<RowId> remaining = order;   // current pass input, score order
  std::vector<RowId> window;
  window.reserve(window_rows);
  std::vector<RowId> overflow;
  while (!remaining.empty()) {
    ++out.passes;
    out.io.page_reads += ScanPages(remaining.size(), d);
    out.io.page_faults += ScanPages(remaining.size(), d);
    window.clear();
    overflow.clear();
    for (RowId r : remaining) {
      const auto p = data.row(r);
      bool dominated = false;
      for (RowId s : confirmed) {
        if (Dominates(data.row(s), p)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        for (RowId w : window) {
          if (Dominates(data.row(w), p)) {
            dominated = true;
            break;
          }
        }
      }
      if (dominated) continue;
      if (window.size() < window_rows) {
        window.push_back(r);
      } else {
        overflow.push_back(r);
      }
    }
    // All window members are confirmed (see header for the argument).
    confirmed.insert(confirmed.end(), window.begin(), window.end());
    if (!overflow.empty()) {
      const uint64_t pages = ScanPages(overflow.size(), d);
      out.io.page_writes += pages;
    }
    remaining = std::move(overflow);
    overflow = {};
  }

  out.rows = std::move(confirmed);
  std::sort(out.rows.begin(), out.rows.end());
  out.dominance_checks = DominanceCounter::Count() - checks_before;
  return out;
}

Result<ExternalSkylineResult> SkylineExternalBNL(const DataSet& data,
                                                 size_t window_rows) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (window_rows == 0) {
    return Status::InvalidArgument("the window must hold at least one row");
  }
  const uint64_t checks_before = DominanceCounter::Count();
  ExternalSkylineResult out;
  const RowId n = data.size();
  const Dim d = data.dims();

  struct Entry {
    RowId row;
    size_t insert_pos;  // position (within the current pass) of window entry
  };
  std::vector<RowId> confirmed;
  std::vector<Entry> window;  // survivors may carry over between passes
  window.reserve(window_rows);
  std::vector<RowId> remaining(n);
  std::iota(remaining.begin(), remaining.end(), RowId{0});
  std::vector<RowId> overflow;

  while (!remaining.empty() || !window.empty()) {
    ++out.passes;
    out.io.page_reads += ScanPages(remaining.size(), d);
    out.io.page_faults += ScanPages(remaining.size(), d);
    overflow.clear();
    // Carried-over window entries count as inserted at position 0: they see
    // the whole pass, so they are confirmable at its end.
    for (auto& w : window) w.insert_pos = 0;
    size_t first_overflow_pos = remaining.size() + 1;  // "none yet"
    size_t pos = 0;
    for (RowId r : remaining) {
      ++pos;
      const auto p = data.row(r);
      bool dominated = false;
      for (RowId s : confirmed) {
        if (Dominates(data.row(s), p)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) {
        size_t keep = 0;
        for (size_t i = 0; i < window.size(); ++i) {
          if (dominated) {
            window[keep++] = window[i];
            continue;
          }
          const DomRelation rel = Compare(data.row(window[i].row), p);
          if (rel == DomRelation::kDominates) {
            dominated = true;
            window[keep++] = window[i];
          } else if (rel != DomRelation::kDominatedBy) {
            window[keep++] = window[i];  // drop window points p dominates
          }
        }
        window.resize(keep);
      }
      if (dominated) continue;
      if (window.size() < window_rows) {
        window.push_back(Entry{r, pos});
      } else {
        if (first_overflow_pos > remaining.size()) first_overflow_pos = pos;
        overflow.push_back(r);
      }
    }
    // Confirm window survivors inserted before the first overflow: they
    // were compared against every surviving point of this pass.
    size_t keep = 0;
    for (const Entry& w : window) {
      if (w.insert_pos < first_overflow_pos) {
        confirmed.push_back(w.row);
      } else {
        window[keep++] = w;  // must meet the earlier-overflowed points again
      }
    }
    window.resize(keep);
    if (!overflow.empty()) {
      out.io.page_writes += ScanPages(overflow.size(), d);
    } else if (window.empty()) {
      // Nothing left anywhere: done after this pass.
      remaining.clear();
      break;
    }
    remaining = overflow;
  }

  out.rows = std::move(confirmed);
  std::sort(out.rows.begin(), out.rows.end());
  out.dominance_checks = DominanceCounter::Count() - checks_before;
  return out;
}

}  // namespace skydiver
