// Binary persistence for DataSet (checksummed; see common/binio.h).
//
// Much faster to reload than CSV for the multi-million-point workloads the
// paper uses, and exact (doubles round-trip bit-for-bit).

#pragma once

#include <string>

#include "common/status.h"
#include "core/dataset.h"

namespace skydiver {

/// Writes `data` to `path` in the SKYDDAT1 binary format.
Status SaveDataSet(const DataSet& data, const std::string& path);

/// Loads a SKYDDAT1 file; verifies magic and checksum.
Result<DataSet> LoadDataSet(const std::string& path);

}  // namespace skydiver
