// In-memory multidimensional dataset.
//
// `DataSet` is a dense row-major n x d matrix of attribute values. All
// skyline / diversification kernels in this library operate in
// "minimization space" (smaller is better on every dimension, the paper's
// w.l.o.g. convention); `Canonicalize` maps an arbitrary Preference into
// that space at the API boundary.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "core/preference.h"
#include "core/types.h"

namespace skydiver {

/// Dense row-major collection of d-dimensional points.
class DataSet {
 public:
  /// Empty dataset with the given dimensionality (d >= 1).
  explicit DataSet(Dim dims) : dims_(dims) { SKYDIVER_DCHECK_GE(dims, 1u); }

  /// Dataset adopting pre-built storage; `values.size()` must be a multiple
  /// of `dims`.
  DataSet(Dim dims, std::vector<Coord> values) : dims_(dims), values_(std::move(values)) {
    SKYDIVER_DCHECK_GE(dims, 1u);
    SKYDIVER_DCHECK(values_.size() % dims_ == 0);
  }

  Dim dims() const { return dims_; }
  RowId size() const { return static_cast<RowId>(values_.size() / dims_); }
  bool empty() const { return values_.empty(); }

  /// Read-only view of row `r`.
  std::span<const Coord> row(RowId r) const {
    SKYDIVER_DCHECK_LT(r, size());
    return {values_.data() + static_cast<size_t>(r) * dims_, dims_};
  }

  Coord at(RowId r, Dim d) const {
    SKYDIVER_DCHECK(r < size() && d < dims_);
    return values_[static_cast<size_t>(r) * dims_ + d];
  }

  /// Appends a row; `point.size()` must equal dims().
  void Append(std::span<const Coord> point) {
    SKYDIVER_DCHECK_EQ(point.size(), dims_);
    values_.insert(values_.end(), point.begin(), point.end());
  }

  void Append(std::initializer_list<Coord> point) {
    Append(std::span<const Coord>(point.begin(), point.size()));
  }

  /// Pre-allocates storage for `n` rows.
  void Reserve(RowId n) { values_.reserve(static_cast<size_t>(n) * dims_); }

  /// Raw contiguous storage (row-major).
  const std::vector<Coord>& values() const { return values_; }

  /// Returns a copy of this dataset mapped into minimization space under
  /// `pref` (maximized dimensions are negated).
  Result<DataSet> Canonicalize(const Preference& pref) const;

  /// Returns the dataset restricted to the first `k` dimensions (projection),
  /// used when sweeping dimensionality over one generated dataset.
  Result<DataSet> Project(Dim k) const;

  /// Projection onto an arbitrary ordered subset of dimensions — subspace
  /// skyline analysis ("what are the diverse options considering only
  /// price and rating?"). Dimensions may not repeat.
  Result<DataSet> ProjectDims(std::span<const Dim> dims) const;

  /// Returns a subset containing the given rows, in order.
  DataSet Select(std::span<const RowId> rows) const;

 private:
  Dim dims_;
  std::vector<Coord> values_;
};

/// Rejects datasets containing NaN or infinite values. NaN poisons the
/// dominance relation (every comparison with NaN is false, so a NaN point
/// is never dominated and always "skyline"); call this at ingestion
/// boundaries before running any algorithm.
Status CheckFinite(const DataSet& data);

}  // namespace skydiver
