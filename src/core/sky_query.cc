#include "core/sky_query.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <sstream>

namespace skydiver {

Status ValidateQueryShape(const SkyQuery& query) {
  if (query.lo.size() != query.hi.size()) {
    return Status::InvalidArgument(
        "constraint box sides disagree: lo has " + std::to_string(query.lo.size()) +
        " dimensions, hi has " + std::to_string(query.hi.size()));
  }
  for (size_t d = 0; d < query.lo.size(); ++d) {
    if (std::isnan(query.lo[d]) || std::isnan(query.hi[d])) {
      return Status::InvalidArgument("constraint box has a NaN bound on dimension " +
                                     std::to_string(d));
    }
    if (query.lo[d] > query.hi[d]) {
      return Status::InvalidArgument("constraint box is inverted on dimension " +
                                     std::to_string(d) + " (lo > hi)");
    }
  }
  std::vector<Dim> sorted = query.project;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return Status::InvalidArgument("projection lists a dimension twice");
  }
  if (query.shards > kMaxQueryShards) {
    return Status::InvalidArgument("shards = " + std::to_string(query.shards) +
                                   " exceeds the sanity cap of " +
                                   std::to_string(kMaxQueryShards));
  }
  return Status::OK();
}

SkyQuery CanonicalShape(const SkyQuery& query) {
  SkyQuery q = query;
  if (q.shards == 0) q.shards = 1;
  std::sort(q.project.begin(), q.project.end());
  q.project.erase(std::unique(q.project.begin(), q.project.end()), q.project.end());
  if (q.constrained()) {
    bool unbounded = true;
    constexpr Coord kInf = std::numeric_limits<Coord>::infinity();
    for (size_t d = 0; d < q.lo.size() && unbounded; ++d) {
      unbounded = q.lo[d] == -kInf && q.hi[d] == kInf;
    }
    if (unbounded) {
      q.lo.clear();
      q.hi.clear();
    }
  }
  return q;
}

Result<SkyQuery> NormalizeQuery(const SkyQuery& query, Dim dims) {
  SKYDIVER_RETURN_NOT_OK(ValidateQueryShape(query));
  SkyQuery q = CanonicalShape(query);
  if (q.constrained() && q.lo.size() != dims) {
    return Status::InvalidArgument("constraint box has " + std::to_string(q.lo.size()) +
                                   " dimensions but the data has " +
                                   std::to_string(dims));
  }
  if (!q.project.empty()) {
    if (q.project.back() >= dims) {
      return Status::InvalidArgument(
          "projection names dimension " + std::to_string(q.project.back()) +
          " but the data has " + std::to_string(dims));
    }
    // A full-space list is the identity mask; collapse it so equal queries
    // key (and plan) identically.
    if (q.project.size() == dims) q.project.clear();
  }
  return q;
}

std::string QueryKey(const SkyQuery& query) {
  if (query.identity()) return "id";
  std::ostringstream out;
  if (query.constrained()) {
    out << "b:";
    char buf[17];
    for (size_t d = 0; d < query.lo.size(); ++d) {
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(std::bit_cast<uint64_t>(query.lo[d])));
      out << buf;
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(std::bit_cast<uint64_t>(query.hi[d])));
      out << buf;
    }
  }
  if (query.projected()) {
    out << "|p:";
    for (size_t i = 0; i < query.project.size(); ++i) {
      if (i > 0) out << ",";
      out << query.project[i];
    }
  }
  if (query.sharded()) out << "|s:" << query.shards;
  return out.str();
}

std::string ToString(const SkyQuery& query) {
  if (query.identity()) return "identity (full space, unconstrained, 1 shard)";
  std::ostringstream out;
  if (query.constrained()) {
    size_t bounded = 0;
    for (size_t d = 0; d < query.lo.size(); ++d) {
      if (std::isfinite(query.lo[d]) || std::isfinite(query.hi[d])) ++bounded;
    }
    out << "box on " << bounded << "/" << query.lo.size() << " dims";
  } else {
    out << "unconstrained";
  }
  if (query.projected()) {
    out << ", proj {";
    for (size_t i = 0; i < query.project.size(); ++i) {
      if (i > 0) out << ",";
      out << query.project[i];
    }
    out << "} (d'=" << query.project.size() << ")";
  } else {
    out << ", full space";
  }
  out << ", shards=" << query.shards;
  return out.str();
}

}  // namespace skydiver
