// The dominance relation — the paper's single fundamental primitive.
//
// In minimization space, p dominates q (p ≺ q) iff p is <= q on every
// dimension and strictly < on at least one. All helpers here operate on raw
// coordinate spans so they can be shared by the skyline algorithms, the
// signature generators, and the R-tree MBR pruning tests.

#pragma once

#include <cstdint>
#include <span>

#include "core/types.h"

namespace skydiver {

/// Three-way outcome of comparing two points under dominance.
enum class DomRelation : uint8_t {
  kDominates,    ///< first ≺ second
  kDominatedBy,  ///< second ≺ first
  kIncomparable, ///< neither dominates (includes equal points)
};

/// Instrumentation: number of point-level dominance tests executed by the
/// CURRENT thread. The benchmarks report this to explain CPU-cost
/// differences between the index-free and index-based signature
/// generators. Thread-local so parallel algorithms stay race-free; sum
/// per-thread deltas if a cross-thread total is needed.
struct DominanceCounter {
  static uint64_t& Count() {
    thread_local uint64_t count = 0;
    return count;
  }
  /// Subset of Count() executed by the batched tiled kernels
  /// (kernels/dominance_kernel.h); the scalar helpers below never touch it.
  /// Count() - TiledCount() is the scalar-kernel share.
  static uint64_t& TiledCount() {
    thread_local uint64_t count = 0;
    return count;
  }
  static void Reset() {
    Count() = 0;
    TiledCount() = 0;
  }
};

/// Returns true iff `p` dominates `q` (p ≺ q). Both spans must have equal,
/// non-zero length.
inline bool Dominates(std::span<const Coord> p, std::span<const Coord> q) {
  ++DominanceCounter::Count();
  bool strictly_better = false;
  const size_t d = p.size();
  for (size_t i = 0; i < d; ++i) {
    if (p[i] > q[i]) return false;
    if (p[i] < q[i]) strictly_better = true;
  }
  return strictly_better;
}

/// Returns true iff `p` weakly dominates `q`: p <= q on every dimension
/// (equal points weakly dominate each other).
inline bool WeaklyDominates(std::span<const Coord> p, std::span<const Coord> q) {
  ++DominanceCounter::Count();
  const size_t d = p.size();
  for (size_t i = 0; i < d; ++i) {
    if (p[i] > q[i]) return false;
  }
  return true;
}

/// Single-pass three-way comparison; costs one scan instead of two
/// `Dominates` calls.
inline DomRelation Compare(std::span<const Coord> p, std::span<const Coord> q) {
  ++DominanceCounter::Count();
  bool p_better = false;
  bool q_better = false;
  const size_t d = p.size();
  for (size_t i = 0; i < d; ++i) {
    if (p[i] < q[i]) {
      p_better = true;
    } else if (q[i] < p[i]) {
      q_better = true;
    }
    if (p_better && q_better) return DomRelation::kIncomparable;
  }
  if (p_better) return DomRelation::kDominates;
  if (q_better) return DomRelation::kDominatedBy;
  return DomRelation::kIncomparable;  // equal points
}

// Masked variants: dominance restricted to the subspace named by `dims`
// (the projection mask of a DataView). `p` and `q` are FULL rows; the mask
// indexes into them, so subspace tests never gather or copy coordinates.
// When `dims` is the identity list [0, d) each variant performs the exact
// arithmetic, in the exact order, of its unmasked twin above — including
// the early exits and the single DominanceCounter charge — which is what
// makes the identity SkyQuery bit-identical to the historical paths.

/// Returns true iff `p` dominates `q` within the subspace `dims`.
inline bool Dominates(std::span<const Coord> p, std::span<const Coord> q,
                      std::span<const Dim> dims) {
  ++DominanceCounter::Count();
  bool strictly_better = false;
  for (const Dim i : dims) {
    if (p[i] > q[i]) return false;
    if (p[i] < q[i]) strictly_better = true;
  }
  return strictly_better;
}

/// Returns true iff `p` weakly dominates `q` within the subspace `dims`.
inline bool WeaklyDominates(std::span<const Coord> p, std::span<const Coord> q,
                            std::span<const Dim> dims) {
  ++DominanceCounter::Count();
  for (const Dim i : dims) {
    if (p[i] > q[i]) return false;
  }
  return true;
}

/// Three-way comparison within the subspace `dims`.
inline DomRelation Compare(std::span<const Coord> p, std::span<const Coord> q,
                           std::span<const Dim> dims) {
  ++DominanceCounter::Count();
  bool p_better = false;
  bool q_better = false;
  for (const Dim i : dims) {
    if (p[i] < q[i]) {
      p_better = true;
    } else if (q[i] < p[i]) {
      q_better = true;
    }
    if (p_better && q_better) return DomRelation::kIncomparable;
  }
  if (p_better) return DomRelation::kDominates;
  if (q_better) return DomRelation::kDominatedBy;
  return DomRelation::kIncomparable;  // equal points
}

}  // namespace skydiver
