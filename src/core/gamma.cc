#include "core/gamma.h"

#include <algorithm>
#include <bit>

#include "core/dominance.h"
#include "kernels/tile_view.h"

namespace skydiver {

GammaSets GammaSets::Compute(const DataSet& data, const std::vector<RowId>& skyline,
                             DomKernel kernel) {
  GammaSets out;
  const RowId n = data.size();
  const size_t m = skyline.size();
  out.universe_ = n;
  out.non_skyline_ = n - m;
  out.gammas_.assign(m, BitVector(n));
  out.counts_.assign(m, 0);
  const DomKernel effective = EffectiveKernel(kernel, m);
  if (IsBatched(effective)) {
    // Skyline columns tiled column-major, tile ids = column index j. No
    // self-skip is needed: strict dominance is irreflexive, so a skyline
    // row's own column bit is never set.
    TileSet sky_tiles(data.dims());
    for (size_t j = 0; j < m; ++j) {
      sky_tiles.Append(static_cast<RowId>(j), data.row(skyline[j]));
    }
    const DominanceKernel batch(effective);
    for (RowId r = 0; r < n; ++r) {
      const auto point = data.row(r);
      for (const Tile& tile : sky_tiles.tiles()) {
        uint64_t mask = batch.FilterDominators(point, tile.view());
        while (mask != 0) {
          const int bit = std::countr_zero(mask);
          mask &= mask - 1;
          const size_t j = tile.id(static_cast<size_t>(bit));
          out.gammas_[j].Set(r);
          ++out.counts_[j];
        }
      }
    }
    return out;
  }
  for (RowId r = 0; r < n; ++r) {
    const auto point = data.row(r);
    for (size_t j = 0; j < m; ++j) {
      if (skyline[j] == r) continue;  // a point never dominates itself
      if (Dominates(data.row(skyline[j]), point)) {
        out.gammas_[j].Set(r);
        ++out.counts_[j];
      }
    }
  }
  return out;
}

GammaSets GammaSets::FromBitVectors(size_t universe_size,
                                    std::vector<BitVector> gammas) {
  GammaSets out;
  out.universe_ = universe_size;
  out.non_skyline_ = universe_size >= gammas.size() ? universe_size - gammas.size() : 0;
  out.counts_.reserve(gammas.size());
  for (const auto& g : gammas) out.counts_.push_back(g.Count());
  out.gammas_ = std::move(gammas);
  return out;
}

size_t GammaSets::MaxDominationIndex() const {
  size_t best = 0;
  for (size_t j = 1; j < counts_.size(); ++j) {
    if (counts_[j] > counts_[best]) best = j;
  }
  return best;
}

double GammaSets::JaccardSimilarity(size_t i, size_t j) const {
  const size_t inter = gammas_[i].AndCount(gammas_[j]);
  const size_t uni = counts_[i] + counts_[j] - inter;
  if (uni == 0) return 1.0;  // both Γ empty: identical (empty) sets
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double GammaSets::Coverage(const std::vector<size_t>& selected) const {
  if (non_skyline_ == 0) return 1.0;
  BitVector covered(universe_);
  for (size_t j : selected) covered |= gammas_[j];
  return static_cast<double>(covered.Count()) / static_cast<double>(non_skyline_);
}

double GammaSets::MatrixSparsity() const {
  if (non_skyline_ == 0 || gammas_.empty()) return 0.0;
  size_t ones = 0;
  for (size_t c : counts_) ones += c;
  const double cells =
      static_cast<double>(non_skyline_) * static_cast<double>(gammas_.size());
  return 1.0 - static_cast<double>(ones) / cells;
}

}  // namespace skydiver
