#include "core/dataset_io.h"

#include "common/binio.h"

namespace skydiver {

namespace {
constexpr char kMagic[8] = {'S', 'K', 'Y', 'D', 'D', 'A', 'T', '1'};
}  // namespace

Status SaveDataSet(const DataSet& data, const std::string& path) {
  BinaryWriter writer(path, kMagic);
  if (!writer.ok()) return Status::IoError("cannot open '" + path + "' for writing");
  writer.WriteU32(data.dims());
  writer.WriteU64(data.size());
  for (Coord v : data.values()) writer.WriteDouble(v);
  return writer.Finish();
}

Result<DataSet> LoadDataSet(const std::string& path) {
  BinaryReader reader(path, kMagic);
  SKYDIVER_RETURN_NOT_OK(reader.status());
  uint32_t dims = 0;
  uint64_t n = 0;
  if (!reader.ReadU32(&dims) || !reader.ReadU64(&n)) {
    return Status::IoError("'" + path + "': truncated header");
  }
  if (dims == 0) return Status::InvalidArgument("'" + path + "': zero dimensionality");
  std::vector<Coord> values(dims * n);
  for (auto& v : values) {
    if (!reader.ReadDouble(&v)) return Status::IoError("'" + path + "': truncated payload");
  }
  SKYDIVER_RETURN_NOT_OK(reader.VerifyChecksum());
  return DataSet(dims, std::move(values));
}

}  // namespace skydiver
