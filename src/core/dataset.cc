#include "core/dataset.h"

#include <cmath>

namespace skydiver {

Status CheckFinite(const DataSet& data) {
  const RowId n = data.size();
  const Dim d = data.dims();
  for (RowId r = 0; r < n; ++r) {
    for (Dim i = 0; i < d; ++i) {
      if (!std::isfinite(data.at(r, i))) {
        return Status::InvalidArgument("row " + std::to_string(r) + " dim " +
                                       std::to_string(i) +
                                       " is NaN or infinite; dominance is undefined");
      }
    }
  }
  return Status::OK();
}

Result<DataSet> DataSet::Canonicalize(const Preference& pref) const {
  if (pref.dims() != dims_) {
    return Status::InvalidArgument("preference dimensionality " +
                                   std::to_string(pref.dims()) +
                                   " does not match dataset dimensionality " +
                                   std::to_string(dims_));
  }
  std::vector<Coord> out(values_.size());
  const RowId n = size();
  for (RowId r = 0; r < n; ++r) {
    const size_t base = static_cast<size_t>(r) * dims_;
    for (Dim d = 0; d < dims_; ++d) {
      out[base + d] = pref.Canonical(d, values_[base + d]);
    }
  }
  return DataSet(dims_, std::move(out));
}

Result<DataSet> DataSet::Project(Dim k) const {
  if (k < 1 || k > dims_) {
    return Status::InvalidArgument("projection to " + std::to_string(k) +
                                   " dims out of range [1, " + std::to_string(dims_) + "]");
  }
  if (k == dims_) return *this;
  DataSet out(k);
  out.Reserve(size());
  const RowId n = size();
  for (RowId r = 0; r < n; ++r) {
    out.Append(row(r).subspan(0, k));
  }
  return out;
}

Result<DataSet> DataSet::ProjectDims(std::span<const Dim> dims) const {
  if (dims.empty()) return Status::InvalidArgument("projection needs at least one dim");
  std::vector<bool> seen(dims_, false);
  for (Dim d : dims) {
    if (d >= dims_) {
      return Status::InvalidArgument("projection dim " + std::to_string(d) +
                                     " out of range [0, " + std::to_string(dims_) + ")");
    }
    if (seen[d]) {
      return Status::InvalidArgument("projection dim " + std::to_string(d) +
                                     " repeats");
    }
    seen[d] = true;
  }
  DataSet out(static_cast<Dim>(dims.size()));
  out.Reserve(size());
  std::vector<Coord> buffer(dims.size());
  const RowId n = size();
  for (RowId r = 0; r < n; ++r) {
    for (size_t i = 0; i < dims.size(); ++i) buffer[i] = at(r, dims[i]);
    out.Append(std::span<const Coord>(buffer.data(), buffer.size()));
  }
  return out;
}

DataSet DataSet::Select(std::span<const RowId> rows) const {
  DataSet out(dims_);
  out.Reserve(static_cast<RowId>(rows.size()));
  for (RowId r : rows) out.Append(row(r));
  return out;
}

}  // namespace skydiver
