// SkyQuery — the normalized shape of a skyline query.
//
// The paper computes one fixed skyline per dataset; real serving wants
// *query-shaped* skylines (the two skyline surveys treat these as the
// canonical variants):
//
//   * constraint box  — only points inside the closed box [lo, hi] (full
//     dimensionality) participate; the skyline of the constrained region.
//   * projection mask — dominance is evaluated in the subspace named by
//     `project` (ascending, duplicate-free dimension indices); points
//     equal on every projected dimension are mutually incomparable and
//     all retained, consistent with the library's strict-dominance
//     duplicate handling.
//   * shards          — the row set is split into `shards` contiguous
//     chunks whose local skylines are computed independently (in parallel
//     when a pool is available) and merged with the D&C cross-filter.
//
// The IDENTITY query (no box, empty projection = full space, 1 shard)
// must be — and is, see tests/query_test.cc — bit-identical to the
// pre-query code paths on every backend and kernel flavour.
//
// Two normalization levels exist because the planner never sees the data:
//   * CanonicalShape / ValidateQueryShape — dimensionality-independent
//     (drop an all-infinite box, sort+dedup the projection, clamp shards);
//     what Planner::Resolve and QuerySpec::Normalized apply.
//   * NormalizeQuery(q, dims) — the full check against a concrete
//     dimensionality (box/projection arity, range); what the engine and
//     the serving layer apply before building a DataView. A full-space
//     projection list normalizes to the empty (identity) mask here, so
//     equal queries always produce equal cache keys.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/types.h"

namespace skydiver {

/// A normalized query shape. Value-semantic and cheap to copy; equality is
/// structural, so two CanonicalShape'd queries compare equal iff they run
/// the same computation.
struct SkyQuery {
  /// Closed constraint box, full dimensionality. Both empty (no
  /// constraint) or both of the data's dimensionality; ±infinity opens a
  /// side.
  std::vector<Coord> lo;
  std::vector<Coord> hi;
  /// Subspace the dominance tests run in; empty = full space. Ascending
  /// and duplicate-free once canonicalized.
  std::vector<Dim> project;
  /// Contiguous row shards whose local skylines are cross-filter merged.
  size_t shards = 1;

  bool constrained() const { return !lo.empty(); }
  bool projected() const { return !project.empty(); }
  bool sharded() const { return shards > 1; }
  /// True iff this is the full-space, unconstrained, single-shard query.
  bool identity() const { return !constrained() && !projected() && !sharded(); }

  friend bool operator==(const SkyQuery&, const SkyQuery&) = default;
};

/// Upper bound on `shards` (a sanity cap, like Planner::kMaxThreads).
inline constexpr size_t kMaxQueryShards = 1024;

/// Dimensionality-independent validation: box arity/ordering/NaN, shard
/// cap, duplicate-free projection. What the planner can check without data.
[[nodiscard]] Status ValidateQueryShape(const SkyQuery& query);

/// Dimensionality-independent canonicalization: shards 0 -> 1, projection
/// sorted + deduplicated, an everywhere-unbounded box dropped. Does not
/// validate; apply ValidateQueryShape first when the query is user input.
SkyQuery CanonicalShape(const SkyQuery& query);

/// Full normalization against a concrete dimensionality: CanonicalShape
/// plus arity/range checks and collapsing a full-space projection list to
/// the identity mask. The engine and the serving layer run every query
/// through this before touching data.
[[nodiscard]] Result<SkyQuery> NormalizeQuery(const SkyQuery& query, Dim dims);

/// Stable cache key for a NORMALIZED query: equal keys iff equal
/// computation. The identity query keys as "id"; box coordinates are
/// rendered exactly (bit pattern), so no two distinct boxes collide.
std::string QueryKey(const SkyQuery& query);

/// Human-readable rendering for explain/report surfaces.
std::string ToString(const SkyQuery& query);

}  // namespace skydiver
