// Dominated sets Γ(p) and exact Jaccard diversity.
//
// For a skyline point p, Γ(p) = { x ∈ D : p ≺ x } is its dominated set; the
// paper defines the diversity of two skyline points as the Jaccard distance
// of their dominated sets. This module materializes Γ sets exactly (used by
// the ground-truth evaluators, the Simple-Greedy baseline, and the tests
// that validate the MinHash estimators).

#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "core/dataset.h"
#include "core/types.h"
#include "kernels/dominance_kernel.h"

namespace skydiver {

/// Materialized dominated sets for a set of skyline points over a dataset.
///
/// Γ sets are stored as bit vectors of length |D| indexed by row id, which
/// makes intersections/unions (and hence exact Jaccard) popcount-fast.
class GammaSets {
 public:
  /// Computes Γ(s) for every skyline row in `skyline` by a full scan of
  /// `data` (O(n·m) dominance tests). `data` must be in minimization space.
  /// The scan is exhaustive, so kScalar and kTiled produce identical sets;
  /// under kTiled the skyline columns are swept one 64-column tile at a
  /// time per data row.
  static GammaSets Compute(const DataSet& data, const std::vector<RowId>& skyline,
                           DomKernel kernel = DomKernel::kScalar);

  /// Builds Γ sets directly from an explicit dominance graph: `gammas[j]`
  /// is the set of dominated items (bits over a universe of
  /// `universe_size` items) for the j-th skyline point. This serves the
  /// paper's coordinate-free setting — anonymized data, partially ordered
  /// or categorical domains — where only the dominance relation is known.
  static GammaSets FromBitVectors(size_t universe_size, std::vector<BitVector> gammas);

  /// Number of skyline points.
  size_t size() const { return gammas_.size(); }

  /// Dataset cardinality the Γ sets are defined over.
  size_t universe_size() const { return universe_; }

  /// The dominated set of the j-th skyline point as a bit vector over rows.
  const BitVector& gamma(size_t j) const { return gammas_[j]; }

  /// Domination score |Γ(s_j)|.
  size_t DominationScore(size_t j) const { return counts_[j]; }

  /// Index of the skyline point with the maximum domination score
  /// (lowest index wins ties).
  size_t MaxDominationIndex() const;

  /// Exact Jaccard similarity |Γ(i)∩Γ(j)| / |Γ(i)∪Γ(j)|.
  /// Two empty dominated sets are defined as similarity 1 (distance 0):
  /// they are identical as sets, which also matches how their all-empty
  /// MinHash signatures compare. Such zero-evidence points are never both
  /// picked by the diversifier.
  double JaccardSimilarity(size_t i, size_t j) const;

  /// Exact Jaccard distance 1 - JaccardSimilarity.
  double JaccardDistance(size_t i, size_t j) const {
    return 1.0 - JaccardSimilarity(i, j);
  }

  /// Fraction of non-skyline points dominated by at least one of the given
  /// skyline points (the coverage measure of Table 1).
  double Coverage(const std::vector<size_t>& selected) const;

  /// Sparsity of the (n-m) x m domination matrix: fraction of zero cells
  /// (Section 3.2's sampling discussion).
  double MatrixSparsity() const;

 private:
  size_t universe_ = 0;       // |D|
  size_t non_skyline_ = 0;    // |D| - m
  std::vector<BitVector> gammas_;
  std::vector<size_t> counts_;
};

}  // namespace skydiver
