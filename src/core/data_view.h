// DataView — a query-scoped view of a DataSet.
//
// Every skyline backend computes over a DataView instead of the raw
// DataSet: the view names the rows that participate (those inside the
// query's constraint box) and the subspace dominance runs in (the
// projection mask). The data itself is never copied or re-laid-out —
// scalar dominance tests run on full rows through the masked overloads of
// core/dominance.h, and the batched kernels get tiles materialized with
// only the projected columns (kernels/tile_view.h), so the kernel layer
// stays dimension-count-generic and untouched.
//
// Identity contract: a view built from the identity SkyQuery iterates the
// same rows in the same order, with the same dimension list [0, d), as
// the pre-query code paths — the arithmetic (and therefore every sort
// order, early exit, and emitted skyline) is bit-identical.

#pragma once

#include <numeric>
#include <span>
#include <vector>

#include "common/check.h"
#include "core/dataset.h"
#include "core/sky_query.h"
#include "core/types.h"

namespace skydiver {

/// Read-only view of `data` shaped by a normalized SkyQuery. Cheap to pass
/// by const reference; safe to share across threads after construction
/// (all members are immutable). The DataSet must outlive the view.
class DataView {
 public:
  /// Identity view over the whole dataset, full space.
  explicit DataView(const DataSet& data) : DataView(data, SkyQuery{}) {}

  /// View shaped by `query`, which must already be normalized against
  /// `data.dims()` (NormalizeQuery) — shape errors are caller bugs here.
  DataView(const DataSet& data, SkyQuery query)
      : data_(&data), query_(std::move(query)) {
    const Dim d = data.dims();
    SKYDIVER_DCHECK(!query_.constrained() || query_.lo.size() == d,
                    "DataView query box does not match the data dimensionality");
    if (query_.projected()) {
      proj_ = query_.project;
      SKYDIVER_DCHECK_LT(proj_.back(), d, "DataView projection out of range");
    } else {
      proj_.resize(d);
      std::iota(proj_.begin(), proj_.end(), Dim{0});
    }
    if (query_.constrained()) {
      for (RowId r = 0; r < data.size(); ++r) {
        if (InBox(data.row(r))) rows_.push_back(r);
      }
    } else {
      rows_.resize(data.size());
      std::iota(rows_.begin(), rows_.end(), RowId{0});
    }
  }

  const DataSet& data() const { return *data_; }
  const SkyQuery& query() const { return query_; }

  /// Projected dimensionality d'.
  Dim dims() const { return static_cast<Dim>(proj_.size()); }
  /// The projected dimension list, always materialized (identity = [0, d)).
  std::span<const Dim> proj() const { return proj_; }

  bool constrained() const { return query_.constrained(); }
  /// True iff the projection is the full space (masked arithmetic over
  /// proj() is then bit-identical to the unmasked loops).
  bool full_space() const { return !query_.projected(); }
  bool identity() const { return query_.identity(); }

  /// Rows inside the constraint box, ascending (all rows when
  /// unconstrained).
  const std::vector<RowId>& rows() const { return rows_; }
  RowId size() const { return static_cast<RowId>(rows_.size()); }
  bool empty() const { return rows_.empty(); }

  /// Closed-box membership of a full row (all dimensions, not just the
  /// projected ones — the constraint is a full-space region).
  bool InBox(std::span<const Coord> full_row) const {
    for (size_t d = 0; d < query_.lo.size(); ++d) {
      if (full_row[d] < query_.lo[d] || full_row[d] > query_.hi[d]) return false;
    }
    return true;
  }

  /// Projected coordinates of row `r`: the row span itself under the full
  /// space (zero copy, bit-identical to the historical paths), otherwise
  /// gathered into `scratch`.
  std::span<const Coord> ProjectedRow(RowId r, std::vector<Coord>& scratch) const {
    const auto full = data_->row(r);
    if (full_space()) return full;
    scratch.resize(proj_.size());
    for (size_t k = 0; k < proj_.size(); ++k) scratch[k] = full[proj_[k]];
    return {scratch.data(), scratch.size()};
  }

  /// Coordinate of row `r` on VIEW dimension `vd` (i.e. data dimension
  /// proj()[vd]).
  Coord at(RowId r, Dim vd) const { return data_->at(r, proj_[vd]); }

 private:
  const DataSet* data_;
  SkyQuery query_;
  std::vector<Dim> proj_;
  std::vector<RowId> rows_;
};

}  // namespace skydiver
