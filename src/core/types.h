// Fundamental scalar types shared across the SkyDiver library.

#pragma once

#include <cstdint>

namespace skydiver {

/// Attribute value type. The paper works over numeric attribute vectors;
/// categorical/partially-ordered domains are supported by encoding each
/// category level as a number consistent with its partial order.
using Coord = double;

/// Zero-based row identifier within a DataSet.
using RowId = uint32_t;

/// Sentinel for "no row".
inline constexpr RowId kInvalidRowId = ~RowId{0};

/// Number of dimensions of a dataset.
using Dim = uint32_t;

}  // namespace skydiver
