// Per-dimension optimization preferences.
//
// A skyline query is parameterized by whether each attribute should be
// minimized (price) or maximized (quality). Internally all dominance tests
// are phrased as minimization; `Preference` supplies the per-dimension sign.

#pragma once

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace skydiver {

/// Direction of optimization for one attribute.
enum class Pref : uint8_t {
  kMin = 0,  ///< Smaller values are preferred.
  kMax = 1,  ///< Larger values are preferred.
};

/// Per-dimension preference vector.
class Preference {
 public:
  /// All-minimize preference over `d` dimensions (the paper's default).
  static Preference AllMin(Dim d) { return Preference(std::vector<Pref>(d, Pref::kMin)); }

  /// All-maximize preference over `d` dimensions.
  static Preference AllMax(Dim d) { return Preference(std::vector<Pref>(d, Pref::kMax)); }

  explicit Preference(std::vector<Pref> prefs) : prefs_(std::move(prefs)) {}

  Dim dims() const { return static_cast<Dim>(prefs_.size()); }
  Pref at(Dim i) const { return prefs_[i]; }

  /// Maps a raw coordinate into "minimization space": values the dominance
  /// kernel can compare with plain `<=`.
  Coord Canonical(Dim i, Coord v) const { return prefs_[i] == Pref::kMin ? v : -v; }

  bool operator==(const Preference& other) const { return prefs_ == other.prefs_; }

 private:
  std::vector<Pref> prefs_;
};

}  // namespace skydiver
