// Parallel skyline computation and parallel index-free signature
// generation (paper future-work direction ii).
//
// Both parallelizations preserve exact outputs:
//  * skyline: partition -> local SFS skylines -> merge (the skyline of a
//    union is the skyline of the union of local skylines);
//  * SigGen-IF: MinHash minima are associative/commutative, so per-shard
//    signature matrices min-merge into exactly the serial matrix, and
//    domination scores add up.

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "kernels/dominance_kernel.h"
#include "minhash/siggen.h"
#include "parallel/thread_pool.h"
#include "skyline/skyline.h"

namespace skydiver {

// All pooled operations here harvest the workers' dominance-test deltas
// (ThreadPool::HarvestDominanceChecks) and fold them into both the result's
// `dominance_checks` and the calling thread's DominanceCounter, so pooled
// runs report the same counts a serial run would (exactly, for the
// exhaustive SigGen-IF pass; the sharded skyline does different work).

/// Skyline of the view computed on `pool` (rows identical to SkylineSFS on
/// the same view). `dominance_checks` covers shard passes and the merge
/// pass. The DataSet overload runs the identity view, bit-identical to the
/// historical path.
SkylineResult ParallelSkyline(const DataView& view, ThreadPool& pool,
                              DomKernel kernel = DomKernel::kScalar);
SkylineResult ParallelSkyline(const DataSet& data, ThreadPool& pool,
                              DomKernel kernel = DomKernel::kScalar);

/// Pooled sharded skyline (the kSharded backend): the view's rows are cut
/// into `shards` contiguous chunks whose local SFS skylines are computed on
/// `pool` (serially when `pool` is null), then folded together with the D&C
/// cross-filter merge. Rows are identical to SkylineSharded — the skyline
/// of a union is the cross-filtered union of the local skylines,
/// independent of merge order.
SkylineResult ShardedSkyline(const DataView& view, size_t shards,
                             ThreadPool* pool,
                             DomKernel kernel = DomKernel::kScalar);

/// Index-free signature generation sharded over `pool` (result identical
/// to serial SigGenIF with the same family and kernel).
Result<SigGenResult> ParallelSigGenIF(const DataSet& data,
                                      const std::vector<RowId>& skyline,
                                      const MinHashFamily& family, ThreadPool& pool,
                                      DomKernel kernel = DomKernel::kScalar);

/// Index-based signature generation parallelized over subtrees. Row-id
/// ranges are assigned by the tree's DFS layout (each entry's range is its
/// subtree-count prefix sum), so the output is DETERMINISTIC: identical
/// signatures for any thread count — though a different (equally valid)
/// permutation than the serial BFS SigGenIB, so estimates agree only
/// statistically with it. Node access bypasses the buffer pool (thread
/// safety); the result's IoStats report the pages an accounted traversal
/// would have read logically.
Result<SigGenResult> ParallelSigGenIB(const DataSet& data,
                                      const std::vector<RowId>& skyline,
                                      const MinHashFamily& family, const RTree& tree,
                                      ThreadPool& pool);

}  // namespace skydiver
