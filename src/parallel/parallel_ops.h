// Parallel skyline computation, parallel index-free signature generation
// (paper future-work direction ii), and a morsel-parallel greedy k-MMDP
// selection.
//
// All parallelizations preserve exact outputs and, since the morsel
// rewiring, exact bit-identical reductions at every thread count and
// morsel size (see parallel/morsel.h for the slot protocol):
//  * skyline: morsel ranges -> local SFS skylines folded in slot order ->
//    merge pass (the skyline of a union is the skyline of the union of
//    local skylines);
//  * SigGen-IF: MinHash minima are associative/commutative, so per-slot
//    signature matrices min-merge into exactly the serial matrix, and
//    domination scores add up;
//  * selection: per-round morsel argmax with the serial loop's exact
//    strict comparisons, folded in ascending slot order (first index wins
//    on ties, exactly like the serial ascending scan).

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "diversify/dispersion.h"
#include "kernels/dominance_kernel.h"
#include "minhash/siggen.h"
#include "parallel/thread_pool.h"
#include "skyline/skyline.h"

namespace skydiver {

// All pooled operations here harvest the workers' dominance-test deltas
// (ThreadPool::HarvestDominanceChecks) and fold them into both the result's
// `dominance_checks` and the calling thread's DominanceCounter, so pooled
// runs report the same counts a serial run would (exactly, for the
// exhaustive SigGen-IF pass; the sharded skyline does different work).
//
// `morsel_rows` on the batched entry points is the plan's morsel size
// (0 = kDefaultMorselRows); the kernel defaults match the planner's
// default (kSimd — EffectiveKernel degrades it per-callsite when the ISA
// is missing or the candidate set is too small), so no caller silently
// runs scalar.

/// Skyline of the view computed on `pool` (rows identical to SkylineSFS on
/// the same view). `dominance_checks` covers shard passes and the merge
/// pass. The DataSet overload runs the identity view, bit-identical to the
/// historical path.
SkylineResult ParallelSkyline(const DataView& view, ThreadPool& pool,
                              DomKernel kernel = DomKernel::kSimd,
                              size_t morsel_rows = 0);
SkylineResult ParallelSkyline(const DataSet& data, ThreadPool& pool,
                              DomKernel kernel = DomKernel::kSimd,
                              size_t morsel_rows = 0);

/// Pooled sharded skyline (the kSharded backend): the view's rows are cut
/// into `shards` contiguous chunks whose local SFS skylines are computed on
/// `pool` (serially when `pool` is null), then folded together with the D&C
/// cross-filter merge in shard order (slot = shard id, so the merge
/// sequence — and with it the dominance-check count — is deterministic).
/// Rows are identical to SkylineSharded.
SkylineResult ShardedSkyline(const DataView& view, size_t shards,
                             ThreadPool* pool,
                             DomKernel kernel = DomKernel::kSimd);

/// Index-free signature generation morsel-parallelized over `pool` (result
/// bit-identical to serial SigGenIF with the same family and kernel).
Result<SigGenResult> ParallelSigGenIF(const DataSet& data,
                                      const std::vector<RowId>& skyline,
                                      const MinHashFamily& family, ThreadPool& pool,
                                      DomKernel kernel = DomKernel::kSimd,
                                      size_t morsel_rows = 0);

/// Index-based signature generation parallelized over subtrees. Row-id
/// ranges are assigned by the tree's DFS layout (each entry's range is its
/// subtree-count prefix sum), so the output is DETERMINISTIC: identical
/// signatures for any thread count — though a different (equally valid)
/// permutation than the serial BFS SigGenIB, so estimates agree only
/// statistically with it. Node access bypasses the buffer pool (thread
/// safety); the result's IoStats report the pages an accounted traversal
/// would have read logically.
Result<SigGenResult> ParallelSigGenIB(const DataSet& data,
                                      const std::vector<RowId>& skyline,
                                      const MinHashFamily& family, const RTree& tree,
                                      ThreadPool& pool);

/// Morsel-parallel greedy k-MMDP selection, bit-identical to the serial
/// SelectDiverseSet (same seed, same picks, same min_pairwise, same
/// distance_evaluations) at every thread count and morsel size: each round
/// runs the cached-min-distance argmax over candidate morsels and folds
/// the per-slot winners in ascending slot order with the serial loop's
/// exact strict comparisons, so ties resolve to the first index, exactly
/// like the serial ascending scan. `distance` and `score` must be safe to
/// call concurrently (the engine's MinHash / LSH distances are pure reads
/// of frozen matrices).
Result<DispersionResult> ParallelSelectDiverseSet(size_t m, size_t k,
                                                  const DistanceFn& distance,
                                                  const ScoreFn& score,
                                                  ThreadPool& pool,
                                                  size_t morsel_rows = 0);

/// Convenience overload matching SelectDiverseSet's: scores given as raw
/// |Γ| domination counts (must have at least `m` entries).
Result<DispersionResult> ParallelSelectDiverseSet(
    size_t m, size_t k, const DistanceFn& distance,
    const std::vector<uint64_t>& domination_scores, ThreadPool& pool,
    size_t morsel_rows = 0);

}  // namespace skydiver
