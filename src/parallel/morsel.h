// Morsel-driven work dispatch (Leis et al., "Morsel-Driven Parallelism"):
// instead of cutting [0, n) into one static chunk per worker — where one
// slow shard strands the rest of the pool — workers repeatedly claim small
// tile-aligned row ranges ("morsels") from a shared atomic counter until
// the range is exhausted. A worker that finishes early simply claims more;
// load balancing falls out of the claim loop with no stealing deques.
//
// Deterministic reduction protocol. Every claim carries a `slot` index
// that is a pure function of its row range (claim 0 = rows [0, R), claim 1
// = rows [R, 2R), ...), NOT of the thread that ran it. Workers accumulate
// into per-slot state; callers fold slots in ascending order. Because the
// slot->rows mapping is fixed at queue construction, the folded result is
// bit-identical for every thread count, morsel size, and scheduling order.
// Accumulating into thread-id-indexed state is banned (skylint rule
// `thread-id-reduction`): slots filled in scheduling order fold in
// scheduling order, which is nondeterministic. See DESIGN.md §10.
//
// To keep per-slot reduction state bounded (a SigGen slot is a whole t x m
// signature matrix), consecutive morsels are claimed in batches: one
// fetch_add hands a worker `batch_morsels` consecutive morsels (its local
// batch), and the slot indexes the batch. The auto batch size targets
// kClaimsPerWorker claims per worker — enough claims for the fast workers
// to absorb a slow one, few enough that slot state stays ~4x pool size.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "parallel/thread_pool.h"

namespace skydiver {

/// Default morsel size: two kernel tiles. Small enough that claims
/// interleave under skewed per-row costs, large enough that the claim
/// counter is not contended (one fetch_add per 2 tile sweeps minimum).
inline constexpr size_t kDefaultMorselRows = 128;

/// Auto batch sizing targets this many claims per worker.
inline constexpr size_t kClaimsPerWorker = 4;

/// Tuning knobs for a MorselQueue. The zero values mean "auto".
struct MorselConfig {
  /// Rows per morsel; 0 = kDefaultMorselRows. The planner validates
  /// tile-alignment (multiple of kTileRows) for plan-carried sizes;
  /// the queue itself accepts any positive size (tests use ragged ones).
  size_t morsel_rows = 0;
  /// Morsels per claim (slot granularity); 0 = auto (targets
  /// kClaimsPerWorker claims per worker). 1 = one slot per morsel.
  size_t batch_morsels = 0;
};

/// Hands out claims over [0, n) to pool workers. Thread-safe: Next() may be
/// called concurrently from any number of workers. The claim counter is a
/// relaxed atomic (atomicity is all it needs: fetch_add uniqueness gives
/// each claim exclusive rows and an exclusive slot; result publication
/// ordering is carried by ThreadPool's mutex via Wait(), exactly like the
/// documented harvest protocol).
class SKYDIVER_CAPABILITY("mutex") MorselQueue {
 public:
  /// One claimed unit of work: rows [begin, end), reduction slot `slot`.
  /// `slot` is a pure function of `begin` (begin / claim rows), never of
  /// the claiming thread.
  struct Claim {
    size_t slot = 0;
    uint64_t begin = 0;
    uint64_t end = 0;
  };

  /// Dispatch counters, for tests and observability.
  struct Stats {
    uint64_t claims = 0;  ///< successful Next() calls
    uint64_t rows = 0;    ///< rows handed out across those claims
  };

  /// A queue over [0, n) sized for `workers` concurrent claimants.
  MorselQueue(uint64_t n, size_t workers, MorselConfig config = {});

  MorselQueue(const MorselQueue&) = delete;
  MorselQueue& operator=(const MorselQueue&) = delete;

  /// Claims the next batch of morsels. Returns false when [0, n) is
  /// exhausted (and forever after: the queue is single-use).
  bool Next(Claim* out);

  /// Number of reduction slots = number of claims Next() will ever grant.
  /// Size per-slot accumulator arrays with this.
  size_t slots() const { return slots_; }

  /// Total rows covered ([0, n)).
  uint64_t size() const { return n_; }

  /// Resolved rows per morsel (config value or the default).
  size_t morsel_rows() const { return morsel_rows_; }

  /// Resolved morsels per claim.
  size_t batch_morsels() const { return batch_morsels_; }

  /// Rows per claim (morsel_rows() * batch_morsels(); the last claim may
  /// cover fewer).
  uint64_t claim_rows() const { return claim_rows_; }

  /// Snapshot of the dispatch counters (by value, house style).
  Stats stats() const {
    MutexLock lock(mutex_);
    return stats_;
  }

 private:
  uint64_t n_ = 0;
  size_t morsel_rows_ = kDefaultMorselRows;
  size_t batch_morsels_ = 1;
  uint64_t claim_rows_ = kDefaultMorselRows;
  size_t slots_ = 0;

  // The work-stealing heart: one fetch_add claims one slot. Deliberately
  // NOT guarded — atomicity is all it needs (see class comment); the
  // mutex below guards only the observational counters.
  std::atomic<uint64_t> next_claim_{0};

  mutable Mutex mutex_;
  Stats stats_ SKYDIVER_GUARDED_BY(mutex_);
};

/// Drains `queue` on `pool`: spawns min(pool.size(), queue.slots()) worker
/// tasks, each looping `while (queue.Next(&c)) body(c);`, and waits for
/// completion. `body` must be safe to run concurrently on distinct claims
/// (claims never share rows or slots). If the pool is shutting down the
/// queue is drained inline on the calling thread, so the reduction is
/// always complete when this returns.
///
/// `stall` is a test hook run after each claim BEFORE its body — the
/// determinism stress suite injects random per-claim delays with it to
/// scramble scheduling order. It must depend only on the claim (never on
/// thread identity). Pass nullptr outside tests.
void RunMorsels(ThreadPool& pool, MorselQueue& queue,
                const std::function<void(const MorselQueue::Claim&)>& body,
                const std::function<void(const MorselQueue::Claim&)>* stall = nullptr);

}  // namespace skydiver
