// Minimal fixed-size thread pool and parallel-for used by the parallel
// skyline / signature-generation paths (paper future-work direction ii:
// "parallelization aspects of our methodology, aiming for scalable skyline
// diversification over massive data").

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace skydiver {

/// Fixed pool of worker threads draining a task queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task; it may start immediately. Returns false (and does
  /// NOT enqueue) once shutdown has begun — submitting to a shut-down pool
  /// is a caller bug, rejected loudly rather than silently dropped into a
  /// queue nobody will drain.
  [[nodiscard]] bool Submit(std::function<void()> task);

  /// Begins shutdown: already-queued tasks are drained, new submissions
  /// are rejected, and the workers are joined. Idempotent; called by the
  /// destructor. Must not race with Submit/Wait from other threads.
  void Shutdown();

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(begin, end) over `chunks` contiguous splits of [0, n) on the
  /// pool and waits for completion. fn must be thread-safe across disjoint
  /// ranges.
  void ParallelFor(uint64_t n, size_t chunks,
                   const std::function<void(uint64_t, uint64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace skydiver
