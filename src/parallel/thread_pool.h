// Minimal fixed-size thread pool and parallel-for used by the parallel
// skyline / signature-generation paths (paper future-work direction ii:
// "parallelization aspects of our methodology, aiming for scalable skyline
// diversification over massive data").

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <span>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace skydiver {

/// Dominance-test counters accumulated by pool workers since the last
/// harvest. DominanceCounter is thread_local, so tests performed on worker
/// threads are invisible to the submitting thread's counters; the pool
/// snapshots each worker's delta around every task and parks the sums here
/// for the caller to fold back in.
struct DominanceHarvest {
  uint64_t total = 0;  ///< all dominance tests (scalar + tiled)
  uint64_t tiled = 0;  ///< the subset charged by tiled kernel sweeps
};

/// Fixed pool of worker threads draining a task queue.
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues a task; it may start immediately. Returns false (and does
  /// NOT enqueue) once shutdown has begun — submitting to a shut-down pool
  /// is a caller bug, rejected loudly rather than silently dropped into a
  /// queue nobody will drain.
  [[nodiscard]] bool Submit(std::function<void()> task);

  /// Enqueues every task in `tasks` (moved from) under ONE queue-mutex
  /// acquisition — burst submission for the morsel paths, which enqueue a
  /// worker task per pool thread at once. All-or-nothing: returns false
  /// (and enqueues none) once shutdown has begun. The harvest protocol is
  /// untouched — batched tasks are drained by the same WorkerLoop that
  /// snapshots per-task dominance deltas.
  [[nodiscard]] bool SubmitBatch(std::span<std::function<void()>> tasks);

  /// Begins shutdown: already-queued tasks are drained, new submissions
  /// are rejected, and the workers are joined. Idempotent; called by the
  /// destructor. Must not race with Submit/Wait from other threads.
  void Shutdown();

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Runs fn(begin, end) over `chunks` contiguous splits of [0, n) on the
  /// pool and waits for completion. fn must be thread-safe across disjoint
  /// ranges.
  void ParallelFor(uint64_t n, size_t chunks,
                   const std::function<void(uint64_t, uint64_t)>& fn);

  /// Returns the dominance tests performed by pool tasks since the previous
  /// harvest and resets the tally to zero. Callers running a pooled
  /// operation harvest-and-discard before starting (clearing any leftovers
  /// from earlier users of the pool), then harvest after Wait() and fold
  /// the delta into their own thread-local counters / result counts.
  ///
  /// Memory-ordering / harvest protocol:
  ///
  ///   worker:  run task -> fetch_add(delta, relaxed) -> lock(mutex_),
  ///            --in_flight_, unlock
  ///   caller:  Wait() observes in_flight_ == 0 under mutex_ -> harvest
  ///            exchange(0, relaxed)
  ///
  /// Every counter update a finished task produced is sequenced before its
  /// worker's mutex_ critical section, and that section happens-before the
  /// caller's Wait() returning (same mutex). The mutex therefore carries
  /// all the ordering the counters need, and the atomics themselves can be
  /// (and deliberately are) `memory_order_relaxed`: they only need
  /// atomicity for the increments racing between workers, not ordering.
  /// A harvest that runs concurrently with in-flight tasks (e.g. the
  /// harvest-and-discard before starting, or a monitoring thread) reads an
  /// atomically-consistent partial tally; no update is lost or double
  /// counted across harvests because exchange() drains atomically. The
  /// Submit/harvest hammer test in tests/parallel_test.cc pins this down
  /// under TSan.
  DominanceHarvest HarvestDominanceChecks();

 private:
  void WorkerLoop();

  // Spawned in the constructor, joined in Shutdown; never resized in
  // between, so size() is a lock-free const read.
  std::vector<std::thread> workers_;

  // The pool's one capability: mutex_ guards the task queue and the
  // counters the two condition variables wait on. Everything below is
  // statically tied to it, so an unguarded touch is a clang
  // -Wthread-safety build error, not a TSan hope.
  Mutex mutex_;
  CondVar task_ready_;  ///< signaled per Submit; waited on by workers
  CondVar all_done_;    ///< signaled when in_flight_ drains; waited on by Wait
  std::queue<std::function<void()>> tasks_ SKYDIVER_GUARDED_BY(mutex_);
  size_t in_flight_ SKYDIVER_GUARDED_BY(mutex_) = 0;
  bool shutdown_ SKYDIVER_GUARDED_BY(mutex_) = false;

  // Cross-thread counter tallies; relaxed atomics ordered by mutex_ (see
  // HarvestDominanceChecks for the protocol). Deliberately NOT guarded:
  // atomicity is all they need, the mutex carries the ordering.
  std::atomic<uint64_t> harvest_total_{0};
  std::atomic<uint64_t> harvest_tiled_{0};
};

}  // namespace skydiver
