#include "parallel/thread_pool.h"

#include <algorithm>

#include "core/dominance.h"

namespace skydiver {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(uint64_t n, size_t chunks,
                             const std::function<void(uint64_t, uint64_t)>& fn) {
  chunks = std::max<size_t>(1, std::min<size_t>(chunks, n == 0 ? 1 : n));
  for (size_t c = 0; c < chunks; ++c) {
    const uint64_t begin = n * c / chunks;
    const uint64_t end = n * (c + 1) / chunks;
    if (!Submit([&fn, begin, end] { fn(begin, end); })) break;  // shutting down
  }
  Wait();
}

DominanceHarvest ThreadPool::HarvestDominanceChecks() {
  DominanceHarvest out;
  out.total = harvest_total_.exchange(0, std::memory_order_relaxed);
  out.tiled = harvest_tiled_.exchange(0, std::memory_order_relaxed);
  return out;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // Snapshot this worker's thread-local dominance counters around the
    // task so the submitting thread can account for work done here.
    const uint64_t total_before = DominanceCounter::Count();
    const uint64_t tiled_before = DominanceCounter::TiledCount();
    task();
    harvest_total_.fetch_add(DominanceCounter::Count() - total_before,
                             std::memory_order_relaxed);
    harvest_tiled_.fetch_add(DominanceCounter::TiledCount() - tiled_before,
                             std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace skydiver
