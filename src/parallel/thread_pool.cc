#include "parallel/thread_pool.h"

#include <algorithm>

#include "core/dominance.h"

namespace skydiver {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  task_ready_.NotifyAll();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    if (shutdown_) return false;
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
  return true;
}

bool ThreadPool::SubmitBatch(std::span<std::function<void()>> tasks) {
  if (tasks.empty()) return true;
  {
    MutexLock lock(mutex_);
    if (shutdown_) return false;
    for (std::function<void()>& task : tasks) {
      tasks_.push(std::move(task));
      ++in_flight_;
    }
  }
  if (tasks.size() == 1) {
    task_ready_.NotifyOne();
  } else {
    task_ready_.NotifyAll();
  }
  return true;
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(mutex_);
}

void ThreadPool::ParallelFor(uint64_t n, size_t chunks,
                             const std::function<void(uint64_t, uint64_t)>& fn) {
  chunks = std::max<size_t>(1, std::min<size_t>(chunks, n == 0 ? 1 : n));
  for (size_t c = 0; c < chunks; ++c) {
    const uint64_t begin = n * c / chunks;
    const uint64_t end = n * (c + 1) / chunks;
    if (!Submit([&fn, begin, end] { fn(begin, end); })) break;  // shutting down
  }
  Wait();
}

DominanceHarvest ThreadPool::HarvestDominanceChecks() {
  DominanceHarvest out;
  // skylint:allow(relaxed-ordering): atomicity-only drains; every ordering
  // edge the tallies need is carried by mutex_ — see the harvest protocol
  // in thread_pool.h (HarvestDominanceChecks doc comment).
  out.total = harvest_total_.exchange(0, std::memory_order_relaxed);
  // skylint:allow(relaxed-ordering): same protocol as the line above.
  out.tiled = harvest_tiled_.exchange(0, std::memory_order_relaxed);
  return out;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutdown_ && tasks_.empty()) task_ready_.Wait(mutex_);
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // Snapshot this worker's thread-local dominance counters around the
    // task so the submitting thread can account for work done here.
    const uint64_t total_before = DominanceCounter::Count();
    const uint64_t tiled_before = DominanceCounter::TiledCount();
    task();
    const uint64_t total_delta = DominanceCounter::Count() - total_before;
    const uint64_t tiled_delta = DominanceCounter::TiledCount() - tiled_before;
    // skylint:allow(relaxed-ordering): the increments are sequenced before
    // this worker's mutex_ critical section below, which is what publishes
    // them (harvest protocol, thread_pool.h).
    harvest_total_.fetch_add(total_delta, std::memory_order_relaxed);
    // skylint:allow(relaxed-ordering): same protocol as the line above.
    harvest_tiled_.fetch_add(tiled_delta, std::memory_order_relaxed);
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace skydiver
