#include "parallel/morsel.h"

#include <algorithm>
#include <vector>

namespace skydiver {

MorselQueue::MorselQueue(uint64_t n, size_t workers, MorselConfig config) : n_(n) {
  morsel_rows_ = config.morsel_rows == 0 ? kDefaultMorselRows : config.morsel_rows;
  workers = std::max<size_t>(1, workers);
  const uint64_t morsels = n == 0 ? 0 : (n + morsel_rows_ - 1) / morsel_rows_;
  size_t batch = config.batch_morsels;
  if (batch == 0) {
    // Auto: enough claims that fast workers absorb a slow one, few enough
    // that per-slot reduction state stays ~kClaimsPerWorker x pool size.
    const uint64_t target_claims = static_cast<uint64_t>(kClaimsPerWorker) * workers;
    batch = morsels <= target_claims
                ? 1
                : static_cast<size_t>((morsels + target_claims - 1) / target_claims);
  }
  batch_morsels_ = batch;
  claim_rows_ = static_cast<uint64_t>(batch) * morsel_rows_;
  slots_ = morsels == 0 ? 0 : static_cast<size_t>((morsels + batch - 1) / batch);
}

bool MorselQueue::Next(Claim* out) {
  // skylint:allow(relaxed-ordering): atomicity-only claim counter. The
  // fetch_add's uniqueness gives this claim exclusive rows and an
  // exclusive reduction slot; the ordering edge that publishes slot
  // contents to the reducing caller is carried by ThreadPool's mutex_
  // (worker finishes task -> --in_flight_ under mutex_ -> Wait() returns),
  // the same protocol as the documented dominance-check harvest.
  const uint64_t claim = next_claim_.fetch_add(1, std::memory_order_relaxed);
  if (claim >= slots_) return false;
  out->slot = static_cast<size_t>(claim);
  out->begin = claim * claim_rows_;
  out->end = std::min<uint64_t>(n_, out->begin + claim_rows_);
  {
    MutexLock lock(mutex_);
    ++stats_.claims;
    stats_.rows += out->end - out->begin;
  }
  return true;
}

void RunMorsels(ThreadPool& pool, MorselQueue& queue,
                const std::function<void(const MorselQueue::Claim&)>& body,
                const std::function<void(const MorselQueue::Claim&)>* stall) {
  if (queue.slots() == 0) return;
  const auto drain = [&queue, &body, stall] {
    MorselQueue::Claim claim;
    while (queue.Next(&claim)) {
      if (stall != nullptr && *stall) (*stall)(claim);
      body(claim);
    }
  };
  const size_t workers = std::min(std::max<size_t>(1, pool.size()), queue.slots());
  std::vector<std::function<void()>> tasks(workers, std::function<void()>(drain));
  if (!pool.SubmitBatch(tasks)) drain();  // pool shutting down: finish inline
  pool.Wait();
}

}  // namespace skydiver
