#include "parallel/parallel_ops.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "common/mutex.h"
#include "core/dominance.h"
#include "kernels/tile_view.h"

namespace skydiver {

namespace {

// Folds pool-side dominance work into the calling thread's counters so that
// surrounding scopes (CheckScope, QueryContext stage accounting) observe it;
// returns the harvested total for the result struct.
uint64_t FoldHarvest(ThreadPool& pool) {
  const DominanceHarvest h = pool.HarvestDominanceChecks();
  DominanceCounter::Count() += h.total;
  DominanceCounter::TiledCount() += h.tiled;
  return h.total;
}

}  // namespace

SkylineResult ParallelSkyline(const DataView& view, ThreadPool& pool,
                              DomKernel kernel) {
  const uint64_t checks_before = DominanceCounter::Count();
  (void)pool.HarvestDominanceChecks();  // drop leftovers from earlier pool users
  const std::vector<RowId>& all = view.rows();
  const size_t shards = std::max<size_t>(1, pool.size());
  std::vector<std::vector<RowId>> locals(shards);

  // Phase 1: local skylines per shard. Each chunk is a contiguous slice of
  // the view's (ascending) row list; SkylineSFSRows works on the shared
  // view in place, so no per-shard dataset copies are made.
  {
    Mutex mu;
    size_t next_shard = 0;
    pool.ParallelFor(all.size(), shards, [&](uint64_t begin, uint64_t end) {
      auto local = SkylineSFSRows(
                       view,
                       std::span<const RowId>(all).subspan(begin, end - begin), kernel)
                       .rows;
      MutexLock lock(mu);
      locals[next_shard++] = std::move(local);
    });
  }
  FoldHarvest(pool);

  // Phase 2: merge — the union of local skylines is a superset of the
  // global skyline; one SFS pass over it finishes the job.
  std::vector<RowId> candidates;
  for (const auto& l : locals) candidates.insert(candidates.end(), l.begin(), l.end());
  std::sort(candidates.begin(), candidates.end());
  std::vector<RowId> out = SkylineSFSRows(view, candidates, kernel).rows;
  return SkylineResult{std::move(out), DominanceCounter::Count() - checks_before};
}

SkylineResult ParallelSkyline(const DataSet& data, ThreadPool& pool,
                              DomKernel kernel) {
  return ParallelSkyline(DataView(data), pool, kernel);
}

SkylineResult ShardedSkyline(const DataView& view, size_t shards, ThreadPool* pool,
                             DomKernel kernel) {
  if (pool == nullptr || shards <= 1 || view.empty()) {
    return SkylineSharded(view, shards, kernel);
  }
  const uint64_t checks_before = DominanceCounter::Count();
  (void)pool->HarvestDominanceChecks();  // drop leftovers from earlier pool users
  const std::vector<RowId>& all = view.rows();
  shards = std::clamp<size_t>(shards, 1, all.size());
  std::vector<std::vector<RowId>> locals(shards);

  // Shard phase on the pool; merge-order independence (the skyline of a
  // union is unique) makes the slot assignment immaterial to the result.
  {
    Mutex mu;
    size_t next_shard = 0;
    pool->ParallelFor(all.size(), shards, [&](uint64_t begin, uint64_t end) {
      auto local = SkylineSFSRows(
                       view,
                       std::span<const RowId>(all).subspan(begin, end - begin), kernel)
                       .rows;
      MutexLock lock(mu);
      locals[next_shard++] = std::move(local);
    });
  }
  FoldHarvest(*pool);

  // Merge phase: left-fold the local antichains with the cross-filter.
  std::vector<RowId> merged;
  for (auto& l : locals) {
    if (merged.empty()) {
      merged = std::move(l);
    } else if (!l.empty()) {
      merged = CrossFilterMerge(view, merged, l, kernel);
    }
  }
  std::sort(merged.begin(), merged.end());
  return SkylineResult{std::move(merged), DominanceCounter::Count() - checks_before};
}

Result<SigGenResult> ParallelSigGenIF(const DataSet& data,
                                      const std::vector<RowId>& skyline,
                                      const MinHashFamily& family, ThreadPool& pool,
                                      DomKernel kernel) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (skyline.empty()) return Status::InvalidArgument("skyline set is empty");
  if (family.prime() <= data.size()) {
    return Status::InvalidArgument("hash family prime must exceed the dataset size");
  }
  const size_t t = family.size();
  const size_t m = skyline.size();
  const RowId n = data.size();
  for (RowId s : skyline) {
    if (s >= n) return Status::InvalidArgument("skyline row out of range");
  }
  kernel = EffectiveKernel(kernel, m);
  const uint64_t checks_before = DominanceCounter::Count();
  (void)pool.HarvestDominanceChecks();  // drop leftovers from earlier pool users

  std::vector<bool> is_skyline(n, false);
  for (RowId s : skyline) is_skyline[s] = true;

  // Shared read-only tiling of the skyline columns (tile ids = column
  // index j), built once and swept by every shard under a batched kernel.
  TileSet sky_tiles(data.dims());
  if (IsBatched(kernel)) {
    for (size_t j = 0; j < m; ++j) {
      sky_tiles.Append(static_cast<RowId>(j), data.row(skyline[j]));
    }
  }
  // Shards only read the tiling; freezing makes that contract explicit and
  // turns an accidental cross-thread mutation into a debug-build abort.
  sky_tiles.Freeze();

  const size_t shards = std::max<size_t>(1, pool.size());
  std::vector<SignatureMatrix> shard_sig(shards, SignatureMatrix(t, m));
  std::vector<std::vector<uint64_t>> shard_scores(shards,
                                                  std::vector<uint64_t>(m, 0));

  Mutex mu;
  size_t shard_counter = 0;
  pool.ParallelFor(n, shards, [&](uint64_t begin, uint64_t end) {
    size_t my_shard;
    {
      MutexLock lock(mu);
      my_shard = shard_counter++;
    }
    SignatureMatrix& sig = shard_sig[my_shard];
    std::vector<uint64_t>& scores = shard_scores[my_shard];
    std::vector<uint64_t> row_hash(t);
    const DominanceKernel batch(kernel);
    for (uint64_t r = begin; r < end; ++r) {
      if (is_skyline[r]) continue;
      const auto point = data.row(static_cast<RowId>(r));
      bool hashed = false;
      if (IsBatched(kernel)) {
        for (const Tile& tile : sky_tiles.tiles()) {
          uint64_t mask = batch.FilterDominators(point, tile.view());
          while (mask != 0) {
            const int bit = std::countr_zero(mask);
            mask &= mask - 1;
            const size_t j = tile.id(static_cast<size_t>(bit));
            ++scores[j];
            if (!hashed) {
              for (size_t i = 0; i < t; ++i) row_hash[i] = family.Apply(i, r);
              hashed = true;
            }
            for (size_t i = 0; i < t; ++i) sig.UpdateMin(j, i, row_hash[i]);
          }
        }
        continue;
      }
      for (size_t j = 0; j < m; ++j) {
        if (!Dominates(data.row(skyline[j]), point)) continue;
        ++scores[j];
        if (!hashed) {
          for (size_t i = 0; i < t; ++i) row_hash[i] = family.Apply(i, r);
          hashed = true;
        }
        for (size_t i = 0; i < t; ++i) sig.UpdateMin(j, i, row_hash[i]);
      }
    }
  });
  FoldHarvest(pool);

  // Min-merge shard matrices; add shard scores.
  SigGenResult out;
  out.signatures = SignatureMatrix(t, m);
  out.domination_scores.assign(m, 0);
  for (size_t s = 0; s < shards; ++s) {
    for (size_t j = 0; j < m; ++j) {
      out.domination_scores[j] += shard_scores[s][j];
      for (size_t i = 0; i < t; ++i) {
        out.signatures.UpdateMin(j, i, shard_sig[s].at(j, i));
      }
    }
  }
  const uint64_t pages = SequentialScanPages(n, data.dims(), 4096);
  out.io.page_reads = pages;
  out.io.page_faults = pages;
  out.dominance_checks = DominanceCounter::Count() - checks_before;
  return out;
}

namespace {

// One unit of parallel IB work: either a subtree with its dominance
// context (page valid), or a pure range update over `count` row ids for
// a subtree that needs no descent (page == kInvalidPageId).
struct IbTask {
  PageId page = kInvalidPageId;
  uint64_t base = 0;               // first row id of this subtree
  uint64_t count = 0;              // range length for pure range updates
  std::vector<size_t> full;        // columns dominating the whole subtree
  std::vector<size_t> candidates;  // columns partially dominating it
};

// Per-worker state for the recursive subtree processing.
struct IbWorker {
  SignatureMatrix signatures;
  std::vector<uint64_t> scores;
  uint64_t pages_read = 0;

  IbWorker(size_t t, size_t m) : signatures(t, m), scores(m, 0) {}
};

// Applies `count` consecutive row ids starting at `base` to all columns in
// `full` of the worker's local matrix.
void IbRangeUpdate(const MinHashFamily& family, uint64_t base, uint64_t count,
                   const std::vector<size_t>& full, IbWorker* worker) {
  if (full.empty() || count == 0) return;
  const size_t t = family.size();
  const uint64_t prime = family.prime();
  thread_local std::vector<uint64_t> range_min;
  range_min.resize(t);
  for (size_t i = 0; i < t; ++i) {
    const uint64_t step = family.StepOf(i);
    uint64_t v = family.Apply(i, base);
    uint64_t mn = v;
    for (uint64_t c = 1; c < count; ++c) {
      v += step;
      if (v >= prime) v -= prime;
      if (v < mn) mn = v;
    }
    range_min[i] = mn;
  }
  for (size_t j : full) {
    worker->scores[j] += count;
    for (size_t i = 0; i < t; ++i) worker->signatures.UpdateMin(j, i, range_min[i]);
  }
}

// Processes one subtree recursively against the candidate columns; row-id
// ranges come from the DFS prefix sums of the entry counts.
void IbProcessSubtree(const DataSet& data, const std::vector<std::span<const Coord>>& sky,
                      const MinHashFamily& family, const RTree& tree,
                      const IbTask& task, IbWorker* worker) {
  const RTreeNode& node = tree.PeekNode(task.page);
  ++worker->pages_read;
  uint64_t offset = task.base;
  std::vector<size_t> full;
  std::vector<size_t> partial;
  for (const auto& e : node.entries) {
    if (node.is_leaf) {
      full = task.full;
      for (size_t j : task.candidates) {
        if (Dominates(sky[j], e.mbr.lo())) full.push_back(j);
      }
      IbRangeUpdate(family, offset, 1, full, worker);
      offset += 1;
      continue;
    }
    full = task.full;
    partial.clear();
    for (size_t j : task.candidates) {
      if (e.mbr.FullyDominatedBy(sky[j])) {
        full.push_back(j);
      } else if (e.mbr.UpperCornerDominatedBy(sky[j])) {
        partial.push_back(j);
      }
    }
    if (partial.empty()) {
      IbRangeUpdate(family, offset, e.count, full, worker);
    } else {
      IbProcessSubtree(data, sky, family, tree,
                       IbTask{e.child, offset, 0, full, partial}, worker);
    }
    offset += e.count;
  }
}

}  // namespace

Result<SigGenResult> ParallelSigGenIB(const DataSet& data,
                                      const std::vector<RowId>& skyline,
                                      const MinHashFamily& family, const RTree& tree,
                                      ThreadPool& pool) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (skyline.empty()) return Status::InvalidArgument("skyline set is empty");
  if (family.prime() <= data.size()) {
    return Status::InvalidArgument("hash family prime must exceed the dataset size");
  }
  if (tree.dims() != data.dims() || tree.size() != data.size()) {
    return Status::InvalidArgument("R-tree does not index the given dataset");
  }
  const size_t t = family.size();
  const size_t m = skyline.size();
  for (RowId s : skyline) {
    if (s >= data.size()) return Status::InvalidArgument("skyline row out of range");
  }
  std::vector<std::span<const Coord>> sky(m);
  for (size_t j = 0; j < m; ++j) sky[j] = data.row(skyline[j]);
  const uint64_t checks_before = DominanceCounter::Count();
  (void)pool.HarvestDominanceChecks();  // drop leftovers from earlier pool users

  // Split the tree's top levels into tasks with DFS base offsets, until
  // there are enough tasks to feed the pool (or nothing is expandable).
  std::vector<IbTask> tasks;
  {
    std::vector<size_t> all(m);
    for (size_t j = 0; j < m; ++j) all[j] = j;
    tasks.push_back(IbTask{tree.root(), 0, 0, {}, std::move(all)});
    bool expanded = true;
    while (expanded && tasks.size() < 4 * std::max<size_t>(1, pool.size())) {
      expanded = false;
      std::vector<IbTask> next;
      next.reserve(tasks.size() * 4);
      for (IbTask& task : tasks) {
        if (task.page == kInvalidPageId) {
          next.push_back(std::move(task));  // pure range update: nothing to expand
          continue;
        }
        const RTreeNode& node = tree.PeekNode(task.page);
        if (node.is_leaf) {
          next.push_back(std::move(task));  // per-point work stays one task
          continue;
        }
        expanded = true;
        uint64_t offset = task.base;
        for (const auto& e : node.entries) {
          std::vector<size_t> full = task.full;
          std::vector<size_t> partial;
          for (size_t j : task.candidates) {
            if (e.mbr.FullyDominatedBy(sky[j])) {
              full.push_back(j);
            } else if (e.mbr.UpperCornerDominatedBy(sky[j])) {
              partial.push_back(j);
            }
          }
          if (partial.empty()) {
            next.push_back(
                IbTask{kInvalidPageId, offset, e.count, std::move(full), {}});
          } else {
            next.push_back(
                IbTask{e.child, offset, 0, std::move(full), std::move(partial)});
          }
          offset += e.count;
        }
      }
      tasks = std::move(next);
    }
  }

  // Workers.
  const size_t shards = std::max<size_t>(1, pool.size());
  std::vector<IbWorker> workers;
  workers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) workers.emplace_back(t, m);
  std::atomic<size_t> next_task{0};
  std::atomic<size_t> next_worker{0};
  for (size_t s = 0; s < shards; ++s) {
    const bool submitted = pool.Submit([&] {
      const size_t my_id = next_worker.fetch_add(1);
      IbWorker& worker = workers[my_id];
      for (;;) {
        const size_t idx = next_task.fetch_add(1);
        if (idx >= tasks.size()) return;
        const IbTask& task = tasks[idx];
        if (task.page == kInvalidPageId) {
          IbRangeUpdate(family, task.base, task.count, task.full, &worker);
        } else {
          IbProcessSubtree(data, sky, family, tree, task, &worker);
        }
      }
    });
    if (!submitted) break;  // pool shutting down; completed work still merges
  }
  pool.Wait();
  FoldHarvest(pool);

  SigGenResult out;
  out.signatures = SignatureMatrix(t, m);
  out.domination_scores.assign(m, 0);
  for (const IbWorker& worker : workers) {
    for (size_t j = 0; j < m; ++j) {
      out.domination_scores[j] += worker.scores[j];
      for (size_t i = 0; i < t; ++i) {
        out.signatures.UpdateMin(j, i, worker.signatures.at(j, i));
      }
    }
  }
  uint64_t pages = 0;
  for (const IbWorker& worker : workers) pages += worker.pages_read;
  out.io.page_reads = pages;
  out.dominance_checks = DominanceCounter::Count() - checks_before;
  return out;
}

}  // namespace skydiver
