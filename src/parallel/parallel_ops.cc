#include "parallel/parallel_ops.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>

#include "common/mutex.h"
#include "core/dominance.h"
#include "kernels/tile_view.h"
#include "parallel/morsel.h"

namespace skydiver {

namespace {

// Folds pool-side dominance work into the calling thread's counters so that
// surrounding scopes (CheckScope, QueryContext stage accounting) observe it;
// returns the harvested total for the result struct.
uint64_t FoldHarvest(ThreadPool& pool) {
  const DominanceHarvest h = pool.HarvestDominanceChecks();
  DominanceCounter::Count() += h.total;
  DominanceCounter::TiledCount() += h.tiled;
  return h.total;
}

}  // namespace

SkylineResult ParallelSkyline(const DataView& view, ThreadPool& pool,
                              DomKernel kernel, size_t morsel_rows) {
  const uint64_t checks_before = DominanceCounter::Count();
  (void)pool.HarvestDominanceChecks();  // drop leftovers from earlier pool users
  const std::vector<RowId>& all = view.rows();

  // Phase 1: local skylines per claim. Each claim is a contiguous slice of
  // the view's (ascending) row list; SkylineSFSRows works on the shared
  // view in place, so no per-shard dataset copies are made. Slots index
  // the claims (pure function of the row range), so the fold below is
  // scheduling-independent.
  MorselConfig cfg;
  cfg.morsel_rows = morsel_rows;
  MorselQueue queue(all.size(), pool.size(), cfg);
  std::vector<std::vector<RowId>> locals(queue.slots());
  RunMorsels(pool, queue, [&](const MorselQueue::Claim& c) {
    locals[c.slot] =
        SkylineSFSRows(view,
                       std::span<const RowId>(all).subspan(
                           static_cast<size_t>(c.begin),
                           static_cast<size_t>(c.end - c.begin)),
                       kernel)
            .rows;
  });
  FoldHarvest(pool);

  // Phase 2: merge — the union of local skylines is a superset of the
  // global skyline; one SFS pass over it finishes the job.
  std::vector<RowId> candidates;
  for (const auto& l : locals) candidates.insert(candidates.end(), l.begin(), l.end());
  std::sort(candidates.begin(), candidates.end());
  std::vector<RowId> out = SkylineSFSRows(view, candidates, kernel).rows;
  return SkylineResult{std::move(out), DominanceCounter::Count() - checks_before};
}

SkylineResult ParallelSkyline(const DataSet& data, ThreadPool& pool,
                              DomKernel kernel, size_t morsel_rows) {
  return ParallelSkyline(DataView(data), pool, kernel, morsel_rows);
}

SkylineResult ShardedSkyline(const DataView& view, size_t shards, ThreadPool* pool,
                             DomKernel kernel) {
  if (pool == nullptr || shards <= 1 || view.empty()) {
    return SkylineSharded(view, shards, kernel);
  }
  const uint64_t checks_before = DominanceCounter::Count();
  (void)pool->HarvestDominanceChecks();  // drop leftovers from earlier pool users
  const std::vector<RowId>& all = view.rows();
  shards = std::clamp<size_t>(shards, 1, all.size());
  // SkylineSharded's exact chunking (ceil-sized chunks, short tail), so the
  // per-shard inputs — and with them the dominance-check tally — match the
  // serial backend, not just the merged row set.
  const size_t chunk = (all.size() + shards - 1) / shards;
  const size_t populated = (all.size() + chunk - 1) / chunk;
  std::vector<std::vector<RowId>> locals(populated);

  // Shard phase on the pool: the claim unit is one shard (morsel_rows = 1,
  // batch = 1 over [0, populated)), so slot == shard id and the merge below
  // folds in shard order — the result set is order-independent (the
  // skyline of a union is unique), but a fixed fold order also makes the
  // dominance-check tally deterministic.
  MorselConfig cfg;
  cfg.morsel_rows = 1;
  cfg.batch_morsels = 1;
  MorselQueue queue(populated, pool->size(), cfg);
  RunMorsels(*pool, queue, [&](const MorselQueue::Claim& c) {
    const size_t s = c.slot;
    const size_t begin = s * chunk;
    const size_t end = std::min(begin + chunk, all.size());
    locals[s] = SkylineSFSRows(
                    view, std::span<const RowId>(all).subspan(begin, end - begin),
                    kernel)
                    .rows;
  });
  FoldHarvest(*pool);

  // Merge phase: left-fold the local antichains with the cross-filter.
  std::vector<RowId> merged;
  for (auto& l : locals) {
    if (merged.empty()) {
      merged = std::move(l);
    } else if (!l.empty()) {
      merged = CrossFilterMerge(view, merged, l, kernel);
    }
  }
  std::sort(merged.begin(), merged.end());
  return SkylineResult{std::move(merged), DominanceCounter::Count() - checks_before};
}

Result<SigGenResult> ParallelSigGenIF(const DataSet& data,
                                      const std::vector<RowId>& skyline,
                                      const MinHashFamily& family, ThreadPool& pool,
                                      DomKernel kernel, size_t morsel_rows) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (skyline.empty()) return Status::InvalidArgument("skyline set is empty");
  if (family.prime() <= data.size()) {
    return Status::InvalidArgument("hash family prime must exceed the dataset size");
  }
  const size_t t = family.size();
  const size_t m = skyline.size();
  const RowId n = data.size();
  for (RowId s : skyline) {
    if (s >= n) return Status::InvalidArgument("skyline row out of range");
  }
  kernel = EffectiveKernel(kernel, m);
  const uint64_t checks_before = DominanceCounter::Count();
  (void)pool.HarvestDominanceChecks();  // drop leftovers from earlier pool users

  std::vector<bool> is_skyline(n, false);
  for (RowId s : skyline) is_skyline[s] = true;

  // Shared read-only tiling of the skyline columns (tile ids = column
  // index j), built once and swept by every shard under a batched kernel.
  TileSet sky_tiles(data.dims());
  if (IsBatched(kernel)) {
    for (size_t j = 0; j < m; ++j) {
      sky_tiles.Append(static_cast<RowId>(j), data.row(skyline[j]));
    }
  }
  // Shards only read the tiling; freezing makes that contract explicit and
  // turns an accidental cross-thread mutation into a debug-build abort.
  sky_tiles.Freeze();

  // One reduction slot per claim (a batch of consecutive morsels — see
  // parallel/morsel.h); the auto batch size bounds the per-slot t x m
  // matrices to ~kClaimsPerWorker x pool size.
  MorselConfig cfg;
  cfg.morsel_rows = morsel_rows;
  MorselQueue queue(n, pool.size(), cfg);
  const size_t slots = queue.slots();
  std::vector<SignatureMatrix> slot_sig(slots, SignatureMatrix(t, m));
  std::vector<std::vector<uint64_t>> slot_scores(slots,
                                                 std::vector<uint64_t>(m, 0));

  RunMorsels(pool, queue, [&](const MorselQueue::Claim& c) {
    SignatureMatrix& sig = slot_sig[c.slot];
    std::vector<uint64_t>& scores = slot_scores[c.slot];
    std::vector<uint64_t> row_hash(t);
    const DominanceKernel batch(kernel);
    for (uint64_t r = c.begin; r < c.end; ++r) {
      if (is_skyline[r]) continue;
      const auto point = data.row(static_cast<RowId>(r));
      bool hashed = false;
      if (IsBatched(kernel)) {
        for (const Tile& tile : sky_tiles.tiles()) {
          uint64_t mask = batch.FilterDominators(point, tile.view());
          while (mask != 0) {
            const int bit = std::countr_zero(mask);
            mask &= mask - 1;
            const size_t j = tile.id(static_cast<size_t>(bit));
            ++scores[j];
            if (!hashed) {
              for (size_t i = 0; i < t; ++i) row_hash[i] = family.Apply(i, r);
              hashed = true;
            }
            for (size_t i = 0; i < t; ++i) sig.UpdateMin(j, i, row_hash[i]);
          }
        }
        continue;
      }
      for (size_t j = 0; j < m; ++j) {
        if (!Dominates(data.row(skyline[j]), point)) continue;
        ++scores[j];
        if (!hashed) {
          for (size_t i = 0; i < t; ++i) row_hash[i] = family.Apply(i, r);
          hashed = true;
        }
        for (size_t i = 0; i < t; ++i) sig.UpdateMin(j, i, row_hash[i]);
      }
    }
  });
  FoldHarvest(pool);

  // Min-merge slot matrices in ascending slot order; add slot scores.
  // (MinHash minima and sums are associative/commutative, so any order
  // yields the serial result — the fixed order is belt-and-braces and
  // keeps this loop trivially auditable against the determinism bar.)
  SigGenResult out;
  out.signatures = SignatureMatrix(t, m);
  out.domination_scores.assign(m, 0);
  for (size_t s = 0; s < slots; ++s) {
    for (size_t j = 0; j < m; ++j) {
      out.domination_scores[j] += slot_scores[s][j];
      for (size_t i = 0; i < t; ++i) {
        out.signatures.UpdateMin(j, i, slot_sig[s].at(j, i));
      }
    }
  }
  const uint64_t pages = SequentialScanPages(n, data.dims(), 4096);
  out.io.page_reads = pages;
  out.io.page_faults = pages;
  out.dominance_checks = DominanceCounter::Count() - checks_before;
  return out;
}

namespace {

// One unit of parallel IB work: either a subtree with its dominance
// context (page valid), or a pure range update over `count` row ids for
// a subtree that needs no descent (page == kInvalidPageId).
struct IbTask {
  PageId page = kInvalidPageId;
  uint64_t base = 0;               // first row id of this subtree
  uint64_t count = 0;              // range length for pure range updates
  std::vector<size_t> full;        // columns dominating the whole subtree
  std::vector<size_t> candidates;  // columns partially dominating it
};

// Per-worker state for the recursive subtree processing.
struct IbWorker {
  SignatureMatrix signatures;
  std::vector<uint64_t> scores;
  uint64_t pages_read = 0;

  IbWorker(size_t t, size_t m) : signatures(t, m), scores(m, 0) {}
};

// Applies `count` consecutive row ids starting at `base` to all columns in
// `full` of the worker's local matrix.
void IbRangeUpdate(const MinHashFamily& family, uint64_t base, uint64_t count,
                   const std::vector<size_t>& full, IbWorker* worker) {
  if (full.empty() || count == 0) return;
  const size_t t = family.size();
  const uint64_t prime = family.prime();
  thread_local std::vector<uint64_t> range_min;
  range_min.resize(t);
  for (size_t i = 0; i < t; ++i) {
    const uint64_t step = family.StepOf(i);
    uint64_t v = family.Apply(i, base);
    uint64_t mn = v;
    for (uint64_t c = 1; c < count; ++c) {
      v += step;
      if (v >= prime) v -= prime;
      if (v < mn) mn = v;
    }
    range_min[i] = mn;
  }
  for (size_t j : full) {
    worker->scores[j] += count;
    for (size_t i = 0; i < t; ++i) worker->signatures.UpdateMin(j, i, range_min[i]);
  }
}

// Processes one subtree recursively against the candidate columns; row-id
// ranges come from the DFS prefix sums of the entry counts.
void IbProcessSubtree(const DataSet& data, const std::vector<std::span<const Coord>>& sky,
                      const MinHashFamily& family, const RTree& tree,
                      const IbTask& task, IbWorker* worker) {
  const RTreeNode& node = tree.PeekNode(task.page);
  ++worker->pages_read;
  uint64_t offset = task.base;
  std::vector<size_t> full;
  std::vector<size_t> partial;
  for (const auto& e : node.entries) {
    if (node.is_leaf) {
      full = task.full;
      for (size_t j : task.candidates) {
        if (Dominates(sky[j], e.mbr.lo())) full.push_back(j);
      }
      IbRangeUpdate(family, offset, 1, full, worker);
      offset += 1;
      continue;
    }
    full = task.full;
    partial.clear();
    for (size_t j : task.candidates) {
      if (e.mbr.FullyDominatedBy(sky[j])) {
        full.push_back(j);
      } else if (e.mbr.UpperCornerDominatedBy(sky[j])) {
        partial.push_back(j);
      }
    }
    if (partial.empty()) {
      IbRangeUpdate(family, offset, e.count, full, worker);
    } else {
      IbProcessSubtree(data, sky, family, tree,
                       IbTask{e.child, offset, 0, full, partial}, worker);
    }
    offset += e.count;
  }
}

}  // namespace

Result<SigGenResult> ParallelSigGenIB(const DataSet& data,
                                      const std::vector<RowId>& skyline,
                                      const MinHashFamily& family, const RTree& tree,
                                      ThreadPool& pool) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (skyline.empty()) return Status::InvalidArgument("skyline set is empty");
  if (family.prime() <= data.size()) {
    return Status::InvalidArgument("hash family prime must exceed the dataset size");
  }
  if (tree.dims() != data.dims() || tree.size() != data.size()) {
    return Status::InvalidArgument("R-tree does not index the given dataset");
  }
  const size_t t = family.size();
  const size_t m = skyline.size();
  for (RowId s : skyline) {
    if (s >= data.size()) return Status::InvalidArgument("skyline row out of range");
  }
  std::vector<std::span<const Coord>> sky(m);
  for (size_t j = 0; j < m; ++j) sky[j] = data.row(skyline[j]);
  const uint64_t checks_before = DominanceCounter::Count();
  (void)pool.HarvestDominanceChecks();  // drop leftovers from earlier pool users

  // Split the tree's top levels into tasks with DFS base offsets, until
  // there are enough tasks to feed the pool (or nothing is expandable).
  std::vector<IbTask> tasks;
  {
    std::vector<size_t> all(m);
    for (size_t j = 0; j < m; ++j) all[j] = j;
    tasks.push_back(IbTask{tree.root(), 0, 0, {}, std::move(all)});
    bool expanded = true;
    while (expanded && tasks.size() < 4 * std::max<size_t>(1, pool.size())) {
      expanded = false;
      std::vector<IbTask> next;
      next.reserve(tasks.size() * 4);
      for (IbTask& task : tasks) {
        if (task.page == kInvalidPageId) {
          next.push_back(std::move(task));  // pure range update: nothing to expand
          continue;
        }
        const RTreeNode& node = tree.PeekNode(task.page);
        if (node.is_leaf) {
          next.push_back(std::move(task));  // per-point work stays one task
          continue;
        }
        expanded = true;
        uint64_t offset = task.base;
        for (const auto& e : node.entries) {
          std::vector<size_t> full = task.full;
          std::vector<size_t> partial;
          for (size_t j : task.candidates) {
            if (e.mbr.FullyDominatedBy(sky[j])) {
              full.push_back(j);
            } else if (e.mbr.UpperCornerDominatedBy(sky[j])) {
              partial.push_back(j);
            }
          }
          if (partial.empty()) {
            next.push_back(
                IbTask{kInvalidPageId, offset, e.count, std::move(full), {}});
          } else {
            next.push_back(
                IbTask{e.child, offset, 0, std::move(full), std::move(partial)});
          }
          offset += e.count;
        }
      }
      tasks = std::move(next);
    }
  }

  // Workers.
  const size_t shards = std::max<size_t>(1, pool.size());
  std::vector<IbWorker> workers;
  workers.reserve(shards);
  for (size_t s = 0; s < shards; ++s) workers.emplace_back(t, m);
  std::atomic<size_t> next_task{0};
  std::atomic<size_t> next_worker{0};
  for (size_t s = 0; s < shards; ++s) {
    const bool submitted = pool.Submit([&] {
      const size_t my_id = next_worker.fetch_add(1);
      IbWorker& worker = workers[my_id];
      for (;;) {
        const size_t idx = next_task.fetch_add(1);
        if (idx >= tasks.size()) return;
        const IbTask& task = tasks[idx];
        if (task.page == kInvalidPageId) {
          IbRangeUpdate(family, task.base, task.count, task.full, &worker);
        } else {
          IbProcessSubtree(data, sky, family, tree, task, &worker);
        }
      }
    });
    if (!submitted) break;  // pool shutting down; completed work still merges
  }
  pool.Wait();
  FoldHarvest(pool);

  SigGenResult out;
  out.signatures = SignatureMatrix(t, m);
  out.domination_scores.assign(m, 0);
  for (const IbWorker& worker : workers) {
    for (size_t j = 0; j < m; ++j) {
      out.domination_scores[j] += worker.scores[j];
      for (size_t i = 0; i < t; ++i) {
        out.signatures.UpdateMin(j, i, worker.signatures.at(j, i));
      }
    }
  }
  uint64_t pages = 0;
  for (const IbWorker& worker : workers) pages += worker.pages_read;
  out.io.page_reads = pages;
  out.dominance_checks = DominanceCounter::Count() - checks_before;
  return out;
}

namespace {

// Per-slot argmax state for one selection round. Initialized exactly like
// the serial scan's running best (index m, -inf distance and score), so
// folding slots in ascending order with the serial loop's strict
// comparisons reproduces the serial ascending scan bit for bit.
struct SelectionBest {
  size_t index;
  double dist;
  double score;
};

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

Result<DispersionResult> ParallelSelectDiverseSet(size_t m, size_t k,
                                                  const DistanceFn& distance,
                                                  const ScoreFn& score,
                                                  ThreadPool& pool,
                                                  size_t morsel_rows) {
  // Mirror SelectDiverseSet's validation (messages included) so callers
  // can switch between the two paths without changing error handling.
  if (m == 0) return Status::InvalidArgument("no skyline points to select from");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > m) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds skyline cardinality m = " + std::to_string(m));
  }
  DispersionResult out;
  out.selected.reserve(k);

  MorselConfig cfg;
  cfg.morsel_rows = morsel_rows;

  // Written by the coordinator between rounds, read by workers during a
  // round; deliberately uint8_t (vector<bool> packs bits, whose word-level
  // writes would be a race if the flag were ever set mid-round).
  std::vector<uint8_t> taken(m, 0);
  // Cached minimum distance from each unselected point to the selected set
  // (the paper's "boosted SG"). Entry i is written only by the one claim
  // whose range contains i; cross-round visibility rides the pool's mutex
  // (task completion -> Wait() -> next round's SubmitBatch).
  std::vector<double> min_dist(m, std::numeric_limits<double>::infinity());

  // Seed round: morsel argmax of the score, first index wins on ties —
  // identical to the serial MaxScoreIndex ascending scan.
  {
    MorselQueue queue(m, pool.size(), cfg);
    std::vector<SelectionBest> bests(queue.slots());
    RunMorsels(pool, queue, [&](const MorselQueue::Claim& c) {
      SelectionBest best{static_cast<size_t>(c.begin), score(c.begin), 0.0};
      for (uint64_t i = c.begin + 1; i < c.end; ++i) {
        const double s = score(i);
        if (s > best.dist) {  // dist doubles as the seed's score key
          best.dist = s;
          best.index = static_cast<size_t>(i);
        }
      }
      bests[c.slot] = best;
    });
    SelectionBest seed = bests[0];
    for (size_t s = 1; s < bests.size(); ++s) {
      if (bests[s].dist > seed.dist) seed = bests[s];
    }
    out.selected.push_back(seed.index);
    taken[seed.index] = 1;
  }
  out.min_pairwise = std::numeric_limits<double>::infinity();

  while (out.selected.size() < k) {
    const size_t newest = out.selected.back();
    // Refresh caches against the newest member, then pick the argmax of the
    // cached min distance; ties resolved by domination score, then by the
    // lowest index (the strict comparisons keep the first winner, within a
    // slot and across the ascending fold alike).
    MorselQueue queue(m, pool.size(), cfg);
    std::vector<SelectionBest> bests(queue.slots(), SelectionBest{m, kNegInf, kNegInf});
    std::vector<uint64_t> evals(queue.slots(), 0);
    RunMorsels(pool, queue, [&](const MorselQueue::Claim& c) {
      SelectionBest best{m, kNegInf, kNegInf};
      uint64_t local_evals = 0;
      for (uint64_t i = c.begin; i < c.end; ++i) {
        if (taken[i] != 0) continue;
        const double d = distance(i, newest);
        ++local_evals;
        if (d < min_dist[i]) min_dist[i] = d;
        const double s = score(i);
        if (min_dist[i] > best.dist || (min_dist[i] == best.dist && s > best.score)) {
          best.index = static_cast<size_t>(i);
          best.dist = min_dist[i];
          best.score = s;
        }
      }
      bests[c.slot] = best;
      evals[c.slot] = local_evals;
    });
    SelectionBest round{m, kNegInf, kNegInf};
    for (size_t s = 0; s < bests.size(); ++s) {
      out.distance_evaluations += evals[s];
      const SelectionBest& b = bests[s];
      if (b.dist > round.dist || (b.dist == round.dist && b.score > round.score)) {
        round = b;
      }
    }
    out.selected.push_back(round.index);
    taken[round.index] = 1;
    out.min_pairwise = std::min(out.min_pairwise, round.dist);
  }
  if (k < 2) out.min_pairwise = 0.0;
  return out;
}

Result<DispersionResult> ParallelSelectDiverseSet(
    size_t m, size_t k, const DistanceFn& distance,
    const std::vector<uint64_t>& domination_scores, ThreadPool& pool,
    size_t morsel_rows) {
  if (domination_scores.size() < m) {
    return Status::InvalidArgument("domination scores cover " +
                                   std::to_string(domination_scores.size()) +
                                   " points but m = " + std::to_string(m));
  }
  return ParallelSelectDiverseSet(
      m, k, distance,
      [&](size_t j) { return static_cast<double>(domination_scores[j]); }, pool,
      morsel_rows);
}

}  // namespace skydiver
