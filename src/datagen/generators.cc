#include "datagen/generators.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/rng.h"

namespace skydiver {

namespace {

// Approximately normal value in (0,1), mean 0.5 — the sum-of-12-uniforms
// "peak" trick used by the original skyline benchmark generator.
double RandomPeak(Rng& rng) {
  double v = 0.0;
  for (int i = 0; i < 12; ++i) v += rng.NextDouble();
  return v / 12.0;
}

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

Result<WorkloadKind> ParseWorkloadKind(const std::string& name) {
  std::string up;
  up.reserve(name.size());
  for (char c : name) up.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  if (up == "IND" || up == "INDEPENDENT" || up == "UNIFORM") return WorkloadKind::kIndependent;
  if (up == "CORR" || up == "CORRELATED") return WorkloadKind::kCorrelated;
  if (up == "ANT" || up == "ANTI" || up == "ANTICORRELATED") return WorkloadKind::kAnticorrelated;
  if (up == "CLUSTER" || up == "CLUSTERED") return WorkloadKind::kClustered;
  if (up == "FC" || up == "FORESTCOVER") return WorkloadKind::kForestCoverLike;
  if (up == "REC" || up == "RECIPES") return WorkloadKind::kRecipesLike;
  return Status::InvalidArgument("unknown workload '" + name + "'");
}

std::string WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kIndependent: return "IND";
    case WorkloadKind::kCorrelated: return "CORR";
    case WorkloadKind::kAnticorrelated: return "ANT";
    case WorkloadKind::kClustered: return "CLUSTER";
    case WorkloadKind::kForestCoverLike: return "FC";
    case WorkloadKind::kRecipesLike: return "REC";
  }
  return "?";
}

RowId DefaultCardinality(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kForestCoverLike: return 581012;  // UCI Forest Cover size
    case WorkloadKind::kRecipesLike: return 365000;      // Recipes crawl size
    default: return 5000000;                             // paper synthetic default
  }
}

DataSet GenerateIndependent(RowId n, Dim d, uint64_t seed) {
  Rng rng(seed);
  std::vector<Coord> values;
  values.reserve(static_cast<size_t>(n) * d);
  for (RowId r = 0; r < n; ++r) {
    for (Dim i = 0; i < d; ++i) values.push_back(rng.NextDouble());
  }
  return DataSet(d, std::move(values));
}

DataSet GenerateCorrelated(RowId n, Dim d, uint64_t seed) {
  Rng rng(seed);
  std::vector<Coord> values;
  values.reserve(static_cast<size_t>(n) * d);
  for (RowId r = 0; r < n; ++r) {
    const double v = RandomPeak(rng);
    // Spread each attribute around the diagonal position v; the spread
    // shrinks near the domain borders so values stay in [0,1].
    const double l = v <= 0.5 ? v : 1.0 - v;
    for (Dim i = 0; i < d; ++i) {
      const double h = (RandomPeak(rng) - 0.5) * l;
      values.push_back(Clamp01(v + h));
    }
  }
  return DataSet(d, std::move(values));
}

DataSet GenerateAnticorrelated(RowId n, Dim d, uint64_t seed) {
  Rng rng(seed);
  std::vector<Coord> values;
  values.reserve(static_cast<size_t>(n) * d);
  std::vector<double> x(d);
  for (RowId r = 0; r < n; ++r) {
    // Place the point near the hyperplane sum(x_i) = d * v, v ≈ N(0.5, ·):
    // start on the diagonal and run random mass transfers between dimension
    // pairs, which preserves the sum and creates negative correlation.
    const double v = RandomPeak(rng);
    std::fill(x.begin(), x.end(), v);
    const int transfers = static_cast<int>(d) * 2;
    for (int t = 0; t < transfers; ++t) {
      const Dim i = static_cast<Dim>(rng.NextBounded(d));
      const Dim j = static_cast<Dim>(rng.NextBounded(d));
      if (i == j) continue;
      const double headroom = std::min(1.0 - x[i], x[j]);
      if (headroom <= 0.0) continue;
      const double delta = rng.NextDouble() * headroom;
      x[i] += delta;
      x[j] -= delta;
    }
    for (Dim i = 0; i < d; ++i) values.push_back(Clamp01(x[i]));
  }
  return DataSet(d, std::move(values));
}

DataSet GenerateClustered(RowId n, Dim d, uint64_t seed, uint32_t clusters,
                          double cluster_stddev) {
  Rng rng(seed);
  std::vector<double> centers(static_cast<size_t>(clusters) * d);
  for (auto& c : centers) c = rng.NextDouble();
  std::vector<Coord> values;
  values.reserve(static_cast<size_t>(n) * d);
  for (RowId r = 0; r < n; ++r) {
    const size_t c = rng.NextBounded(clusters);
    for (Dim i = 0; i < d; ++i) {
      values.push_back(Clamp01(centers[c * d + i] + rng.NextGaussian(0.0, cluster_stddev)));
    }
  }
  return DataSet(d, std::move(values));
}

DataSet GenerateForestCoverLike(RowId n, Dim d, uint64_t seed) {
  Rng rng(seed);
  constexpr uint32_t kCoverTypes = 7;  // Forest Cover has 7 cover types
  // Cluster centers correlated along a terrain gradient: higher "elevation"
  // clusters have correlated shifts on the other cartographic attributes.
  std::vector<double> centers(static_cast<size_t>(kCoverTypes) * d);
  for (uint32_t c = 0; c < kCoverTypes; ++c) {
    const double gradient = (static_cast<double>(c) + 0.5) / kCoverTypes;
    for (Dim i = 0; i < d; ++i) {
      const double coupling = 0.6 * gradient + 0.4 * rng.NextDouble();
      centers[static_cast<size_t>(c) * d + i] = coupling;
    }
  }
  // Skewed cluster weights: a few cover types carry most of the mass, like
  // the real dataset (types 1 and 2 are ~85% of Forest Cover).
  const double weights[kCoverTypes] = {0.37, 0.48, 0.06, 0.01, 0.02, 0.03, 0.03};
  std::vector<Coord> values;
  values.reserve(static_cast<size_t>(n) * d);
  for (RowId r = 0; r < n; ++r) {
    double u = rng.NextDouble();
    uint32_t c = 0;
    while (c + 1 < kCoverTypes && u > weights[c]) {
      u -= weights[c];
      ++c;
    }
    for (Dim i = 0; i < d; ++i) {
      double v = Clamp01(centers[static_cast<size_t>(c) * d + i] +
                         rng.NextGaussian(0.0, 0.12));
      // Integer quantization (cartographic attributes are integral); a
      // 1024-level grid introduces realistic ties.
      v = std::floor(v * 1024.0) / 1024.0;
      values.push_back(v);
    }
  }
  return DataSet(d, std::move(values));
}

DataSet GenerateRecipesLike(RowId n, Dim d, uint64_t seed) {
  Rng rng(seed);
  // Per-attribute log-normal shape/scale in nutrition-like proportions
  // (calories, fat, carbs, protein, sodium, sugar, fiber ... cycled).
  std::vector<Coord> values;
  values.reserve(static_cast<size_t>(n) * d);
  for (RowId r = 0; r < n; ++r) {
    // Block correlation: a common "portion size" factor scales the row.
    const double portion = std::exp(rng.NextGaussian(0.0, 0.5));
    for (Dim i = 0; i < d; ++i) {
      // Zero inflation: many recipes have 0 of a given nutrient — but only
      // optional nutrients (sugar, fiber, sodium, ...); core ones
      // (calories, protein; every i % 5 < 2) are always positive, so no
      // all-zero super-point can dominate the whole dataset.
      if (i % 5 >= 2 && rng.NextDouble() < 0.25) {
        values.push_back(0.0);
        continue;
      }
      const double sigma = 0.6 + 0.1 * static_cast<double>(i % 5);
      const double raw = portion * std::exp(rng.NextGaussian(0.0, sigma));
      // Map the heavy-tailed value into [0,1) monotonically so all
      // workloads share a domain; skew is preserved.
      values.push_back(raw / (raw + 2.0));
    }
  }
  return DataSet(d, std::move(values));
}

Result<DataSet> GenerateWorkload(WorkloadKind kind, RowId n, Dim d, uint64_t seed) {
  if (n == 0) return Status::InvalidArgument("workload cardinality must be positive");
  if (d == 0) return Status::InvalidArgument("workload dimensionality must be positive");
  switch (kind) {
    case WorkloadKind::kIndependent: return GenerateIndependent(n, d, seed);
    case WorkloadKind::kCorrelated: return GenerateCorrelated(n, d, seed);
    case WorkloadKind::kAnticorrelated: return GenerateAnticorrelated(n, d, seed);
    case WorkloadKind::kClustered: return GenerateClustered(n, d, seed);
    case WorkloadKind::kForestCoverLike: return GenerateForestCoverLike(n, d, seed);
    case WorkloadKind::kRecipesLike: return GenerateRecipesLike(n, d, seed);
  }
  return Status::InvalidArgument("unknown workload kind");
}

}  // namespace skydiver
