// CSV import/export for datasets.
//
// Lets users run SkyDiver on their own data (e.g. the real Forest Cover /
// Recipes files if they have them) and lets the examples persist generated
// workloads.

#pragma once

#include <string>

#include "common/status.h"
#include "core/dataset.h"

namespace skydiver {

/// Writes `data` as comma-separated rows (no header) to `path`.
Status WriteCsv(const DataSet& data, const std::string& path);

/// Reads a CSV of numeric rows into a DataSet. All rows must have the same
/// number of fields; `skip_header` drops the first line. Empty lines are
/// ignored.
Result<DataSet> ReadCsv(const std::string& path, bool skip_header = false);

}  // namespace skydiver
