#include "datagen/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace skydiver {

Status WriteCsv(const DataSet& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out.precision(17);
  const RowId n = data.size();
  for (RowId r = 0; r < n; ++r) {
    const auto row = data.row(r);
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<DataSet> ReadCsv(const std::string& path, bool skip_header) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::string line;
  size_t lineno = 0;
  Dim dims = 0;
  std::vector<Coord> values;
  while (std::getline(in, line)) {
    ++lineno;
    if (lineno == 1 && skip_header) continue;
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::string field;
    Dim count = 0;
    while (std::getline(ss, field, ',')) {
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str()) {
        return Status::InvalidArgument("'" + path + "' line " + std::to_string(lineno) +
                                       ": non-numeric field '" + field + "'");
      }
      values.push_back(v);
      ++count;
    }
    if (dims == 0) {
      dims = count;
    } else if (count != dims) {
      return Status::InvalidArgument("'" + path + "' line " + std::to_string(lineno) +
                                     ": expected " + std::to_string(dims) + " fields, got " +
                                     std::to_string(count));
    }
  }
  if (dims == 0) return Status::InvalidArgument("'" + path + "' contains no data rows");
  return DataSet(dims, std::move(values));
}

}  // namespace skydiver
