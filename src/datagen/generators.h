// Synthetic workload generators.
//
// IND / CORR / ANT follow the methodology of Börzsönyi, Kossmann & Stocker
// ("The Skyline Operator", ICDE 2001), the same generators the SkyDiver
// paper uses for its synthetic evaluation. ForestCoverLike and RecipesLike
// are surrogates for the paper's two real datasets (Forest Cover from UCI
// and Recipes from Sparkrecipes.com), which are not redistributable here;
// see DESIGN.md §4 for the substitution rationale.
//
// All generators emit values in minimization space: smaller is better.

#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/dataset.h"

namespace skydiver {

/// Identifies a workload family.
enum class WorkloadKind {
  kIndependent,     ///< IND: uniform i.i.d. attributes.
  kCorrelated,      ///< CORR: attributes positively correlated (small skyline).
  kAnticorrelated,  ///< ANT: attributes negatively correlated (large skyline).
  kClustered,       ///< Gaussian mixture clusters.
  kForestCoverLike, ///< FC surrogate: clustered, integer-quantized, mildly correlated.
  kRecipesLike,     ///< REC surrogate: log-normal, zero-inflated, skewed.
};

/// Parses "IND" / "ANT" / "CORR" / "CLUSTER" / "FC" / "REC" (case-insensitive).
Result<WorkloadKind> ParseWorkloadKind(const std::string& name);

/// Short display name ("IND", "ANT", ...).
std::string WorkloadKindName(WorkloadKind kind);

/// Paper-default cardinality for a workload (5M for synthetic, ~581K FC,
/// ~365K REC).
RowId DefaultCardinality(WorkloadKind kind);

/// Uniform i.i.d. attributes in [0,1).
DataSet GenerateIndependent(RowId n, Dim d, uint64_t seed);

/// Correlated attributes: points concentrated around the main diagonal.
DataSet GenerateCorrelated(RowId n, Dim d, uint64_t seed);

/// Anticorrelated attributes: points concentrated around the anti-diagonal
/// hyperplane sum(x_i) ≈ const, which inflates the skyline.
DataSet GenerateAnticorrelated(RowId n, Dim d, uint64_t seed);

/// Gaussian mixture with `clusters` components (centers uniform in [0,1)^d).
DataSet GenerateClustered(RowId n, Dim d, uint64_t seed, uint32_t clusters = 10,
                          double cluster_stddev = 0.05);

/// Forest-Cover-like surrogate: 7 "cover type" clusters over correlated
/// cartographic-style attributes, integer-quantized (creating realistic
/// ties), heavy central mass plus outliers.
DataSet GenerateForestCoverLike(RowId n, Dim d, uint64_t seed);

/// Recipes-like surrogate: per-attribute log-normal nutrition-style
/// marginals with block correlation and zero inflation, producing the
/// sparse domination matrix the paper reports for REC.
DataSet GenerateRecipesLike(RowId n, Dim d, uint64_t seed);

/// Dispatch by kind.
Result<DataSet> GenerateWorkload(WorkloadKind kind, RowId n, Dim d, uint64_t seed);

}  // namespace skydiver
