#include "minhash/siggen.h"

#include <algorithm>
#include <bit>
#include <deque>

#include "core/dominance.h"
#include "kernels/tile_view.h"
#include "rtree/disk_rtree.h"

namespace skydiver {

namespace {

// Validates the shared preconditions of both generators.
Status ValidateInputs(const DataSet& data, const std::vector<RowId>& skyline,
                      const MinHashFamily& family) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (skyline.empty()) return Status::InvalidArgument("skyline set is empty");
  if (family.size() == 0) return Status::InvalidArgument("hash family is empty");
  if (family.prime() <= data.size()) {
    return Status::InvalidArgument("hash family prime must exceed the dataset size");
  }
  for (RowId s : skyline) {
    if (s >= data.size()) {
      return Status::InvalidArgument("skyline row " + std::to_string(s) +
                                     " out of range");
    }
  }
  return Status::OK();
}

}  // namespace

uint64_t SequentialScanPages(uint64_t n, Dim dims, uint32_t page_size) {
  const uint64_t record_bytes = sizeof(Coord) * dims + sizeof(RowId);
  const uint64_t records_per_page = std::max<uint64_t>(1, page_size / record_bytes);
  return (n + records_per_page - 1) / records_per_page;
}

Result<SigGenResult> SigGenIF(const DataSet& data, const std::vector<RowId>& skyline,
                              const MinHashFamily& family, DomKernel kernel) {
  SKYDIVER_RETURN_NOT_OK(ValidateInputs(data, skyline, family));
  const uint64_t checks_before = DominanceCounter::Count();

  const size_t t = family.size();
  const size_t m = skyline.size();
  const RowId n = data.size();
  kernel = EffectiveKernel(kernel, m);
  SigGenResult out;
  out.signatures = SignatureMatrix(t, m);
  out.domination_scores.assign(m, 0);

  std::vector<bool> is_skyline(n, false);
  for (RowId s : skyline) is_skyline[s] = true;

  // Hash values of the current row, computed once and min-merged into every
  // dominating column (equivalent to the paper's per-column UpdateMatrix,
  // which re-evaluates the same t hashes).
  std::vector<uint64_t> row_hash(t);
  if (IsBatched(kernel)) {
    // The skyline columns live in column-major tiles; each tile id holds
    // the signature-column index j, so mask bits map straight back to
    // columns. Both the scalar and the batched passes are exhaustive (no
    // early exit), so signatures, scores, and dominance counts all match
    // exactly.
    TileSet sky_tiles(data.dims());
    for (size_t j = 0; j < m; ++j) {
      sky_tiles.Append(static_cast<RowId>(j), data.row(skyline[j]));
    }
    const DominanceKernel batch(kernel);
    for (RowId r = 0; r < n; ++r) {
      if (is_skyline[r]) continue;
      const auto point = data.row(r);
      bool hashed = false;
      for (const Tile& tile : sky_tiles.tiles()) {
        uint64_t mask = batch.FilterDominators(point, tile.view());
        while (mask != 0) {
          const int bit = std::countr_zero(mask);
          mask &= mask - 1;
          const size_t j = tile.id(static_cast<size_t>(bit));
          ++out.domination_scores[j];
          if (!hashed) {
            for (size_t i = 0; i < t; ++i) row_hash[i] = family.Apply(i, r);
            hashed = true;
          }
          for (size_t i = 0; i < t; ++i) out.signatures.UpdateMin(j, i, row_hash[i]);
        }
      }
    }
  } else {
    for (RowId r = 0; r < n; ++r) {
      if (is_skyline[r]) continue;  // skyline points belong to no Γ set
      const auto point = data.row(r);
      bool hashed = false;
      for (size_t j = 0; j < m; ++j) {
        if (!Dominates(data.row(skyline[j]), point)) continue;
        ++out.domination_scores[j];
        if (!hashed) {
          for (size_t i = 0; i < t; ++i) row_hash[i] = family.Apply(i, r);
          hashed = true;
        }
        for (size_t i = 0; i < t; ++i) out.signatures.UpdateMin(j, i, row_hash[i]);
      }
    }
  }

  // Sequential scan of the data file: every page is a physical read.
  const uint64_t pages = SequentialScanPages(n, data.dims(), 4096);
  out.io.page_reads = pages;
  out.io.page_faults = pages;
  out.dominance_checks = DominanceCounter::Count() - checks_before;
  return out;
}

namespace {

// Shared implementation over any tree backend exposing ReadNode / root /
// dims / size / io_stats (RTree and DiskRTree).
template <typename Tree>
Result<SigGenResult> SigGenIBImpl(const DataSet& data, const std::vector<RowId>& skyline,
                                  const MinHashFamily& family, const Tree& tree) {
  SKYDIVER_RETURN_NOT_OK(ValidateInputs(data, skyline, family));
  if (tree.dims() != data.dims() || tree.size() != data.size()) {
    return Status::InvalidArgument("R-tree does not index the given dataset");
  }
  const uint64_t checks_before = DominanceCounter::Count();
  const IoStats io_before = tree.io_stats();

  const size_t t = family.size();
  const size_t m = skyline.size();
  SigGenResult out;
  out.signatures = SignatureMatrix(t, m);
  out.domination_scores.assign(m, 0);

  // Skyline coordinates, resolved once.
  std::vector<std::span<const Coord>> sky(m);
  for (size_t j = 0; j < m; ++j) sky[j] = data.row(skyline[j]);

  // Row-id counter: the traversal assigns consecutive ids to data points in
  // visit order. MinHash only needs *distinct* ids under a random
  // permutation, so the enumeration order is free (paper Fig. 4, rowcount).
  uint64_t rowcount = 0;

  // Scratch: per-hash minimum over the id range of a bulk update.
  std::vector<uint64_t> range_min(t);
  std::vector<size_t> full;  // columns fully dominating the current entry

  // Applies `count` consecutive row ids to all columns in `full`. The
  // per-range hash minima are shared across columns (all dominators see the
  // same id range), turning the paper's count x |full| x t loop into
  // count x t + |full| x t.
  auto update_full_dominance = [&](uint64_t count) {
    if (full.empty() || count == 0) {
      rowcount += count;
      return;
    }
    for (size_t i = 0; i < t; ++i) {
      const uint64_t step = family.StepOf(i);
      const uint64_t prime = family.prime();
      uint64_t v = family.Apply(i, rowcount);
      uint64_t mn = v;
      for (uint64_t c = 1; c < count; ++c) {
        v += step;
        if (v >= prime) v -= prime;
        if (v < mn) mn = v;
      }
      range_min[i] = mn;
    }
    for (size_t j : full) {
      out.domination_scores[j] += count;
      for (size_t i = 0; i < t; ++i) out.signatures.UpdateMin(j, i, range_min[i]);
    }
    rowcount += count;
  };

  // Each queued subtree carries its dominance context: `full` holds the
  // skyline columns already known to dominate the whole subtree (inherited
  // from ancestors), `candidates` the columns that partially dominate it
  // and must be re-examined against its children. Columns that do not even
  // dominate an ancestor's upper corner can dominate nothing below and are
  // dropped — this candidate propagation computes exactly the paper's
  // Fig. 4 classification while skipping checks Fig. 4 would repeat.
  struct Task {
    PageId page;
    std::vector<size_t> full;
    std::vector<size_t> candidates;
  };
  std::deque<Task> queue;
  {
    Task root;
    root.page = tree.root();
    root.candidates.resize(m);
    for (size_t j = 0; j < m; ++j) root.candidates[j] = j;
    queue.push_back(std::move(root));
  }
  std::vector<size_t> partial;  // scratch: candidate set for a child task
  while (!queue.empty()) {
    Task task = std::move(queue.front());
    queue.pop_front();
    // Pin discipline (rtree/page_cache.h): name the ref, check it, borrow
    // the node. RTree's infallible shape compiles the check away.
    decltype(auto) ref = tree.ReadNode(task.page);
    if (!RefOk(ref)) return RefStatus(ref);
    const RTreeNode& node = NodeOf(ref);
    for (const auto& e : node.entries) {
      if (node.is_leaf) {
        // Leaf entry = data point. Its dominators are the inherited full
        // set plus every candidate that dominates the point itself.
        full = task.full;
        for (size_t j : task.candidates) {
          if (Dominates(sky[j], e.mbr.lo())) full.push_back(j);
        }
        update_full_dominance(1);
        continue;
      }
      full = task.full;
      partial.clear();
      for (size_t j : task.candidates) {
        if (e.mbr.FullyDominatedBy(sky[j])) {
          full.push_back(j);
        } else if (e.mbr.UpperCornerDominatedBy(sky[j])) {
          partial.push_back(j);
        }
      }
      if (partial.empty()) {
        // Exclusively full (or no) dominance: bulk-update without reading
        // the subtree — the aggregate count stands in for its points.
        update_full_dominance(e.count);
      } else {
        queue.push_back(Task{e.child, full, partial});  // must look inside
      }
    }
  }

  const IoStats io_after = tree.io_stats();
  out.io.page_reads = io_after.page_reads - io_before.page_reads;
  out.io.page_faults = io_after.page_faults - io_before.page_faults;
  out.io.page_writes = io_after.page_writes - io_before.page_writes;
  out.dominance_checks = DominanceCounter::Count() - checks_before;
  return out;
}

}  // namespace

Result<SigGenResult> SigGenIB(const DataSet& data, const std::vector<RowId>& skyline,
                              const MinHashFamily& family, const RTree& tree) {
  return SigGenIBImpl(data, skyline, family, tree);
}

Result<SigGenResult> SigGenIB(const DataSet& data, const std::vector<RowId>& skyline,
                              const MinHashFamily& family, const DiskRTree& tree) {
  return SigGenIBImpl(data, skyline, family, tree);
}

}  // namespace skydiver
