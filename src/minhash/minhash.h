// MinHash fingerprinting of dominated sets (paper Section 4.1).
//
// Each skyline point's dominated set Γ(s) is a subset of the data rows;
// SkyDiver compresses it into a signature of t slots, where slot i holds
// min over x ∈ Γ(s) of h_i(x) for a "min-wise independent" hash
// h_i(x) = (a_i·x + b_i) mod P, P prime > n. The key MinHash property:
// Pr[slot_i(p) = slot_i(q)] = Js(p, q), so the fraction of agreeing slots
// is an unbiased estimate of the Jaccard similarity of the dominated sets.

#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"

namespace skydiver {

/// Slot value meaning "no row hashed yet" (empty dominated set).
inline constexpr uint64_t kEmptySlot = std::numeric_limits<uint64_t>::max();

/// Fraction of agreeing slots between two raw signature columns of equal
/// length — the MinHash similarity estimate. Shared by SignatureMatrix and
/// by callers holding signatures outside a matrix (e.g. the streaming
/// monitor's per-skyline-point vectors). Returns 0 for empty signatures.
double SlotAgreementSimilarity(std::span<const uint64_t> a, std::span<const uint64_t> b);

/// A family of t linear hash functions h_i(x) = (a_i·x + b_i) mod P.
///
/// The family approximates min-wise independence, which is the standard
/// practical choice (Broder et al.); P is the first prime after `universe`.
class MinHashFamily {
 public:
  /// Draws a family of `t` functions able to hash row ids in [0, universe).
  static MinHashFamily Create(size_t t, uint64_t universe, uint64_t seed);

  size_t size() const { return a_.size(); }
  uint64_t prime() const { return prime_; }

  /// h_i(x).
  uint64_t Apply(size_t i, uint64_t x) const {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(a_[i]) * x + b_[i]) % prime_);
  }

  /// Additive step of h_i: h_i(x+1) = (h_i(x) + a_i) mod P. Exposed so
  /// range updates (index-based generation over `count` consecutive row
  /// ids) can evaluate the family incrementally.
  uint64_t StepOf(size_t i) const { return a_[i]; }

 private:
  MinHashFamily() = default;
  std::vector<uint64_t> a_;
  std::vector<uint64_t> b_;
  uint64_t prime_ = 0;
};

/// Column-major t x m signature matrix: column j is the signature of the
/// j-th skyline point. Matches the paper's \hat{M}.
class SignatureMatrix {
 public:
  SignatureMatrix() = default;
  SignatureMatrix(size_t t, size_t m)
      : t_(t), m_(m), slots_(t * m, kEmptySlot) {}

  size_t signature_size() const { return t_; }
  size_t columns() const { return m_; }

  uint64_t at(size_t column, size_t slot) const { return slots_[column * t_ + slot]; }

  /// slot := min(slot, value) — the MinHash update.
  void UpdateMin(size_t column, size_t slot, uint64_t value) {
    uint64_t& cell = slots_[column * t_ + slot];
    if (value < cell) cell = value;
  }

  /// Estimated Jaccard similarity: fraction of slots where the two
  /// signatures agree.
  double EstimatedSimilarity(size_t c1, size_t c2) const;

  /// Estimated Jaccard distance (1 - similarity). Respects the triangle
  /// inequality (paper Lemma 3), so the 2-approximation greedy applies.
  double EstimatedDistance(size_t c1, size_t c2) const {
    return 1.0 - EstimatedSimilarity(c1, c2);
  }

  /// Heap bytes held by the matrix (memory-consumption experiments).
  size_t MemoryBytes() const { return slots_.size() * sizeof(uint64_t); }

  /// Persists the matrix to a checksummed binary file (format SKYDSIG1).
  /// Fingerprinting is the expensive phase; saving the signatures lets a
  /// deployment re-run Phase 2 with different k / ξ / B for free.
  Status SaveToFile(const std::string& path) const;

  /// Loads a matrix written by SaveToFile.
  static Result<SignatureMatrix> LoadFromFile(const std::string& path);

 private:
  size_t t_ = 0;
  size_t m_ = 0;
  std::vector<uint64_t> slots_;
};

/// Signature size that guarantees an (ε, δ)-approximation of the Jaccard
/// similarity at precision β — Ω(ε⁻³ β⁻¹ log 1/δ) per Datar & Muthukrishnan
/// (cited as [12] in the paper). Returned with constant 1; callers treat it
/// as a guideline (the paper uses t = 100 as its practical default).
size_t RecommendedSignatureSize(double epsilon, double beta, double delta);

}  // namespace skydiver
