#include "minhash/minhash.h"

#include <cmath>

#include "common/binio.h"
#include "common/check.h"
#include "common/prime.h"
#include "common/rng.h"

namespace skydiver {

namespace {
constexpr char kSignatureMagic[8] = {'S', 'K', 'Y', 'D', 'S', 'I', 'G', '1'};
}  // namespace

Status SignatureMatrix::SaveToFile(const std::string& path) const {
  BinaryWriter writer(path, kSignatureMagic);
  if (!writer.ok()) return Status::IoError("cannot open '" + path + "' for writing");
  writer.WriteU64(t_);
  writer.WriteU64(m_);
  for (uint64_t v : slots_) writer.WriteU64(v);
  return writer.Finish();
}

Result<SignatureMatrix> SignatureMatrix::LoadFromFile(const std::string& path) {
  BinaryReader reader(path, kSignatureMagic);
  SKYDIVER_RETURN_NOT_OK(reader.status());
  uint64_t t = 0, m = 0;
  if (!reader.ReadU64(&t) || !reader.ReadU64(&m)) {
    return Status::IoError("'" + path + "': truncated signature header");
  }
  SignatureMatrix sig(t, m);
  for (auto& v : sig.slots_) {
    if (!reader.ReadU64(&v)) {
      return Status::IoError("'" + path + "': truncated signature payload");
    }
  }
  SKYDIVER_RETURN_NOT_OK(reader.VerifyChecksum());
  return sig;
}

MinHashFamily MinHashFamily::Create(size_t t, uint64_t universe, uint64_t seed) {
  SKYDIVER_DCHECK_GT(t, 0u);
  MinHashFamily family;
  family.prime_ = NextPrime(std::max<uint64_t>(universe, 2));
  Rng rng(seed);
  family.a_.resize(t);
  family.b_.resize(t);
  for (size_t i = 0; i < t; ++i) {
    // a in [1, P-1] keeps the map a bijection on Z_P; b in [0, P-1].
    family.a_[i] = 1 + rng.NextBounded(family.prime_ - 1);
    family.b_[i] = rng.NextBounded(family.prime_);
  }
  return family;
}

double SlotAgreementSimilarity(std::span<const uint64_t> a, std::span<const uint64_t> b) {
  SKYDIVER_DCHECK_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

double SignatureMatrix::EstimatedSimilarity(size_t c1, size_t c2) const {
  SKYDIVER_DCHECK(c1 < m_ && c2 < m_);
  return SlotAgreementSimilarity({slots_.data() + c1 * t_, t_},
                                 {slots_.data() + c2 * t_, t_});
}

size_t RecommendedSignatureSize(double epsilon, double beta, double delta) {
  SKYDIVER_DCHECK(epsilon > 0 && epsilon < 1);
  SKYDIVER_DCHECK(beta > 0 && beta < 1);
  SKYDIVER_DCHECK(delta > 0 && delta < 1);
  const double t = std::log(1.0 / delta) / (epsilon * epsilon * epsilon * beta);
  return static_cast<size_t>(std::ceil(t));
}

}  // namespace skydiver
