// Signature generation — Phase 1 of the SkyDiver framework.
//
// Two implementations, matching the paper's Figures 3 and 4:
//
//   * SigGen-IF (index-free): one sequential pass over the data file; every
//     point is tested against every skyline point and the signatures of its
//     dominators are min-updated. Charges sequential-scan I/O.
//
//   * SigGen-IB (index-based): descends the aggregate R*-tree. MBRs that
//     are only FULLY dominated (lower-left corner dominated, no partial
//     dominator) update the signatures of all their dominators in bulk over
//     `count` consecutive row ids without reading the subtree — saving both
//     dominance checks and page I/O. Partially dominated MBRs are expanded.
//
// Both produce valid MinHash signatures of the dominated sets Γ(s); they
// enumerate rows in different orders, i.e. they hash through different (but
// equally random) permutations, so their *estimates* agree statistically
// rather than bit-for-bit.

#pragma once

#include <cstdint>
#include <vector>

#include "common/io_stats.h"
#include "common/status.h"
#include "core/dataset.h"
#include "kernels/dominance_kernel.h"
#include "minhash/minhash.h"
#include "rtree/rtree.h"

namespace skydiver {

/// Output of signature generation.
struct SigGenResult {
  SignatureMatrix signatures;
  /// Exact domination scores |Γ(s_j)| per skyline point — a free byproduct
  /// of either traversal, used to seed the greedy selector (Fig. 6).
  std::vector<uint64_t> domination_scores;
  /// I/O performed: sequential data-file pages for IF, R-tree buffer-pool
  /// traffic for IB.
  IoStats io;
  /// Point- and corner-level dominance tests executed.
  uint64_t dominance_checks = 0;
};

/// Index-free generation (paper Fig. 3). `data` must be in minimization
/// space; `skyline` holds the skyline row ids. The result has one signature
/// column per skyline row, in the given order. Under a batched kernel
/// (tiled or simd) the skyline columns are held in column-major tiles and
/// each data row is tested against whole tiles at a time; because the IF
/// pass is exhaustive (no early exit), the batched run produces
/// bit-identical signatures, scores, AND dominance counts ((n - m) * m
/// either way). SigGen-IB's corner tests are tree-shaped, not batched, so
/// it takes no kernel selector.
Result<SigGenResult> SigGenIF(const DataSet& data, const std::vector<RowId>& skyline,
                              const MinHashFamily& family,
                              DomKernel kernel = DomKernel::kScalar);

/// Index-based generation (paper Fig. 4) over an aggregate R*-tree that
/// indexes `data`. Uses the tree's buffer pool for I/O accounting (the
/// pool's stats are snapshotted around the traversal).
Result<SigGenResult> SigGenIB(const DataSet& data, const std::vector<RowId>& skyline,
                              const MinHashFamily& family, const RTree& tree);

/// Same algorithm over a file-backed tree: page faults here are real
/// preads of 4 KB pages, not simulated ones.
class DiskRTree;
Result<SigGenResult> SigGenIB(const DataSet& data, const std::vector<RowId>& skyline,
                              const MinHashFamily& family, const DiskRTree& tree);

/// Number of 4 KB-style pages a sequential scan of `n` records of `dims`
/// doubles (+ a 4-byte id) touches — the IF charge model.
uint64_t SequentialScanPages(uint64_t n, Dim dims, uint32_t page_size);

}  // namespace skydiver
