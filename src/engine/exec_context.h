// ExecContext — the shared execution state every pipeline stage runs in.
//
// One ExecContext spans one pipeline execution (or many, when a caller
// reuses it across queries): it owns the thread pool the pooled backends
// draw from, a deterministic Rng, the cost model, cumulative I/O counters,
// per-stage PhaseMetrics, and a lightweight trace-event sink. Stages never
// time themselves — they run under `RunStage`, which measures CPU and wall
// time, folds the stage's I/O into the cumulative counters, and appends a
// trace event. That is what guarantees every entry point (batch, disk,
// session, CLI) reports identical accounting.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/io_stats.h"
#include "common/phase_metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "engine/plan.h"
#include "parallel/thread_pool.h"

namespace skydiver {

class ExecContext {
 public:
  /// One completed stage, in execution order.
  struct TraceEvent {
    std::string stage;
    double cpu_seconds = 0.0;
    double wall_seconds = 0.0;
    IoStats io;
  };

  /// Builds a context for `config`. The pool is created lazily on first
  /// use, so serial plans never spawn threads.
  explicit ExecContext(const SkyDiverConfig& config)
      : threads_(config.threads), cost_model_(config.cost_model), rng_(config.seed) {}

  /// The shared worker pool (created on first call), or nullptr when the
  /// config asked for serial execution.
  ThreadPool* pool() {
    if (threads_ == 0) return nullptr;
    if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads_);
    return pool_.get();
  }

  size_t threads() const { return threads_; }
  Rng& rng() { return rng_; }
  const CostModel& cost_model() const { return cost_model_; }

  /// I/O accumulated by every stage run in this context.
  const IoStats& io_stats() const { return io_; }

  /// Stage metrics in execution order (name, metrics).
  const std::vector<std::pair<std::string, PhaseMetrics>>& phases() const {
    return phases_;
  }

  /// Trace events in execution order.
  const std::vector<TraceEvent>& trace() const { return trace_; }

  /// Runs `fn` as the stage `name`: measures its CPU/wall time, stores the
  /// stage's metrics (fn fills `out->io` itself) and appends a trace event.
  /// On failure nothing is recorded and the stage's status is returned.
  [[nodiscard]] Status RunStage(std::string_view name, PhaseMetrics* out,
                  const std::function<Status(PhaseMetrics*)>& fn);

 private:
  size_t threads_ = 0;
  CostModel cost_model_;
  Rng rng_;
  std::unique_ptr<ThreadPool> pool_;
  IoStats io_;
  std::vector<std::pair<std::string, PhaseMetrics>> phases_;
  std::vector<TraceEvent> trace_;
};

}  // namespace skydiver
