// SkySnapshot — the immutable, shareable half of the engine's state.
//
// SkyDiver's whole design is "fingerprint once, diversify many times":
// Phase 1 (skyline + signature matrix + domination scores) is the
// expensive part, Phase 2 (greedy selection) costs O(k·m) signature
// comparisons. A SkySnapshot materializes Phase 1's products exactly once
// — built through a fingerprint-only engine plan, so it shares the batch
// API's backend choice and accounting — and is then Freeze()d: no method
// mutates it afterwards, so one snapshot can serve any number of
// concurrent selection queries by plain shared reference, without locks.
//
// Thread-safety contract:
//   * Build()/Adopt() return a frozen, fully-constructed snapshot behind
//     a shared_ptr<const ...>; publication happens-before any reader that
//     obtains the pointer (shared_ptr's control block provides the
//     ordering).
//   * After Freeze() every member is physically const — Select() reads
//     the skyline rows, scores, signatures and tiles but writes only into
//     the caller's QueryContext. Concurrent Select() calls from any
//     number of threads are safe and bit-identical to serial execution
//     (tests/serve_test.cc proves it under TSan).
//   * Per-query randomness (the LSH banding salts) is derived functionally
//     from (snapshot seed, query spec) via BandingSeed — no shared Rng, no
//     call-order dependence.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/io_stats.h"
#include "common/phase_metrics.h"
#include "common/status.h"
#include "core/dataset.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "engine/query_context.h"
#include "engine/runtime.h"
#include "kernels/tile_view.h"
#include "minhash/minhash.h"

namespace skydiver {

/// Deterministic per-query seed for the LSH banding salts: a functional
/// mix of the snapshot's seed and every query knob (mode, k, ξ, B).
/// Two calls with equal inputs — on any thread, in any order — derive the
/// same banding and therefore the same picks; this is what makes LSH
/// selections cacheable and concurrency-invariant.
uint64_t BandingSeed(uint64_t snapshot_seed, const QuerySpec& spec);

/// One selection query's products.
struct QueryResult {
  /// Selected points as indices into the snapshot's skyline, in pick order.
  std::vector<size_t> selected;
  /// The same selection as row ids into the original dataset.
  std::vector<RowId> rows;
  /// k-MMDP objective under the working distance.
  double objective = 0.0;
  /// LSH bit-vector bytes (kLsh only; the memory side of Fig. 13).
  size_t lsh_memory_bytes = 0;
};

/// Immutable Phase-1 state: frozen skyline view (row ids + column-major
/// tiles), exact domination scores, and the MinHash signature matrix.
class SkySnapshot {
 public:
  /// How the snapshot was built, for explain/report surfaces.
  struct BuildInfo {
    Plan plan;
    std::string plan_explain;
    PhaseMetrics skyline_phase;
    PhaseMetrics fingerprint_phase;
    IoStats io;
  };

  /// Runs the fingerprint-only pipeline (skyline + SigGen) over `data`
  /// through the engine, drawing workers from `runtime` (nullptr = a
  /// private runtime sized by config.threads), and freezes the result.
  /// `config.k` and the selection knobs are ignored — selection is what
  /// queries are for.
  [[nodiscard]] static Result<std::shared_ptr<const SkySnapshot>> Build(
      const DataSet& data, const SkyDiverConfig& config,
      const PlanResources& resources = {},
      std::shared_ptr<const Runtime> runtime = nullptr);

  /// Adopts externally produced Phase-1 products (a reloaded session, a
  /// streaming export) after structural validation. When `data` is given
  /// it must be the dataset the rows refer to; the skyline is then also
  /// materialized into frozen tiles (selection itself never needs them,
  /// so data-free adoption — e.g. a session file shipped without its 5M
  /// points — stays fully functional).
  [[nodiscard]] static Result<std::shared_ptr<const SkySnapshot>> Adopt(
      std::vector<RowId> skyline, std::vector<uint64_t> domination_scores,
      SignatureMatrix signatures, uint64_t seed, const DataSet* data = nullptr);

  /// The skyline rows the fingerprints describe, ascending.
  const std::vector<RowId>& skyline() const { return skyline_; }
  /// Exact |Γ(s_j)| per skyline point.
  const std::vector<uint64_t>& domination_scores() const { return scores_; }
  const SignatureMatrix& signatures() const { return signatures_; }
  /// Frozen column-major tiles of the skyline points (empty when adopted
  /// without the dataset).
  const TileSet& skyline_tiles() const { return tiles_; }
  uint64_t seed() const { return seed_; }
  size_t signature_size() const { return signatures_.signature_size(); }
  const BuildInfo& build_info() const { return info_; }
  /// The fully normalized SkyQuery this snapshot was built under (identity
  /// for unshaped builds and adopted snapshots). A serving layer keys its
  /// snapshot cache by QueryKey(query()).
  const SkyQuery& query() const { return info_.plan.query; }
  /// Always true for a published snapshot; Select() checks it.
  bool frozen() const { return frozen_; }

  /// Answers one selection query. Read-only on the snapshot; metrics,
  /// trace and accounting land in `ctx` (stage name "select"). Safe to
  /// call concurrently with any other Select() on the same snapshot;
  /// results are bit-identical to the serial path for equal specs.
  [[nodiscard]] Result<QueryResult> Select(const QuerySpec& spec,
                                           QueryContext& ctx) const;

  /// Same, with the spec already resolved to a SelectPlan (a serving layer
  /// caches one per (mode, ξ, B) — see serve/serve.h). `plan` must be the
  /// resolution of `spec` against this snapshot's signature size.
  [[nodiscard]] Result<QueryResult> Select(const QuerySpec& spec, const SelectPlan& plan,
                                           QueryContext& ctx) const;

 private:
  SkySnapshot() : tiles_(1) {}

  void Freeze();

  std::vector<RowId> skyline_;
  std::vector<uint64_t> scores_;
  SignatureMatrix signatures_;
  TileSet tiles_;
  uint64_t seed_ = 0;
  BuildInfo info_;
  bool frozen_ = false;
};

}  // namespace skydiver
