// Runtime — the process-wide execution resources shared by snapshot builds
// and every query served against them.
//
// A Runtime owns the worker ThreadPool. It is constructed ONCE (per server,
// per test, per CLI invocation) and then handed by shared_ptr to whoever
// needs workers: the engine's pooled stage backends during a snapshot
// build, and any future pooled query paths. Construction is eager — the
// pool is spawned in the constructor, never lazily on first use — so
// `pool()` is a const read of an immutable pointer and is safe to call
// from any number of threads concurrently. (The predecessor, ExecContext,
// created its pool lazily on first use; two threads sharing a context
// could double-construct it. Eager creation removes that race by
// construction; tests/serve_test.cc pins it down under TSan.)
//
// threads == 0 means serial: no pool is spawned and pool() returns
// nullptr, so serial plans still never start a thread.
//
// Capability story (see common/thread_annotations.h): a Runtime carries no
// lock of its own because it has no mutable state — both members are set
// in the constructor and never written again, which is the strongest
// thread-safety property there is. Every mutable thing reachable through
// it (the pool's queue and counters) lives behind ThreadPool::mutex_,
// whose discipline the thread-safety CI lane checks statically.

#pragma once

#include <cstddef>
#include <memory>

#include "parallel/thread_pool.h"

namespace skydiver {

class Runtime {
 public:
  /// Spawns the worker pool eagerly (`threads` workers); 0 = serial, no
  /// pool. The pool lives exactly as long as the Runtime.
  explicit Runtime(size_t threads)
      : threads_(threads),
        pool_(threads == 0 ? nullptr : std::make_unique<ThreadPool>(threads)) {}

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Convenience for the common shared-ownership shape.
  static std::shared_ptr<const Runtime> Create(size_t threads) {
    return std::make_shared<const Runtime>(threads);
  }

  size_t threads() const { return threads_; }

  /// The shared worker pool, or nullptr for a serial runtime. The pointer
  /// is immutable after construction, so concurrent calls are safe; the
  /// pool's own Submit/Wait protocol governs what callers may then do
  /// with it (see parallel/thread_pool.h).
  ThreadPool* pool() const { return pool_.get(); }

 private:
  size_t threads_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace skydiver
