#include "engine/query_context.h"

#include "common/timer.h"
#include "core/dominance.h"

namespace skydiver {

Status QueryContext::RunStage(std::string_view name, PhaseMetrics* out,
                              const std::function<Status(PhaseMetrics*)>& fn) {
  *out = PhaseMetrics{};
  WallTimer wall;
  CpuTimer cpu;
  // Snapshot the dominance counters around the stage. Pooled backends fold
  // worker-side counts into this thread before returning, so the deltas
  // see pool work too.
  const uint64_t checks_before = DominanceCounter::Count();
  const uint64_t tiled_before = DominanceCounter::TiledCount();
  const Status status = fn(out);
  out->cpu_seconds = cpu.ElapsedSeconds();
  out->dominance_checks = DominanceCounter::Count() - checks_before;
  out->dominance_checks_tiled = DominanceCounter::TiledCount() - tiled_before;
  if (!status.ok()) return status;
  io_ += out->io;
  phases_.emplace_back(std::string(name), *out);
  trace_.push_back(TraceEvent{std::string(name), out->cpu_seconds,
                              wall.ElapsedSeconds(), out->io});
  return status;
}

}  // namespace skydiver
