#include "engine/exec_context.h"

#include "common/timer.h"

namespace skydiver {

Status ExecContext::RunStage(std::string_view name, PhaseMetrics* out,
                             const std::function<Status(PhaseMetrics*)>& fn) {
  *out = PhaseMetrics{};
  WallTimer wall;
  CpuTimer cpu;
  const Status status = fn(out);
  out->cpu_seconds = cpu.ElapsedSeconds();
  if (!status.ok()) return status;
  io_ += out->io;
  phases_.emplace_back(std::string(name), *out);
  trace_.push_back(TraceEvent{std::string(name), out->cpu_seconds,
                              wall.ElapsedSeconds(), out->io});
  return status;
}

}  // namespace skydiver
