// Execution plans — what the pipeline will run, resolved ahead of time.
//
// Every SkyDiver entry point (batch runs, disk runs, sessions, the CLI)
// describes WHAT it wants through `SkyDiverConfig` and what resources it
// has through `PlanResources`; the `Planner` (planner.h) resolves both
// into a `Plan`: one backend per pipeline stage. The `Engine` (engine.h)
// then executes the plan with uniform per-stage accounting. Separating
// algorithm choice from execution plumbing follows the framework layering
// of the paper (skyline -> SigGen fingerprinting -> greedy k-MMDP), and
// makes the parallel backends first-class plan choices instead of a
// separate API.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/io_stats.h"
#include "core/sky_query.h"
#include "core/types.h"
#include "kernels/dominance_kernel.h"
#include "rtree/page_file.h"

namespace skydiver {

class RTree;
class DiskRTree;

/// How Phase 1 builds the MinHash signatures.
enum class SigGenMode {
  kAuto,       ///< Index-based when a tree is supplied, index-free otherwise.
  kIndexFree,  ///< Single sequential pass (paper Fig. 3).
  kIndexBased, ///< Aggregate R*-tree descent (paper Fig. 4); requires a tree.
};

/// Which distance Phase 2 greedily disperses over.
enum class SelectMode {
  kMinHash,    ///< Estimated Jaccard distance on signatures (SkyDiver-MH).
  kLsh,        ///< Hamming distance on LSH bit-vectors (SkyDiver-LSH).
  kBruteForce, ///< Exact k-MMDP optimum over the MinHash distance (small m).
};

/// Framework configuration; the defaults mirror the paper's
/// (t = 100, k = 10, ξ = 0.2, B = 20).
struct SkyDiverConfig {
  size_t k = 10;                  ///< Number of diverse skyline points.
  size_t signature_size = 100;    ///< t: MinHash slots per skyline point.
  SigGenMode siggen = SigGenMode::kAuto;
  SelectMode select = SelectMode::kMinHash;
  double lsh_threshold = 0.2;     ///< ξ: banding threshold (kLsh only).
  size_t lsh_buckets = 20;        ///< B: buckets per zone (kLsh only).
  uint64_t seed = 42;             ///< Seed for hash-family / LSH draws.
  size_t threads = 0;             ///< 0 = serial; N >= 1 = pooled, N workers.
  /// Query shape (core/sky_query.h): constraint box, projection mask, and
  /// shard count. The identity default runs the historical full-space
  /// pipeline bit-for-bit. shards > 1 selects the sharded skyline backend.
  SkyQuery query;
  CostModel cost_model;           ///< Page-fault charge (default 8 ms).
  /// Dominance kernel for the batched stages (skyline, IF fingerprints).
  /// Simd by default — the planner downgrades it to tiled when the runtime
  /// CPU probe (common/cpu.h) finds no vector ISA. Outputs are
  /// bit-identical across all flavours; only the dominance-check
  /// accounting differs (see kernels/dominance_kernel.h).
  DomKernel kernel = DomKernel::kSimd;
  /// Rows per morsel for the pooled backends (parallel/morsel.h). 0 = auto
  /// (kDefaultMorselRows); explicit values must be tile-aligned (a
  /// multiple of kTileRows = 64) and at most kMaxMorselRows. Ignored by
  /// serial plans. Reductions are bit-identical for every value; this is
  /// purely a scheduling-granularity knob.
  size_t morsel_rows = 0;
};

/// One Phase-2 selection query against an already-built snapshot: the
/// per-query analogue of SkyDiverConfig. The LSH knobs are meaningful only
/// under SelectMode::kLsh; `Normalized()` zeroes them for the other modes
/// so equality (and any cache key built on it) never distinguishes specs
/// that run the same query.
struct QuerySpec {
  SelectMode mode = SelectMode::kMinHash;
  size_t k = 10;                ///< Number of diverse skyline points.
  double lsh_threshold = 0.2;   ///< ξ: banding threshold (kLsh only).
  size_t lsh_buckets = 20;      ///< B: buckets per zone (kLsh only).
  /// Skyline shape the query runs against (identity = the full snapshot).
  /// A multi-snapshot server resolves this to a snapshot keyed by the
  /// normalized query; a single-snapshot server rejects non-identity specs.
  SkyQuery query;

  friend bool operator==(const QuerySpec&, const QuerySpec&) = default;

  QuerySpec Normalized() const {
    QuerySpec s = *this;
    if (s.mode != SelectMode::kLsh) {
      s.lsh_threshold = 0.0;
      s.lsh_buckets = 0;
    }
    s.query = CanonicalShape(s.query);
    return s;
  }
};

/// Resources a caller can hand the planner. All optional; the planner
/// picks the best backends the resources allow.
struct PlanResources {
  const RTree* tree = nullptr;            ///< In-memory aggregate R*-tree.
  const DiskRTree* disk_tree = nullptr;   ///< File-backed aggregate R*-tree.
  const std::vector<RowId>* precomputed_skyline = nullptr;
};

/// Backend choices per stage.
enum class SkylineBackend {
  kPrecomputed,  ///< Caller-supplied rows, used verbatim (sorted).
  kSfs,          ///< Sort-filter-skyline over the data file.
  kParallelSfs,  ///< Sharded SFS + merge on the thread pool (== kSfs output).
  kSharded,      ///< Per-shard SFS + D&C cross-filter merge (query.shards).
  kBbs,          ///< Branch-and-bound over the in-memory aggregate tree.
  kBbsDisk,      ///< BBS over the file-backed tree (real preads).
};

enum class FingerprintBackend {
  kSigGenIf,      ///< Index-free sequential pass (paper Fig. 3).
  kParallelIf,    ///< Sharded IF, min-merged (bit-identical to kSigGenIf).
  kSigGenIb,      ///< Aggregate-tree descent (paper Fig. 4).
  kParallelIb,    ///< Subtree-parallel IB (deterministic DFS permutation).
  kSigGenIbDisk,  ///< IB over the file-backed tree.
};

enum class SelectBackend {
  kNone,        ///< Fingerprint-only pipeline (sessions).
  kMinHash,     ///< Greedy k-MMDP over estimated Jaccard distances.
  kLsh,         ///< Greedy k-MMDP over LSH Hamming distances.
  kBruteForce,  ///< Exact k-MMDP over estimated Jaccard distances.
};

/// A resolved pipeline: one backend per stage plus the pool width and the
/// dominance kernel the batched stages run with.
struct Plan {
  SkylineBackend skyline = SkylineBackend::kSfs;
  FingerprintBackend fingerprint = FingerprintBackend::kSigGenIf;
  SelectBackend select = SelectBackend::kMinHash;
  size_t threads = 0;  ///< Worker threads the pooled backends will use.
  /// Shape-canonicalized copy of the config's SkyQuery (CanonicalShape at
  /// plan time; the engine finishes normalization against the data's
  /// dimensionality when it builds the DataView).
  SkyQuery query;
  /// Dominance kernel (scalar|tiled|simd); the planner never emits kSimd
  /// unless the host's vector ISA probe succeeded.
  DomKernel kernel = DomKernel::kTiled;
  /// Resolved morsel size for the pooled backends: the config value (or
  /// kDefaultMorselRows when the config said auto) on pooled plans, 0 on
  /// serial plans (no morsel dispatch happens).
  size_t morsel_rows = 0;
  /// Disk-path execution shape, copied from the supplied DiskRTree so the
  /// plan (and ExplainPlan) records what the disk stages will actually do.
  /// Meaningful only when a stage runs over the file-backed tree.
  DiskBackend disk_backend = DiskBackend::kPread;
  bool disk_prefetch = false;  ///< Async child prefetch is armed.
};

const char* ToString(SkylineBackend backend);
const char* ToString(FingerprintBackend backend);
const char* ToString(SelectBackend backend);

}  // namespace skydiver
