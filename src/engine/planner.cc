#include "engine/planner.h"

#include <sstream>

#include "common/check.h"
#include "common/cpu.h"
#include "kernels/tile_view.h"
#include "parallel/morsel.h"
#include "rtree/disk_rtree.h"

namespace skydiver {

const char* ToString(SkylineBackend backend) {
  switch (backend) {
    case SkylineBackend::kPrecomputed: return "precomputed";
    case SkylineBackend::kSfs: return "sfs";
    case SkylineBackend::kParallelSfs: return "parallel-sfs";
    case SkylineBackend::kSharded: return "sharded";
    case SkylineBackend::kBbs: return "bbs";
    case SkylineBackend::kBbsDisk: return "bbs-disk";
  }
  return "?";
}

const char* ToString(FingerprintBackend backend) {
  switch (backend) {
    case FingerprintBackend::kSigGenIf: return "siggen-if";
    case FingerprintBackend::kParallelIf: return "parallel-siggen-if";
    case FingerprintBackend::kSigGenIb: return "siggen-ib";
    case FingerprintBackend::kParallelIb: return "parallel-siggen-ib";
    case FingerprintBackend::kSigGenIbDisk: return "siggen-ib-disk";
  }
  return "?";
}

const char* ToString(SelectBackend backend) {
  switch (backend) {
    case SelectBackend::kNone: return "none";
    case SelectBackend::kMinHash: return "greedy-minhash";
    case SelectBackend::kLsh: return "greedy-lsh";
    case SelectBackend::kBruteForce: return "brute-force-minhash";
  }
  return "?";
}

Result<Plan> Planner::Resolve(const SkyDiverConfig& config,
                              const PlanResources& resources, bool run_selection) {
  if (run_selection && config.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (config.signature_size == 0) {
    return Status::InvalidArgument("signature size must be positive");
  }
  if (config.threads > kMaxThreads) {
    return Status::InvalidArgument(
        "threads = " + std::to_string(config.threads) + " exceeds the sanity cap of " +
        std::to_string(kMaxThreads) + " (0 means serial execution)");
  }
  if (resources.tree != nullptr && resources.disk_tree != nullptr) {
    return Status::InvalidArgument(
        "both an in-memory and a file-backed tree were supplied; pick one");
  }
  const bool have_index = resources.tree != nullptr || resources.disk_tree != nullptr;
  if (config.siggen == SigGenMode::kIndexBased && !have_index) {
    return Status::InvalidArgument("index-based signature generation requires an R-tree");
  }
  if (config.kernel != DomKernel::kScalar && config.kernel != DomKernel::kTiled &&
      config.kernel != DomKernel::kSimd) {
    return Status::InvalidArgument("unknown dominance kernel value");
  }
  if (config.morsel_rows != 0) {
    if (config.morsel_rows % kTileRows != 0) {
      return Status::InvalidArgument(
          "morsel_rows = " + std::to_string(config.morsel_rows) +
          " is not tile-aligned (must be a multiple of " + std::to_string(kTileRows) +
          "; 0 means auto)");
    }
    if (config.morsel_rows > kMaxMorselRows) {
      return Status::InvalidArgument(
          "morsel_rows = " + std::to_string(config.morsel_rows) +
          " exceeds the sanity cap of " + std::to_string(kMaxMorselRows));
    }
  }
  // Shape-level query validation (dimensionality-independent — the engine
  // re-validates against the data's dims when it builds the view).
  SKYDIVER_RETURN_NOT_OK(ValidateQueryShape(config.query));
  const SkyQuery query = CanonicalShape(config.query);
  if (resources.precomputed_skyline != nullptr && !query.identity()) {
    return Status::InvalidArgument(
        "a precomputed skyline cannot serve a shaped query (constraint box, "
        "projection, or shards); recompute under the query instead");
  }
  const bool pooled = config.threads >= 1;

  Plan plan;
  plan.threads = config.threads;
  plan.query = query;
  // The missing-ISA half of the EffectiveKernel downgrade policy, applied
  // at plan time so the resolved plan (and its ExplainPlan rendering)
  // reflects what will actually run: simd is the default config value, but
  // a plan only carries it when the runtime CPU probe found a vector ISA.
  plan.kernel = config.kernel == DomKernel::kSimd && !SimdAvailable()
                    ? DomKernel::kTiled
                    : config.kernel;
  // Morsel size is a plan dimension only for pooled plans — serial plans
  // dispatch no morsels and carry 0 so equality/rendering never suggests
  // otherwise.
  plan.morsel_rows =
      pooled ? (config.morsel_rows == 0 ? kDefaultMorselRows : config.morsel_rows) : 0;

  if (resources.disk_tree != nullptr) {
    // Record the disk execution shape the tree was opened with, so the
    // resolved plan is self-describing (and ExplainPlan renders it).
    plan.disk_backend = resources.disk_tree->backend();
    plan.disk_prefetch = resources.disk_tree->prefetch_enabled();
  }

  if (resources.precomputed_skyline != nullptr) {
    plan.skyline = SkylineBackend::kPrecomputed;
  } else if (query.sharded()) {
    // An explicit shard count wins over the trees: the caller asked for the
    // partition/merge execution shape (the tree still serves IB
    // fingerprinting below).
    plan.skyline = SkylineBackend::kSharded;
  } else if (resources.disk_tree != nullptr) {
    plan.skyline = SkylineBackend::kBbsDisk;
  } else if (resources.tree != nullptr) {
    plan.skyline = SkylineBackend::kBbs;
  } else {
    plan.skyline = pooled ? SkylineBackend::kParallelSfs : SkylineBackend::kSfs;
  }

  const bool use_index =
      config.siggen == SigGenMode::kIndexBased ||
      (config.siggen == SigGenMode::kAuto && have_index);
  if (use_index) {
    if (resources.disk_tree != nullptr) {
      // The disk IB descent stays serial (one BFS over the page file); the
      // pinned PageCache is thread-safe now, but the pool's disk-path job
      // is async child prefetch, not a parallel traversal. The pool, if
      // any, still serves the other stages.
      plan.fingerprint = FingerprintBackend::kSigGenIbDisk;
    } else {
      plan.fingerprint =
          pooled ? FingerprintBackend::kParallelIb : FingerprintBackend::kSigGenIb;
    }
  } else {
    plan.fingerprint =
        pooled ? FingerprintBackend::kParallelIf : FingerprintBackend::kSigGenIf;
  }

  if (!run_selection) {
    plan.select = SelectBackend::kNone;
  } else {
    switch (config.select) {
      case SelectMode::kMinHash: plan.select = SelectBackend::kMinHash; break;
      case SelectMode::kLsh: plan.select = SelectBackend::kLsh; break;
      case SelectMode::kBruteForce: plan.select = SelectBackend::kBruteForce; break;
    }
  }
  return plan;
}

Result<SelectPlan> Planner::ResolveSelect(const QuerySpec& spec,
                                          size_t signature_size) {
  if (spec.k == 0) return Status::InvalidArgument("k must be positive");
  if (signature_size == 0) {
    return Status::InvalidArgument("signature size must be positive");
  }
  SelectPlan plan;
  switch (spec.mode) {
    case SelectMode::kMinHash:
      plan.backend = SelectBackend::kMinHash;
      break;
    case SelectMode::kBruteForce:
      plan.backend = SelectBackend::kBruteForce;
      break;
    case SelectMode::kLsh: {
      auto params = ChooseZones(signature_size, spec.lsh_threshold, spec.lsh_buckets);
      if (!params.ok()) return params.status();
      plan.backend = SelectBackend::kLsh;
      plan.lsh = params.value();
      break;
    }
  }
  return plan;
}

void DebugValidatePlan(const Plan& plan, const PlanResources& resources) {
#if SKYDIVER_DCHECK_ACTIVE_
  const bool pooled = plan.threads >= 1;
  SKYDIVER_DCHECK_LE(plan.threads, Planner::kMaxThreads);
  SKYDIVER_DCHECK(plan.kernel == DomKernel::kScalar ||
                      plan.kernel == DomKernel::kTiled ||
                      plan.kernel == DomKernel::kSimd,
                  "plan carries an unknown dominance kernel");
  // The downgrade policy is a planner postcondition: a plan may only carry
  // kSimd when the host's vector ISA probe succeeded (hand-rolled plans
  // get the same scrutiny — downgrade with EffectiveKernel first).
  SKYDIVER_DCHECK(plan.kernel != DomKernel::kSimd || SimdAvailable(),
                  "simd kernel plan on a host without a vector ISA");
  // Morsel-size postconditions: pooled plans carry a resolved tile-aligned
  // size, serial plans carry 0 (no morsel dispatch happens).
  if (pooled) {
    SKYDIVER_DCHECK(plan.morsel_rows != 0, "pooled plan without a morsel size");
    SKYDIVER_DCHECK_EQ(plan.morsel_rows % kTileRows, 0u);
    SKYDIVER_DCHECK_LE(plan.morsel_rows, Planner::kMaxMorselRows);
  } else {
    SKYDIVER_DCHECK_EQ(plan.morsel_rows, 0u);
  }
  switch (plan.skyline) {
    case SkylineBackend::kPrecomputed:
      SKYDIVER_DCHECK(resources.precomputed_skyline != nullptr,
                      "precomputed skyline backend without supplied rows");
      break;
    case SkylineBackend::kBbs:
      SKYDIVER_DCHECK(resources.tree != nullptr, "BBS backend without an R-tree");
      break;
    case SkylineBackend::kBbsDisk:
      SKYDIVER_DCHECK(resources.disk_tree != nullptr,
                      "disk BBS backend without a disk tree");
      // The plan's disk shape must describe the tree it will run over.
      SKYDIVER_DCHECK(resources.disk_tree == nullptr ||
                          (plan.disk_backend == resources.disk_tree->backend() &&
                           plan.disk_prefetch == resources.disk_tree->prefetch_enabled()),
                      "plan disk shape disagrees with the supplied disk tree");
      break;
    case SkylineBackend::kParallelSfs:
      SKYDIVER_DCHECK(pooled, "pooled skyline backend in a serial plan");
      break;
    case SkylineBackend::kSharded:
      SKYDIVER_DCHECK(plan.query.sharded(),
                      "sharded skyline backend without query.shards > 1");
      break;
    case SkylineBackend::kSfs:
      break;
  }
  SKYDIVER_DCHECK(resources.precomputed_skyline == nullptr || plan.query.identity(),
                  "precomputed skyline rows cannot serve a shaped query");
  switch (plan.fingerprint) {
    case FingerprintBackend::kSigGenIb:
      SKYDIVER_DCHECK(resources.tree != nullptr, "IB backend without an R-tree");
      break;
    case FingerprintBackend::kParallelIb:
      SKYDIVER_DCHECK(resources.tree != nullptr, "IB backend without an R-tree");
      SKYDIVER_DCHECK(pooled, "pooled fingerprint backend in a serial plan");
      break;
    case FingerprintBackend::kSigGenIbDisk:
      SKYDIVER_DCHECK(resources.disk_tree != nullptr,
                      "disk IB backend without a disk tree");
      break;
    case FingerprintBackend::kParallelIf:
      SKYDIVER_DCHECK(pooled, "pooled fingerprint backend in a serial plan");
      break;
    case FingerprintBackend::kSigGenIf:
      break;
  }
#else
  (void)plan;
  (void)resources;
#endif
}

std::string ExplainPlan(const Plan& plan, const SkyDiverConfig& config) {
  std::ostringstream out;
  out << "SkyDiver plan [threads=" << plan.threads << ", seed=" << config.seed
      << ", kernel=" << ToString(plan.kernel);
  if (plan.kernel == DomKernel::kSimd) out << "(" << ToString(DetectSimdIsa()) << ")";
  if (plan.threads >= 1) out << ", morsel=" << plan.morsel_rows;
  out << "]\n";

  out << "  query:          " << ToString(plan.query) << "\n";

  out << "  1. skyline:     " << ToString(plan.skyline);
  switch (plan.skyline) {
    case SkylineBackend::kPrecomputed:
      out << " (caller-supplied rows, phase skipped)";
      break;
    case SkylineBackend::kSfs:
      out << " (sort-filter scan, sequential I/O charge)";
      break;
    case SkylineBackend::kParallelSfs:
      out << " (" << plan.threads << "-way shard + merge, == sfs output)";
      break;
    case SkylineBackend::kSharded:
      out << " (" << plan.query.shards
          << "-way shard + cross-filter merge, == sfs output)";
      break;
    case SkylineBackend::kBbs:
      out << " (branch-and-bound over the aggregate R*-tree, bbs=corner-tiles)";
      break;
    case SkylineBackend::kBbsDisk:
      out << " (branch-and-bound over the file-backed tree, backend="
          << ToString(plan.disk_backend) << ", prefetch="
          << (plan.disk_prefetch ? "on" : "off") << ", bbs=corner-tiles)";
      break;
  }
  out << "\n";

  out << "  2. fingerprint: " << ToString(plan.fingerprint) << " (t="
      << config.signature_size;
  switch (plan.fingerprint) {
    case FingerprintBackend::kSigGenIf:
      out << ", one sequential data pass";
      break;
    case FingerprintBackend::kParallelIf:
      out << ", sharded min-merge, == siggen-if output";
      break;
    case FingerprintBackend::kSigGenIb:
      out << ", aggregate-tree descent with bulk MBR updates";
      break;
    case FingerprintBackend::kParallelIb:
      out << ", subtree-parallel, deterministic DFS permutation";
      break;
    case FingerprintBackend::kSigGenIbDisk:
      out << ", tree descent through the pinned page cache, backend="
          << ToString(plan.disk_backend);
      break;
  }
  out << ")\n";

  out << "  3. select:      " << ToString(plan.select);
  switch (plan.select) {
    case SelectBackend::kNone:
      out << " (fingerprint-only pipeline)";
      break;
    case SelectBackend::kMinHash:
      out << " (k=" << config.k << ", greedy 2-approx over estimated Jaccard)";
      break;
    case SelectBackend::kLsh:
      out << " (k=" << config.k << ", xi=" << config.lsh_threshold
          << ", B=" << config.lsh_buckets << ", Hamming on bit-vectors)";
      break;
    case SelectBackend::kBruteForce:
      out << " (k=" << config.k << ", exact k-MMDP over estimated Jaccard)";
      break;
  }
  out << "\n";
  return out.str();
}

}  // namespace skydiver
