// Engine — executes a resolved Plan as a sequence of pluggable stages.
//
// The three stages mirror the paper's pipeline:
//
//   SkylineStage      -> skyline rows           (SFS / parallel SFS / BBS /
//                                                disk BBS / precomputed)
//   FingerprintStage  -> MinHash signatures + exact domination scores
//                                               (SigGen-IF / -IB, pooled
//                                                variants, disk variant)
//   SelectStage       -> k diverse rows         (greedy MH / greedy LSH /
//                                                exact brute force; or
//                                                skipped for sessions)
//
// Every stage runs under QueryContext::RunStage, so all entry points get
// identical per-phase CPU/I-O accounting, cumulative IoStats, and trace
// events. The engine is the single place later scaling work (batched
// multi-query execution, signature caching, async stages) plugs into.
// Snapshot serving (engine/snapshot.h, serve/serve.h) reuses the
// fingerprint-only flavour of this pipeline (SelectBackend::kNone) and
// runs Phase 2 separately per query.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/phase_metrics.h"
#include "common/status.h"
#include "core/dataset.h"
#include "engine/query_context.h"
#include "engine/plan.h"
#include "minhash/minhash.h"

namespace skydiver {

/// Everything the pipeline produced, as reported to callers.
struct SkyDiverReport {
  /// The full skyline (row ids into the input dataset, ascending).
  std::vector<RowId> skyline;
  /// Selected diverse points as indices into `skyline`, in pick order.
  std::vector<size_t> selected;
  /// The same selection as row ids into the input dataset.
  std::vector<RowId> selected_rows;
  /// k-MMDP objective achieved under the working distance (estimated
  /// Jaccard for MH, Hamming for LSH).
  double objective = 0.0;

  PhaseMetrics skyline_phase;
  PhaseMetrics fingerprint_phase;
  PhaseMetrics selection_phase;

  size_t signature_memory_bytes = 0;
  size_t lsh_memory_bytes = 0;

  /// The plan this report was produced under, and its rendering — every
  /// entry point gets an explainable execution for free.
  Plan plan;
  std::string plan_explain;

  /// Convenience: fingerprint + selection total (the paper's reported
  /// 2-step cost, excluding skyline computation).
  double DiversificationSeconds(const CostModel& model) const {
    return fingerprint_phase.TotalSeconds(model) + selection_phase.TotalSeconds(model);
  }
};

/// The engine's full output: the user-facing report plus the Phase-1
/// products (signatures, domination scores) that sessions retain for
/// repeated Phase-2 queries.
struct EngineOutput {
  SkyDiverReport report;
  SignatureMatrix signatures;
  std::vector<uint64_t> domination_scores;
};

/// Executes plans. Stateless; all execution state lives in QueryContext.
class Engine {
 public:
  /// Runs `plan` over `data` inside `ctx`. `resources` must hold whatever
  /// the plan's backends need (the planner guarantees this when the plan
  /// came from `Planner::Resolve` with the same resources). `data` must be
  /// in minimization space.
  [[nodiscard]] static Result<EngineOutput> Execute(QueryContext& ctx, const Plan& plan,
                                      const SkyDiverConfig& config, const DataSet& data,
                                      const PlanResources& resources);
};

}  // namespace skydiver
