// QueryContext — the per-query half of the engine's execution state.
//
// One QueryContext spans one pipeline execution (a batch run, a snapshot
// build, or a single selection query): it owns the query's deterministic
// Rng, the cost model, cumulative I/O counters, per-stage PhaseMetrics,
// and a lightweight trace-event sink. The expensive shared resources —
// the worker ThreadPool — live in a `Runtime` (runtime.h) the context
// only references, so any number of concurrently-running contexts can
// draw from one pool while keeping their accounting private.
//
// Stages never time themselves — they run under `RunStage`, which measures
// CPU and wall time, folds the stage's I/O into the cumulative counters,
// and appends a trace event. That is what guarantees every entry point
// (batch, disk, session, serve, CLI) reports identical accounting.
//
// A QueryContext is NOT thread-safe: it belongs to exactly one query on
// one thread. Thread-shared state belongs in Runtime (immutable after
// construction) or SkySnapshot (frozen after build).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/io_stats.h"
#include "common/phase_metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "engine/plan.h"
#include "engine/runtime.h"
#include "parallel/thread_pool.h"

namespace skydiver {

class QueryContext {
 public:
  /// One completed stage, in execution order.
  struct TraceEvent {
    std::string stage;
    double cpu_seconds = 0.0;
    double wall_seconds = 0.0;
    IoStats io;
  };

  /// Per-query context drawing workers from `runtime` (must be non-null
  /// and outlive the context; shared_ptr makes that structural). `seed`
  /// seeds this query's private Rng.
  QueryContext(std::shared_ptr<const Runtime> runtime, const CostModel& cost_model,
               uint64_t seed)
      : runtime_(std::move(runtime)), cost_model_(cost_model), rng_(seed) {}

  /// Convenience for one-shot executions: builds a private Runtime sized
  /// by `config.threads` (serial configs spawn no threads).
  explicit QueryContext(const SkyDiverConfig& config)
      : QueryContext(Runtime::Create(config.threads), config.cost_model, config.seed) {}

  /// The shared worker pool, or nullptr for a serial runtime.
  ThreadPool* pool() const { return runtime_->pool(); }

  size_t threads() const { return runtime_->threads(); }
  const std::shared_ptr<const Runtime>& runtime() const { return runtime_; }
  Rng& rng() { return rng_; }
  const CostModel& cost_model() const { return cost_model_; }

  /// I/O accumulated by every stage run in this context.
  const IoStats& io_stats() const { return io_; }

  /// Stage metrics in execution order (name, metrics).
  const std::vector<std::pair<std::string, PhaseMetrics>>& phases() const {
    return phases_;
  }

  /// Trace events in execution order.
  const std::vector<TraceEvent>& trace() const { return trace_; }

  /// Runs `fn` as the stage `name`: measures its CPU/wall time, stores the
  /// stage's metrics (fn fills `out->io` itself) and appends a trace event.
  /// On failure nothing is recorded and the stage's status is returned.
  [[nodiscard]] Status RunStage(std::string_view name, PhaseMetrics* out,
                  const std::function<Status(PhaseMetrics*)>& fn);

 private:
  std::shared_ptr<const Runtime> runtime_;
  CostModel cost_model_;
  Rng rng_;
  IoStats io_;
  std::vector<std::pair<std::string, PhaseMetrics>> phases_;
  std::vector<TraceEvent> trace_;
};

}  // namespace skydiver
