#include "engine/snapshot.h"

#include <bit>
#include <limits>
#include <utility>

#include "common/check.h"
#include "diversify/brute_force.h"
#include "diversify/dispersion.h"
#include "engine/engine.h"
#include "engine/planner.h"
#include "lsh/lsh.h"
#include "parallel/parallel_ops.h"
#include "skyline/skyline.h"

namespace skydiver {

uint64_t BandingSeed(uint64_t snapshot_seed, const QuerySpec& spec) {
  // Boost-style hash mixing over the normalized spec. Normalization first:
  // non-LSH modes must not perturb the seed through stale LSH knobs (they
  // never draw banding salts, but the rule "equal queries, equal seeds"
  // should hold for the spec as cached, not as typed).
  const QuerySpec s = spec.Normalized();
  auto mix = [](uint64_t h, uint64_t v) {
    return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  uint64_t h = snapshot_seed;
  h = mix(h, static_cast<uint64_t>(s.mode));
  h = mix(h, static_cast<uint64_t>(s.k));
  h = mix(h, std::bit_cast<uint64_t>(s.lsh_threshold));
  h = mix(h, static_cast<uint64_t>(s.lsh_buckets));
  // Shaped queries fold their canonical key in; the identity query mixes
  // nothing so historical seeds (and cached selections) are preserved.
  if (!s.query.identity()) {
    for (const char c : QueryKey(s.query)) {
      h = mix(h, static_cast<uint64_t>(static_cast<unsigned char>(c)));
    }
  }
  return h;
}

Result<std::shared_ptr<const SkySnapshot>> SkySnapshot::Build(
    const DataSet& data, const SkyDiverConfig& config, const PlanResources& resources,
    std::shared_ptr<const Runtime> runtime) {
  auto plan = Planner::Resolve(config, resources, /*run_selection=*/false);
  if (!plan.ok()) return plan.status();

  if (runtime == nullptr) runtime = Runtime::Create(config.threads);
  QueryContext ctx(runtime, config.cost_model, config.seed);
  auto output = Engine::Execute(ctx, plan.value(), config, data, resources);
  if (!output.ok()) return output.status();
  EngineOutput out = std::move(output).value();

  std::shared_ptr<SkySnapshot> snap(new SkySnapshot());
  snap->skyline_ = std::move(out.report.skyline);
  snap->scores_ = std::move(out.domination_scores);
  snap->signatures_ = std::move(out.signatures);
  snap->seed_ = config.seed;
  snap->info_.plan = out.report.plan;
  snap->info_.plan_explain = std::move(out.report.plan_explain);
  snap->info_.skyline_phase = out.report.skyline_phase;
  snap->info_.fingerprint_phase = out.report.fingerprint_phase;
  snap->info_.io = ctx.io_stats();
  snap->tiles_ = MaterializeTiles(data, snap->skyline_);
  snap->Freeze();
  return std::shared_ptr<const SkySnapshot>(std::move(snap));
}

Result<std::shared_ptr<const SkySnapshot>> SkySnapshot::Adopt(
    std::vector<RowId> skyline, std::vector<uint64_t> domination_scores,
    SignatureMatrix signatures, uint64_t seed, const DataSet* data) {
  // Without the dataset the universe size is unknown; range-check against
  // the widest possible id space and rely on ascending/duplicate checks.
  const size_t n = data != nullptr ? data->size()
                                   : static_cast<size_t>(std::numeric_limits<RowId>::max());
  SKYDIVER_RETURN_NOT_OK(ValidateSkylineRows(skyline, n));
  const size_t m = skyline.size();
  if (domination_scores.size() != m) {
    return Status::InvalidArgument(
        "domination score count " + std::to_string(domination_scores.size()) +
        " does not match skyline cardinality " + std::to_string(m));
  }
  if (signatures.columns() != m) {
    return Status::InvalidArgument("signature matrix has " +
                                   std::to_string(signatures.columns()) +
                                   " columns for a skyline of " + std::to_string(m));
  }
  if (signatures.signature_size() == 0) {
    return Status::InvalidArgument("signature size must be positive");
  }

  std::shared_ptr<SkySnapshot> snap(new SkySnapshot());
  snap->skyline_ = std::move(skyline);
  snap->scores_ = std::move(domination_scores);
  snap->signatures_ = std::move(signatures);
  snap->seed_ = seed;
  snap->info_.plan.skyline = SkylineBackend::kPrecomputed;
  snap->info_.plan.select = SelectBackend::kNone;
  snap->info_.plan_explain = "adopted snapshot (externally produced fingerprints)";
  if (data != nullptr) snap->tiles_ = MaterializeTiles(*data, snap->skyline_);
  snap->Freeze();
  return std::shared_ptr<const SkySnapshot>(std::move(snap));
}

void SkySnapshot::Freeze() {
  tiles_.Freeze();
  frozen_ = true;
}

Result<QueryResult> SkySnapshot::Select(const QuerySpec& spec, QueryContext& ctx) const {
  auto plan = Planner::ResolveSelect(spec, signatures_.signature_size());
  if (!plan.ok()) return plan.status();
  return Select(spec, plan.value(), ctx);
}

Result<QueryResult> SkySnapshot::Select(const QuerySpec& spec, const SelectPlan& plan,
                                        QueryContext& ctx) const {
  SKYDIVER_CHECK(frozen_, "Select on an unfrozen snapshot");
  const size_t m = skyline_.size();
  if (spec.k > m) {
    return Status::InvalidArgument("k = " + std::to_string(spec.k) +
                                   " exceeds skyline cardinality m = " +
                                   std::to_string(m));
  }

  QueryResult result;
  PhaseMetrics metrics;
  SKYDIVER_RETURN_NOT_OK(ctx.RunStage("select", &metrics, [&](PhaseMetrics*) -> Status {
    // Greedy k-MMDP, morsel-parallel when the runtime has a pool; the
    // pooled argmax is bit-identical to the serial scan (parallel_ops.h),
    // so cached results and serial/concurrent parity are unaffected.
    ThreadPool* pool = ctx.pool();
    const auto greedy = [&](const DistanceFn& distance) {
      return pool != nullptr
                 ? ParallelSelectDiverseSet(m, spec.k, distance, scores_, *pool)
                 : SelectDiverseSet(m, spec.k, distance, scores_);
    };
    Result<DispersionResult> selection = Status::Internal("unset");
    switch (plan.backend) {
      case SelectBackend::kNone:
        return Status::Internal("snapshot queries always select");
      case SelectBackend::kMinHash: {
        auto distance = [&](size_t a, size_t b) {
          return signatures_.EstimatedDistance(a, b);
        };
        selection = greedy(distance);
        break;
      }
      case SelectBackend::kLsh: {
        // Banding salts derive from (snapshot seed, full query spec) — see
        // BandingSeed. Every thread issuing this spec builds the identical
        // index, so concurrent answers are bit-identical to serial ones.
        auto built = LshIndex::Build(signatures_, plan.lsh, BandingSeed(seed_, spec));
        if (!built.ok()) return built.status();
        const LshIndex index = std::move(built).value();
        result.lsh_memory_bytes = index.MemoryBytes();
        auto distance = [&](size_t a, size_t b) { return index.Distance(a, b); };
        selection = greedy(distance);
        break;
      }
      case SelectBackend::kBruteForce: {
        auto distance = [&](size_t a, size_t b) {
          return signatures_.EstimatedDistance(a, b);
        };
        selection = BruteForceMaxMin(m, spec.k, distance);
        break;
      }
    }
    if (!selection.ok()) return selection.status();
    result.selected = std::move(selection.value().selected);
    result.objective = selection.value().min_pairwise;
    result.rows.reserve(result.selected.size());
    for (size_t idx : result.selected) result.rows.push_back(skyline_[idx]);
    return Status::OK();
  }));
  return result;
}

}  // namespace skydiver
