#include "engine/engine.h"

#include <algorithm>
#include <memory>

#include "diversify/brute_force.h"
#include "diversify/dispersion.h"
#include "engine/planner.h"
#include "lsh/lsh.h"
#include "minhash/siggen.h"
#include "parallel/parallel_ops.h"
#include "rtree/disk_rtree.h"
#include "rtree/rtree.h"
#include "skyline/skyline.h"

namespace skydiver {

namespace {

// Mutable state threaded through the stages of one execution.
struct PipelineState {
  const SkyDiverConfig& config;
  const DataSet& data;
  const PlanResources& res;
  const MinHashFamily family;
  // Query-scoped view every skyline backend computes over (identity for
  // unshaped runs — bit-identical to the historical full-space paths).
  const DataView view;
  EngineOutput out;
};

// One pipeline stage. Stages read and extend PipelineState; they fill
// `metrics->io` themselves (CPU time is measured by QueryContext).
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const = 0;
  virtual Status Run(QueryContext& ctx, PipelineState& state, PhaseMetrics* metrics) = 0;
};

// Requires the pooled backends' pool to exist (the planner only emits
// pooled backends for pooled configs, so a miss means plan/context skew).
Result<ThreadPool*> RequirePool(QueryContext& ctx, const char* backend) {
  ThreadPool* pool = ctx.pool();
  if (pool == nullptr) {
    return Status::Internal(std::string(backend) +
                            " requires a pooled Runtime (config.threads >= 1)");
  }
  return pool;
}

// Computes (or adopts) the skyline rows and charges the phase's I/O.
class SkylineStage : public Stage {
 public:
  SkylineStage(SkylineBackend backend, DomKernel kernel, size_t morsel_rows)
      : backend_(backend), kernel_(kernel), morsel_rows_(morsel_rows) {}
  const char* name() const override { return "skyline"; }

  Status Run(QueryContext& ctx, PipelineState& state, PhaseMetrics* metrics) override {
    auto& skyline = state.out.report.skyline;
    switch (backend_) {
      case SkylineBackend::kPrecomputed: {
        skyline = *state.res.precomputed_skyline;
        std::sort(skyline.begin(), skyline.end());
        // Caller-supplied rows skip the computation but not the scrutiny:
        // out-of-range or duplicate ids would corrupt the fingerprints.
        return ValidateSkylineRows(skyline, state.data.size());
      }
      case SkylineBackend::kSfs: {
        skyline = SkylineSFS(state.view, kernel_).rows;
        ChargeSequentialScan(state, metrics);
        return Status::OK();
      }
      case SkylineBackend::kParallelSfs: {
        auto pool = RequirePool(ctx, "parallel-sfs");
        if (!pool.ok()) return pool.status();
        skyline = ParallelSkyline(state.view, **pool, kernel_, morsel_rows_).rows;
        // Same logical cost as the serial scan: every shard together reads
        // the data file exactly once.
        ChargeSequentialScan(state, metrics);
        return Status::OK();
      }
      case SkylineBackend::kSharded: {
        // Pooled when a pool exists, serial otherwise — the result set is
        // merge-order independent either way.
        skyline = ShardedSkyline(state.view, state.view.query().shards, ctx.pool(),
                                 kernel_)
                      .rows;
        ChargeSequentialScan(state, metrics);
        return Status::OK();
      }
      case SkylineBackend::kBbs:
        return RunBbs(state, *state.res.tree, metrics);
      case SkylineBackend::kBbsDisk:
        return RunBbs(state, *state.res.disk_tree, metrics);
    }
    return Status::Internal("unknown skyline backend");
  }

 private:
  static void ChargeSequentialScan(const PipelineState& state, PhaseMetrics* metrics) {
    const uint64_t pages =
        SequentialScanPages(state.data.size(), state.data.dims(), 4096);
    metrics->io.page_reads = pages;
    metrics->io.page_faults = pages;
  }

  template <typename Tree>
  Status RunBbs(PipelineState& state, const Tree& tree, PhaseMetrics* metrics) {
    const IoStats before = tree.io_stats();
    auto result = SkylineBBS(state.view, tree, kernel_);
    if (!result.ok()) return result.status();
    state.out.report.skyline = std::move(result.value().rows);
    const IoStats after = tree.io_stats();
    metrics->io.page_reads = after.page_reads - before.page_reads;
    metrics->io.page_faults = after.page_faults - before.page_faults;
    return Status::OK();
  }

  SkylineBackend backend_;
  DomKernel kernel_;
  size_t morsel_rows_;
};

// Builds the MinHash signatures and exact domination scores (Phase 1).
// The IF backends take the plan's kernel; the IB descent is tree-shaped
// (corner tests against MBRs, not point blocks), so it stays scalar.
class FingerprintStage : public Stage {
 public:
  FingerprintStage(FingerprintBackend backend, DomKernel kernel, size_t morsel_rows)
      : backend_(backend), kernel_(kernel), morsel_rows_(morsel_rows) {}
  const char* name() const override { return "fingerprint"; }

  Status Run(QueryContext& ctx, PipelineState& state, PhaseMetrics* metrics) override {
    const auto& skyline = state.out.report.skyline;
    Result<SigGenResult> result = Status::Internal("unset");
    switch (backend_) {
      case FingerprintBackend::kSigGenIf:
        result = SigGenIF(state.data, skyline, state.family, kernel_);
        break;
      case FingerprintBackend::kParallelIf: {
        auto pool = RequirePool(ctx, "parallel-siggen-if");
        if (!pool.ok()) return pool.status();
        result = ParallelSigGenIF(state.data, skyline, state.family, **pool, kernel_,
                                  morsel_rows_);
        break;
      }
      case FingerprintBackend::kSigGenIb:
        result = SigGenIB(state.data, skyline, state.family, *state.res.tree);
        break;
      case FingerprintBackend::kParallelIb: {
        auto pool = RequirePool(ctx, "parallel-siggen-ib");
        if (!pool.ok()) return pool.status();
        result =
            ParallelSigGenIB(state.data, skyline, state.family, *state.res.tree, **pool);
        break;
      }
      case FingerprintBackend::kSigGenIbDisk:
        result = SigGenIB(state.data, skyline, state.family, *state.res.disk_tree);
        break;
    }
    if (!result.ok()) return result.status();
    state.out.signatures = std::move(result.value().signatures);
    state.out.domination_scores = std::move(result.value().domination_scores);
    state.out.report.signature_memory_bytes = state.out.signatures.MemoryBytes();
    metrics->io = result.value().io;
    return Status::OK();
  }

 private:
  FingerprintBackend backend_;
  DomKernel kernel_;
  size_t morsel_rows_;
};

// Greedy (or exact) k-MMDP selection over the fingerprints (Phase 2).
class SelectStage : public Stage {
 public:
  SelectStage(SelectBackend backend, size_t morsel_rows)
      : backend_(backend), morsel_rows_(morsel_rows) {}
  const char* name() const override { return "select"; }

  Status Run(QueryContext& ctx, PipelineState& state, PhaseMetrics* metrics) override {
    (void)metrics;  // selection is CPU-only
    auto& report = state.out.report;
    const size_t m = report.skyline.size();
    const SignatureMatrix& signatures = state.out.signatures;

    // The batch path and the per-query serving path resolve selection
    // through the same planner hook, so validation cannot drift.
    QuerySpec spec;
    spec.mode = state.config.select;
    spec.k = state.config.k;
    spec.lsh_threshold = state.config.lsh_threshold;
    spec.lsh_buckets = state.config.lsh_buckets;

    Result<DispersionResult> selection = Status::Internal("unset");
    switch (backend_) {
      case SelectBackend::kNone:
        return Status::OK();
      case SelectBackend::kMinHash: {
        auto distance = [&](size_t a, size_t b) {
          return signatures.EstimatedDistance(a, b);
        };
        selection = Select(ctx, state, m, distance);
        break;
      }
      case SelectBackend::kLsh: {
        auto plan = Planner::ResolveSelect(spec, state.config.signature_size);
        if (!plan.ok()) return plan.status();
        // The batch pipeline's historical banding seed. The serving path
        // (SkySnapshot::Select) instead derives it from the full query
        // spec via BandingSeed — see engine/snapshot.h.
        auto built =
            LshIndex::Build(signatures, plan.value().lsh, state.config.seed ^ 0xdecaf);
        if (!built.ok()) return built.status();
        const LshIndex index = std::move(built).value();
        report.lsh_memory_bytes = index.MemoryBytes();
        auto distance = [&](size_t a, size_t b) { return index.Distance(a, b); };
        selection = Select(ctx, state, m, distance);
        break;
      }
      case SelectBackend::kBruteForce: {
        auto distance = [&](size_t a, size_t b) {
          return signatures.EstimatedDistance(a, b);
        };
        selection = BruteForceMaxMin(m, state.config.k, distance);
        break;
      }
    }
    if (!selection.ok()) return selection.status();
    report.selected = std::move(selection.value().selected);
    report.objective = selection.value().min_pairwise;
    report.selected_rows.reserve(report.selected.size());
    for (size_t idx : report.selected) {
      report.selected_rows.push_back(report.skyline[idx]);
    }
    return Status::OK();
  }

 private:
  // Greedy k-MMDP, morsel-parallel when the runtime has a pool — the
  // pooled argmax is bit-identical to the serial scan (parallel_ops.h),
  // so the two paths are interchangeable per plan. The distances above
  // are pure reads of frozen matrices, safe for concurrent evaluation.
  Result<DispersionResult> Select(QueryContext& ctx, PipelineState& state, size_t m,
                                  const DistanceFn& distance) const {
    ThreadPool* pool = ctx.pool();
    if (pool != nullptr) {
      return ParallelSelectDiverseSet(m, state.config.k, distance,
                                      state.out.domination_scores, *pool,
                                      morsel_rows_);
    }
    return SelectDiverseSet(m, state.config.k, distance, state.out.domination_scores);
  }

  SelectBackend backend_;
  size_t morsel_rows_;
};

// Validates the data-dependent invariants the planner cannot see.
Status ValidateInputs(const Plan& plan, const DataSet& data,
                      const PlanResources& res) {
  if (data.empty()) return Status::InvalidArgument("dataset is empty");
  if (res.tree != nullptr &&
      (res.tree->dims() != data.dims() || res.tree->size() != data.size())) {
    return Status::InvalidArgument("R-tree does not index the given dataset");
  }
  if (res.disk_tree != nullptr &&
      (res.disk_tree->dims() != data.dims() || res.disk_tree->size() != data.size())) {
    return Status::InvalidArgument("R-tree does not index the given dataset");
  }
  const bool needs_precomputed = plan.skyline == SkylineBackend::kPrecomputed;
  if (needs_precomputed && res.precomputed_skyline == nullptr) {
    return Status::Internal("plan expects a precomputed skyline but none was supplied");
  }
  return Status::OK();
}

}  // namespace

Result<EngineOutput> Engine::Execute(QueryContext& ctx, const Plan& plan,
                                     const SkyDiverConfig& config, const DataSet& data,
                                     const PlanResources& resources) {
  DebugValidatePlan(plan, resources);
  SKYDIVER_RETURN_NOT_OK(ValidateInputs(plan, data, resources));

  // Finish query normalization against the concrete dimensionality (the
  // planner only ran the data-independent shape checks).
  auto query = NormalizeQuery(plan.query, data.dims());
  if (!query.ok()) return query.status();

  PipelineState state{
      config, data, resources,
      MinHashFamily::Create(config.signature_size, data.size(), config.seed),
      DataView(data, query.value()), EngineOutput{}};
  state.out.report.plan = plan;
  state.out.report.plan.query = std::move(query).value();
  state.out.report.plan_explain = ExplainPlan(state.out.report.plan, config);

  SkylineStage skyline_stage(plan.skyline, plan.kernel, plan.morsel_rows);
  SKYDIVER_RETURN_NOT_OK(ctx.RunStage(skyline_stage.name(),
                                      &state.out.report.skyline_phase,
                                      [&](PhaseMetrics* metrics) {
                                        return skyline_stage.Run(ctx, state, metrics);
                                      }));

  // A constraint box may exclude every point; downstream fingerprinting
  // requires a non-empty skyline, so fail with the real cause here.
  if (state.out.report.skyline.empty()) {
    return Status::InvalidArgument(
        "the query's constraint box excludes every point: the skyline is "
        "empty");
  }

  // k is only meaningful when a selection will run (sessions defer it).
  const size_t m = state.out.report.skyline.size();
  if (plan.select != SelectBackend::kNone && config.k > m) {
    return Status::InvalidArgument("k = " + std::to_string(config.k) +
                                   " exceeds skyline cardinality m = " +
                                   std::to_string(m));
  }

  FingerprintStage fingerprint_stage(plan.fingerprint, plan.kernel, plan.morsel_rows);
  SKYDIVER_RETURN_NOT_OK(ctx.RunStage(
      fingerprint_stage.name(), &state.out.report.fingerprint_phase,
      [&](PhaseMetrics* metrics) { return fingerprint_stage.Run(ctx, state, metrics); }));

  if (plan.select != SelectBackend::kNone) {
    SelectStage select_stage(plan.select, plan.morsel_rows);
    SKYDIVER_RETURN_NOT_OK(ctx.RunStage(
        select_stage.name(), &state.out.report.selection_phase,
        [&](PhaseMetrics* metrics) { return select_stage.Run(ctx, state, metrics); }));
  }
  return std::move(state.out);
}

}  // namespace skydiver
