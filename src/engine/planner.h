// Planner — resolves a SkyDiverConfig plus available resources into an
// executable Plan, and renders plans for humans.
//
// The planner owns every "which backend?" decision that used to be
// hand-wired into SkyDiver::Run / RunOnDisk / SkyDiverSession / the CLI:
//
//   * skyline: precomputed rows > file-backed BBS > in-memory BBS >
//     pooled sharded SFS > serial SFS;
//   * fingerprint: the config's SigGenMode (kAuto prefers a tree when one
//     is supplied), with the pooled variants picked automatically when
//     config.threads >= 1;
//   * selection: the config's SelectMode, or none for fingerprint-only
//     pipelines (sessions).
//
// Config validation lives here, so every entry point rejects bad configs
// identically.

#pragma once

#include <string>

#include "common/status.h"
#include "engine/plan.h"
#include "lsh/lsh.h"

namespace skydiver {

/// A resolved Phase-2-only plan: the selection backend plus, under LSH,
/// the banding it will run with. Depends only on (mode, t, ξ, B) — never
/// on k or the seed — so a serving layer can cache one per query
/// configuration and reuse it across every k (see serve/serve.h).
struct SelectPlan {
  SelectBackend backend = SelectBackend::kMinHash;
  LshParams lsh;  ///< Meaningful only when backend == kLsh.
};

/// Resolves configs + resources into plans.
class Planner {
 public:
  /// Upper bound on `SkyDiverConfig::threads` (sanity cap; a pool wider
  /// than this is a config bug, not a deployment).
  static constexpr size_t kMaxThreads = 512;

  /// Upper bound on `SkyDiverConfig::morsel_rows` (sanity cap: one claim
  /// covering 2^20 rows is a static chunking, not morsel dispatch).
  static constexpr size_t kMaxMorselRows = 1u << 20;

  /// Validates `config` against `resources` and picks one backend per
  /// stage. With `run_selection == false` the plan stops after
  /// fingerprinting (`SelectBackend::kNone`) and `config.k` is ignored.
  [[nodiscard]] static Result<Plan> Resolve(const SkyDiverConfig& config,
                              const PlanResources& resources,
                              bool run_selection = true);

  /// Resolves one selection query's spec against signatures of size
  /// `signature_size` into a SelectPlan. Owns the per-query validation
  /// (positive k, a viable LSH banding) the same way Resolve owns the
  /// pipeline validation; k-vs-skyline-cardinality is checked at
  /// execution time, where m is known.
  [[nodiscard]] static Result<SelectPlan> ResolveSelect(const QuerySpec& spec,
                                          size_t signature_size);
};

/// Human-readable rendering of a resolved plan — one line per stage with
/// the backend and its key knobs. Stable enough to grep in CLI output,
/// not a machine interface.
std::string ExplainPlan(const Plan& plan, const SkyDiverConfig& config);

/// Debug-only verifier of planner postconditions: every resource a backend
/// needs is present (BBS => tree, disk BBS/IB => disk tree, precomputed =>
/// rows), pooled backends appear only in pooled plans, and the kernel is a
/// known value. Compiled out under NDEBUG; the engine runs it on every
/// plan it is handed, so hand-rolled plans get the same scrutiny as
/// planner output.
void DebugValidatePlan(const Plan& plan, const PlanResources& resources);

}  // namespace skydiver
