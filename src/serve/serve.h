// Concurrent query serving over a frozen SkySnapshot.
//
// The snapshot/query split (engine/snapshot.h) makes Phase 1 shareable;
// this layer adds the serving loop on top: one `SkyServer` wraps one
// snapshot and answers SelectMinHash / SelectLsh / varying-k queries from
// any number of client threads, with two small caches in front of the
// compute path:
//
//   * plan cache — keyed by (mode, ξ, B): the resolved SelectPlan (backend
//     + ChooseZones banding geometry). Independent of k and of the seed,
//     so one entry serves every k at that query configuration.
//   * result cache — keyed by the full normalized QuerySpec: the finished
//     QueryResult, shared by pointer. Capacity 0 disables it (benchmarks
//     measuring compute want every query cold).
//
// Correctness contract: caching is invisible. A hit returns a pointer to
// a result bit-identical to what recomputing would produce — guaranteed
// because snapshot selection is deterministic per spec (BandingSeed) —
// and concurrent clients get answers bit-identical to the serial path
// (tests/serve_test.cc, also under TSan).
//
// `ServeLoop` drives a fixed query schedule from N client threads with a
// deterministic slot→client partition, so the produced results are
// comparable across client counts; `bench_serve` uses it for the QPS
// scaling experiment.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "engine/runtime.h"
#include "engine/snapshot.h"
#include "stream/streaming.h"

namespace skydiver {

/// Server tuning knobs.
struct ServeOptions {
  /// Max distinct specs the result cache retains (FIFO eviction).
  /// 0 disables result caching entirely.
  size_t result_cache_capacity = 256;
};

/// Cumulative serving counters (one server lifetime).
struct ServeStats {
  uint64_t queries = 0;       ///< Query() calls that returned OK.
  uint64_t result_hits = 0;   ///< answered straight from the result cache
  uint64_t result_misses = 0; ///< computed (and, capacity permitting, cached)
  uint64_t plan_hits = 0;     ///< (mode, ξ, B) already resolved
  uint64_t plan_misses = 0;   ///< resolved via Planner::ResolveSelect
};

/// A queryable server around one frozen snapshot. All methods are
/// thread-safe; the caches are the only mutable state and sit behind one
/// mutex (the guarded sections are map lookups and pointer copies — the
/// selection compute runs outside the lock, so clients only serialize on
/// bookkeeping, not on work).
class SkyServer {
 public:
  /// Serves `snapshot` (must be non-null and frozen). `runtime` seeds the
  /// per-query contexts' pool reference; the default serial runtime is
  /// right for serving, where parallelism comes from the clients.
  explicit SkyServer(std::shared_ptr<const SkySnapshot> snapshot,
                     ServeOptions options = {},
                     std::shared_ptr<const Runtime> runtime = nullptr);

  /// Answers one query. Results are shared, immutable, and safe to hold
  /// beyond the server's lifetime.
  [[nodiscard]] Result<std::shared_ptr<const QueryResult>> Query(const QuerySpec& spec);

  const std::shared_ptr<const SkySnapshot>& snapshot() const { return snapshot_; }

  /// A consistent copy of the counters.
  ServeStats stats() const;

 private:
  using PlanKey = std::tuple<int, double, size_t>;          // (mode, ξ, B)
  using ResultKey = std::tuple<int, size_t, double, size_t>; // + k

  std::shared_ptr<const SkySnapshot> snapshot_;
  ServeOptions options_;
  std::shared_ptr<const Runtime> runtime_;

  mutable std::mutex mutex_;
  std::map<PlanKey, SelectPlan> plan_cache_;
  std::map<ResultKey, std::shared_ptr<const QueryResult>> result_cache_;
  std::deque<ResultKey> result_fifo_;  // insertion order, for eviction
  ServeStats stats_;
};

/// One ServeLoop execution's products.
struct ServeLoopReport {
  /// Per-slot results, in schedule order (slot i answered schedule[i]).
  std::vector<std::shared_ptr<const QueryResult>> results;
  /// Per-slot wall latency in milliseconds, in schedule order.
  std::vector<double> latencies_ms;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Server counters after the loop (cumulative if the server was reused).
  ServeStats stats;
};

/// Replays `schedule` against `server` from `client_threads` concurrent
/// clients (>= 1). Slot i is answered by client i % client_threads — a
/// deterministic partition, so per-slot results are comparable across any
/// two client counts (and against a serial reference). Fails fast on the
/// first failed query. Client workers run on a private ThreadPool.
[[nodiscard]] Result<ServeLoopReport> ServeLoop(SkyServer& server,
                                                std::span<const QuerySpec> schedule,
                                                size_t client_threads);

/// Freezes the live fingerprints of a streaming monitor into a servable
/// snapshot (skyline tiles included, since the stream holds its data).
/// The snapshot is a copy: the stream can keep inserting afterwards.
[[nodiscard]] Result<std::shared_ptr<const SkySnapshot>> SnapshotOfStream(
    const StreamingSkyDiver& stream);

}  // namespace skydiver
