// Concurrent query serving over frozen SkySnapshots.
//
// The snapshot/query split (engine/snapshot.h) makes Phase 1 shareable;
// this layer adds the serving loop on top: one `SkyServer` answers
// SelectMinHash / SelectLsh / varying-k queries from any number of client
// threads, with small caches in front of the compute path:
//
//   * plan cache — keyed by (mode, ξ, B): the resolved SelectPlan (backend
//     + ChooseZones banding geometry). Independent of k and of the seed,
//     so one entry serves every k at that query configuration.
//   * result cache — keyed by the full normalized QuerySpec (including its
//     SkyQuery shape): the finished QueryResult, shared by pointer. LRU
//     with touch-on-hit, so a steadily-queried spec never ages out under a
//     churn of one-off specs. Capacity 0 disables it (benchmarks measuring
//     compute want every query cold).
//   * snapshot cache — data-backed servers only, keyed by the normalized
//     SkyQuery: the frozen Phase-1 snapshot for each query shape
//     (constraint box / projection / shards). LRU; the identity snapshot
//     is pinned outside the cache and never evicted.
//
// A server constructed from one snapshot serves exactly that snapshot's
// shape and REJECTS specs carrying a different SkyQuery (it has no data to
// rebuild from). A server created from a dataset (SkyServer::Create)
// builds query-shaped snapshots on demand.
//
// Correctness contract: caching is invisible. A hit returns a pointer to
// a result bit-identical to what recomputing would produce — guaranteed
// because snapshot selection is deterministic per spec (BandingSeed) —
// and concurrent clients get answers bit-identical to the serial path
// (tests/serve_test.cc, also under TSan).
//
// `ServeLoop` drives a fixed query schedule from N client threads with a
// deterministic slot→client partition, so the produced results are
// comparable across client counts; `bench_serve` uses it for the QPS
// scaling experiment.

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/dataset.h"
#include "engine/runtime.h"
#include "engine/snapshot.h"
#include "serve/lru_cache.h"
#include "stream/streaming.h"

namespace skydiver {

/// Server tuning knobs.
struct ServeOptions {
  /// Max distinct specs the result cache retains (LRU, touch-on-hit).
  /// 0 disables result caching entirely.
  size_t result_cache_capacity = 256;
  /// Max non-identity query-shaped snapshots a data-backed server retains
  /// (LRU). The identity snapshot is pinned and not counted. 0 disables
  /// shaped-snapshot caching (every shaped query rebuilds Phase 1).
  size_t snapshot_cache_capacity = 8;
};

/// Cumulative serving counters (one server lifetime).
struct ServeStats {
  uint64_t queries = 0;         ///< Query() calls that returned OK.
  uint64_t result_hits = 0;     ///< answered straight from the result cache
  uint64_t result_misses = 0;   ///< computed (and, capacity permitting, cached)
  uint64_t plan_hits = 0;       ///< (mode, ξ, B) already resolved
  uint64_t plan_misses = 0;     ///< resolved via Planner::ResolveSelect
  uint64_t snapshot_hits = 0;   ///< shaped snapshot already built
  uint64_t snapshot_misses = 0; ///< shaped snapshot built (Phase 1 ran)
};

/// A queryable server. All methods are thread-safe; the caches are the
/// only mutable state and sit behind one mutex (the guarded sections are
/// map lookups and pointer copies — selection compute and snapshot builds
/// run outside the lock, so clients only serialize on bookkeeping, not on
/// work).
class SkyServer {
 public:
  /// Serves one frozen `snapshot` (must be non-null and frozen). Specs
  /// whose SkyQuery differs from the snapshot's are rejected — there is no
  /// dataset to rebuild from. `runtime` seeds the per-query contexts' pool
  /// reference; the default serial runtime is right for serving, where
  /// parallelism comes from the clients.
  explicit SkyServer(std::shared_ptr<const SkySnapshot> snapshot,
                     ServeOptions options = {},
                     std::shared_ptr<const Runtime> runtime = nullptr);

  /// Data-backed server: builds the identity snapshot eagerly (through
  /// `config`, whose own `query` field must be identity) and query-shaped
  /// snapshots on demand, caching them by normalized SkyQuery. `data` and
  /// any resources must outlive the server.
  [[nodiscard]] static Result<std::unique_ptr<SkyServer>> Create(
      const DataSet& data, const SkyDiverConfig& config,
      const PlanResources& resources = {}, ServeOptions options = {},
      std::shared_ptr<const Runtime> runtime = nullptr);

  /// Answers one query. Results are shared, immutable, and safe to hold
  /// beyond the server's lifetime.
  [[nodiscard]] Result<std::shared_ptr<const QueryResult>> Query(const QuerySpec& spec);

  /// The identity (pinned) snapshot.
  const std::shared_ptr<const SkySnapshot>& snapshot() const { return snapshot_; }

  /// A consistent copy of the counters.
  ServeStats stats() const;

 private:
  using PlanKey = std::tuple<int, double, size_t>;  // (mode, ξ, B)
  // (query shape, mode, k, ξ, B) — the full normalized spec.
  using ResultKey = std::tuple<std::string, int, size_t, double, size_t>;

  SkyServer(std::shared_ptr<const SkySnapshot> snapshot, ServeOptions options,
            std::shared_ptr<const Runtime> runtime, const DataSet* data,
            SkyDiverConfig config, PlanResources resources);

  /// Resolves the snapshot serving `query` (already canonicalized by
  /// QuerySpec::Normalized): the pinned identity snapshot, a snapshot-cache
  /// hit, or a fresh Phase-1 build (outside the lock; concurrent misses on
  /// the same shape may build twice — identical bits, first insert wins).
  Result<std::shared_ptr<const SkySnapshot>> SnapshotFor(const SkyQuery& query);

  std::shared_ptr<const SkySnapshot> snapshot_;
  ServeOptions options_;
  std::shared_ptr<const Runtime> runtime_;

  // Data-backed mode only (nullptr data_ = single-snapshot mode).
  const DataSet* data_ = nullptr;
  SkyDiverConfig config_;
  PlanResources resources_;

  // The server's one capability. The caches are externally-locked
  // containers (see lru_cache.h): GUARDED_BY here is what makes a
  // lock-free touch a clang -Wthread-safety error, since the analysis
  // cannot see through the container's own methods.
  mutable Mutex mutex_;
  std::map<PlanKey, SelectPlan> plan_cache_ SKYDIVER_GUARDED_BY(mutex_);
  LruCache<ResultKey, std::shared_ptr<const QueryResult>> result_cache_
      SKYDIVER_GUARDED_BY(mutex_);
  LruCache<std::string, std::shared_ptr<const SkySnapshot>> snapshot_cache_
      SKYDIVER_GUARDED_BY(mutex_);
  ServeStats stats_ SKYDIVER_GUARDED_BY(mutex_);
};

/// One ServeLoop execution's products.
struct ServeLoopReport {
  /// Per-slot results, in schedule order (slot i answered schedule[i]).
  std::vector<std::shared_ptr<const QueryResult>> results;
  /// Per-slot wall latency in milliseconds, in schedule order.
  std::vector<double> latencies_ms;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  /// Server counters after the loop (cumulative if the server was reused).
  ServeStats stats;
};

/// Replays `schedule` against `server` from `client_threads` concurrent
/// clients (>= 1). Slot i is answered by client i % client_threads — a
/// deterministic partition, so per-slot results are comparable across any
/// two client counts (and against a serial reference). Fails fast on the
/// first failed query. Client workers run on a private ThreadPool.
[[nodiscard]] Result<ServeLoopReport> ServeLoop(SkyServer& server,
                                                std::span<const QuerySpec> schedule,
                                                size_t client_threads);

/// Freezes the live fingerprints of a streaming monitor into a servable
/// snapshot (skyline tiles included, since the stream holds its data).
/// The snapshot is a copy: the stream can keep inserting afterwards.
[[nodiscard]] Result<std::shared_ptr<const SkySnapshot>> SnapshotOfStream(
    const StreamingSkyDiver& stream);

}  // namespace skydiver
