#include "serve/serve.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "parallel/thread_pool.h"

namespace skydiver {

SkyServer::SkyServer(std::shared_ptr<const SkySnapshot> snapshot, ServeOptions options,
                     std::shared_ptr<const Runtime> runtime)
    : SkyServer(std::move(snapshot), options, std::move(runtime), nullptr,
                SkyDiverConfig{}, PlanResources{}) {}

SkyServer::SkyServer(std::shared_ptr<const SkySnapshot> snapshot, ServeOptions options,
                     std::shared_ptr<const Runtime> runtime, const DataSet* data,
                     SkyDiverConfig config, PlanResources resources)
    : snapshot_(std::move(snapshot)),
      options_(options),
      runtime_(runtime != nullptr ? std::move(runtime) : Runtime::Create(0)),
      data_(data),
      config_(std::move(config)),
      resources_(resources),
      result_cache_(options.result_cache_capacity),
      snapshot_cache_(options.snapshot_cache_capacity) {
  SKYDIVER_CHECK(snapshot_ != nullptr, "SkyServer requires a snapshot");
  SKYDIVER_CHECK(snapshot_->frozen(), "SkyServer requires a frozen snapshot");
}

Result<std::unique_ptr<SkyServer>> SkyServer::Create(
    const DataSet& data, const SkyDiverConfig& config, const PlanResources& resources,
    ServeOptions options, std::shared_ptr<const Runtime> runtime) {
  if (!config.query.identity()) {
    return Status::InvalidArgument(
        "the server config's query must be identity; shaped queries arrive "
        "per QuerySpec");
  }
  if (runtime == nullptr) runtime = Runtime::Create(config.threads);
  auto identity = SkySnapshot::Build(data, config, resources, runtime);
  if (!identity.ok()) return identity.status();
  return std::unique_ptr<SkyServer>(new SkyServer(std::move(identity).value(), options,
                                                  std::move(runtime), &data, config,
                                                  resources));
}

Result<std::shared_ptr<const SkySnapshot>> SkyServer::SnapshotFor(
    const SkyQuery& query) {
  if (query.identity()) return snapshot_;
  if (data_ == nullptr) {
    return Status::InvalidArgument(
        "this server wraps a single snapshot; query-shaped specs "
        "(constraint box, projection, shards) need a data-backed server "
        "(SkyServer::Create)");
  }
  // Key by the FULLY normalized query so e.g. a spelled-out full-space
  // projection and the identity mask share one snapshot.
  auto normalized = NormalizeQuery(query, data_->dims());
  if (!normalized.ok()) return normalized.status();
  if (normalized.value().identity()) return snapshot_;
  const std::string key = QueryKey(normalized.value());
  {
    MutexLock lock(mutex_);
    if (const auto* hit = snapshot_cache_.Get(key)) {
      ++stats_.snapshot_hits;
      return *hit;
    }
  }

  // Build outside the lock (Phase 1 is the expensive part — this is the
  // whole reason the snapshot cache exists). Concurrent misses on the same
  // shape may build twice; the builds are bit-identical, first insert wins.
  // This holds for a disk-backed `resources_` too: concurrent builds
  // traverse the shared DiskRTree through its internally-synchronized
  // pinned page cache (rtree/page_cache.h), so no external serialization
  // of Phase 1 is needed.
  SkyDiverConfig config = config_;
  config.query = std::move(normalized).value();
  auto built = SkySnapshot::Build(*data_, config, resources_, runtime_);
  if (!built.ok()) return built.status();

  MutexLock lock(mutex_);
  ++stats_.snapshot_misses;
  if (const auto* raced = snapshot_cache_.Get(key)) return *raced;
  snapshot_cache_.Put(key, built.value());
  return std::move(built).value();
}

Result<std::shared_ptr<const QueryResult>> SkyServer::Query(const QuerySpec& spec) {
  const QuerySpec q = spec.Normalized();
  const ResultKey result_key{QueryKey(q.query), static_cast<int>(q.mode), q.k,
                             q.lsh_threshold, q.lsh_buckets};
  const PlanKey plan_key{static_cast<int>(q.mode), q.lsh_threshold, q.lsh_buckets};

  // Bookkeeping pass: result hit returns immediately (touching its LRU
  // recency); otherwise take (or resolve and install) the spec's plan.
  // Resolution runs inside the lock — it is a handful of integer divisions
  // (ChooseZones), and admitting it once keeps a failed spec from being
  // re-resolved by racing clients.
  SelectPlan plan;
  {
    MutexLock lock(mutex_);
    if (const auto* hit = result_cache_.Get(result_key)) {
      ++stats_.result_hits;
      ++stats_.queries;
      return *hit;
    }
    if (auto it = plan_cache_.find(plan_key); it != plan_cache_.end()) {
      ++stats_.plan_hits;
      plan = it->second;
    } else {
      auto resolved = Planner::ResolveSelect(q, snapshot_->signature_size());
      ++stats_.plan_misses;
      if (!resolved.ok()) return resolved.status();
      plan = resolved.value();
      plan_cache_.emplace(plan_key, plan);
    }
  }

  // Resolve the snapshot for the spec's query shape (identity = the pinned
  // snapshot; shaped = cache hit or an on-demand Phase-1 build).
  auto snap = SnapshotFor(q.query);
  if (!snap.ok()) return snap.status();
  const std::shared_ptr<const SkySnapshot>& snapshot = snap.value();

  // Compute pass, outside the lock: this is where concurrent clients
  // actually overlap. Identical specs racing here each compute the same
  // bits (deterministic selection), so double-compute is a perf hiccup,
  // never an inconsistency.
  QueryContext ctx(runtime_, CostModel{}, BandingSeed(snapshot->seed(), q));
  auto result = snapshot->Select(q, plan, ctx);
  if (!result.ok()) return result.status();
  auto shared = std::make_shared<const QueryResult>(std::move(result).value());

  MutexLock lock(mutex_);
  ++stats_.result_misses;
  ++stats_.queries;
  result_cache_.Put(result_key, shared);
  return shared;
}

ServeStats SkyServer::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

Result<ServeLoopReport> ServeLoop(SkyServer& server, std::span<const QuerySpec> schedule,
                                  size_t client_threads) {
  if (client_threads == 0) {
    return Status::InvalidArgument("ServeLoop needs at least one client thread");
  }
  const size_t n = schedule.size();
  ServeLoopReport report;
  report.results.resize(n);
  report.latencies_ms.resize(n);
  std::vector<Status> failures(client_threads, Status::OK());

  WallTimer wall;
  {
    // Private pool: clients are workers. Slot i belongs to client
    // i % client_threads — disjoint slot sets, so the per-slot vectors
    // need no synchronization beyond the pool's own join.
    ThreadPool clients(client_threads);
    for (size_t c = 0; c < client_threads; ++c) {
      const bool submitted = clients.Submit([&, c] {
        for (size_t i = c; i < n; i += client_threads) {
          WallTimer latency;
          auto result = server.Query(schedule[i]);
          if (!result.ok()) {
            failures[c] = result.status();
            return;
          }
          report.results[i] = std::move(result).value();
          report.latencies_ms[i] = latency.ElapsedSeconds() * 1e3;
        }
      });
      SKYDIVER_CHECK(submitted, "client pool rejected a task before shutdown");
    }
    clients.Wait();
  }
  report.wall_seconds = wall.ElapsedSeconds();

  for (const Status& status : failures) {
    SKYDIVER_RETURN_NOT_OK(status);
  }
  report.qps = report.wall_seconds > 0.0 ? static_cast<double>(n) / report.wall_seconds
                                         : 0.0;
  if (n > 0) {
    std::vector<double> sorted = report.latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    report.p50_ms = sorted[n / 2];
    report.p99_ms = sorted[std::min(n - 1, n * 99 / 100)];
  }
  report.stats = server.stats();
  return report;
}

Result<std::shared_ptr<const SkySnapshot>> SnapshotOfStream(
    const StreamingSkyDiver& stream) {
  auto fingerprints = stream.ExportFingerprints();
  if (!fingerprints.ok()) return fingerprints.status();
  StreamFingerprints fp = std::move(fingerprints).value();
  return SkySnapshot::Adopt(std::move(fp.skyline), std::move(fp.domination_scores),
                            std::move(fp.signatures), fp.seed, &stream.data());
}

}  // namespace skydiver
