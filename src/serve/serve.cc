#include "serve/serve.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "parallel/thread_pool.h"

namespace skydiver {

SkyServer::SkyServer(std::shared_ptr<const SkySnapshot> snapshot, ServeOptions options,
                     std::shared_ptr<const Runtime> runtime)
    : snapshot_(std::move(snapshot)),
      options_(options),
      runtime_(runtime != nullptr ? std::move(runtime) : Runtime::Create(0)) {
  SKYDIVER_CHECK(snapshot_ != nullptr, "SkyServer requires a snapshot");
  SKYDIVER_CHECK(snapshot_->frozen(), "SkyServer requires a frozen snapshot");
}

Result<std::shared_ptr<const QueryResult>> SkyServer::Query(const QuerySpec& spec) {
  const QuerySpec q = spec.Normalized();
  const ResultKey result_key{static_cast<int>(q.mode), q.k, q.lsh_threshold,
                             q.lsh_buckets};
  const PlanKey plan_key{static_cast<int>(q.mode), q.lsh_threshold, q.lsh_buckets};

  // Bookkeeping pass: result hit returns immediately; otherwise take (or
  // resolve and install) the spec's plan. Resolution runs inside the lock
  // — it is a handful of integer divisions (ChooseZones), and admitting it
  // once keeps a failed spec from being re-resolved by racing clients.
  SelectPlan plan;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = result_cache_.find(result_key); it != result_cache_.end()) {
      ++stats_.result_hits;
      ++stats_.queries;
      return it->second;
    }
    if (auto it = plan_cache_.find(plan_key); it != plan_cache_.end()) {
      ++stats_.plan_hits;
      plan = it->second;
    } else {
      auto resolved = Planner::ResolveSelect(q, snapshot_->signature_size());
      ++stats_.plan_misses;
      if (!resolved.ok()) return resolved.status();
      plan = resolved.value();
      plan_cache_.emplace(plan_key, plan);
    }
  }

  // Compute pass, outside the lock: this is where concurrent clients
  // actually overlap. Identical specs racing here each compute the same
  // bits (deterministic selection), so double-compute is a perf hiccup,
  // never an inconsistency.
  QueryContext ctx(runtime_, CostModel{}, BandingSeed(snapshot_->seed(), q));
  auto result = snapshot_->Select(q, plan, ctx);
  if (!result.ok()) return result.status();
  auto shared = std::make_shared<const QueryResult>(std::move(result).value());

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.result_misses;
  ++stats_.queries;
  if (options_.result_cache_capacity > 0 && !result_cache_.contains(result_key)) {
    if (result_cache_.size() >= options_.result_cache_capacity) {
      result_cache_.erase(result_fifo_.front());
      result_fifo_.pop_front();
    }
    result_cache_.emplace(result_key, shared);
    result_fifo_.push_back(result_key);
  }
  return shared;
}

ServeStats SkyServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Result<ServeLoopReport> ServeLoop(SkyServer& server, std::span<const QuerySpec> schedule,
                                  size_t client_threads) {
  if (client_threads == 0) {
    return Status::InvalidArgument("ServeLoop needs at least one client thread");
  }
  const size_t n = schedule.size();
  ServeLoopReport report;
  report.results.resize(n);
  report.latencies_ms.resize(n);
  std::vector<Status> failures(client_threads, Status::OK());

  WallTimer wall;
  {
    // Private pool: clients are workers. Slot i belongs to client
    // i % client_threads — disjoint slot sets, so the per-slot vectors
    // need no synchronization beyond the pool's own join.
    ThreadPool clients(client_threads);
    for (size_t c = 0; c < client_threads; ++c) {
      const bool submitted = clients.Submit([&, c] {
        for (size_t i = c; i < n; i += client_threads) {
          WallTimer latency;
          auto result = server.Query(schedule[i]);
          if (!result.ok()) {
            failures[c] = result.status();
            return;
          }
          report.results[i] = std::move(result).value();
          report.latencies_ms[i] = latency.ElapsedSeconds() * 1e3;
        }
      });
      SKYDIVER_CHECK(submitted, "client pool rejected a task before shutdown");
    }
    clients.Wait();
  }
  report.wall_seconds = wall.ElapsedSeconds();

  for (const Status& status : failures) {
    SKYDIVER_RETURN_NOT_OK(status);
  }
  report.qps = report.wall_seconds > 0.0 ? static_cast<double>(n) / report.wall_seconds
                                         : 0.0;
  if (n > 0) {
    std::vector<double> sorted = report.latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    report.p50_ms = sorted[n / 2];
    report.p99_ms = sorted[std::min(n - 1, n * 99 / 100)];
  }
  report.stats = server.stats();
  return report;
}

Result<std::shared_ptr<const SkySnapshot>> SnapshotOfStream(
    const StreamingSkyDiver& stream) {
  auto fingerprints = stream.ExportFingerprints();
  if (!fingerprints.ok()) return fingerprints.status();
  StreamFingerprints fp = std::move(fingerprints).value();
  return SkySnapshot::Adopt(std::move(fp.skyline), std::move(fp.domination_scores),
                            std::move(fp.signatures), fp.seed, &stream.data());
}

}  // namespace skydiver
