// A small intrusive-order LRU cache for the serving layer.
//
// The result cache used to be FIFO: a deque of keys in insertion order,
// evicting the oldest INSERT. Under a steady query mix that evicts the
// hottest entries as readily as the coldest — a spec queried every second
// ages out as fast as one queried once. This LRU keeps a recency list
// (front = most recent) and moves an entry to the front on every hit, so
// eviction always removes the least-recently USED key.
//
// Externally locked by design: the cache has no lock of its own — the
// server's bookkeeping mutex already serializes access, and the guarded
// sections are pointer splices. The locking contract is enforced at the
// DECLARATION site, not here: SkyServer declares each cache instance
// SKYDIVER_GUARDED_BY(mutex_), which makes any method call on it outside
// the server's critical section a clang -Wthread-safety error. (The
// container's methods cannot carry REQUIRES(...) themselves: the analysis
// has no alias tracking, so a capability expression written inside this
// template could never be matched up with the caller's member mutex.)

#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <utility>

#include "common/check.h"

namespace skydiver {

/// Least-recently-used map with a fixed capacity. Capacity 0 disables the
/// cache entirely (Put is a no-op, Get always misses). K must be
/// strictly-weakly ordered (std::map key); V is copied out on Get.
template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  /// Looks up `key`; a hit refreshes its recency (moves it to the front of
  /// the eviction order) and returns a pointer to the stored value, valid
  /// until the next mutation. Returns nullptr on miss.
  const V* Get(const K& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);  // touch: now MRU
    return &it->second->second;
  }

  /// Inserts or overwrites `key`, making it the most recent entry and
  /// evicting the least recent one if the cache is over capacity.
  void Put(const K& key, V value) {
    if (capacity_ == 0) return;
    if (const auto it = index_.find(key); it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    if (index_.size() > capacity_) {
      SKYDIVER_DCHECK(!order_.empty());
      index_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  void Clear() {
    order_.clear();
    index_.clear();
  }

 private:
  size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recently used
  std::map<K, typename std::list<std::pair<K, V>>::iterator> index_;
};

}  // namespace skydiver
