#include "stream/streaming.h"

#include <algorithm>
#include <bit>

#include "core/dominance.h"
#include "diversify/dispersion.h"
#include "parallel/morsel.h"

namespace skydiver {

StreamingSkyDiver::StreamingSkyDiver(Dim dims, size_t signature_size, uint64_t seed,
                                     uint64_t max_points, DomKernel kernel,
                                     ThreadPool* pool)
    : dims_(dims),
      t_(signature_size),
      seed_(seed),
      max_points_(max_points),
      family_(MinHashFamily::Create(signature_size, max_points, seed)),
      // Resolve the flavour once at construction: the streaming mirror is
      // re-swept on every insert, so only the missing-ISA half of the
      // downgrade policy applies (the small-input half would flip the
      // flavour back and forth as the skyline grows).
      kernel_(EffectiveKernel(kernel, kTileRows)),
      pool_(pool),
      data_(dims),
      sky_tiles_(dims) {}

void StreamingSkyDiver::UpdateSignature(SkylineEntry* entry, RowId row) {
  // Hash the row once; consecutive calls for the same row (one per
  // dominator) reuse the cached values — the same optimization batch
  // SigGen-IF applies per scanned row.
  if (hash_cache_row_ != row) {
    hash_cache_.resize(t_);
    for (size_t i = 0; i < t_; ++i) hash_cache_[i] = family_.Apply(i, row);
    hash_cache_row_ = row;
  }
  ++entry->domination_score;
  stats_.signature_updates += t_;
  for (size_t i = 0; i < t_; ++i) {
    if (hash_cache_[i] < entry->signature[i]) entry->signature[i] = hash_cache_[i];
  }
}

Status StreamingSkyDiver::Insert(std::span<const Coord> point) {
  if (point.size() != dims_) {
    return Status::InvalidArgument("point has " + std::to_string(point.size()) +
                                   " dims, expected " + std::to_string(dims_));
  }
  if (data_.size() >= max_points_) {
    return Status::OutOfRange("stream exceeded the configured maximum of " +
                              std::to_string(max_points_) + " points");
  }
  const RowId row = data_.size();
  data_.Append(point);

  MutexLock lock(monitor_mutex_);
  ++stats_.inserts;

  if (IsBatched(kernel_)) {
    const DominanceKernel batch(kernel_);

    // Pass 1 over the tiled skyline mirror: is the arrival dominated? If
    // so, fold its id into the signature of every skyline dominator.
    bool dominated = false;
    for (const Tile& tile : sky_tiles_.tiles()) {
      uint64_t mask = batch.FilterDominators(point, tile.view());
      while (mask != 0) {
        const int bit = std::countr_zero(mask);
        mask &= mask - 1;
        dominated = true;
        UpdateSignature(&skyline_.at(tile.id(static_cast<size_t>(bit))), row);
      }
    }
    if (dominated) {
      ++stats_.dominated_arrivals;
      return Status::OK();
    }

    // Demote every skyline point the arrival dominates; the map erases use
    // each tile's ids BEFORE the tile is compacted.
    const auto& tiles = sky_tiles_.tiles();
    bool dropped = false;
    for (size_t ti = 0; ti < tiles.size(); ++ti) {
      const uint64_t demoted = batch.FilterDominated(point, tiles[ti].view());
      if (demoted == 0) continue;
      uint64_t mask = demoted;
      while (mask != 0) {
        const int bit = std::countr_zero(mask);
        mask &= mask - 1;
        skyline_.erase(tiles[ti].id(static_cast<size_t>(bit)));
        ++stats_.demotions;
      }
      sky_tiles_.CompactTile(ti, tiles[ti].view().FullMask() & ~demoted);
      dropped = true;
    }
    if (dropped) sky_tiles_.DropEmptyTiles();

    // Build the arrival's signature by a tiled scan of the store (tiles
    // assembled on the fly, current skyline rows excluded up front — the
    // same rows the scalar scan skips). Morsel-parallel when a pool was
    // supplied and the store is big enough to be worth dispatching.
    SkylineEntry entry;
    if (pool_ != nullptr && row >= kDefaultMorselRows) {
      entry = MorselStoreScan(point, row);
    } else {
      entry.signature.assign(t_, kEmptySlot);
      Tile scan(dims_);
      auto flush = [&] {
        uint64_t mask = batch.FilterDominated(point, scan.view());
        while (mask != 0) {
          const int bit = std::countr_zero(mask);
          mask &= mask - 1;
          UpdateSignature(&entry, scan.id(static_cast<size_t>(bit)));
        }
        scan.Clear();
      };
      for (RowId r = 0; r < row; ++r) {
        if (skyline_.count(r)) continue;  // current skyline points are in no Γ
        scan.PushRow(r, data_.row(r));
        if (scan.full()) flush();
      }
      if (!scan.empty()) flush();
    }
    skyline_.emplace(row, std::move(entry));
    sky_tiles_.Append(row, point);
    ++stats_.skyline_insertions;
    return Status::OK();
  }

  // Pass 1 over the skyline: is the arrival dominated? If so, fold its id
  // into the signature of every skyline dominator.
  bool dominated = false;
  for (auto& [sky_row, entry] : skyline_) {
    if (Dominates(data_.row(sky_row), point)) {
      dominated = true;
      UpdateSignature(&entry, row);
    }
  }
  if (dominated) {
    ++stats_.dominated_arrivals;
    return Status::OK();
  }

  // The arrival joins the skyline: demote every skyline point it now
  // dominates (their signatures are discarded — only skyline points carry
  // dominated sets), and build its own signature by scanning the store.
  for (auto it = skyline_.begin(); it != skyline_.end();) {
    if (Dominates(point, data_.row(it->first))) {
      it = skyline_.erase(it);
      ++stats_.demotions;
    } else {
      ++it;
    }
  }
  SkylineEntry entry;
  entry.signature.assign(t_, kEmptySlot);
  for (RowId r = 0; r < row; ++r) {
    if (skyline_.count(r)) continue;  // current skyline points are in no Γ
    if (Dominates(point, data_.row(r))) UpdateSignature(&entry, r);
  }
  skyline_.emplace(row, std::move(entry));
  ++stats_.skyline_insertions;
  return Status::OK();
}

StreamingSkyDiver::SkylineEntry StreamingSkyDiver::MorselStoreScan(
    std::span<const Coord> point, RowId row) {
  // Snapshot the exclusion set (current skyline rows are in no Γ) under
  // the monitor lock; pool workers read only this snapshot plus immutable
  // state — the arrival's coordinates, the hash family, and store rows
  // below `row`, which no concurrent Insert can touch (single-writer
  // contract on data_).
  std::vector<uint8_t> excluded(row, 0);
  for (const auto& [r, e] : skyline_) {
    if (r < row) excluded[r] = 1;
  }

  // Per-claim reduction slots: signature minima plus the dominated-row
  // count (slot = claim id, folded in ascending order below — identical
  // to the serial scan because MinHash minima and sums are
  // associative/commutative).
  struct ScanSlot {
    std::vector<uint64_t> sig;
    uint64_t dominated = 0;
  };
  (void)pool_->HarvestDominanceChecks();  // drop leftovers from earlier pool users
  MorselQueue queue(row, pool_->size(), MorselConfig{});
  std::vector<ScanSlot> slots(queue.slots());
  const DomKernel kernel = kernel_;
  RunMorsels(*pool_, queue, [&](const MorselQueue::Claim& c) {
    ScanSlot& slot = slots[c.slot];
    slot.sig.assign(t_, kEmptySlot);
    const DominanceKernel batch(kernel);
    Tile scan(dims_);
    auto flush = [&] {
      uint64_t mask = batch.FilterDominated(point, scan.view());
      while (mask != 0) {
        const int bit = std::countr_zero(mask);
        mask &= mask - 1;
        const RowId r = scan.id(static_cast<size_t>(bit));
        ++slot.dominated;
        for (size_t i = 0; i < t_; ++i) {
          const uint64_t h = family_.Apply(i, r);
          if (h < slot.sig[i]) slot.sig[i] = h;
        }
      }
      scan.Clear();
    };
    for (uint64_t r = c.begin; r < c.end; ++r) {
      if (excluded[r] != 0) continue;
      scan.PushRow(static_cast<RowId>(r), data_.row(static_cast<RowId>(r)));
      if (scan.full()) flush();
    }
    if (!scan.empty()) flush();
  });
  // Fold the workers' dominance-test deltas into this thread's counters,
  // as every pooled op does, so surrounding accounting scopes observe the
  // scan's work.
  const DominanceHarvest h = pool_->HarvestDominanceChecks();
  DominanceCounter::Count() += h.total;
  DominanceCounter::TiledCount() += h.tiled;

  SkylineEntry entry;
  entry.signature.assign(t_, kEmptySlot);
  for (const ScanSlot& slot : slots) {
    entry.domination_score += slot.dominated;
    for (size_t i = 0; i < t_; ++i) {
      if (slot.sig[i] < entry.signature[i]) entry.signature[i] = slot.sig[i];
    }
  }
  stats_.signature_updates += t_ * entry.domination_score;
  return entry;
}

std::vector<RowId> StreamingSkyDiver::SkylineRows() const {
  MutexLock lock(monitor_mutex_);
  return SkylineRowsLocked();
}

std::vector<RowId> StreamingSkyDiver::SkylineRowsLocked() const {
  std::vector<RowId> rows;
  rows.reserve(skyline_.size());
  for (const auto& [row, entry] : skyline_) rows.push_back(row);
  std::sort(rows.begin(), rows.end());
  return rows;
}

Result<uint64_t> StreamingSkyDiver::DominationScore(RowId skyline_row) const {
  MutexLock lock(monitor_mutex_);
  auto it = skyline_.find(skyline_row);
  if (it == skyline_.end()) {
    return Status::NotFound("row " + std::to_string(skyline_row) +
                            " is not on the current skyline");
  }
  return it->second.domination_score;
}

Result<std::vector<uint64_t>> StreamingSkyDiver::Signature(RowId skyline_row) const {
  MutexLock lock(monitor_mutex_);
  auto it = skyline_.find(skyline_row);
  if (it == skyline_.end()) {
    return Status::NotFound("row " + std::to_string(skyline_row) +
                            " is not on the current skyline");
  }
  return it->second.signature;
}

Result<StreamFingerprints> StreamingSkyDiver::ExportFingerprints() const {
  MutexLock lock(monitor_mutex_);
  StreamFingerprints out;
  out.skyline = SkylineRowsLocked();
  if (out.skyline.empty()) {
    return Status::InvalidArgument("stream has no skyline points to export");
  }
  out.seed = seed_;
  const size_t m = out.skyline.size();
  out.domination_scores.reserve(m);
  out.signatures = SignatureMatrix(t_, m);
  for (size_t j = 0; j < m; ++j) {
    const SkylineEntry& entry = skyline_.at(out.skyline[j]);
    out.domination_scores.push_back(entry.domination_score);
    for (size_t i = 0; i < t_; ++i) {
      out.signatures.UpdateMin(j, i, entry.signature[i]);
    }
  }
  return out;
}

Result<std::vector<RowId>> StreamingSkyDiver::SelectDiverse(size_t k) const {
  MutexLock lock(monitor_mutex_);
  const std::vector<RowId> rows = SkylineRowsLocked();
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > rows.size()) {
    return Status::InvalidArgument("k = " + std::to_string(k) +
                                   " exceeds current skyline cardinality m = " +
                                   std::to_string(rows.size()));
  }
  // Phase 2 on live state, through the same primitives as the batch
  // engine: slot-agreement distance, max-dominance seeding.
  std::vector<const SkylineEntry*> entries;
  std::vector<uint64_t> scores;
  entries.reserve(rows.size());
  scores.reserve(rows.size());
  for (RowId r : rows) {
    entries.push_back(&skyline_.at(r));
    scores.push_back(entries.back()->domination_score);
  }

  auto distance = [&](size_t a, size_t b) {
    return 1.0 - SlotAgreementSimilarity(entries[a]->signature, entries[b]->signature);
  };
  auto selection = SelectDiverseSet(rows.size(), k, distance, scores);
  if (!selection.ok()) return selection.status();
  std::vector<RowId> out;
  out.reserve(k);
  for (size_t idx : selection->selected) out.push_back(rows[idx]);
  return out;
}

}  // namespace skydiver
