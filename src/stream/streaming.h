// Streaming skyline diversification (the paper's future-work direction i,
// in the spirit of Drosou & Pitoura's dynamic diversification [13]).
//
// Points arrive one at a time. The structure maintains, incrementally:
//   * the current skyline (insertions may demote existing skyline points);
//   * a MinHash signature per skyline point over its CURRENT dominated set;
//   * exact domination scores.
//
// The key observation making incremental maintenance exact: a point's
// dominators all arrive AFTER it was demoted to (or born into) the
// dominated set, and every arriving point inspects the whole store. Hence
// the maintained signatures are bit-for-bit identical to re-running the
// batch SigGen-IF over the final dataset with the same hash family (a
// property the tests assert).
//
// Deletions are not supported: MinHash minima cannot be decreased
// incrementally. For windowed deployments, rebuild per window.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/dataset.h"
#include "kernels/dominance_kernel.h"
#include "kernels/tile_view.h"
#include "minhash/minhash.h"

namespace skydiver {

class ThreadPool;

/// Maintenance counters for observability.
struct StreamingStats {
  uint64_t inserts = 0;
  uint64_t skyline_insertions = 0;  ///< arrivals that joined the skyline
  uint64_t demotions = 0;           ///< skyline points knocked out later
  uint64_t dominated_arrivals = 0;  ///< arrivals dominated on entry
  uint64_t signature_updates = 0;   ///< column min-merges performed
};

/// A frozen copy of the streaming monitor's live fingerprints, in the
/// batch pipeline's shapes (ascending skyline rows, column-major signature
/// matrix). Engine-free on purpose — the serving layer (serve/serve.h)
/// turns one into a SkySnapshot without this module depending on the
/// engine.
struct StreamFingerprints {
  std::vector<RowId> skyline;
  std::vector<uint64_t> domination_scores;
  SignatureMatrix signatures;
  uint64_t seed = 0;
};

/// Incremental skyline + signature maintenance over an insert-only stream.
///
/// Thread-safety: the monitor state (skyline map, tiled mirror, stats,
/// hash memo) sits behind `monitor_mutex_`, so inspection calls
/// (SkylineRows / DominationScore / Signature / SelectDiverse /
/// ExportFingerprints / stats) are safe against a concurrent Insert. The
/// point store `data_` is the one exception: data() hands out a long-lived
/// reference (snapshots adopted from the stream keep pointing at it), so it
/// cannot be lock-guarded — callers must not read data() (or query a
/// snapshot adopted from this stream) concurrently with Insert. The
/// guarded fingerprint state is what Insert and the inspection API
/// genuinely race on.
class StreamingSkyDiver {
 public:
  /// `max_points` bounds the stream length (the hash family's prime must
  /// exceed every row id); exceeding it makes Insert fail. Under a batched
  /// kernel (tiled or simd) the skyline is mirrored in column-major tiles
  /// and every arrival is classified one tile sweep at a time (the store
  /// scan after a skyline insertion is tiled on the fly); maintained state
  /// is bit-identical to the scalar kernel's. kSimd downgrades to kTiled
  /// at construction when the host has no vector ISA.
  ///
  /// A non-null `pool` morselizes the batched store scan (the O(n) pass a
  /// skyline insertion triggers): workers claim tile-aligned row ranges
  /// and accumulate per-slot signature minima that fold in slot order, so
  /// the maintained state stays bit-identical to the serial scan's
  /// (parallel/morsel.h). The pool must outlive this object and must not
  /// run tasks that touch this monitor (its workers execute the scan while
  /// Insert holds the monitor lock).
  StreamingSkyDiver(Dim dims, size_t signature_size, uint64_t seed,
                    uint64_t max_points = 1ULL << 22,
                    DomKernel kernel = DomKernel::kScalar,
                    ThreadPool* pool = nullptr);

  /// Inserts the next point; assigns it the next row id.
  [[nodiscard]] Status Insert(std::span<const Coord> point);
  [[nodiscard]] Status Insert(std::initializer_list<Coord> point) {
    return Insert(std::span<const Coord>(point.begin(), point.size()));
  }

  /// All points seen so far (row id = arrival order).
  const DataSet& data() const { return data_; }

  /// Current skyline row ids, ascending.
  std::vector<RowId> SkylineRows() const;

  /// Exact |Γ(row)| for a current skyline row.
  [[nodiscard]] Result<uint64_t> DominationScore(RowId skyline_row) const;

  /// Greedy k-most-diverse selection over the maintained signatures
  /// (estimated Jaccard distances, max-dominance seeding — the batch
  /// pipeline's Phase 2 on live state).
  [[nodiscard]] Result<std::vector<RowId>> SelectDiverse(size_t k) const;

  /// A consistent copy of the maintenance counters (by value: a reference
  /// into guarded state would escape the critical section).
  StreamingStats stats() const {
    MutexLock lock(monitor_mutex_);
    return stats_;
  }

  /// Seed the hash family was drawn with (also seeds queries against a
  /// snapshot exported from this stream).
  uint64_t seed() const { return seed_; }

  /// Signature column of a current skyline row (for tests/inspection).
  [[nodiscard]] Result<std::vector<uint64_t>> Signature(RowId skyline_row) const;

  /// Copies the current skyline's fingerprints (rows ascending, signatures
  /// column-major, exact scores) out of the live maps. Fails on an empty
  /// skyline. The export is bit-identical to batch SigGen-IF over data()
  /// with the same hash family — the invariant the streaming tests assert
  /// — so a snapshot adopted from it answers queries exactly like one
  /// built from scratch.
  [[nodiscard]] Result<StreamFingerprints> ExportFingerprints() const;

 private:
  struct SkylineEntry {
    std::vector<uint64_t> signature;  // t slots, kEmptySlot when Γ empty
    uint64_t domination_score = 0;
  };

  // Folds row id `row` into the signature of `entry`.
  void UpdateSignature(SkylineEntry* entry, RowId row)
      SKYDIVER_REQUIRES(monitor_mutex_);

  // The morsel-parallel batched store scan: builds the arriving skyline
  // point's entry over store rows [0, row) on pool_. Requires the monitor
  // lock to snapshot the exclusion set and charge stats; the pool workers
  // themselves touch no guarded state.
  SkylineEntry MorselStoreScan(std::span<const Coord> point, RowId row)
      SKYDIVER_REQUIRES(monitor_mutex_);

  // SkylineRows for callers already inside the monitor's critical section
  // (ExportFingerprints, SelectDiverse) — taking the public entry point
  // there would self-deadlock.
  std::vector<RowId> SkylineRowsLocked() const SKYDIVER_REQUIRES(monitor_mutex_);

  // Immutable after construction; readable from any thread without the
  // monitor lock.
  Dim dims_;
  size_t t_;
  uint64_t seed_;
  uint64_t max_points_;
  MinHashFamily family_;
  DomKernel kernel_;
  // Optional scan pool (see the constructor comment); immutable after
  // construction. Workers only ever read immutable state (`data_` rows
  // below the arrival, the hash family) plus scan-local snapshots, never
  // the guarded monitor members.
  ThreadPool* pool_ = nullptr;

  // The point store. Deliberately NOT guarded: data() exposes a reference
  // that outlives any critical section (see class comment), so the
  // single-writer contract is documented rather than lock-enforced.
  DataSet data_;

  // The monitor capability: everything the inspection API reads while
  // Insert mutates it.
  mutable Mutex monitor_mutex_;
  std::unordered_map<RowId, SkylineEntry> skyline_
      SKYDIVER_GUARDED_BY(monitor_mutex_);
  // Column-major mirror of the skyline rows, maintained only under kTiled
  // (tile ids = skyline row ids).
  TileSet sky_tiles_ SKYDIVER_GUARDED_BY(monitor_mutex_);
  StreamingStats stats_ SKYDIVER_GUARDED_BY(monitor_mutex_);
  // Per-row hash memo: a row is folded into one signature per dominator;
  // hash it only once.
  std::vector<uint64_t> hash_cache_ SKYDIVER_GUARDED_BY(monitor_mutex_);
  RowId hash_cache_row_ SKYDIVER_GUARDED_BY(monitor_mutex_) = kInvalidRowId;
};

}  // namespace skydiver
