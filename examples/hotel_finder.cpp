// Hotel finder: the classic skyline motivation with mixed preferences —
// minimize price and distance-to-beach, maximize rating — and SkyDiver's
// diversification on top, so a travel site can show a short list that
// covers genuinely different kinds of good deals instead of five
// near-identical bargains.
//
//   $ ./hotel_finder [n_hotels] [k]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/preference.h"
#include "skydiver/skydiver.h"

namespace {

struct Hotel {
  std::string name;
  double price;     // $/night, minimize
  double rating;    // stars 1..5, maximize
  double distance;  // km to beach, minimize
};

std::vector<Hotel> MakeHotels(size_t n, uint64_t seed) {
  skydiver::Rng rng(seed);
  std::vector<Hotel> hotels;
  hotels.reserve(n);
  const char* districts[] = {"Seaside", "Old Town", "Marina", "Hillcrest", "Downtown"};
  for (size_t i = 0; i < n; ++i) {
    Hotel h;
    h.name = std::string(districts[rng.NextBounded(5)]) + " #" + std::to_string(i);
    // Quality correlates with price; distance anti-correlates with price.
    const double klass = rng.NextDouble();
    h.price = 40.0 + 360.0 * klass + rng.NextGaussian(0.0, 25.0);
    h.rating = 1.0 + 4.0 * std::min(1.0, std::max(0.0, klass + rng.NextGaussian(0.0, 0.2)));
    h.distance = std::max(0.05, 8.0 * (1.0 - klass) + rng.NextGaussian(0.0, 1.5));
    h.price = std::max(25.0, h.price);
    hotels.push_back(h);
  }
  return hotels;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skydiver;

  const size_t n = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 20000;
  const size_t k = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 5;

  const auto hotels = MakeHotels(n, /*seed=*/2024);
  DataSet data(3);
  data.Reserve(static_cast<RowId>(n));
  for (const auto& h : hotels) data.Append({h.price, h.rating, h.distance});

  // min price, MAX rating, min distance.
  const Preference pref({Pref::kMin, Pref::kMax, Pref::kMin});

  SkyDiverConfig config;
  config.k = k;
  auto report = SkyDiver::RunWithPreference(data, pref, config);
  if (!report.ok()) {
    std::fprintf(stderr, "SkyDiver failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("%zu hotels, %zu on the skyline (pareto-optimal deals).\n", n,
              report->skyline.size());
  std::printf("the %zu most diverse pareto-optimal hotels:\n\n", k);
  std::printf("%-16s %10s %8s %10s\n", "hotel", "price/$", "stars", "beach/km");
  for (RowId row : report->selected_rows) {
    const Hotel& h = hotels[row];
    std::printf("%-16s %10.0f %8.1f %10.1f\n", h.name.c_str(), h.price, h.rating,
                h.distance);
  }
  std::printf(
      "\nEach pick dominates a different slice of the market: budget stays,\n"
      "luxury suites, beachfront compromises — that is the Jaccard-distance\n"
      "diversification at work (no price-vs-stars scaling was needed).\n");
  return 0;
}
