// Partially-ordered domains: a laptop catalog where one attribute is a
// CATEGORY with only a partial order — GPU families, where discrete beats
// integrated within a vendor line but families across vendors are
// incomparable. Lp-distance diversification cannot even be formulated here
// (what is the Euclidean distance between "RTX-class" and "M-class"?);
// SkyDiver's dominance-based measure applies unchanged.
//
//   $ ./laptop_catalog [n_laptops] [k]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "poset/mixed.h"
#include "poset/partial_order.h"

int main(int argc, char** argv) {
  using namespace skydiver;

  const size_t n = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 20000;
  const size_t k = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 5;

  // GPU families as a partial order (smaller id = better):
  //   0: discrete-high   beats 1 and 2 (its own line) and 4
  //   1: discrete-mid    beats 2
  //   2: integrated-x
  //   3: accelerator-pro beats 4 (a separate vendor line)
  //   4: accelerator
  // Lines {0,1,2} and {3,4} are mutually incomparable except 0 > 4
  // (flagship beats the entry model of either line).
  const auto gpu_order =
      PartialOrder::FromEdges(5, {{0, 1}, {1, 2}, {0, 4}, {3, 4}}).value();
  const char* gpu_names[] = {"discrete-high", "discrete-mid", "integrated",
                             "accel-pro", "accel"};

  // Columns: price (min, numeric), weight kg (min, numeric),
  //          gpu family (categorical, partial order).
  MixedSchema schema(3);
  if (!schema.SetCategorical(2, &gpu_order).ok()) return 1;

  Rng rng(7);
  DataSet laptops(3);
  laptops.Reserve(static_cast<RowId>(n));
  for (size_t i = 0; i < n; ++i) {
    const auto gpu = static_cast<double>(rng.NextBounded(5));
    // Better GPUs cost more and weigh more, with noise.
    const double price = 400 + 500 * (4 - gpu) * rng.NextDouble() + 600 * rng.NextDouble();
    const double weight = 1.0 + 0.4 * (4 - gpu) * rng.NextDouble() + rng.NextDouble();
    laptops.Append({price, weight, gpu});
  }

  auto result = DiversifyMixed(laptops, schema, k, /*signature_size=*/100, /*seed=*/11);
  if (!result.ok()) {
    std::fprintf(stderr, "DiversifyMixed failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("%zu laptops, %zu on the (partially-ordered) skyline.\n", n,
              result->skyline.size());
  std::printf("the %zu most diverse pareto-optimal laptops:\n\n", k);
  std::printf("%8s %10s %10s   %s\n", "row", "price/$", "weight/kg", "gpu");
  for (RowId row : result->selected_rows) {
    std::printf("%8u %10.0f %10.1f   %s\n", row, laptops.at(row, 0),
                laptops.at(row, 1),
                gpu_names[static_cast<int>(laptops.at(row, 2))]);
  }
  std::printf(
      "\nNote the mix of GPU families: because incomparable categories block\n"
      "dominance, each family contributes its own pareto frontier, and the\n"
      "Jaccard measure spreads the picks across them.\n");
  return 0;
}
