// Streaming diversification: a live dashboard scenario. Offers (price,
// latency) stream in; after every batch the monitor reports the current
// skyline size and the k most diverse pareto-optimal offers — without ever
// recomputing from scratch (incremental skyline + incremental MinHash).
//
//   $ ./stream_monitor [total_points] [batch] [k]

#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "stream/streaming.h"

int main(int argc, char** argv) {
  using namespace skydiver;

  const uint64_t total = argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 50000;
  const uint64_t batch = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 10000;
  const size_t k = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 4;

  StreamingSkyDiver monitor(/*dims=*/2, /*signature_size=*/100, /*seed=*/3,
                            /*max_points=*/total + 1);
  Rng rng(13);

  std::printf("streaming %llu offers (price, latency), reporting every %llu...\n\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(batch));
  for (uint64_t i = 1; i <= total; ++i) {
    // Market drift: prices slowly improve over time, so the skyline churns.
    const double drift = 1.0 - 0.3 * static_cast<double>(i) / static_cast<double>(total);
    const double price = drift * (20.0 + 80.0 * rng.NextDouble());
    const double latency = 5.0 + 95.0 * rng.NextDouble();
    if (!monitor.Insert({price, latency}).ok()) return 1;

    if (i % batch == 0) {
      const auto skyline = monitor.SkylineRows();
      const size_t kk = std::min(k, skyline.size());
      std::printf("after %8llu arrivals: skyline=%3zu, demotions so far=%llu\n",
                  static_cast<unsigned long long>(i), skyline.size(),
                  static_cast<unsigned long long>(monitor.stats().demotions));
      if (kk >= 1) {
        const auto picks = monitor.SelectDiverse(kk).value();
        for (RowId row : picks) {
          std::printf("    offer %-8u price=%6.2f latency=%6.2f  (dominates %llu)\n",
                      row, monitor.data().at(row, 0), monitor.data().at(row, 1),
                      static_cast<unsigned long long>(
                          monitor.DominationScore(row).value()));
        }
      }
    }
  }
  const auto& stats = monitor.stats();
  std::printf(
      "\ntotals: %llu inserts, %llu skyline insertions, %llu demotions,\n"
      "        %llu dominated arrivals, %llu signature slot updates\n",
      static_cast<unsigned long long>(stats.inserts),
      static_cast<unsigned long long>(stats.skyline_insertions),
      static_cast<unsigned long long>(stats.demotions),
      static_cast<unsigned long long>(stats.dominated_arrivals),
      static_cast<unsigned long long>(stats.signature_updates));
  return 0;
}
