// LSH tuning guide: shows how the banding threshold ξ and the buckets-per-
// zone B trade memory for diversification quality (the paper's Fig. 13
// knobs), and prints a recommendation table you can read like a datasheet.
//
//   $ ./tuning_lsh [n] [dims]

#include <cstdio>
#include <cstdlib>

#include "core/gamma.h"
#include "datagen/generators.h"
#include "diversify/dispersion.h"
#include "diversify/evaluate.h"
#include "lsh/lsh.h"
#include "minhash/minhash.h"
#include "minhash/siggen.h"
#include "skyline/skyline.h"

int main(int argc, char** argv) {
  using namespace skydiver;

  const RowId n = argc > 1 ? static_cast<RowId>(std::atoi(argv[1])) : 50000;
  const Dim dims = argc > 2 ? static_cast<Dim>(std::atoi(argv[2])) : 5;
  const size_t k = 10;
  const size_t t = 100;

  const DataSet data = GenerateForestCoverLike(n, dims, /*seed=*/31);
  const auto skyline = SkylineSFS(data).rows;
  std::printf("n=%u d=%u -> skyline m=%zu, selecting k=%zu\n\n", n, dims,
              skyline.size(), k);
  if (skyline.size() < k) {
    std::printf("skyline smaller than k; nothing to tune.\n");
    return 0;
  }

  const auto family = MinHashFamily::Create(t, data.size(), 33);
  const auto sig = SigGenIF(data, skyline, family).value();
  const GammaSets gammas = GammaSets::Compute(data, skyline);
  auto score = [&](size_t j) {
    return static_cast<double>(sig.domination_scores[j]);
  };

  // Reference: MinHash selection quality and memory.
  auto mh_distance = [&](size_t a, size_t b) {
    return sig.signatures.EstimatedDistance(a, b);
  };
  const auto mh = SelectDiverseSet(skyline.size(), k, mh_distance, score).value();
  const double mh_quality = EvaluateSelection(gammas, mh.selected).min_diversity;
  std::printf("MinHash reference:  memory %8zu B   diversity %.3f\n\n",
              sig.signatures.MemoryBytes(), mh_quality);

  std::printf("%-10s %-4s %-7s %-7s %10s %10s %s\n", "threshold", "B", "zones",
              "rows", "memory_B", "diversity", "note");
  for (double xi : {0.1, 0.2, 0.3, 0.4}) {
    for (size_t buckets : {10u, 20u, 50u}) {
      const auto params = ChooseZones(t, xi, buckets).value();
      const auto index = LshIndex::Build(sig.signatures, params, 35).value();
      auto lsh_distance = [&](size_t a, size_t b) { return index.Distance(a, b); };
      const auto sel =
          SelectDiverseSet(skyline.size(), k, lsh_distance, score).value();
      const double quality = EvaluateSelection(gammas, sel.selected).min_diversity;
      const char* note = "";
      if (index.MemoryBytes() * 2 < sig.signatures.MemoryBytes() &&
          quality + 0.05 >= mh_quality) {
        note = "<- good trade";
      }
      std::printf("%-10.1f %-4zu %-7zu %-7zu %10zu %10.3f %s\n", xi, buckets,
                  params.zones, params.rows_per_zone, index.MemoryBytes(), quality,
                  note);
    }
  }
  std::printf(
      "\nreading guide: larger thresholds mean fewer zones (less memory,\n"
      "coarser distances); more buckets per zone sharpen the distance at a\n"
      "linear memory cost. The paper's sweet spot is xi=0.2, B=20.\n");
  return 0;
}
