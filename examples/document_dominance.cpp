// Coordinate-free diversification: the paper's Figure 1 scenario.
//
// Sometimes all we have is the dominance GRAPH — which skyline item covers
// which dominated items — with no attribute values at all (anonymized data,
// click logs, partially ordered domains). SkyDiver's diversity measure is
// defined purely on dominated sets, so it still applies where Lp-distance
// methods cannot even be formulated.
//
// This example reproduces Figure 1 exactly: skyline documents a, b, c, d
// over dominated documents p1..p11, with
//   Γ(a) = {p1}
//   Γ(b) = {p2..p8}
//   Γ(c) = {p4..p11}
//   Γ(d) = {p5, p6, p7}
// A max-coverage pick at k = 2 returns (c, b) — heavily overlapping.
// SkyDiver returns (c, a): c covers the bulk, a contributes the one
// document nobody else addresses.

#include <cstdio>
#include <string>
#include <vector>

#include "common/bitvector.h"
#include "core/gamma.h"
#include "diversify/coverage.h"
#include "diversify/dispersion.h"
#include "diversify/evaluate.h"

int main() {
  using namespace skydiver;

  constexpr size_t kDominated = 11;  // p1..p11 (bits 0..10)
  const char* names[] = {"a", "b", "c", "d"};

  auto gamma = [&](std::initializer_list<int> docs) {
    BitVector v(kDominated);
    for (int p : docs) v.Set(static_cast<size_t>(p - 1));
    return v;
  };
  std::vector<BitVector> gammas;
  gammas.push_back(gamma({1}));                          // a
  gammas.push_back(gamma({2, 3, 4, 5, 6, 7, 8}));        // b
  gammas.push_back(gamma({4, 5, 6, 7, 8, 9, 10, 11}));   // c
  gammas.push_back(gamma({5, 6, 7}));                    // d

  // The universe: 11 dominated documents + the 4 skyline documents.
  const GammaSets sets = GammaSets::FromBitVectors(kDominated + 4, std::move(gammas));

  std::printf("dominance graph (Figure 1 of the paper):\n");
  for (size_t j = 0; j < 4; ++j) {
    std::printf("  %s dominates %zu documents\n", names[j], sets.DominationScore(j));
  }

  // k-max-coverage at k = 2.
  const auto coverage = GreedyMaxCoverage(sets, 2).value();
  std::printf("\nmax-coverage pick:  (%s, %s)  — coverage %.0f%%, diversity %.2f\n",
              names[coverage.selected[0]], names[coverage.selected[1]],
              100.0 * EvaluateSelection(sets, coverage.selected).coverage,
              EvaluateSelection(sets, coverage.selected).min_diversity);

  // SkyDiver's k-dispersion on exact Jaccard distances of the Γ sets.
  auto distance = [&](size_t i, size_t j) { return sets.JaccardDistance(i, j); };
  auto score = [&](size_t j) { return static_cast<double>(sets.DominationScore(j)); };
  const auto diverse = SelectDiverseSet(4, 2, distance, score).value();
  std::printf("SkyDiver pick:      (%s, %s)  — coverage %.0f%%, diversity %.2f\n",
              names[diverse.selected[0]], names[diverse.selected[1]],
              100.0 * EvaluateSelection(sets, diverse.selected).coverage,
              EvaluateSelection(sets, diverse.selected).min_diversity);

  std::printf(
      "\nmax-coverage stacks b on top of c although their dominated sets\n"
      "largely overlap; SkyDiver pairs c with a, whose single document is\n"
      "covered by nobody else — 'truly fresh information' (paper, Sec. 1).\n");
  return 0;
}
