// Quickstart: generate a synthetic dataset, run the full SkyDiver pipeline
// (skyline -> MinHash fingerprinting -> greedy diverse selection) and print
// the k most diverse skyline points with per-phase cost accounting.
//
//   $ ./quickstart [n] [dims] [k]

#include <cstdio>
#include <cstdlib>

#include "datagen/generators.h"
#include "skydiver/skydiver.h"

int main(int argc, char** argv) {
  using namespace skydiver;

  const RowId n = argc > 1 ? static_cast<RowId>(std::atoi(argv[1])) : 100000;
  const Dim dims = argc > 2 ? static_cast<Dim>(std::atoi(argv[2])) : 4;
  const size_t k = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 5;

  std::printf("SkyDiver quickstart: n=%u, d=%u, k=%zu\n", n, dims, k);

  // 1. A dataset. Smaller is better on every dimension here; see
  //    hotel_finder.cpp for mixed min/max preferences.
  const DataSet data = GenerateIndependent(n, dims, /*seed=*/7);

  // 2. Configure and run. With no R-tree supplied, SkyDiver computes the
  //    skyline with SFS and the signatures with the index-free single pass.
  SkyDiverConfig config;
  config.k = k;
  config.signature_size = 100;  // the paper's default t

  const auto report = SkyDiver::Run(data, config);
  if (!report.ok()) {
    std::fprintf(stderr, "SkyDiver failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  // 3. Results.
  std::printf("skyline cardinality: %zu\n", report->skyline.size());
  std::printf("selected %zu diverse skyline points:\n", report->selected_rows.size());
  for (RowId row : report->selected_rows) {
    std::printf("  row %-8u (", row);
    const auto point = data.row(row);
    for (size_t i = 0; i < point.size(); ++i) {
      std::printf("%s%.3f", i ? ", " : "", point[i]);
    }
    std::printf(")\n");
  }
  std::printf("k-MMDP objective (estimated Jaccard distance): %.3f\n",
              report->objective);

  // 4. Cost accounting under the paper's 8 ms/page-fault model.
  const CostModel& cost = config.cost_model;
  std::printf("phase costs (cpu_s / total_s):\n");
  std::printf("  skyline     : %.4f / %.4f\n", report->skyline_phase.cpu_seconds,
              report->skyline_phase.TotalSeconds(cost));
  std::printf("  fingerprint : %.4f / %.4f\n", report->fingerprint_phase.cpu_seconds,
              report->fingerprint_phase.TotalSeconds(cost));
  std::printf("  selection   : %.4f / %.4f\n", report->selection_phase.cpu_seconds,
              report->selection_phase.TotalSeconds(cost));
  std::printf("signature memory: %zu bytes\n", report->signature_memory_bytes);
  return 0;
}
