// Ranking vs diversification: top-k DOMINATING points (Yiu & Mamoulis
// style dominance ranking) against SkyDiver's k most DIVERSE skyline
// points, on the same dataset — the running contrast of the paper's
// Section 2 and Table 1, as a runnable demo.
//
// Top-k-dominating rewards raw dominance power, so its picks crowd into
// the dense center of the distribution; SkyDiver spreads its picks across
// the skyline's distinct regions while still favoring high dominance
// (seeding + tie-breaks).
//
//   $ ./ranking_vs_diversity [n] [k]

#include <cstdio>
#include <cstdlib>

#include "core/gamma.h"
#include "datagen/generators.h"
#include "diversify/evaluate.h"
#include "rtree/rtree.h"
#include "skydiver/skydiver.h"
#include "skyline/skyline.h"
#include "skyline/topk_dominating.h"

int main(int argc, char** argv) {
  using namespace skydiver;

  const RowId n = argc > 1 ? static_cast<RowId>(std::atoi(argv[1])) : 50000;
  const size_t k = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 5;

  const DataSet data = GenerateAnticorrelated(n, 3, /*seed=*/17);
  auto tree = RTree::BulkLoad(data);
  if (!tree.ok()) return 1;

  const auto skyline = SkylineSFS(data).rows;
  std::printf("n=%u, skyline m=%zu\n\n", n, skyline.size());
  if (skyline.size() < k) {
    std::printf("skyline smaller than k, nothing to contrast.\n");
    return 0;
  }
  const GammaSets gammas = GammaSets::Compute(data, skyline);

  // Ranking view: the k skyline points that dominate the most.
  const auto ranked = TopKDominating(data, *tree, k, &skyline).value();
  std::printf("top-%zu DOMINATING skyline points (ranking view):\n", k);
  std::vector<size_t> ranked_idx;
  for (const auto& p : ranked) {
    std::printf("  row %-8u dominates %llu\n", p.row,
                static_cast<unsigned long long>(p.score));
    for (size_t j = 0; j < skyline.size(); ++j) {
      if (skyline[j] == p.row) ranked_idx.push_back(j);
    }
  }
  const auto q_ranked = EvaluateSelection(gammas, ranked_idx);

  // Diversity view: SkyDiver.
  SkyDiverConfig config;
  config.k = k;
  const auto report = SkyDiver::Run(data, config, &*tree, &skyline).value();
  std::printf("\n%zu most DIVERSE skyline points (SkyDiver):\n", k);
  for (size_t i = 0; i < report.selected_rows.size(); ++i) {
    std::printf("  row %-8u dominates %llu\n", report.selected_rows[i],
                static_cast<unsigned long long>(
                    tree->DominatedCount(data.row(report.selected_rows[i]))));
  }
  const auto q_diverse = EvaluateSelection(gammas, report.selected);

  std::printf("\n                    ranking    SkyDiver\n");
  std::printf("min diversity       %.3f      %.3f\n", q_ranked.min_diversity,
              q_diverse.min_diversity);
  std::printf("coverage            %.3f      %.3f\n", q_ranked.coverage,
              q_diverse.coverage);
  std::printf(
      "\nThe dominance ranking's picks overlap heavily (low diversity);\n"
      "SkyDiver trades a little coverage for picks that each tell the user\n"
      "something new — the paper's Figure 1 intuition at scale.\n");
  return 0;
}
