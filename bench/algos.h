// The four evaluated algorithms (paper Table 3) packaged for the benchmark
// harness: BF, SG, SkyDiver-MH and SkyDiver-LSH. Each returns the indices
// it selected plus its 2-step diversification time (CPU + 8 ms per charged
// page fault), EXCLUDING skyline computation, exactly like the paper's
// reported numbers.

#pragma once

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "rtree/rtree.h"

namespace skydiver::bench {

/// Outcome of one algorithm run.
struct AlgoResult {
  bool ran = false;            ///< false: skipped (e.g. BF on a huge skyline).
  double cpu_seconds = 0.0;
  double total_seconds = 0.0;  ///< CPU + charged I/O.
  std::vector<size_t> selected;
  size_t memory_bytes = 0;     ///< signature / bit-vector footprint.
};

/// Brute-force exact k-MMDP. Like the paper's BF, it materializes all
/// O(m^2) pairwise exact Jaccard distances through aggregate range-count
/// queries on `tree` (this is what buries BF in the paper's Fig. 10), then
/// enumerates subsets. Skipped (ran = false) when the skyline exceeds
/// `max_m` or the subset count exceeds the enumeration cap.
AlgoResult RunBF(const DataSet& data, const std::vector<RowId>& skyline, size_t k,
                 const RTree& tree, size_t max_m = 500);

/// Simple-Greedy with exact Jaccard distances via aggregate range-count
/// queries on `tree`. Skipped when the skyline exceeds `max_m`.
AlgoResult RunSG(const DataSet& data, const std::vector<RowId>& skyline, size_t k,
                 const RTree& tree, size_t max_m = 50000);

/// SkyDiver-MH: MinHash signatures (SigGen-IB when `tree` is non-null,
/// SigGen-IF otherwise) + greedy selection over estimated distances.
AlgoResult RunMH(const DataSet& data, const std::vector<RowId>& skyline, size_t k,
                 size_t signature_size, const RTree* tree, uint64_t seed);

/// SkyDiver-LSH: signatures + banding into zone buckets + greedy selection
/// over bit-vector Hamming distances.
AlgoResult RunLSH(const DataSet& data, const std::vector<RowId>& skyline, size_t k,
                  size_t signature_size, double threshold, size_t buckets,
                  const RTree* tree, uint64_t seed);

}  // namespace skydiver::bench
