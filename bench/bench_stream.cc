// Streaming extension experiment (paper future-work direction i):
// incremental maintenance vs periodic recomputation.
//
// A stream of n points arrives in B batches. After every batch a live
// dashboard needs the k most diverse skyline points. Two strategies:
//   * incremental — StreamingSkyDiver maintains skyline + signatures as
//     points arrive; selection reads the live state;
//   * recompute  — rerun SkylineSFS + SigGen-IF on the whole prefix at
//     every batch boundary (what a deployment without the streaming module
//     would do).
// Both produce identical skylines (tested) and statistically equivalent
// signatures; the experiment reports the cumulative CPU cost of each
// strategy and the per-batch latency of the incremental path.

#include <algorithm>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "diversify/dispersion.h"
#include "minhash/siggen.h"
#include "skyline/skyline.h"
#include "stream/streaming.h"

namespace skydiver::bench {
namespace {

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv,
                "Streaming: incremental skyline+signature maintenance vs "
                "recompute-per-batch",
                /*default_scale=*/100.0)) {
    return 0;
  }
  ShapeChecks shape("Streaming");
  const size_t t = 100;
  const size_t k = 10;
  const size_t batches = 10;

  TablePrinter table({"data", "n", "batches", "incremental_s", "recompute_s",
                      "speedup", "final_m"});
  for (WorkloadKind kind : {WorkloadKind::kIndependent, WorkloadKind::kCorrelated,
                            WorkloadKind::kAnticorrelated}) {
    const DataSet& data = env.Data(kind, 2000000, 3);
    const RowId n = data.size();
    const RowId batch = n / batches;

    // Incremental strategy.
    double incremental_s = 0.0;
    StreamingSkyDiver stream(3, t, env.seed(), n + 1);
    {
      CpuTimer cpu;
      for (RowId r = 0; r < n; ++r) {
        (void)stream.Insert(data.row(r));
        if ((r + 1) % batch == 0) {
          const auto m = stream.SkylineRows().size();
          if (m >= k) (void)stream.SelectDiverse(k);
        }
      }
      incremental_s = cpu.ElapsedSeconds();
    }

    // Recompute strategy.
    double recompute_s = 0.0;
    {
      CpuTimer cpu;
      for (size_t b = 1; b <= batches; ++b) {
        const RowId prefix_n = static_cast<RowId>(b) * batch;
        DataSet prefix(3);
        prefix.Reserve(prefix_n);
        for (RowId r = 0; r < prefix_n; ++r) prefix.Append(data.row(r));
        const auto skyline = SkylineSFS(prefix).rows;
        const auto family = MinHashFamily::Create(t, prefix.size(), env.seed());
        const auto sig = SigGenIF(prefix, skyline, family).value();
        if (skyline.size() >= k) {
          auto distance = [&](size_t a, size_t c) {
            return sig.signatures.EstimatedDistance(a, c);
          };
          auto score = [&](size_t j) {
            return static_cast<double>(sig.domination_scores[j]);
          };
          (void)SelectDiverseSet(skyline.size(), k, distance, score);
        }
      }
      recompute_s = cpu.ElapsedSeconds();
    }

    const auto final_skyline = stream.SkylineRows();
    table.Row({WorkloadKindName(kind), TablePrinter::Int(n),
               TablePrinter::Int(batches), TablePrinter::Secs(incremental_s),
               TablePrinter::Secs(recompute_s),
               TablePrinter::Num(recompute_s / incremental_s, 2),
               TablePrinter::Int(final_skyline.size())});
    shape.Check(std::string(WorkloadKindName(kind)) +
                    ": incremental final state equals batch skyline",
                final_skyline == SkylineSFS(data).rows);
    shape.Check(std::string(WorkloadKindName(kind)) +
                    ": incremental beats recompute-per-batch",
                incremental_s < recompute_s);
  }
  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
