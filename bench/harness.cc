#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace skydiver::bench {

bool BenchEnv::Init(int argc, char** argv, const std::string& description,
                    double default_scale) {
  scale_ = default_scale;
  flags_.AddInt64("seed", &seed_, "base RNG seed for workloads and hashing");
  flags_.AddDouble("scale", &scale_,
                   "divide the paper's dataset cardinalities by this factor");
  flags_.AddBool("paper", &paper_, "run the paper's full dataset sizes (scale=1)");
  const Status st = flags_.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags_.Usage(argv[0]).c_str());
    return false;
  }
  if (flags_.help_requested()) {
    std::printf("%s\n\n%s", description.c_str(), flags_.Usage(argv[0]).c_str());
    return false;
  }
  std::printf("# %s\n", description.c_str());
  std::printf("# scale: %s (use --paper for full paper sizes)\n\n",
              paper_ ? "paper (1x)" : ("1/" + std::to_string(scale_)).c_str());
  return true;
}

RowId BenchEnv::Scaled(RowId paper_cardinality) const {
  if (paper_) return paper_cardinality;
  const double scaled = static_cast<double>(paper_cardinality) / std::max(1.0, scale_);
  return static_cast<RowId>(std::max(1000.0, scaled));
}

const DataSet& BenchEnv::Data(WorkloadKind kind, RowId paper_cardinality, Dim dims) {
  const RowId n = Scaled(paper_cardinality);
  const std::string key = WorkloadKindName(kind) + "/" + std::to_string(n) + "/" +
                          std::to_string(dims);
  auto it = data_cache_.find(key);
  if (it == data_cache_.end()) {
    it = data_cache_
             .emplace(key, GenerateWorkload(kind, n, dims, seed()).value())
             .first;
  }
  return it->second;
}

const RTree& BenchEnv::Tree(WorkloadKind kind, RowId paper_cardinality, Dim dims) {
  const RowId n = Scaled(paper_cardinality);
  const std::string key = WorkloadKindName(kind) + "/" + std::to_string(n) + "/" +
                          std::to_string(dims);
  auto it = tree_cache_.find(key);
  if (it == tree_cache_.end()) {
    const DataSet& data = Data(kind, paper_cardinality, dims);
    it = tree_cache_.emplace(key, RTree::BulkLoad(data).value()).first;
  }
  return it->second;
}

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  widths_.reserve(columns_.size());
  for (const auto& c : columns_) widths_.push_back(std::max<size_t>(c.size(), 10));
}

TablePrinter::~TablePrinter() { std::printf("\n"); }

void TablePrinter::PrintHeader() {
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%-*s  ", static_cast<int>(widths_[i]), columns_[i].c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%s  ", std::string(widths_[i], '-').c_str());
  }
  std::printf("\n");
  header_printed_ = true;
}

void TablePrinter::Row(const std::vector<std::string>& cells) {
  if (!header_printed_) PrintHeader();
  for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    std::printf("%-*s  ", static_cast<int>(widths_[i]), cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string TablePrinter::Num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TablePrinter::Int(uint64_t v) { return std::to_string(v); }

std::string TablePrinter::Secs(double seconds) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  if (seconds >= 100) {
    os.precision(0);
  } else if (seconds >= 1) {
    os.precision(2);
  } else {
    os.precision(4);
  }
  os << seconds;
  return os.str();
}

void ShapeChecks::Check(const std::string& claim, bool holds) {
  checks_.emplace_back(claim, holds);
}

int ShapeChecks::Summarize() const {
  int failed = 0;
  std::printf("shape checks (%s):\n", experiment_.c_str());
  for (const auto& [claim, holds] : checks_) {
    std::printf("  [%s] %s\n", holds ? "PASS" : "FAIL", claim.c_str());
    failed += !holds;
  }
  std::printf("%d/%zu shape checks passed\n\n",
              static_cast<int>(checks_.size()) - failed, checks_.size());
  return failed;
}

}  // namespace skydiver::bench
