// Disk-backed index experiments (ours): two phases.
//
// Phase 1 — validation. The in-memory RTree charges 8 ms per buffer-pool
// miss (the paper's model); DiskRTree performs actual reads of 4 KB pages
// through a pinned LRU frame cache of the same capacity. On the serial
// no-prefetch pread path both sides run LRU over the same page-id access
// sequence, so the PHYSICAL FAULT COUNTS must match exactly — which is
// precisely why the simulated totals are trustworthy. Results (skyline
// rows, SigGen-IB signatures) must be bit-identical.
//
// Phase 2 — backend / prefetch grid. BBS off disk across a cardinality
// scaling curve, cold (frame cache dropped) and warm (frame cache hot),
// for both PageFile backends (pread vs mmap) with async child prefetch off
// and on. Prefetch changes which access pays the physical read + node
// deserialization, never the bytes: every configuration's skyline is
// checked against the in-memory run. --json writes the grid to
// BENCH_disk.json. The >= 1.5x cold-BBS prefetch speedup check only arms
// on hosts with >= 8 cores (container CI lanes cannot exhibit the overlap
// and must not fail on physics).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "minhash/minhash.h"
#include "minhash/siggen.h"
#include "parallel/thread_pool.h"
#include "rtree/disk_rtree.h"
#include "rtree/page_file.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

constexpr int kReps = 3;

struct JsonRecord {
  std::string workload;
  RowId n = 0;
  std::string backend;
  size_t prefetch_threads = 0;
  double cold_s = 0.0;
  double warm_s = 0.0;
  uint64_t cold_faults = 0;
  uint64_t cold_prefetches = 0;
};

void WriteJson(const std::string& path, const std::vector<JsonRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"disk\",\n  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    out << "    {\"workload\": \"" << r.workload << "\", \"n\": " << r.n
        << ", \"backend\": \"" << r.backend
        << "\", \"prefetch_threads\": " << r.prefetch_threads
        << ", \"cold_seconds\": " << r.cold_s << ", \"warm_seconds\": " << r.warm_s
        << ", \"cold_faults\": " << r.cold_faults
        << ", \"cold_prefetches\": " << r.cold_prefetches << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %zu records to %s\n", records.size(), path.c_str());
}

/// Phase 1: serial pread path, no prefetch — fault-count parity with the
/// simulated model and bit-identical results. Returns the number of failed
/// parity checks folded into `shape`.
int RunValidation(BenchEnv& env, ShapeChecks& shape) {
  TablePrinter table({"workload", "phase", "sim.faults", "disk.faults",
                      "disk.wall_s", "sim.total_s"});
  const CostModel cost;

  for (WorkloadKind kind :
       {WorkloadKind::kIndependent, WorkloadKind::kForestCoverLike}) {
    const RowId paper_n = kind == WorkloadKind::kIndependent ? 5000000u : 581012u;
    const DataSet& data = env.Data(kind, paper_n, 4);
    const RTree& mem = env.Tree(kind, paper_n, 4);
    const std::string path = "/tmp/skydiver_bench_tree.pages";
    if (!DiskRTree::Write(mem, path).ok()) return 1;
    auto disk = DiskRTree::Open(path);
    if (!disk.ok()) {
      std::fprintf(stderr, "%s\n", disk.status().ToString().c_str());
      return 1;
    }

    // BBS skyline. Cold caches on both sides (Write's serialization scan
    // is stats-neutral, but the in-memory pool still warmed during Tree()).
    mem.pool().Clear();
    mem.ResetIoStats();
    const auto mem_sky = SkylineBBS(data, mem).value();
    const uint64_t sim_faults_bbs = mem.io_stats().page_faults;

    disk->ResetIoStats();
    disk->DropCache();
    WallTimer wall_bbs;
    const auto disk_sky = SkylineBBS(data, *disk).value();
    const double disk_bbs_s = wall_bbs.ElapsedSeconds();
    const uint64_t disk_faults_bbs = disk->io_stats().page_faults;

    table.Row({WorkloadKindName(kind), "BBS", TablePrinter::Int(sim_faults_bbs),
               TablePrinter::Int(disk_faults_bbs), TablePrinter::Secs(disk_bbs_s),
               TablePrinter::Secs(cost.seconds_per_fault *
                                  static_cast<double>(sim_faults_bbs))});
    shape.Check(std::string(WorkloadKindName(kind)) +
                    ": BBS fault counts identical (sim == real LRU)",
                sim_faults_bbs == disk_faults_bbs);
    shape.Check(std::string(WorkloadKindName(kind)) + ": BBS results identical",
                mem_sky.rows == disk_sky.rows);

    // SigGen-IB.
    const auto family = MinHashFamily::Create(100, data.size(), env.seed());
    mem.pool().Clear();
    mem.ResetIoStats();
    const auto mem_sig = SigGenIB(data, mem_sky.rows, family, mem).value();

    disk->ResetIoStats();
    disk->DropCache();
    WallTimer wall_ib;
    const auto disk_sig = SigGenIB(data, disk_sky.rows, family, *disk).value();
    const double disk_ib_s = wall_ib.ElapsedSeconds();

    table.Row({WorkloadKindName(kind), "SigGen-IB",
               TablePrinter::Int(mem_sig.io.page_faults),
               TablePrinter::Int(disk_sig.io.page_faults),
               TablePrinter::Secs(disk_ib_s),
               TablePrinter::Secs(cost.TotalSeconds(0.0, mem_sig.io))});
    shape.Check(std::string(WorkloadKindName(kind)) +
                    ": SigGen-IB fault counts identical",
                mem_sig.io.page_faults == disk_sig.io.page_faults);
    bool signatures_equal = true;
    for (size_t j = 0; j < mem_sky.rows.size() && signatures_equal; ++j) {
      for (size_t i = 0; i < 100; ++i) {
        if (mem_sig.signatures.at(j, i) != disk_sig.signatures.at(j, i)) {
          signatures_equal = false;
          break;
        }
      }
    }
    shape.Check(std::string(WorkloadKindName(kind)) +
                    ": SigGen-IB signatures bit-identical",
                signatures_equal);
    std::remove(path.c_str());
  }
  return 0;
}

int Run(int argc, char** argv) {
  BenchEnv env;
  std::string json_path;
  int64_t prefetch_threads = 4;
  env.flags().AddString("json", &json_path,
                        "write the backend/prefetch grid to this JSON file");
  env.flags().AddInt64("prefetch-threads", &prefetch_threads,
                       "pool size for the prefetch-on grid rows");
  if (!env.Init(argc, argv,
                "Disk path: simulated-fault validation + backend/prefetch "
                "scaling grid")) {
    return 0;
  }
  if (prefetch_threads < 1) {
    std::fprintf(stderr, "--prefetch-threads must be >= 1\n");
    return 2;
  }
  ShapeChecks shape("Disk path");
  if (const int rc = RunValidation(env, shape); rc != 0) return rc;

  // skylint:allow(determinism): capacity probe, not a randomness source —
  // gates the prefetch-speedup expectation to hosts that can exhibit it.
  const size_t cores = std::max(1u, std::thread::hardware_concurrency());

  // Phase 2: cardinality scaling curve x {pread, mmap} x {prefetch off/on},
  // cold and warm. A small frame cache keeps the cold runs fault-dominated
  // (that is what prefetch overlaps); warm runs measure the hit path.
  TablePrinter table({"n", "backend", "pf.threads", "cold_s", "warm_s",
                      "cold.faults", "cold.prefetch"});
  std::vector<JsonRecord> records;
  double best_prefetch_speedup = 0.0;
  bool saw_prefetch_row = false;

  for (const RowId paper_n : {1000000u, 2000000u, 5000000u}) {
    const DataSet& data = env.Data(WorkloadKind::kIndependent, paper_n, 4);
    const RTree& mem = env.Tree(WorkloadKind::kIndependent, paper_n, 4);
    const auto want = SkylineBBS(data, mem).value().rows;
    const std::string path = "/tmp/skydiver_bench_grid.pages";
    if (!DiskRTree::Write(mem, path).ok()) return 1;

    double cold_baseline_pread = 0.0;  // prefetch-off pread, this n
    for (const DiskBackend backend : {DiskBackend::kPread, DiskBackend::kMmap}) {
      for (const size_t pf : {size_t{0}, static_cast<size_t>(prefetch_threads)}) {
        ThreadPool pool(pf == 0 ? 1 : pf);
        DiskTreeOptions options;
        options.cache_fraction = 0.05;
        options.backend = backend;
        options.prefetch_pool = pf == 0 ? nullptr : &pool;
        auto disk = DiskRTree::Open(path, options);
        if (!disk.ok()) {
          std::fprintf(stderr, "%s\n", disk.status().ToString().c_str());
          return 1;
        }

        double cold = 1e300;
        uint64_t cold_faults = 0, cold_prefetches = 0;
        bool rows_identical = true;
        for (int rep = 0; rep < kReps; ++rep) {
          disk->DropCache();
          disk->ResetIoStats();
          WallTimer timer;
          const auto sky = SkylineBBS(data, *disk).value();
          cold = std::min(cold, timer.ElapsedSeconds());
          cold_faults = disk->io_stats().page_faults;
          cold_prefetches = disk->io_stats().page_prefetches;
          rows_identical = rows_identical && sky.rows == want;
        }
        double warm = 1e300;
        for (int rep = 0; rep < kReps; ++rep) {
          WallTimer timer;
          const auto sky = SkylineBBS(data, *disk).value();
          warm = std::min(warm, timer.ElapsedSeconds());
          rows_identical = rows_identical && sky.rows == want;
        }
        shape.Check("n=" + std::to_string(data.size()) + " " +
                        std::string(ToString(backend)) + " pf=" +
                        std::to_string(pf) + ": BBS rows identical to memory",
                    rows_identical);

        table.Row({TablePrinter::Int(data.size()), ToString(backend),
                   TablePrinter::Int(pf), TablePrinter::Secs(cold),
                   TablePrinter::Secs(warm), TablePrinter::Int(cold_faults),
                   TablePrinter::Int(cold_prefetches)});
        records.push_back(JsonRecord{"IND", data.size(), ToString(backend), pf,
                                     cold, warm, cold_faults, cold_prefetches});

        if (backend == DiskBackend::kPread) {
          if (pf == 0) {
            cold_baseline_pread = cold;
          } else if (paper_n == 5000000u && cold > 0.0) {
            saw_prefetch_row = true;
            best_prefetch_speedup =
                std::max(best_prefetch_speedup, cold_baseline_pread / cold);
          }
        }
      }
    }
    std::remove(path.c_str());
  }

  // Overlap is a property of the host: only a machine with cores to spare
  // can hide child-page loads behind the BBS heap pops, so the speedup
  // gate arms conditionally (mirrors bench_parallel's scaling gate).
  shape.Check("every grid configuration produced a timing", !records.empty());
  if (cores >= 8 && saw_prefetch_row) {
    shape.Check("cold BBS >= 1.5x faster with prefetch (pread, largest n)",
                best_prefetch_speedup >= 1.5);
  } else {
    std::printf("note: %zu core(s) — prefetch speedup gate not armed\n", cores);
  }
  shape.Summarize();

  if (!json_path.empty()) WriteJson(json_path, records);
  return 0;  // bench binaries always exit 0; shape summary is advisory
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
