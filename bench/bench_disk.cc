// Disk-backed index experiment (ours): validates the simulated-I/O
// substitution of DESIGN.md §4 by running the identical pipeline against a
// REAL page file.
//
// The in-memory RTree charges 8 ms per buffer-pool miss (the paper's
// model); DiskRTree performs actual preads of 4 KB pages through an LRU
// frame cache of the same capacity. Because both use LRU over the same
// page-id access sequence, the PHYSICAL FAULT COUNTS must match exactly —
// which is precisely why the simulated totals are trustworthy. The wall
// time of the disk run is also reported (on a warm OS page cache a pread
// costs microseconds, so real time sits far below the 8 ms/fault model,
// which represents a cold spinning disk).

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "common/timer.h"
#include "minhash/minhash.h"
#include "minhash/siggen.h"
#include "rtree/disk_rtree.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv,
                "Disk validation: simulated page faults vs a real page file")) {
    return 0;
  }
  ShapeChecks shape("Disk validation");
  TablePrinter table({"workload", "phase", "sim.faults", "disk.faults",
                      "disk.wall_s", "sim.total_s"});
  const CostModel cost;

  for (WorkloadKind kind :
       {WorkloadKind::kIndependent, WorkloadKind::kForestCoverLike}) {
    const RowId paper_n = kind == WorkloadKind::kIndependent ? 5000000u : 581012u;
    const DataSet& data = env.Data(kind, paper_n, 4);
    const RTree& mem = env.Tree(kind, paper_n, 4);
    const std::string path = "/tmp/skydiver_bench_tree.pages";
    if (!DiskRTree::Write(mem, path).ok()) return 1;
    auto disk = DiskRTree::Open(path);
    if (!disk.ok()) {
      std::fprintf(stderr, "%s\n", disk.status().ToString().c_str());
      return 1;
    }

    // Phase: BBS skyline. Cold caches on both sides (Write's serialization
    // scan warmed the in-memory pool).
    mem.pool().Clear();
    mem.ResetIoStats();
    const auto mem_sky = SkylineBBS(data, mem).value();
    const uint64_t sim_faults_bbs = mem.io_stats().page_faults;

    disk->ResetIoStats();
    disk->DropCache();
    WallTimer wall_bbs;
    const auto disk_sky = SkylineBBS(data, *disk).value();
    const double disk_bbs_s = wall_bbs.ElapsedSeconds();
    const uint64_t disk_faults_bbs = disk->io_stats().page_faults;

    table.Row({WorkloadKindName(kind), "BBS", TablePrinter::Int(sim_faults_bbs),
               TablePrinter::Int(disk_faults_bbs), TablePrinter::Secs(disk_bbs_s),
               TablePrinter::Secs(cost.seconds_per_fault *
                                  static_cast<double>(sim_faults_bbs))});
    shape.Check(std::string(WorkloadKindName(kind)) +
                    ": BBS fault counts identical (sim == real LRU)",
                sim_faults_bbs == disk_faults_bbs);
    shape.Check(std::string(WorkloadKindName(kind)) + ": BBS results identical",
                mem_sky.rows == disk_sky.rows);

    // Phase: SigGen-IB.
    const auto family = MinHashFamily::Create(100, data.size(), env.seed());
    mem.pool().Clear();
    mem.ResetIoStats();
    const auto mem_sig = SigGenIB(data, mem_sky.rows, family, mem).value();

    disk->ResetIoStats();
    disk->DropCache();
    WallTimer wall_ib;
    const auto disk_sig = SigGenIB(data, disk_sky.rows, family, *disk).value();
    const double disk_ib_s = wall_ib.ElapsedSeconds();

    table.Row({WorkloadKindName(kind), "SigGen-IB",
               TablePrinter::Int(mem_sig.io.page_faults),
               TablePrinter::Int(disk_sig.io.page_faults),
               TablePrinter::Secs(disk_ib_s),
               TablePrinter::Secs(cost.TotalSeconds(0.0, mem_sig.io))});
    shape.Check(std::string(WorkloadKindName(kind)) +
                    ": SigGen-IB fault counts identical",
                mem_sig.io.page_faults == disk_sig.io.page_faults);
    bool signatures_equal = true;
    for (size_t j = 0; j < mem_sky.rows.size() && signatures_equal; ++j) {
      for (size_t i = 0; i < 100; ++i) {
        if (mem_sig.signatures.at(j, i) != disk_sig.signatures.at(j, i)) {
          signatures_equal = false;
          break;
        }
      }
    }
    shape.Check(std::string(WorkloadKindName(kind)) +
                    ": SigGen-IB signatures bit-identical",
                signatures_equal);
    std::remove(path.c_str());
  }
  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
