// Reproduces Figure 9: signature-generation cost vs cardinality and vs
// dimensionality (t = 100), for IND and ANT, IB vs IF, reporting CPU time
// and total time (CPU + 8 ms per charged page fault) separately.
//
// Paper's findings reproduced here:
//  (a/b) ANT consistently favors IB; for IND, IF wins on total time (the
//        R-tree incurs more I/O than one sequential pass) while IB wins on
//        CPU (fewer dominance checks).
//  (c/d) low-dimensional ANT favors IF; as d grows, IB's dominance-check
//        savings win. For IND 2D the R-tree saves nearly all I/O.

#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "minhash/minhash.h"
#include "minhash/siggen.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

struct Measurement {
  double ib_cpu, ib_total, if_cpu, if_total;
  uint64_t ib_checks, if_checks, ib_faults, if_faults;
};

Measurement Measure(const DataSet& data, const RTree& tree,
                    size_t t, uint64_t seed) {
  const CostModel cost;
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(t, data.size(), seed);
  Measurement m{};

  CpuTimer cpu_ib;
  tree.ResetIoStats();
  const auto ib = SigGenIB(data, skyline, family, tree).value();
  m.ib_cpu = cpu_ib.ElapsedSeconds();
  m.ib_total = cost.TotalSeconds(m.ib_cpu, ib.io);
  m.ib_checks = ib.dominance_checks;
  m.ib_faults = ib.io.page_faults;

  CpuTimer cpu_if;
  const auto iff = SigGenIF(data, skyline, family).value();
  m.if_cpu = cpu_if.ElapsedSeconds();
  m.if_total = cost.TotalSeconds(m.if_cpu, iff.io);
  m.if_checks = iff.dominance_checks;
  m.if_faults = iff.io.page_faults;
  return m;
}

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv,
                "Figure 9: signature generation (t=100) vs cardinality and "
                "dimensionality, CPU and total time, IB vs IF")) {
    return 0;
  }
  const size_t t = 100;
  ShapeChecks shape("Figure 9");

  // --- (a)/(b): vary cardinality at d = 4 -----------------------------------
  {
    TablePrinter table({"panel", "data", "paper_n", "IB.cpu_s", "IF.cpu_s",
                        "IB.total_s", "IF.total_s", "IB.faults", "IF.faults"});
    for (WorkloadKind kind :
         {WorkloadKind::kIndependent, WorkloadKind::kAnticorrelated}) {
      for (RowId paper_n : {1000000u, 2000000u, 5000000u, 7000000u}) {
        const DataSet& data = env.Data(kind, paper_n, 4);
        const RTree& tree = env.Tree(kind, paper_n, 4);
        const auto m = Measure(data, tree, t, env.seed());
        table.Row({"9ab", WorkloadKindName(kind),
                   TablePrinter::Int(paper_n), TablePrinter::Secs(m.ib_cpu),
                   TablePrinter::Secs(m.if_cpu), TablePrinter::Secs(m.ib_total),
                   TablePrinter::Secs(m.if_total), TablePrinter::Int(m.ib_faults),
                   TablePrinter::Int(m.if_faults)});
        if (paper_n == 5000000u) {
          const std::string tag = std::string(WorkloadKindName(kind)) + " 5M 4d";
          shape.Check(tag + ": IB needs fewer dominance checks than IF",
                      m.ib_checks < m.if_checks);
          if (kind == WorkloadKind::kAnticorrelated) {
            shape.Check(tag + ": ANT favors IB on total time",
                        m.ib_total <= m.if_total * 1.25);
          }
        }
      }
    }
  }

  // --- (c)/(d): vary dimensionality at n = 5M --------------------------------
  {
    TablePrinter table({"panel", "data", "dims", "IB.cpu_s", "IF.cpu_s",
                        "IB.total_s", "IF.total_s", "IB.faults", "IF.faults"});
    Measurement ind2{}, ind6{};
    for (WorkloadKind kind :
         {WorkloadKind::kIndependent, WorkloadKind::kAnticorrelated}) {
      for (Dim d : {2u, 3u, 4u, 6u}) {
        const DataSet& data = env.Data(kind, 5000000, d);
        const RTree& tree = env.Tree(kind, 5000000, d);
        const auto m = Measure(data, tree, t, env.seed());
        table.Row({"9cd", WorkloadKindName(kind), TablePrinter::Int(d),
                   TablePrinter::Secs(m.ib_cpu), TablePrinter::Secs(m.if_cpu),
                   TablePrinter::Secs(m.ib_total), TablePrinter::Secs(m.if_total),
                   TablePrinter::Int(m.ib_faults), TablePrinter::Int(m.if_faults)});
        if (kind == WorkloadKind::kIndependent && d == 2) ind2 = m;
        if (kind == WorkloadKind::kIndependent && d == 6) ind6 = m;
      }
    }
    shape.Check("IND 2D: IB saves nearly all I/O vs the sequential pass",
                ind2.ib_faults * 4 < ind2.if_faults);
    shape.Check("IND 6D: IB saves CPU (dominance checks) vs IF",
                ind6.ib_checks < ind6.if_checks);
  }
  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
