// Shared infrastructure for the experiment-reproduction binaries.
//
// Every bench binary reproduces one table or figure of the paper. Because
// this harness typically runs on a small machine, workloads default to a
// scaled-down cardinality (same distributions, same parameter grids, same
// relative comparisons — see DESIGN.md §4); pass --paper to run the paper's
// full sizes, or --scale to pick any divisor.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/io_stats.h"
#include "core/dataset.h"
#include "datagen/generators.h"
#include "rtree/rtree.h"

namespace skydiver::bench {

/// Command-line environment shared by all bench binaries.
class BenchEnv {
 public:
  /// Registers the common flags, parses argv, prints usage on --help.
  /// Returns false if the program should exit (help or parse error).
  /// `default_scale` is the binary's default cardinality divisor (heavier
  /// experiments default to a smaller footprint).
  bool Init(int argc, char** argv, const std::string& description,
            double default_scale = 50.0);

  /// Scales a paper cardinality down by the configured factor (min 1000).
  RowId Scaled(RowId paper_cardinality) const;

  /// Generates (and memoizes) a workload at the given PAPER cardinality;
  /// the actual size is Scaled(paper_cardinality).
  const DataSet& Data(WorkloadKind kind, RowId paper_cardinality, Dim dims);

  /// Builds (and memoizes) a bulk-loaded aggregate R*-tree for a workload.
  const RTree& Tree(WorkloadKind kind, RowId paper_cardinality, Dim dims);

  uint64_t seed() const { return static_cast<uint64_t>(seed_); }
  bool paper_scale() const { return paper_; }
  double scale() const { return scale_; }

  Flags& flags() { return flags_; }

 private:
  Flags flags_;
  int64_t seed_ = 42;
  double scale_ = 50.0;  // default: paper sizes / 50
  bool paper_ = false;

  std::map<std::string, DataSet> data_cache_;
  std::map<std::string, RTree> tree_cache_;
};

/// Fixed-width table printer: emits a header once, then aligned rows, and
/// a trailing blank line on destruction.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);
  ~TablePrinter();

  void Row(const std::vector<std::string>& cells);

  static std::string Num(double v, int precision = 3);
  static std::string Int(uint64_t v);
  /// Seconds with adaptive precision (the paper's plots are log-scale).
  static std::string Secs(double seconds);

 private:
  std::vector<std::string> columns_;
  std::vector<size_t> widths_;
  bool header_printed_ = false;
  void PrintHeader();
};

/// Collects named shape assertions ("MH faster than SG at k=10") and prints
/// a PASS/FAIL summary. Bench binaries always exit 0; the summary is for
/// eyeballing EXPERIMENTS.md claims.
class ShapeChecks {
 public:
  explicit ShapeChecks(std::string experiment) : experiment_(std::move(experiment)) {}

  void Check(const std::string& claim, bool holds);

  /// Prints the summary; returns the number of failed checks.
  int Summarize() const;

 private:
  std::string experiment_;
  std::vector<std::pair<std::string, bool>> checks_;
};

}  // namespace skydiver::bench
