// Reproduces Figure 11: diversification runtime vs number of requested
// points k in {2, 5, 10, 50}, for SG, MH100 and LSH100 on IND, ANT, FC, REC
// at their default dimensionalities (4, 4, 5, 5).
//
// Paper's findings: MH and LSH are orders of magnitude below SG for every
// k; their runtime is dominated by signature generation and hence almost
// flat in k, while SG's grows with k through ever more range queries.

#include <vector>

#include "bench/algos.h"
#include "bench/harness.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv,
                "Figure 11: runtime vs number of diverse points (k)",
                /*default_scale=*/100.0)) {
    return 0;
  }
  const size_t t = 100;
  ShapeChecks shape("Figure 11");
  TablePrinter table({"data", "k", "m", "SG_s", "MH100_s", "LSH100_s"});

  struct Setting {
    WorkloadKind kind;
    RowId paper_n;
    Dim dims;
  };
  const Setting settings[] = {
      {WorkloadKind::kIndependent, 5000000, 4},
      {WorkloadKind::kAnticorrelated, 5000000, 4},
      {WorkloadKind::kForestCoverLike, 581012, 5},
      {WorkloadKind::kRecipesLike, 365000, 5},
  };

  for (const auto& s : settings) {
    const DataSet& data = env.Data(s.kind, s.paper_n, s.dims);
    const RTree& tree = env.Tree(s.kind, s.paper_n, s.dims);
    const auto skyline = SkylineSFS(data).rows;
    const size_t m = skyline.size();
    double mh_at_2 = 0.0, mh_at_50 = 0.0;
    for (size_t k : {2u, 5u, 10u, 50u}) {
      const size_t kk = std::min<size_t>(k, m);
      const auto sg = RunSG(data, skyline, kk, tree);
      const auto mh = RunMH(data, skyline, kk, t, &tree, env.seed());
      const auto lsh = RunLSH(data, skyline, kk, t, 0.2, 20, &tree, env.seed());
      auto cell = [](const AlgoResult& r) {
        return r.ran ? TablePrinter::Secs(r.total_seconds) : std::string("n/a");
      };
      table.Row({WorkloadKindName(s.kind), TablePrinter::Int(kk),
                 TablePrinter::Int(m), cell(sg), cell(mh), cell(lsh)});
      if (sg.ran && mh.ran && m > 50) {
        shape.Check(std::string(WorkloadKindName(s.kind)) + " k=" +
                        std::to_string(kk) + ": MH beats SG",
                    mh.total_seconds < sg.total_seconds);
      }
      if (k == 2) mh_at_2 = mh.total_seconds;
      if (k == 50) mh_at_50 = mh.total_seconds;
    }
    if (mh_at_2 > 0 && mh_at_50 > 0) {
      shape.Check(std::string(WorkloadKindName(s.kind)) +
                      ": MH runtime nearly flat in k (siggen-dominated)",
                  mh_at_50 < mh_at_2 * 3.0);
    }
  }
  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
