// Ablation study of SkyDiver's design choices (not a paper figure; it
// quantifies the decisions the paper makes by argument):
//
//  A. Greedy seeding: max-dominance-score seed (the paper's Fig. 6) vs the
//     classic most-distant-pair seed (Ravi et al.) vs a fixed first-index
//     seed — diversity and coverage of the result.
//  B. Objective: k-MMDP greedy vs k-MSDP greedy — the paper prefers MMDP
//     for its 2- (vs 4-) approximation and balanced distances.
//  C. Greedy vs greedy + local-search refinement — how much objective the
//     2-approximation leaves on the table.
//  D. Skyline algorithms: BNL vs SFS vs BBS — dominance checks and I/O.
//  E. R-tree construction: STR bulk load vs dynamic R* insertion — pages,
//     height and per-query I/O of the resulting trees.

#include <algorithm>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "core/gamma.h"
#include "diversify/dispersion.h"
#include "diversify/evaluate.h"
#include "diversify/local_search.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv, "Ablation: seeding, objective, refinement, skyline "
                            "algorithms, index construction")) {
    return 0;
  }
  ShapeChecks shape("Ablation");
  const size_t k = 10;

  // Shared workload.
  const DataSet& data = env.Data(WorkloadKind::kIndependent, 5000000, 4);
  const auto skyline = SkylineSFS(data).rows;
  const GammaSets gammas = GammaSets::Compute(data, skyline);
  const size_t m = skyline.size();
  auto exact_distance = [&](size_t a, size_t b) { return gammas.JaccardDistance(a, b); };
  auto dominance_score = [&](size_t j) {
    return static_cast<double>(gammas.DominationScore(j));
  };

  // --- A: seeding strategies --------------------------------------------------
  {
    TablePrinter table({"seeding", "min_diversity", "coverage"});
    const auto max_dom = SelectDiverseSet(m, k, exact_distance, dominance_score).value();
    const auto q_max_dom = EvaluateSelection(gammas, max_dom.selected);
    table.Row({"max-dominance (paper)", TablePrinter::Num(q_max_dom.min_diversity),
               TablePrinter::Num(q_max_dom.coverage)});

    // Most-distant-pair seed: emulate by seeding at one end of the diameter
    // (score = max distance to anything).
    std::vector<double> ecc(m, 0.0);
    for (size_t a = 0; a < m; ++a) {
      for (size_t b = 0; b < m; ++b) {
        if (a != b) ecc[a] = std::max(ecc[a], exact_distance(a, b));
      }
    }
    auto ecc_score = [&](size_t j) { return ecc[j]; };
    const auto diameter = SelectDiverseSet(m, k, exact_distance, ecc_score).value();
    const auto q_diameter = EvaluateSelection(gammas, diameter.selected);
    table.Row({"most-distant-pair", TablePrinter::Num(q_diameter.min_diversity),
               TablePrinter::Num(q_diameter.coverage)});

    auto first_score = [&](size_t j) { return j == 0 ? 1.0 : 0.0; };
    const auto first = SelectDiverseSet(m, k, exact_distance, first_score).value();
    const auto q_first = EvaluateSelection(gammas, first.selected);
    table.Row({"first-index", TablePrinter::Num(q_first.min_diversity),
               TablePrinter::Num(q_first.coverage)});

    shape.Check("A: max-dominance seeding matches diameter seeding on diversity "
                "(within 0.1)",
                q_max_dom.min_diversity + 0.1 >= q_diameter.min_diversity);
    shape.Check("A: max-dominance seeding yields the best coverage",
                q_max_dom.coverage + 1e-9 >= q_first.coverage &&
                    q_max_dom.coverage + 1e-9 >= q_diameter.coverage);
  }

  // --- B: k-MMDP vs k-MSDP ------------------------------------------------------
  {
    TablePrinter table({"objective", "min_diversity", "avg_diversity"});
    const auto mmdp = SelectDiverseSet(m, k, exact_distance, dominance_score).value();
    const auto msdp = SelectMaxSumSet(m, k, exact_distance, dominance_score).value();
    const auto q_mmdp = EvaluateSelection(gammas, mmdp.selected);
    const auto q_msdp = EvaluateSelection(gammas, msdp.selected);
    table.Row({"k-MMDP (paper)", TablePrinter::Num(q_mmdp.min_diversity),
               TablePrinter::Num(q_mmdp.avg_diversity)});
    table.Row({"k-MSDP", TablePrinter::Num(q_msdp.min_diversity),
               TablePrinter::Num(q_msdp.avg_diversity)});
    shape.Check("B: k-MMDP achieves a better (or equal) minimum distance",
                q_mmdp.min_diversity + 1e-9 >= q_msdp.min_diversity);
  }

  // --- C: greedy vs greedy + local search ---------------------------------------
  {
    TablePrinter table({"method", "objective", "swaps"});
    const auto greedy = SelectDiverseSet(m, k, exact_distance, dominance_score).value();
    const auto refined = RefineDispersion(m, greedy.selected, exact_distance).value();
    table.Row({"greedy (paper)", TablePrinter::Num(greedy.min_pairwise), "0"});
    table.Row({"greedy+local-search", TablePrinter::Num(refined.min_pairwise),
               TablePrinter::Int(refined.swaps)});
    shape.Check("C: local search never hurts", refined.min_pairwise + 1e-12 >=
                                                   greedy.min_pairwise);
    shape.Check("C: greedy is already within 20% of its refined objective "
                "(supports the paper's plain greedy)",
                greedy.min_pairwise * 1.2 + 1e-9 >= refined.min_pairwise);
  }

  // --- D: skyline algorithms -----------------------------------------------------
  {
    TablePrinter table({"algorithm", "cpu_s", "dominance_checks", "page_reads"});
    CpuTimer t_bnl;
    const auto bnl = SkylineBNL(data);
    const double bnl_s = t_bnl.ElapsedSeconds();
    CpuTimer t_sfs;
    const auto sfs = SkylineSFS(data);
    const double sfs_s = t_sfs.ElapsedSeconds();
    const RTree& tree = env.Tree(WorkloadKind::kIndependent, 5000000, 4);
    tree.ResetIoStats();
    CpuTimer t_bbs;
    const auto bbs = SkylineBBS(data, tree).value();
    const double bbs_s = t_bbs.ElapsedSeconds();
    table.Row({"BNL", TablePrinter::Secs(bnl_s), TablePrinter::Int(bnl.dominance_checks),
               "0"});
    table.Row({"SFS", TablePrinter::Secs(sfs_s), TablePrinter::Int(sfs.dominance_checks),
               "0"});
    table.Row({"BBS", TablePrinter::Secs(bbs_s), TablePrinter::Int(bbs.dominance_checks),
               TablePrinter::Int(tree.io_stats().page_reads)});
    shape.Check("D: all three algorithms agree",
                bnl.rows == sfs.rows && sfs.rows == bbs.rows);
    shape.Check("D: SFS needs fewer dominance checks than BNL",
                sfs.dominance_checks < bnl.dominance_checks);
    shape.Check("D: BBS reads only part of the index (I/O optimality)",
                tree.io_stats().page_reads < tree.PageCount());
  }

  // --- E: bulk load vs dynamic insertion ------------------------------------------
  {
    TablePrinter table({"construction", "pages", "height", "query_page_reads"});
    const auto probe_queries = [&](const RTree& tree) {
      tree.ResetIoStats();
      for (RowId r = 0; r < data.size(); r += data.size() / 50) {
        (void)tree.DominatedCount(data.row(r));
      }
      return tree.io_stats().page_reads;
    };
    const RTree& bulk = env.Tree(WorkloadKind::kIndependent, 5000000, 4);
    const auto dynamic = RTree::InsertLoad(data).value();
    const auto bulk_reads = probe_queries(bulk);
    const auto dyn_reads = probe_queries(dynamic);
    table.Row({"STR bulk load", TablePrinter::Int(bulk.PageCount()),
               TablePrinter::Int(bulk.height()), TablePrinter::Int(bulk_reads)});
    table.Row({"dynamic R* insert", TablePrinter::Int(dynamic.PageCount()),
               TablePrinter::Int(dynamic.height()), TablePrinter::Int(dyn_reads)});
    shape.Check("E: bulk load packs into fewer (or equal) pages",
                bulk.PageCount() <= dynamic.PageCount());
    shape.Check("E: bulk-loaded tree answers queries with no more I/O than x1.5",
                static_cast<double>(bulk_reads) <= 1.5 * static_cast<double>(dyn_reads));
  }

  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
