#include "bench/algos.h"

#include <algorithm>

#include "common/timer.h"
#include "diversify/brute_force.h"
#include "diversify/dispersion.h"
#include "diversify/simple_greedy.h"
#include "lsh/lsh.h"
#include "minhash/minhash.h"
#include "minhash/siggen.h"

namespace skydiver::bench {

namespace {
const CostModel kCost;
}  // namespace

AlgoResult RunBF(const DataSet& data, const std::vector<RowId>& skyline, size_t k,
                 const RTree& tree, size_t max_m) {
  AlgoResult out;
  const size_t m = skyline.size();
  if (m > max_m || k > m) return out;
  const IoStats io_before = tree.io_stats();
  CpuTimer cpu;
  // Like the paper's BF: all O(m^2) pairwise exact Jaccard distances are
  // computed up front via aggregate range-count queries, then every subset
  // is enumerated.
  std::vector<uint64_t> gamma_size(m);
  for (size_t j = 0; j < m; ++j) {
    gamma_size[j] = tree.DominatedCount(data.row(skyline[j]));
  }
  auto distance = [&](size_t a, size_t b) {
    const uint64_t inter =
        tree.CommonDominatedCount(data.row(skyline[a]), data.row(skyline[b]));
    const uint64_t uni = gamma_size[a] + gamma_size[b] - inter;
    if (uni == 0) return 0.0;
    return 1.0 - static_cast<double>(inter) / static_cast<double>(uni);
  };
  auto result = BruteForceMaxMin(m, k, distance);
  if (!result.ok()) return out;  // enumeration cap exceeded
  out.cpu_seconds = cpu.ElapsedSeconds();
  const IoStats io_after = tree.io_stats();
  IoStats io;
  io.page_reads = io_after.page_reads - io_before.page_reads;
  io.page_faults = io_after.page_faults - io_before.page_faults;
  out.total_seconds = kCost.TotalSeconds(out.cpu_seconds, io);
  out.selected = std::move(result.value().selected);
  out.ran = true;
  return out;
}

AlgoResult RunSG(const DataSet& data, const std::vector<RowId>& skyline, size_t k,
                 const RTree& tree, size_t max_m) {
  AlgoResult out;
  if (skyline.size() > max_m || k > skyline.size()) return out;
  CpuTimer cpu;
  auto result = SimpleGreedy(data, skyline, k, tree);
  if (!result.ok()) return out;
  out.cpu_seconds = cpu.ElapsedSeconds();
  out.total_seconds = kCost.TotalSeconds(out.cpu_seconds, result->io);
  out.selected = std::move(result.value().dispersion.selected);
  out.ran = true;
  return out;
}

namespace {

// Shared fingerprinting step for MH / LSH.
struct Fingerprint {
  SignatureMatrix signatures;
  std::vector<uint64_t> scores;
  double cpu_seconds;
  IoStats io;
};

Fingerprint MakeFingerprint(const DataSet& data, const std::vector<RowId>& skyline,
                            size_t t, const RTree* tree, uint64_t seed) {
  CpuTimer cpu;
  const auto family = MinHashFamily::Create(t, data.size(), seed);
  Fingerprint fp;
  if (tree != nullptr) {
    tree->ResetIoStats();
    auto result = SigGenIB(data, skyline, family, *tree).value();
    fp.signatures = std::move(result.signatures);
    fp.scores = std::move(result.domination_scores);
    fp.io = result.io;
  } else {
    auto result = SigGenIF(data, skyline, family).value();
    fp.signatures = std::move(result.signatures);
    fp.scores = std::move(result.domination_scores);
    fp.io = result.io;
  }
  fp.cpu_seconds = cpu.ElapsedSeconds();
  return fp;
}

}  // namespace

AlgoResult RunMH(const DataSet& data, const std::vector<RowId>& skyline, size_t k,
                 size_t signature_size, const RTree* tree, uint64_t seed) {
  AlgoResult out;
  if (k > skyline.size()) return out;
  Fingerprint fp = MakeFingerprint(data, skyline, signature_size, tree, seed);
  CpuTimer cpu;
  auto distance = [&](size_t a, size_t b) {
    return fp.signatures.EstimatedDistance(a, b);
  };
  auto score = [&](size_t j) { return static_cast<double>(fp.scores[j]); };
  auto result = SelectDiverseSet(skyline.size(), k, distance, score).value();
  out.cpu_seconds = fp.cpu_seconds + cpu.ElapsedSeconds();
  out.total_seconds = kCost.TotalSeconds(out.cpu_seconds, fp.io);
  out.selected = std::move(result.selected);
  out.memory_bytes = fp.signatures.MemoryBytes();
  out.ran = true;
  return out;
}

AlgoResult RunLSH(const DataSet& data, const std::vector<RowId>& skyline, size_t k,
                  size_t signature_size, double threshold, size_t buckets,
                  const RTree* tree, uint64_t seed) {
  AlgoResult out;
  if (k > skyline.size()) return out;
  Fingerprint fp = MakeFingerprint(data, skyline, signature_size, tree, seed);
  CpuTimer cpu;
  const auto params = ChooseZones(signature_size, threshold, buckets).value();
  const auto index = LshIndex::Build(fp.signatures, params, seed ^ 0xdecaf).value();
  auto distance = [&](size_t a, size_t b) { return index.Distance(a, b); };
  auto score = [&](size_t j) { return static_cast<double>(fp.scores[j]); };
  auto result = SelectDiverseSet(skyline.size(), k, distance, score).value();
  out.cpu_seconds = fp.cpu_seconds + cpu.ElapsedSeconds();
  out.total_seconds = kCost.TotalSeconds(out.cpu_seconds, fp.io);
  out.selected = std::move(result.selected);
  out.memory_bytes = index.MemoryBytes();
  out.ran = true;
  return out;
}

}  // namespace skydiver::bench
