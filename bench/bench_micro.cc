// Microbenchmarks (google-benchmark) for the primitives whose costs drive
// the experiment-level numbers: dominance tests, MinHash application,
// signature distance estimation, bit-vector algebra, R-tree range counting
// and buffer-pool bookkeeping.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/bitvector.h"
#include "common/rng.h"
#include "core/dominance.h"
#include "core/gamma.h"
#include "datagen/generators.h"
#include "minhash/minhash.h"
#include "minhash/siggen.h"
#include "rtree/rtree.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

void BM_DominanceCheck(benchmark::State& state) {
  const auto d = static_cast<Dim>(state.range(0));
  const DataSet data = GenerateIndependent(1024, d, 1);
  size_t i = 0;
  for (auto _ : state) {
    const auto a = data.row(static_cast<RowId>(i & 1023));
    const auto b = data.row(static_cast<RowId>((i * 7 + 1) & 1023));
    benchmark::DoNotOptimize(Dominates(a, b));
    ++i;
  }
}
BENCHMARK(BM_DominanceCheck)->Arg(2)->Arg(4)->Arg(8);

void BM_MinHashApply(benchmark::State& state) {
  const auto family = MinHashFamily::Create(100, 1 << 20, 3);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(family.Apply(x % 100, x));
    ++x;
  }
}
BENCHMARK(BM_MinHashApply);

void BM_EstimatedDistance(benchmark::State& state) {
  const auto t = static_cast<size_t>(state.range(0));
  SignatureMatrix sig(t, 2);
  Rng rng(5);
  for (size_t i = 0; i < t; ++i) {
    sig.UpdateMin(0, i, rng.Next() >> 32);
    sig.UpdateMin(1, i, rng.Next() >> 32);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sig.EstimatedDistance(0, 1));
  }
}
BENCHMARK(BM_EstimatedDistance)->Arg(50)->Arg(100)->Arg(400);

void BM_BitVectorJaccard(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  BitVector a(n), b(n);
  Rng rng(7);
  for (size_t i = 0; i < n / 4; ++i) {
    a.Set(rng.NextBounded(n));
    b.Set(rng.NextBounded(n));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.AndCount(b));
    benchmark::DoNotOptimize(a.OrCount(b));
  }
}
BENCHMARK(BM_BitVectorJaccard)->Arg(10000)->Arg(100000);

void BM_RTreeRangeCount(benchmark::State& state) {
  const DataSet data = GenerateIndependent(50000, 4, 9);
  const auto tree = RTree::BulkLoad(data).value();
  Rng rng(11);
  for (auto _ : state) {
    std::vector<Coord> lo(4), hi(4);
    for (size_t i = 0; i < 4; ++i) {
      const double a = rng.NextDouble() * 0.8;
      lo[i] = a;
      hi[i] = a + 0.2;
    }
    benchmark::DoNotOptimize(tree.RangeCount(lo, hi));
  }
}
BENCHMARK(BM_RTreeRangeCount);

void BM_RTreeDominatedCount(benchmark::State& state) {
  const DataSet data = GenerateIndependent(50000, 4, 13);
  const auto tree = RTree::BulkLoad(data).value();
  Rng rng(15);
  for (auto _ : state) {
    std::vector<Coord> p(4);
    for (auto& v : p) v = rng.NextDouble() * 0.5;
    benchmark::DoNotOptimize(tree.DominatedCount(p));
  }
}
BENCHMARK(BM_RTreeDominatedCount);

void BM_SkylineSFS(benchmark::State& state) {
  const auto n = static_cast<RowId>(state.range(0));
  const DataSet data = GenerateIndependent(n, 4, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SkylineSFS(data).rows.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SkylineSFS)->Arg(10000)->Arg(50000);

void BM_SigGenIF(benchmark::State& state) {
  const DataSet data = GenerateIndependent(20000, 4, 19);
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(100, data.size(), 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SigGenIF(data, skyline, family).value().signatures);
  }
}
BENCHMARK(BM_SigGenIF);

void BM_SigGenIB(benchmark::State& state) {
  const DataSet data = GenerateIndependent(20000, 4, 19);
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(100, data.size(), 21);
  const auto tree = RTree::BulkLoad(data).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SigGenIB(data, skyline, family, tree).value().signatures);
  }
}
BENCHMARK(BM_SigGenIB);

}  // namespace
}  // namespace skydiver

BENCHMARK_MAIN();
