// Query-shaped skyline benchmark: what the SkyQuery surface costs and buys.
//
// Three sweeps over IND / ANT at d = 6 (ANT is the hard case — its skyline
// is large, so the skyline phase dominates and sharding has work to split):
//
//   * selectivity — constraint box [0, c]^d for shrinking c: the DataView
//     filters rows before the skyline pass, so runtime should fall with
//     the in-box fraction (the identity query, c = 1, is the baseline and
//     is bit-identical to the pre-query code path).
//   * subspace — projection masks of d' in {2, 4} against the full space:
//     dominance runs on fewer columns, but low-d skylines are smaller
//     still, so both the pass and the result shrink.
//   * shards — SkylineSharded on a thread pool at 1 / 2 / 4 / 8 shards:
//     the shard phase parallelizes; the cross-filter merge is the serial
//     tail. On a host with >= 4 cores the 4-shard pass should be >= 1.5x
//     the 1-shard pass on ANT (the ShapeCheck below).
//
// --json writes the full grid to BENCH_queries.json for tracking across
// hosts; CI smokes it at --scale 500.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "core/data_view.h"
#include "core/sky_query.h"
#include "parallel/parallel_ops.h"
#include "parallel/thread_pool.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

constexpr int kReps = 3;
constexpr Dim kDims = 6;

template <typename Fn>
double BestOf(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

struct JsonRecord {
  std::string workload;
  std::string sweep;    // "selectivity" | "subspace" | "shards"
  std::string point;    // the swept value, rendered
  RowId in_box = 0;     // rows the view admits
  size_t skyline = 0;   // skyline cardinality under the query
  double seconds = 0.0;
  double speedup = 1.0;  // vs the sweep's baseline point
};

void WriteJson(const std::string& path, RowId n, size_t pool_threads,
               const std::vector<JsonRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"queries\",\n  \"n\": " << n
      << ",\n  \"dims\": " << kDims << ",\n  \"pool_threads\": " << pool_threads
      << ",\n  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    out << "    {\"workload\": \"" << r.workload << "\", \"sweep\": \""
        << r.sweep << "\", \"point\": \"" << r.point
        << "\", \"in_box\": " << r.in_box << ", \"skyline\": " << r.skyline
        << ", \"seconds\": " << r.seconds << ", \"speedup\": " << r.speedup
        << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %zu records to %s\n", records.size(), path.c_str());
}

const char* Name(WorkloadKind kind) {
  return kind == WorkloadKind::kIndependent ? "IND" : "ANT";
}

int Run(int argc, char** argv) {
  BenchEnv env;
  std::string json_path = "BENCH_queries.json";
  env.flags().AddString("json", &json_path,
                        "write the selectivity / subspace / shards grid here");
  if (!env.Init(argc, argv,
                "Query-shaped skylines: constraint-box selectivity, subspace "
                "projection, and sharded speedup",
                /*default_scale=*/10.0)) {
    return 0;
  }

  const RowId paper_n = 1000000;
  ThreadPool pool(0);  // hardware concurrency
  ShapeChecks shape("queries");
  std::vector<JsonRecord> records;
  constexpr WorkloadKind kKinds[] = {WorkloadKind::kIndependent,
                                     WorkloadKind::kAnticorrelated};

  // --- selectivity sweep -----------------------------------------------------
  {
    TablePrinter table({"workload", "box_hi", "in_box", "skyline", "secs",
                        "vs_identity"});
    for (const WorkloadKind kind : kKinds) {
      const DataSet& data = env.Data(kind, paper_n, kDims);
      double identity_secs = 0.0;
      for (const double c : {1.0, 0.8, 0.6, 0.4, 0.2}) {
        SkyQuery q;
        if (c < 1.0) {
          q.lo.assign(kDims, 0.0);
          // The generators emit values in [0, 1]; ANT rows are additionally
          // anti-correlated around the diagonal, so [0, c]^d thins both.
          q.hi.assign(kDims, c);
        }
        auto normalized = NormalizeQuery(q, kDims);
        if (!normalized.ok()) {
          std::fprintf(stderr, "%s\n", normalized.status().ToString().c_str());
          return 1;
        }
        const DataView view(data, *normalized);
        size_t skyline = 0;
        const double secs =
            BestOf([&] { skyline = SkylineSFS(view, DomKernel::kSimd).rows.size(); });
        if (c == 1.0) identity_secs = secs;
        const double speedup = secs == 0.0 ? 1.0 : identity_secs / secs;
        table.Row({Name(kind), TablePrinter::Num(c, 1),
                   TablePrinter::Int(view.size()), TablePrinter::Int(skyline),
                   TablePrinter::Secs(secs), TablePrinter::Num(speedup, 2)});
        records.push_back({Name(kind), "selectivity", TablePrinter::Num(c, 1),
                           view.size(), skyline, secs, speedup});
        if (c == 0.2) {
          shape.Check(std::string(Name(kind)) +
                          ": a c=0.2 box is not slower than the identity query",
                      secs <= identity_secs * 1.10);
        }
      }
    }
  }

  // --- subspace sweep --------------------------------------------------------
  {
    TablePrinter table({"workload", "d'", "skyline", "secs", "vs_full"});
    for (const WorkloadKind kind : kKinds) {
      const DataSet& data = env.Data(kind, paper_n, kDims);
      double full_secs = 0.0;
      for (const Dim dprime : {kDims, Dim{4}, Dim{2}}) {
        SkyQuery q;
        for (Dim d = 0; d < dprime; ++d) q.project.push_back(d);
        auto normalized = NormalizeQuery(q, kDims);
        if (!normalized.ok()) {
          std::fprintf(stderr, "%s\n", normalized.status().ToString().c_str());
          return 1;
        }
        const DataView view(data, *normalized);
        size_t skyline = 0;
        const double secs =
            BestOf([&] { skyline = SkylineSFS(view, DomKernel::kSimd).rows.size(); });
        if (dprime == kDims) full_secs = secs;
        const double speedup = secs == 0.0 ? 1.0 : full_secs / secs;
        table.Row({Name(kind), TablePrinter::Int(dprime),
                   TablePrinter::Int(skyline), TablePrinter::Secs(secs),
                   TablePrinter::Num(speedup, 2)});
        records.push_back({Name(kind), "subspace", TablePrinter::Int(dprime),
                           view.size(), skyline, secs, speedup});
      }
      shape.Check(std::string(Name(kind)) +
                      ": the d'=2 subspace pass beats the full-space pass",
                  records.back().speedup >= 1.0);
    }
  }

  // --- shard sweep -----------------------------------------------------------
  {
    TablePrinter table({"workload", "shards", "skyline", "secs", "vs_serial"});
    for (const WorkloadKind kind : kKinds) {
      const DataSet& data = env.Data(kind, paper_n, kDims);
      const DataView view(data);
      double serial_secs = 0.0;
      double shard4_speedup = 0.0;
      for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
        size_t skyline = 0;
        const double secs = BestOf([&] {
          skyline =
              ShardedSkyline(view, shards, &pool, DomKernel::kSimd).rows.size();
        });
        if (shards == 1) serial_secs = secs;
        const double speedup = secs == 0.0 ? 1.0 : serial_secs / secs;
        if (shards == 4) shard4_speedup = speedup;
        table.Row({Name(kind), TablePrinter::Int(shards),
                   TablePrinter::Int(skyline), TablePrinter::Secs(secs),
                   TablePrinter::Num(speedup, 2)});
        records.push_back({Name(kind), "shards", TablePrinter::Int(shards),
                           view.size(), skyline, secs, speedup});
      }
      if (kind == WorkloadKind::kAnticorrelated && pool.size() >= 4) {
        shape.Check("ANT: 4 shards >= 1.5x serial on a >= 4-core host",
                    shard4_speedup >= 1.5);
      }
    }
  }

  if (!json_path.empty()) {
    WriteJson(json_path, env.Scaled(paper_n), pool.size(), records);
  }
  shape.Summarize();  // bench binaries always exit 0
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
