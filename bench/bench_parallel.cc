// Morsel-scheduler scaling curves: the three morselized hot paths —
// SigGen-IF, the pooled skyline, and the greedy k-MMDP selection — timed
// at 1/2/4/8 pool threads across IND / CORR / ANT at d = 4, 8, 12.
//
// Expected shape: SigGen-IF is the embarrassingly parallel pass (one
// exhaustive dominance sweep per data row, rows partitioned into morsels)
// and should scale near-linearly while the machine has cores to give; the
// pooled skyline scales on ANT/high-d where local skylines are large but
// is merge-bound on CORR; selection scales with the skyline cardinality m
// (CORR's handful of skyline points leaves nothing to parallelize — the
// curve is flat by design, not by defect). Every configuration returns
// bit-identical results to serial (tests/morsel_test.cc proves it; this
// binary re-checks the cheap digests), so the curves measure scheduling,
// not divergence.
//
// The >= 3x-at-8-threads SigGen-IF check only arms on hosts with at least
// 8 cores (and only when --max-threads allows the 8-thread row): container
// CI lanes with 1-4 cores cannot exhibit the speedup and must not fail on
// physics. --json writes the full grid to BENCH_parallel.json.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "diversify/dispersion.h"
#include "minhash/minhash.h"
#include "minhash/siggen.h"
#include "parallel/parallel_ops.h"
#include "parallel/thread_pool.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

constexpr int kReps = 3;
constexpr size_t kSignatureSize = 100;
constexpr size_t kSelectK = 10;

template <typename Fn>
double BestOf(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

struct JsonRecord {
  std::string op;
  std::string workload;
  Dim dims = 0;
  size_t threads = 0;
  double seconds = 0.0;
  double speedup_vs_1 = 0.0;
};

void WriteJson(const std::string& path, RowId n,
               const std::vector<JsonRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"parallel\",\n  \"n\": " << n << ",\n  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    out << "    {\"op\": \"" << r.op << "\", \"workload\": \"" << r.workload
        << "\", \"dims\": " << r.dims << ", \"threads\": " << r.threads
        << ", \"seconds\": " << r.seconds << ", \"speedup_vs_1\": " << r.speedup_vs_1
        << "}" << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %zu records to %s\n", records.size(), path.c_str());
}

int Run(int argc, char** argv) {
  BenchEnv env;
  std::string json_path;
  int64_t max_threads = 8;
  env.flags().AddString("json", &json_path,
                        "write the scaling grid to this JSON file");
  env.flags().AddInt64("max-threads", &max_threads,
                       "largest pool size to time (rows above it are skipped)");
  if (!env.Init(argc, argv, "Morsel-scheduler scaling: SigGen-IF / skyline / "
                            "selection at 1..8 pool threads")) {
    return 0;
  }
  if (max_threads < 1) {
    std::fprintf(stderr, "--max-threads must be >= 1\n");
    return 2;
  }

  // skylint:allow(determinism): capacity probe, not a randomness source —
  // gates the speedup expectation to hosts that can physically exhibit it.
  const size_t cores = std::max(1u, std::thread::hardware_concurrency());
  const RowId n = env.Scaled(100000);
  std::printf("# bench_parallel: n=%llu cores=%zu max-threads=%lld\n\n",
              static_cast<unsigned long long>(n), cores,
              static_cast<long long>(max_threads));

  const std::vector<size_t> thread_grid = {1, 2, 4, 8};
  const WorkloadKind kinds[] = {WorkloadKind::kIndependent, WorkloadKind::kCorrelated,
                                WorkloadKind::kAnticorrelated};
  const Dim dim_grid[] = {4, 8, 12};

  TablePrinter table({"op", "workload", "d", "threads", "seconds", "speedup"});
  std::vector<JsonRecord> records;
  ShapeChecks shape("bench_parallel");
  double siggen_8t_worst_speedup = 1e300;
  bool saw_8t_siggen = false;

  for (WorkloadKind kind : kinds) {
    for (Dim d : dim_grid) {
      const DataSet& data = env.Data(kind, 100000, d);
      const auto skyline = SkylineSFS(data).rows;
      const auto family =
          MinHashFamily::Create(kSignatureSize, data.size(), env.seed());
      const auto sig = SigGenIF(data, skyline, family).value();
      const size_t m = skyline.size();
      const DistanceFn distance = [&sig](size_t a, size_t b) {
        return sig.signatures.EstimatedDistance(a, b);
      };
      const size_t k = std::min(kSelectK, m);

      // Per-op 1-thread baselines for the self-relative speedups.
      double base_siggen = 0.0, base_skyline = 0.0, base_select = 0.0;
      for (size_t threads : thread_grid) {
        if (threads > static_cast<size_t>(max_threads)) continue;
        ThreadPool pool(threads);

        const double t_siggen = BestOf([&] {
          (void)ParallelSigGenIF(data, skyline, family, pool).value();
        });
        const double t_skyline = BestOf([&] { (void)ParallelSkyline(data, pool); });
        const double t_select = BestOf([&] {
          (void)ParallelSelectDiverseSet(m, k, distance, sig.domination_scores, pool)
              .value();
        });

        if (threads == 1) {
          base_siggen = t_siggen;
          base_skyline = t_skyline;
          base_select = t_select;
        }
        const struct {
          const char* op;
          double seconds;
          double base;
        } rows[] = {{"siggen-if", t_siggen, base_siggen},
                    {"skyline", t_skyline, base_skyline},
                    {"select", t_select, base_select}};
        for (const auto& r : rows) {
          const double speedup = r.seconds > 0.0 ? r.base / r.seconds : 0.0;
          table.Row({r.op, WorkloadKindName(kind), TablePrinter::Int(d),
                     TablePrinter::Int(threads), TablePrinter::Secs(r.seconds),
                     TablePrinter::Num(speedup, 2)});
          records.push_back(JsonRecord{r.op, WorkloadKindName(kind), d, threads,
                                       r.seconds, speedup});
          if (r.op == std::string("siggen-if") && threads == 8) {
            saw_8t_siggen = true;
            siggen_8t_worst_speedup =
                std::min(siggen_8t_worst_speedup,
                         r.seconds > 0.0 ? r.base / r.seconds : 0.0);
          }
        }
      }
    }
  }

  // Scaling is a property of the host, not the code: only a machine with
  // >= 8 cores can show an 8-thread speedup, so the gate arms conditionally.
  shape.Check("every configuration produced a timing", !records.empty());
  if (cores >= 8 && saw_8t_siggen) {
    shape.Check("SigGen-IF >= 3x self-relative speedup at 8 threads",
                siggen_8t_worst_speedup >= 3.0);
  } else {
    std::printf("note: %zu core(s), max-threads=%lld — 8-thread speedup gate "
                "not armed\n",
                cores, static_cast<long long>(max_threads));
  }
  shape.Summarize();

  if (!json_path.empty()) WriteJson(json_path, n, records);
  return 0;  // bench binaries always exit 0; shape summary is advisory
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
