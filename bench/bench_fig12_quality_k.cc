// Reproduces Figure 12: result quality vs number of diverse points (k).
//
// Quality = the selection's minimum pairwise Jaccard distance measured in
// the ORIGINAL space (exact dominated sets), for SG, MH100 and LSH100 on
// IND, ANT, FC, REC. Paper's findings: diversity decreases as k grows; SG
// (exact distances) is best; MH tracks it closely up to k ~ 10; LSH
// declines more steeply, the price of its memory savings.

#include <algorithm>
#include <vector>

#include "bench/algos.h"
#include "bench/harness.h"
#include "core/gamma.h"
#include "diversify/evaluate.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv,
                "Figure 12: diversity quality (min exact Jaccard distance) vs k",
                /*default_scale=*/100.0)) {
    return 0;
  }
  const size_t t = 100;
  ShapeChecks shape("Figure 12");
  TablePrinter table({"data", "k", "SG.div", "MH100.div", "LSH100.div"});

  struct Setting {
    WorkloadKind kind;
    RowId paper_n;
    Dim dims;
  };
  const Setting settings[] = {
      {WorkloadKind::kIndependent, 5000000, 4},
      {WorkloadKind::kAnticorrelated, 5000000, 4},
      {WorkloadKind::kForestCoverLike, 581012, 5},
      {WorkloadKind::kRecipesLike, 365000, 5},
  };

  for (const auto& s : settings) {
    const DataSet& data = env.Data(s.kind, s.paper_n, s.dims);
    const RTree& tree = env.Tree(s.kind, s.paper_n, s.dims);
    const auto skyline = SkylineSFS(data).rows;
    const size_t m = skyline.size();
    const GammaSets gammas = GammaSets::Compute(data, skyline);

    std::vector<double> sg_curve;
    std::vector<double> mh_curve;
    for (size_t k : {2u, 5u, 10u, 50u}) {
      const size_t kk = std::min<size_t>(k, m);
      const auto sg = RunSG(data, skyline, kk, tree);
      const auto mh = RunMH(data, skyline, kk, t, &tree, env.seed());
      const auto lsh = RunLSH(data, skyline, kk, t, 0.2, 20, &tree, env.seed());
      const double q_sg =
          sg.ran ? EvaluateSelection(gammas, sg.selected).min_diversity : -1;
      const double q_mh =
          mh.ran ? EvaluateSelection(gammas, mh.selected).min_diversity : -1;
      const double q_lsh =
          lsh.ran ? EvaluateSelection(gammas, lsh.selected).min_diversity : -1;
      table.Row({WorkloadKindName(s.kind), TablePrinter::Int(kk),
                 TablePrinter::Num(q_sg), TablePrinter::Num(q_mh),
                 TablePrinter::Num(q_lsh)});
      sg_curve.push_back(q_sg);
      mh_curve.push_back(q_mh);
      const std::string tag =
          std::string(WorkloadKindName(s.kind)) + " k=" + std::to_string(kk);
      if (kk == 2) {
        // At bench scale tiny skylines (m < 50) are noisier than the
        // paper's full-size runs; relax the k=2 floor accordingly.
        shape.Check(tag + ": SG diversity ~1 at k=2", q_sg > (m < 50 ? 0.8 : 0.9));
      }
      if (kk >= 10 && m > 2 * kk) {
        shape.Check(tag + ": MH stays close to SG (within 0.25)",
                    q_mh + 0.25 >= q_sg);
      }
    }
    shape.Check(std::string(WorkloadKindName(s.kind)) +
                    ": SG diversity non-increasing in k",
                std::is_sorted(sg_curve.rbegin(), sg_curve.rend()) ||
                    sg_curve.front() >= sg_curve.back());
  }
  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
