// Reproduces Figure 8: MinHash signature-generation time vs signature size.
//
// For FC and REC at d in {4, 5, 7} and signature sizes t in {50, 100, 200,
// 400}, measures SigGen-IB and SigGen-IF total time (CPU + 8 ms per page
// fault). Paper's findings: time grows with t, and the IB-vs-IF choice is
// unrelated to t.

#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "minhash/minhash.h"
#include "minhash/siggen.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv,
                "Figure 8: signature generation time vs signature size (IB vs IF)")) {
    return 0;
  }
  const CostModel cost;
  ShapeChecks shape("Figure 8");
  TablePrinter table({"data", "dims", "t", "IB.cpu_s", "IB.total_s", "IF.cpu_s",
                      "IF.total_s"});

  struct Setting {
    WorkloadKind kind;
    RowId paper_n;
    const char* label;
  };
  const Setting settings[] = {
      {WorkloadKind::kForestCoverLike, 581012, "FC"},
      {WorkloadKind::kRecipesLike, 365000, "REC"},
  };
  const Dim dims_grid[] = {4, 5, 7};
  const size_t sizes[] = {50, 100, 200, 400};

  for (const auto& s : settings) {
    for (Dim d : dims_grid) {
      const DataSet& data = env.Data(s.kind, s.paper_n, d);
      const RTree& tree = env.Tree(s.kind, s.paper_n, d);
      const auto skyline = SkylineSFS(data).rows;
      double prev_ib = 0.0, prev_if = 0.0;
      for (size_t t : sizes) {
        const auto family = MinHashFamily::Create(t, data.size(), env.seed() + t);

        CpuTimer cpu_ib;
        tree.ResetIoStats();
        const auto ib = SigGenIB(data, skyline, family, tree).value();
        const double ib_cpu = cpu_ib.ElapsedSeconds();
        const double ib_total = cost.TotalSeconds(ib_cpu, ib.io);

        CpuTimer cpu_if;
        const auto iff = SigGenIF(data, skyline, family).value();
        const double if_cpu = cpu_if.ElapsedSeconds();
        const double if_total = cost.TotalSeconds(if_cpu, iff.io);

        table.Row({s.label, TablePrinter::Int(d), TablePrinter::Int(t),
                   TablePrinter::Secs(ib_cpu), TablePrinter::Secs(ib_total),
                   TablePrinter::Secs(if_cpu), TablePrinter::Secs(if_total)});
        if (t == 400) {
          // Compare against t = 50: the cost must grow with t.
          shape.Check(std::string(s.label) + " d=" + std::to_string(d) +
                          ": IB time grows with signature size",
                      ib_total >= prev_ib);
          shape.Check(std::string(s.label) + " d=" + std::to_string(d) +
                          ": IF time grows with signature size",
                      if_total >= prev_if);
        }
        if (t == 50) {
          prev_ib = ib_total;
          prev_if = if_total;
        }
      }
    }
  }
  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
