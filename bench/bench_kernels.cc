// Dominance-kernel microbenchmark: scalar reference vs batched 64-row
// tiled sweeps vs the explicit SIMD kernel (AVX2/NEON, runtime-dispatched)
// on the two hot consumers the kernel layer rewires — SkylineSFS and
// SigGen-IF — plus a FilterDominators micro that isolates the sweep itself,
// across IND/CORR/ANT at d = 4, 8, 12.
//
// Expected shape: the batched kernels win where dominance tests are
// exhaustive or the candidate block is wide — SigGen-IF everywhere it is
// not the scalar fallback, SFS once the skyline spans many tiles (d >= 8) —
// and the simd flavour beats tiled wherever a vector ISA is present,
// most visibly on the pure FilterDominators sweep. On CORR the skyline is
// a handful of points: SigGen-IF falls below one tile and runs the scalar
// reference (ratio ~1), while SFS still pays the tile-window upkeep on a
// ~10 ms run, so its ratio dips below 1 there — as it does on low-d inputs
// where scalar window probes exit after a pair or two. That tradeoff is
// why --kernel=scalar stays a plan choice.
//
// --json writes the full flavour x distribution x d grid (seconds, charged
// checks, ns per check, checks/s) to a machine-readable file for tracking
// the kernel ratios across hosts.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/cpu.h"
#include "common/timer.h"
#include "core/dominance.h"
#include "kernels/tile_view.h"
#include "minhash/siggen.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

constexpr int kReps = 3;
constexpr size_t kSignatureSize = 100;

template <typename Fn>
double BestOf(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

constexpr DomKernel kFlavours[] = {DomKernel::kScalar, DomKernel::kTiled,
                                   DomKernel::kSimd};

// One grid cell for the JSON report.
struct JsonRecord {
  std::string workload;
  Dim dims = 0;
  std::string flavour;
  std::string op;
  double seconds = 0.0;
  uint64_t checks = 0;
};

void WriteJson(const std::string& path, RowId n, const std::vector<JsonRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"kernels\",\n  \"n\": " << n
      << ",\n  \"isa\": \"" << ToString(DetectSimdIsa()) << "\",\n  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    const double ns_per_check =
        r.checks == 0 ? 0.0 : r.seconds * 1e9 / static_cast<double>(r.checks);
    const double checks_per_s =
        r.seconds == 0.0 ? 0.0 : static_cast<double>(r.checks) / r.seconds;
    out << "    {\"workload\": \"" << r.workload << "\", \"dims\": " << r.dims
        << ", \"flavour\": \"" << r.flavour << "\", \"op\": \"" << r.op
        << "\", \"seconds\": " << r.seconds << ", \"checks\": " << r.checks
        << ", \"ns_per_check\": " << ns_per_check
        << ", \"checks_per_s\": " << checks_per_s << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %zu records to %s\n", records.size(), path.c_str());
}

int Run(int argc, char** argv) {
  BenchEnv env;
  std::string json_path = "BENCH_kernels.json";
  env.flags().AddString("json", &json_path,
                        "write the flavour x workload x d grid to this file");
  if (!env.Init(argc, argv,
                "Dominance kernels: scalar vs tiled vs simd sweeps for "
                "SkylineSFS, SigGen-IF, and a FilterDominators micro",
                /*default_scale=*/1.0)) {
    return 0;
  }
  const RowId paper_n = 100000;
  std::printf("simd dispatch: %s\n\n", ToString(DetectSimdIsa()));
  ShapeChecks shape("kernels");
  TablePrinter table({"data", "dims", "n", "m", "sfs_scalar_s", "sfs_tiled_s",
                      "sfs_simd_s", "if_scalar_s", "if_tiled_s", "if_simd_s",
                      "fd_tiled_s", "fd_simd_s", "fd_x"});
  std::vector<JsonRecord> records;
  RowId actual_n = 0;

  for (const WorkloadKind kind :
       {WorkloadKind::kIndependent, WorkloadKind::kCorrelated,
        WorkloadKind::kAnticorrelated}) {
    for (const Dim d : {Dim{4}, Dim{8}, Dim{12}}) {
      const DataSet& data = env.Data(kind, paper_n, d);
      actual_n = data.size();
      const auto skyline = SkylineSFS(data).rows;
      const size_t m = skyline.size();
      const auto family =
          MinHashFamily::Create(kSignatureSize, data.size(), env.seed());
      const std::string workload = WorkloadKindName(kind);

      // End-to-end consumers, one column per flavour.
      double sfs_s[3], if_s[3];
      std::vector<RowId> sink;
      uint64_t checks_sink = 0;
      for (size_t f = 0; f < 3; ++f) {
        const DomKernel flavour = kFlavours[f];
        uint64_t before = DominanceCounter::Count();
        sfs_s[f] = BestOf([&] { sink = SkylineSFS(data, flavour).rows; });
        records.push_back({workload, d, ToString(flavour), "sfs", sfs_s[f],
                           (DominanceCounter::Count() - before) / kReps});
        before = DominanceCounter::Count();
        if_s[f] = BestOf([&] {
          checks_sink += SigGenIF(data, skyline, family, flavour)->dominance_checks;
        });
        records.push_back({workload, d, ToString(flavour), "siggen_if", if_s[f],
                           (DominanceCounter::Count() - before) / kReps});
      }
      (void)checks_sink;

      // FilterDominators micro: every data row probed against the
      // materialized skyline tiles — the pure sweep, no consumer logic.
      // The mask digest doubles as a cross-flavour identity check.
      const TileSet sky_tiles = MaterializeTiles(data, skyline);
      double fd_s[3];
      uint64_t fd_digest[3] = {0, 0, 0};
      for (size_t f = 0; f < 3; ++f) {
        const DominanceKernel kernel(kFlavours[f]);
        fd_s[f] = BestOf([&] {
          uint64_t digest = 0;
          for (RowId r = 0; r < data.size(); ++r) {
            const auto p = data.row(r);
            for (const Tile& t : sky_tiles.tiles()) {
              digest ^= kernel.FilterDominators(p, t.view()) + r;
            }
          }
          fd_digest[f] = digest;
        });
        records.push_back({workload, d, ToString(kFlavours[f]),
                           "filter_dominators", fd_s[f],
                           static_cast<uint64_t>(data.size()) * m});
      }

      table.Row({workload, TablePrinter::Int(d), TablePrinter::Int(data.size()),
                 TablePrinter::Int(m), TablePrinter::Secs(sfs_s[0]),
                 TablePrinter::Secs(sfs_s[1]), TablePrinter::Secs(sfs_s[2]),
                 TablePrinter::Secs(if_s[0]), TablePrinter::Secs(if_s[1]),
                 TablePrinter::Secs(if_s[2]), TablePrinter::Secs(fd_s[1]),
                 TablePrinter::Secs(fd_s[2]),
                 TablePrinter::Num(fd_s[1] / fd_s[2], 2)});

      const std::string tag = workload + " d=" + std::to_string(d);
      shape.Check(tag + ": flavours produce identical dominator masks",
                  fd_digest[0] == fd_digest[1] && fd_digest[1] == fd_digest[2]);

      // The batched sweeps should pay off wherever the skyline spans tiles
      // and the pass is exhaustive (SigGen-IF); 10% slack for noise.
      if (m >= 256) {
        shape.Check(tag + ": tiled SigGen-IF no slower than scalar",
                    if_s[1] <= if_s[0] * 1.10);
        if (SimdAvailable()) {
          shape.Check(tag + ": simd SigGen-IF no slower than scalar",
                      if_s[2] <= if_s[0] * 1.10);
        }
      }
      // The headline acceptance ratio: the explicit SIMD sweep vs the
      // branchy tiled sweep on the isolated FilterDominators micro, at the
      // full n = 100k (scaled-down smoke runs are too noisy to gate on).
      if (SimdAvailable() && d == 8 && m >= 256 && env.scale() <= 1.0) {
        shape.Check(tag + ": simd FilterDominators >= 1.3x tiled",
                    fd_s[2] * 1.3 <= fd_s[1]);
      }
    }
  }
  if (!json_path.empty()) WriteJson(json_path, actual_n, records);
  shape.Summarize();  // benches always exit 0; the summary is for eyeballing
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
