// Dominance-kernel microbenchmark: scalar reference vs batched 64-row
// tiled sweeps vs the explicit SIMD kernel (AVX2/NEON, runtime-dispatched)
// on the two hot consumers the kernel layer rewires — SkylineSFS and
// SigGen-IF — plus a FilterDominators micro that isolates the sweep itself,
// across IND/CORR/ANT at d = 4, 8, 12.
//
// Expected shape: the batched kernels win where dominance tests are
// exhaustive or the candidate block is wide — SigGen-IF everywhere it is
// not the scalar fallback, SFS once the skyline spans many tiles (d >= 8) —
// and the simd flavour beats tiled wherever a vector ISA is present,
// most visibly on the pure FilterDominators sweep. On CORR the skyline is
// a handful of points: SigGen-IF falls below one tile and runs the scalar
// reference (ratio ~1), while SFS still pays the tile-window upkeep on a
// ~10 ms run, so its ratio dips below 1 there — as it does on low-d inputs
// where scalar window probes exit after a pair or two. That tradeoff is
// why --kernel=scalar stays a plan choice.
//
// --json writes the full flavour x distribution x d grid (seconds, charged
// checks, ns per check, checks/s) to a machine-readable file for tracking
// the kernel ratios across hosts.
//
// A second micro isolates the tile-aware BBS node prune: every tree
// node's entry lo-corners, captured once from a full walk, are decided
// against the materialized skyline tiles two ways — per-entry (the
// pre-corner-tile traversal: corner outer, one AnyDominator skyline
// stream per corner) and corner-tile (PruneCorners over one node's
// corner tile, dominated corners compacted away between tiles). The
// batched PruneCorners screens each skyline tile with the corner tile's
// ceiling — node corners are R-tree siblings, so most skyline tiles
// hold no row that could dominate any of them and the whole (node, tile)
// pair retires in one sweep, where per-entry pays one sweep per
// undecided corner; the ratio is that screen. --bbs-json writes the grid
// to BENCH_bbs.json.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/cpu.h"
#include "common/timer.h"
#include "core/dominance.h"
#include "kernels/tile_view.h"
#include "minhash/siggen.h"
#include "rtree/node_corners.h"
#include "rtree/rtree.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

constexpr int kReps = 3;
constexpr size_t kSignatureSize = 100;

template <typename Fn>
double BestOf(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

constexpr DomKernel kFlavours[] = {DomKernel::kScalar, DomKernel::kTiled,
                                   DomKernel::kSimd};

// One grid cell for the JSON report.
struct JsonRecord {
  std::string workload;
  Dim dims = 0;
  std::string flavour;
  std::string op;
  double seconds = 0.0;
  uint64_t checks = 0;
};

void WriteJson(const std::string& path, const std::string& bench, RowId n,
               const std::vector<JsonRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"" << bench << "\",\n  \"n\": " << n
      << ",\n  \"isa\": \"" << ToString(DetectSimdIsa()) << "\",\n  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    const double ns_per_check =
        r.checks == 0 ? 0.0 : r.seconds * 1e9 / static_cast<double>(r.checks);
    const double checks_per_s =
        r.seconds == 0.0 ? 0.0 : static_cast<double>(r.checks) / r.seconds;
    out << "    {\"workload\": \"" << r.workload << "\", \"dims\": " << r.dims
        << ", \"flavour\": \"" << r.flavour << "\", \"op\": \"" << r.op
        << "\", \"seconds\": " << r.seconds << ", \"checks\": " << r.checks
        << ", \"ns_per_check\": " << ns_per_check
        << ", \"checks_per_s\": " << checks_per_s << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %zu records to %s\n", records.size(), path.c_str());
}

// -------------------------------------------------------------------------
// BBS node-prune micro: replay the prune decision for every node of the
// tree against the full skyline tiling, in both loop orders.

// One node chunk (<= kTileRows entries): the transposed corner tile plus
// the offset of its first corner in the flat row-major probe array the
// per-entry replay reads.
struct CornerChunk {
  Tile tile;
  size_t flat_begin;
};

struct BbsWorkload {
  std::vector<CornerChunk> chunks;
  std::vector<Coord> flat;  // row-major corners, per-entry replay probes
  size_t dims = 0;
  size_t corners = 0;
};

BbsWorkload CollectNodeCorners(const RTree& tree) {
  BbsWorkload w;
  w.dims = tree.dims();
  std::vector<PageId> stack{tree.root()};
  while (!stack.empty()) {
    const RTreeNode& node = tree.PeekNode(stack.back());
    stack.pop_back();
    for (size_t begin = 0; begin < node.entries.size(); begin += kTileRows) {
      const size_t end = std::min(begin + kTileRows, node.entries.size());
      Tile tile(tree.dims());
      MaterializeLoCorners(node, begin, end, &tile);
      const size_t flat_begin = w.flat.size();
      for (size_t i = begin; i < end; ++i) {
        const auto lo = node.entries[i].mbr.lo();
        w.flat.insert(w.flat.end(), lo.begin(), lo.end());
      }
      w.corners += end - begin;
      w.chunks.push_back(CornerChunk{std::move(tile), flat_begin});
    }
    if (!node.is_leaf) {
      for (const auto& e : node.entries) stack.push_back(e.child);
    }
  }
  return w;
}

// Order-sensitive FNV-style fold of the surviving entry ids; identical
// pruning decisions => identical digests (the cross-flavour /
// cross-order identity check).
uint64_t FoldSurvivor(uint64_t digest, RowId id) {
  return (digest ^ (id + 1)) * 1099511628211ULL;
}

// The pre-corner-tile order: corner outer, one AnyDominator probe per
// corner streaming the skyline tiles until a dominator is found.
uint64_t PerEntryReplay(const BbsWorkload& w, const TileSet& sky,
                        const DominanceKernel& kernel) {
  uint64_t digest = 0;
  for (const CornerChunk& chunk : w.chunks) {
    for (size_t r = 0; r < chunk.tile.rows(); ++r) {
      const std::span<const Coord> p(w.flat.data() + chunk.flat_begin + r * w.dims,
                                     w.dims);
      bool dominated = false;
      for (const Tile& t : sky.tiles()) {
        if (kernel.AnyDominator(p, t.view())) {
          dominated = true;
          break;
        }
      }
      if (!dominated) digest = FoldSurvivor(digest, chunk.tile.id(r));
    }
  }
  return digest;
}

// The tile-aware order: one PruneCorners call per (node corner tile,
// skyline tile) pair, dominated corners compacted away between tiles
// (bbs_scan.h's PruneAndPushNode, scratch copy included in the cost).
uint64_t CornerTileReplay(const BbsWorkload& w, const TileSet& sky,
                          const DominanceKernel& kernel, Tile* scratch) {
  uint64_t digest = 0;
  for (const CornerChunk& chunk : w.chunks) {
    *scratch = chunk.tile;
    for (const Tile& t : sky.tiles()) {
      if (scratch->empty()) break;
      const uint64_t pruned = kernel.PruneCorners(scratch->view(), t.view());
      if (pruned != 0) scratch->Compact(scratch->view().FullMask() & ~pruned);
    }
    for (size_t r = 0; r < scratch->rows(); ++r) {
      digest = FoldSurvivor(digest, scratch->id(r));
    }
  }
  return digest;
}

int Run(int argc, char** argv) {
  BenchEnv env;
  std::string json_path = "BENCH_kernels.json";
  std::string bbs_json_path = "BENCH_bbs.json";
  env.flags().AddString("json", &json_path,
                        "write the flavour x workload x d grid to this file");
  env.flags().AddString("bbs-json", &bbs_json_path,
                        "write the BBS node-prune micro grid to this file");
  if (!env.Init(argc, argv,
                "Dominance kernels: scalar vs tiled vs simd sweeps for "
                "SkylineSFS, SigGen-IF, and a FilterDominators micro",
                /*default_scale=*/1.0)) {
    return 0;
  }
  const RowId paper_n = 100000;
  std::printf("simd dispatch: %s\n\n", ToString(DetectSimdIsa()));
  ShapeChecks shape("kernels");
  TablePrinter table({"data", "dims", "n", "m", "sfs_scalar_s", "sfs_tiled_s",
                      "sfs_simd_s", "if_scalar_s", "if_tiled_s", "if_simd_s",
                      "fd_tiled_s", "fd_simd_s", "fd_x"});
  std::vector<JsonRecord> records;
  RowId actual_n = 0;

  for (const WorkloadKind kind :
       {WorkloadKind::kIndependent, WorkloadKind::kCorrelated,
        WorkloadKind::kAnticorrelated}) {
    for (const Dim d : {Dim{4}, Dim{8}, Dim{12}}) {
      const DataSet& data = env.Data(kind, paper_n, d);
      actual_n = data.size();
      const auto skyline = SkylineSFS(data).rows;
      const size_t m = skyline.size();
      const auto family =
          MinHashFamily::Create(kSignatureSize, data.size(), env.seed());
      const std::string workload = WorkloadKindName(kind);

      // End-to-end consumers, one column per flavour.
      double sfs_s[3], if_s[3];
      std::vector<RowId> sink;
      uint64_t checks_sink = 0;
      for (size_t f = 0; f < 3; ++f) {
        const DomKernel flavour = kFlavours[f];
        uint64_t before = DominanceCounter::Count();
        sfs_s[f] = BestOf([&] { sink = SkylineSFS(data, flavour).rows; });
        records.push_back({workload, d, ToString(flavour), "sfs", sfs_s[f],
                           (DominanceCounter::Count() - before) / kReps});
        before = DominanceCounter::Count();
        if_s[f] = BestOf([&] {
          checks_sink += SigGenIF(data, skyline, family, flavour)->dominance_checks;
        });
        records.push_back({workload, d, ToString(flavour), "siggen_if", if_s[f],
                           (DominanceCounter::Count() - before) / kReps});
      }
      (void)checks_sink;

      // FilterDominators micro: every data row probed against the
      // materialized skyline tiles — the pure sweep, no consumer logic.
      // The mask digest doubles as a cross-flavour identity check.
      const TileSet sky_tiles = MaterializeTiles(data, skyline);
      double fd_s[3];
      uint64_t fd_digest[3] = {0, 0, 0};
      for (size_t f = 0; f < 3; ++f) {
        const DominanceKernel kernel(kFlavours[f]);
        fd_s[f] = BestOf([&] {
          uint64_t digest = 0;
          for (RowId r = 0; r < data.size(); ++r) {
            const auto p = data.row(r);
            for (const Tile& t : sky_tiles.tiles()) {
              digest ^= kernel.FilterDominators(p, t.view()) + r;
            }
          }
          fd_digest[f] = digest;
        });
        records.push_back({workload, d, ToString(kFlavours[f]),
                           "filter_dominators", fd_s[f],
                           static_cast<uint64_t>(data.size()) * m});
      }

      table.Row({workload, TablePrinter::Int(d), TablePrinter::Int(data.size()),
                 TablePrinter::Int(m), TablePrinter::Secs(sfs_s[0]),
                 TablePrinter::Secs(sfs_s[1]), TablePrinter::Secs(sfs_s[2]),
                 TablePrinter::Secs(if_s[0]), TablePrinter::Secs(if_s[1]),
                 TablePrinter::Secs(if_s[2]), TablePrinter::Secs(fd_s[1]),
                 TablePrinter::Secs(fd_s[2]),
                 TablePrinter::Num(fd_s[1] / fd_s[2], 2)});

      const std::string tag = workload + " d=" + std::to_string(d);
      shape.Check(tag + ": flavours produce identical dominator masks",
                  fd_digest[0] == fd_digest[1] && fd_digest[1] == fd_digest[2]);

      // The batched sweeps should pay off wherever the skyline spans tiles
      // and the pass is exhaustive (SigGen-IF); 10% slack for noise.
      if (m >= 256) {
        shape.Check(tag + ": tiled SigGen-IF no slower than scalar",
                    if_s[1] <= if_s[0] * 1.10);
        if (SimdAvailable()) {
          shape.Check(tag + ": simd SigGen-IF no slower than scalar",
                      if_s[2] <= if_s[0] * 1.10);
        }
      }
      // The headline acceptance ratio: the explicit SIMD sweep vs the
      // branchy tiled sweep on the isolated FilterDominators micro, at the
      // full n = 100k (scaled-down smoke runs are too noisy to gate on).
      if (SimdAvailable() && d == 8 && m >= 256 && env.scale() <= 1.0) {
        shape.Check(tag + ": simd FilterDominators >= 1.3x tiled",
                    fd_s[2] * 1.3 <= fd_s[1]);
      }
    }
  }
  if (!json_path.empty()) WriteJson(json_path, "kernels", actual_n, records);

  // ---------------------------------------------------------------------
  // BBS node-prune micro. The grid is bounded where the skyline would be
  // quadratically huge (ANT at high d): the screen story is told by IND
  // across d, with one ANT cell (large skyline, low d) and one CORR cell
  // (tiny skyline: both orders degenerate to one tile).
  std::printf("\nBBS node prune: per-entry AnyDominator vs corner-tile "
              "PruneCorners\n");
  TablePrinter bbs_table({"data", "dims", "n", "m", "corners", "pe_scalar_s",
                          "pe_tiled_s", "pe_simd_s", "ct_scalar_s", "ct_tiled_s",
                          "ct_simd_s", "ct_x"});
  std::vector<JsonRecord> bbs_records;
  struct BbsCell {
    WorkloadKind kind;
    Dim dims;
  };
  const BbsCell kBbsGrid[] = {{WorkloadKind::kIndependent, 4},
                              {WorkloadKind::kIndependent, 8},
                              {WorkloadKind::kIndependent, 12},
                              {WorkloadKind::kAnticorrelated, 4},
                              {WorkloadKind::kCorrelated, 8}};
  for (const BbsCell& cell : kBbsGrid) {
    const DataSet& data = env.Data(cell.kind, paper_n, cell.dims);
    const auto tree = RTree::BulkLoad(data).value();
    const auto skyline = SkylineSFS(data).rows;
    const size_t m = skyline.size();
    const TileSet sky_tiles = MaterializeTiles(data, skyline);
    const BbsWorkload workload = CollectNodeCorners(tree);
    const std::string workload_name = WorkloadKindName(cell.kind);
    Tile scratch(data.dims());

    double pe_s[3], ct_s[3];
    uint64_t pe_digest[3] = {0, 0, 0};
    uint64_t ct_digest[3] = {0, 0, 0};
    for (size_t f = 0; f < 3; ++f) {
      const DominanceKernel kernel(kFlavours[f]);
      uint64_t before = DominanceCounter::Count();
      pe_s[f] = BestOf(
          [&] { pe_digest[f] = PerEntryReplay(workload, sky_tiles, kernel); });
      bbs_records.push_back({workload_name, cell.dims, ToString(kFlavours[f]),
                             "bbs_per_entry", pe_s[f],
                             (DominanceCounter::Count() - before) / kReps});
      before = DominanceCounter::Count();
      ct_s[f] = BestOf([&] {
        ct_digest[f] = CornerTileReplay(workload, sky_tiles, kernel, &scratch);
      });
      bbs_records.push_back({workload_name, cell.dims, ToString(kFlavours[f]),
                             "bbs_corner_tile", ct_s[f],
                             (DominanceCounter::Count() - before) / kReps});
    }

    bbs_table.Row({workload_name, TablePrinter::Int(cell.dims),
                   TablePrinter::Int(data.size()), TablePrinter::Int(m),
                   TablePrinter::Int(workload.corners), TablePrinter::Secs(pe_s[0]),
                   TablePrinter::Secs(pe_s[1]), TablePrinter::Secs(pe_s[2]),
                   TablePrinter::Secs(ct_s[0]), TablePrinter::Secs(ct_s[1]),
                   TablePrinter::Secs(ct_s[2]),
                   TablePrinter::Num(pe_s[2] / ct_s[2], 2)});

    const std::string tag =
        std::string(workload_name) + " d=" + std::to_string(cell.dims);
    shape.Check(tag + ": prune survivors identical across orders and flavours",
                pe_digest[0] == pe_digest[1] && pe_digest[1] == pe_digest[2] &&
                    ct_digest[0] == pe_digest[0] && ct_digest[1] == pe_digest[0] &&
                    ct_digest[2] == pe_digest[0]);
    // The headline acceptance ratio: corner-tile sweep vs per-entry
    // AnyDominator under the simd flavour at the paper point (n=100k,
    // d=8, AVX2); gated to full-scale runs with a multi-tile skyline.
    if (SimdAvailable() && cell.kind == WorkloadKind::kIndependent &&
        cell.dims == 8 && m >= 256 && env.scale() <= 1.0) {
      shape.Check(tag + ": corner-tile prune >= 1.3x per-entry (simd)",
                  ct_s[2] * 1.3 <= pe_s[2]);
    }
  }
  if (!bbs_json_path.empty()) {
    WriteJson(bbs_json_path, "bbs", actual_n, bbs_records);
  }
  shape.Summarize();  // benches always exit 0; the summary is for eyeballing
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
