// Dominance-kernel microbenchmark: scalar reference vs batched 64-row
// tiled sweeps, on the two hot consumers the kernel layer rewires —
// SkylineSFS and SigGen-IF — across IND/CORR/ANT at d = 4, 8, 12.
//
// Expected shape: the tiled kernel wins where dominance tests are
// exhaustive or the candidate block is wide — SigGen-IF everywhere it is
// not the scalar fallback, SFS once the skyline spans many tiles (d >= 8).
// On CORR the skyline is a handful of points: SigGen-IF falls below one
// tile and runs the scalar reference (ratio ~1), while SFS still pays the
// tile-window upkeep on a ~10 ms run, so its ratio dips below 1 there —
// as it does on low-d inputs where scalar window probes exit after a pair
// or two. That tradeoff is why --kernel=scalar stays a plan choice.

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "minhash/siggen.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

constexpr int kReps = 3;
constexpr size_t kSignatureSize = 100;

template <typename Fn>
double BestOf(Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv,
                "Dominance kernels: scalar vs tiled 64-row sweeps for "
                "SkylineSFS and SigGen-IF",
                /*default_scale=*/1.0)) {
    return 0;
  }
  const RowId paper_n = 100000;
  ShapeChecks shape("kernels");
  TablePrinter table({"data", "dims", "n", "m", "sfs_scalar_s", "sfs_tiled_s",
                      "sfs_x", "if_scalar_s", "if_tiled_s", "if_x"});

  for (const WorkloadKind kind :
       {WorkloadKind::kIndependent, WorkloadKind::kCorrelated,
        WorkloadKind::kAnticorrelated}) {
    for (const Dim d : {Dim{4}, Dim{8}, Dim{12}}) {
      const DataSet& data = env.Data(kind, paper_n, d);
      const auto skyline = SkylineSFS(data).rows;
      const size_t m = skyline.size();
      const auto family =
          MinHashFamily::Create(kSignatureSize, data.size(), env.seed());

      std::vector<RowId> sink;
      const double sfs_scalar = BestOf(
          [&] { sink = SkylineSFS(data, DomKernel::kScalar).rows; });
      const double sfs_tiled = BestOf(
          [&] { sink = SkylineSFS(data, DomKernel::kTiled).rows; });

      uint64_t checks_sink = 0;
      const double if_scalar = BestOf([&] {
        checks_sink +=
            SigGenIF(data, skyline, family, DomKernel::kScalar)->dominance_checks;
      });
      const double if_tiled = BestOf([&] {
        checks_sink +=
            SigGenIF(data, skyline, family, DomKernel::kTiled)->dominance_checks;
      });
      (void)checks_sink;

      table.Row({WorkloadKindName(kind), TablePrinter::Int(d),
                 TablePrinter::Int(data.size()), TablePrinter::Int(m),
                 TablePrinter::Secs(sfs_scalar), TablePrinter::Secs(sfs_tiled),
                 TablePrinter::Num(sfs_scalar / sfs_tiled, 2),
                 TablePrinter::Secs(if_scalar), TablePrinter::Secs(if_tiled),
                 TablePrinter::Num(if_scalar / if_tiled, 2)});

      // The tiled sweep should pay off wherever the skyline spans tiles and
      // the pass is exhaustive (SigGen-IF); give it 10% slack for noise.
      if (m >= 256) {
        const std::string tag = std::string(WorkloadKindName(kind)) +
                                " d=" + std::to_string(d);
        shape.Check(tag + ": tiled SigGen-IF no slower than scalar",
                    if_tiled <= if_scalar * 1.10);
      }
    }
  }
  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
