// Concurrent serving: QPS scaling of one shared SkySnapshot under 1, 2, 4
// and 8 client threads (the snapshot/QueryContext split's headline
// experiment).
//
// Phase 1 runs once (IND, paper n = 100k scaled, d = 5); every client then
// replays a mixed MinHash / LSH / varying-k schedule through one SkyServer.
// Two passes per client count:
//
//   * uncached — result cache disabled, every query recomputes Phase 2.
//     This is the scaling experiment: with the snapshot immutable and each
//     query working only in its own QueryContext, clients share nothing
//     but read-only state, so QPS should grow with client threads up to
//     the core count. (On a single-core host the curve is honestly flat —
//     the table reports whatever the machine gives.)
//   * cached — default FIFO result cache. The schedule repeats specs, so
//     this shows the hit path's latency floor and the hit/miss accounting.
//
// Parity is asserted, not assumed: every per-slot result at every client
// count is compared against a 1-client reference replay (bit-identical
// rows), so the scaling numbers can't silently come from divergent work.
//
// --json writes clients x {uncached, cached} rows (qps, p50/p99 ms, cache
// counters) to BENCH_serve.json.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "engine/snapshot.h"
#include "parallel/thread_pool.h"
#include "serve/serve.h"

namespace skydiver::bench {
namespace {

// Mixed schedule skeleton; repeated to fill --queries slots. Repeats give
// the cached pass its hits; the (5, 0.2, 20) / (9, 0.2, 20) pair shares a
// plan-cache entry across k.
std::vector<QuerySpec> MakeSchedule(size_t queries) {
  std::vector<QuerySpec> base;
  auto mh = [&base](size_t k) {
    QuerySpec s;
    s.mode = SelectMode::kMinHash;
    s.k = k;
    base.push_back(s);
  };
  auto lsh = [&base](size_t k, double threshold, size_t buckets) {
    QuerySpec s;
    s.mode = SelectMode::kLsh;
    s.k = k;
    s.lsh_threshold = threshold;
    s.lsh_buckets = buckets;
    base.push_back(s);
  };
  mh(5);
  mh(10);
  mh(20);
  lsh(5, 0.2, 20);
  lsh(10, 0.2, 20);
  lsh(9, 0.5, 20);
  lsh(10, 0.2, 16);
  mh(10);
  std::vector<QuerySpec> schedule;
  schedule.reserve(queries);
  for (size_t i = 0; i < queries; ++i) schedule.push_back(base[i % base.size()]);
  return schedule;
}

struct JsonRecord {
  size_t clients = 0;
  std::string pass;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  ServeStats stats;
};

void WriteJson(const std::string& path, RowId n, size_t m, size_t queries,
               const std::vector<JsonRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"serve\",\n  \"n\": " << n << ",\n  \"m\": " << m
      << ",\n  \"queries\": " << queries << ",\n  \"records\": [\n";
  for (size_t i = 0; i < records.size(); ++i) {
    const JsonRecord& r = records[i];
    out << "    {\"clients\": " << r.clients << ", \"pass\": \"" << r.pass
        << "\", \"qps\": " << r.qps << ", \"p50_ms\": " << r.p50_ms
        << ", \"p99_ms\": " << r.p99_ms << ", \"result_hits\": " << r.stats.result_hits
        << ", \"result_misses\": " << r.stats.result_misses
        << ", \"plan_hits\": " << r.stats.plan_hits
        << ", \"plan_misses\": " << r.stats.plan_misses << "}"
        << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %zu records to %s\n", records.size(), path.c_str());
}

int Run(int argc, char** argv) {
  BenchEnv env;
  std::string json_path = "BENCH_serve.json";
  int64_t queries = 512;
  int64_t max_clients = 8;
  env.flags().AddString("json", &json_path,
                        "write the clients x pass QPS grid to this file");
  env.flags().AddInt64("queries", &queries, "schedule length per pass");
  env.flags().AddInt64("max-clients", &max_clients,
                       "cap the client-count sweep (1, 2, 4, 8)");
  if (!env.Init(argc, argv,
                "Concurrent serving: QPS of one shared snapshot under 1-8 "
                "client threads, uncached and cached",
                /*default_scale=*/1.0)) {
    return 0;
  }
  if (queries <= 0) {
    std::fprintf(stderr, "--queries must be positive\n");
    return 1;
  }

  const RowId paper_n = 100000;
  const DataSet& data = env.Data(WorkloadKind::kIndependent, paper_n, 5);
  SkyDiverConfig config;
  config.signature_size = 100;
  config.seed = env.seed();
  auto built = SkySnapshot::Build(data, config);
  if (!built.ok()) {
    std::fprintf(stderr, "snapshot build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const auto snapshot = built.value();
  const size_t m = snapshot->skyline().size();
  std::printf("snapshot: n=%u m=%zu t=%zu\n\n", data.size(), m,
              snapshot->signature_size());

  const auto schedule = MakeSchedule(static_cast<size_t>(queries));

  // 1-client uncached reference replay: the parity yardstick.
  ServeOptions uncached;
  uncached.result_cache_capacity = 0;
  std::vector<std::shared_ptr<const QueryResult>> reference;
  {
    SkyServer server(snapshot, uncached);
    auto report = ServeLoop(server, schedule, 1);
    if (!report.ok()) {
      std::fprintf(stderr, "reference replay failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    reference = std::move(report->results);
  }

  ShapeChecks shape("serve");
  TablePrinter table({"clients", "pass", "qps", "p50_ms", "p99_ms", "res_hit",
                      "res_miss", "plan_hit", "plan_miss"});
  std::vector<JsonRecord> records;
  double qps_1_uncached = 0.0;
  double qps_8_uncached = 0.0;

  for (const size_t clients : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    if (clients > static_cast<size_t>(max_clients)) break;
    for (const bool cached : {false, true}) {
      SkyServer server(snapshot, cached ? ServeOptions{} : uncached);
      const auto report = ServeLoop(server, schedule, clients);
      if (!report.ok()) {
        std::fprintf(stderr, "serve loop failed: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      bool parity = report->results.size() == reference.size();
      for (size_t i = 0; parity && i < reference.size(); ++i) {
        parity = report->results[i]->rows == reference[i]->rows &&
                 report->results[i]->objective == reference[i]->objective;
      }
      shape.Check("clients=" + std::to_string(clients) +
                      (cached ? " cached" : " uncached") +
                      ": results bit-identical to 1-client reference",
                  parity);
      const char* pass = cached ? "cached" : "uncached";
      table.Row({TablePrinter::Int(clients), pass, TablePrinter::Num(report->qps, 1),
                 TablePrinter::Num(report->p50_ms, 4), TablePrinter::Num(report->p99_ms, 4),
                 TablePrinter::Int(report->stats.result_hits),
                 TablePrinter::Int(report->stats.result_misses),
                 TablePrinter::Int(report->stats.plan_hits),
                 TablePrinter::Int(report->stats.plan_misses)});
      records.push_back({clients, pass, report->qps, report->p50_ms, report->p99_ms,
                         report->stats});
      if (!cached && clients == 1) qps_1_uncached = report->qps;
      if (!cached && clients == 8) qps_8_uncached = report->qps;
      if (cached) {
        shape.Check("clients=" + std::to_string(clients) +
                        " cached: repeats hit the result cache",
                    report->stats.result_hits > 0);
      }
    }
  }

  // The scaling claim is only testable given the cores; report it as data,
  // gate the check on hardware that can express it.
  const size_t cores = ThreadPool(0).size();  // 0 = hardware concurrency
  if (qps_8_uncached > 0.0) {
    std::printf("\nhardware threads: %zu; uncached QPS 1->8 clients: %.1f -> %.1f (%.2fx)\n",
                cores, qps_1_uncached, qps_8_uncached,
                qps_1_uncached > 0 ? qps_8_uncached / qps_1_uncached : 0.0);
    if (cores >= 8) {
      shape.Check("uncached QPS scales >= 3x from 1 to 8 clients",
                  qps_8_uncached >= 3.0 * qps_1_uncached);
    }
  }

  if (!json_path.empty()) {
    WriteJson(json_path, data.size(), m, schedule.size(), records);
  }
  shape.Summarize();  // bench binaries always exit 0
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
