// Demonstrates Section 3.2: why sampling cannot replace MinHash.
//
// Two negative results from the paper, made measurable:
//
//  1. Sampling D - S (rows): at EQUAL per-point memory, estimate pairwise
//     Jaccard similarities from a random row subset vs from MinHash
//     signatures. The domination matrix is sparse (the sparser the higher
//     d), so row sampling misses the 1-cells and its estimates collapse,
//     while MinHash, which adapts to each dominated set, stays accurate.
//
//  2. Sampling S (Lemma 2): any algorithm that keeps only half the skyline
//     fails to preserve the 2-dispersion optimum with constant
//     probability. We run the exact diameter on random halves of S and
//     report how often (and how badly) the halved diameter falls short.

#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "core/gamma.h"
#include "diversify/brute_force.h"
#include "minhash/minhash.h"
#include "minhash/siggen.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv,
                "Section 3.2: sampling vs MinHash at equal memory, and "
                "skyline-sampling failure (Lemma 2)")) {
    return 0;
  }
  ShapeChecks shape("Sampling (Sec. 3.2)");
  Rng rng(env.seed() ^ 0x5a5a);

  // --- 1: row sampling vs MinHash ---------------------------------------------
  {
    TablePrinter table({"dims", "m", "sparsity", "mh.mean_err", "samp.mean_err",
                        "samp.undefined_pct"});
    for (Dim d : {3u, 5u, 7u}) {
      const DataSet& data = env.Data(WorkloadKind::kIndependent, 500000, d);
      const auto skyline = SkylineSFS(data).rows;
      const size_t m = skyline.size();
      const GammaSets gammas = GammaSets::Compute(data, skyline);

      // MinHash at t = 100 -> 800 bytes per skyline point.
      const size_t t = 100;
      const auto family = MinHashFamily::Create(t, data.size(), env.seed());
      const auto sig = SigGenIF(data, skyline, family).value();

      // Equal-memory row sample: 800 bytes = 6400 sampled rows as a bitmap
      // column per skyline point — 6400 / 500K = 1.28% of the paper's
      // dataset. Keep that RATIO at bench scale (a fixed 6400 rows out of
      // a scaled-down dataset would cover most of it and trivialize the
      // comparison).
      const size_t sample_size = std::max<size_t>(
          16, t * sizeof(uint64_t) * 8 * data.size() / 500000);
      std::vector<RowId> sample(sample_size);
      for (auto& r : sample) r = static_cast<RowId>(rng.NextBounded(data.size()));

      double mh_err_sum = 0.0, samp_err_sum = 0.0;
      size_t pairs = 0, undefined = 0;
      for (size_t a = 0; a < m; ++a) {
        for (size_t b = a + 1; b < m; ++b) {
          const double exact = gammas.JaccardSimilarity(a, b);
          mh_err_sum += std::fabs(sig.signatures.EstimatedSimilarity(a, b) - exact);
          size_t inter = 0, uni = 0;
          for (RowId r : sample) {
            const bool in_a = gammas.gamma(a).Test(r);
            const bool in_b = gammas.gamma(b).Test(r);
            inter += (in_a && in_b);
            uni += (in_a || in_b);
          }
          if (uni == 0) {
            // The sample saw NOTHING of either dominated set: the estimate
            // is undefined. Score it as the worst-case error.
            ++undefined;
            samp_err_sum += std::max(exact, 1.0 - exact);
          } else {
            samp_err_sum +=
                std::fabs(static_cast<double>(inter) / static_cast<double>(uni) - exact);
          }
          ++pairs;
        }
      }
      const double mh_err = mh_err_sum / static_cast<double>(pairs);
      const double samp_err = samp_err_sum / static_cast<double>(pairs);
      table.Row({TablePrinter::Int(d), TablePrinter::Int(m),
                 TablePrinter::Num(gammas.MatrixSparsity()), TablePrinter::Num(mh_err),
                 TablePrinter::Num(samp_err),
                 TablePrinter::Num(100.0 * static_cast<double>(undefined) /
                                   static_cast<double>(pairs), 1)});
      shape.Check("d=" + std::to_string(d) +
                      ": MinHash beats equal-memory row sampling",
                  mh_err < samp_err);
    }
  }

  // --- 2: Lemma 2 — the adversarial instance ------------------------------------
  {
    // The lemma's construction: m - 1 points clustered at pairwise distance
    // δ, one random point at distance 2δ + c from everything. The true
    // diameter is 2δ + c; any algorithm that keeps only m/2 points can
    // 2-approximate it only if it happens to keep the special point —
    // which a random half does with probability 1/2.
    TablePrinter table({"instance", "true_diameter", "mean_half_diameter",
                        "fail_2approx_pct"});
    const size_t m = 200;
    const double delta = 0.2, c = 0.05;
    const double full = 2 * delta + c;
    const int trials = 400;
    int fails = 0;
    double half_sum = 0.0;
    std::vector<size_t> ids(m);
    for (size_t i = 0; i < m; ++i) ids[i] = i;
    for (int trial = 0; trial < trials; ++trial) {
      const size_t special = rng.NextBounded(m);
      auto dist = [&](size_t a, size_t b) {
        if (a == b) return 0.0;
        return (a == special || b == special) ? full : delta;
      };
      for (size_t i = m; i > 1; --i) {
        std::swap(ids[i - 1], ids[rng.NextBounded(i)]);
      }
      const size_t half = m / 2;
      const bool kept_special =
          std::find(ids.begin(), ids.begin() + static_cast<ptrdiff_t>(half), special) !=
          ids.begin() + static_cast<ptrdiff_t>(half);
      const double best = kept_special ? full : dist(ids[0], ids[1]);
      half_sum += best;
      if (best * 2.0 < full) ++fails;
    }
    const double fail_pct = 100.0 * fails / trials;
    table.Row({"Lemma-2 (m=200) x" + std::to_string(trials), TablePrinter::Num(full),
               TablePrinter::Num(half_sum / trials), TablePrinter::Num(fail_pct, 1)});
    shape.Check("Lemma 2: a random half misses the 2-approximation ~50% of the time",
                fail_pct > 35.0 && fail_pct < 65.0);
  }
  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
