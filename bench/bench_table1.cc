// Reproduces Table 1: k-max-coverage vs k-dispersion.
//
// For IND (4d), FC (5d) and REC (5d) and k in {2, 10, 50}, reports the
// coverage fraction and the diversity score (minimum pairwise exact Jaccard
// distance) achieved by the greedy max-coverage selection and by the greedy
// k-dispersion selection. Paper's headline: coverage cannot buy diversity
// (its diversity collapses as k grows), while dispersion keeps coverage
// "still high enough".

#include <algorithm>
#include <vector>

#include "bench/harness.h"
#include "core/gamma.h"
#include "diversify/coverage.h"
#include "diversify/evaluate.h"
#include "diversify/simple_greedy.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

struct Setting {
  WorkloadKind kind;
  RowId paper_n;
  Dim dims;
  const char* label;
};

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv,
                "Table 1: k-max-coverage vs k-dispersion (coverage and diversity)")) {
    return 0;
  }
  const Setting settings[] = {
      {WorkloadKind::kIndependent, 5000000, 4, "IND5M4D"},
      {WorkloadKind::kForestCoverLike, 581012, 5, "FC5D"},
      {WorkloadKind::kRecipesLike, 365000, 5, "REC5D"},
  };
  const size_t ks[] = {2, 10, 50};

  ShapeChecks shape("Table 1");
  TablePrinter table({"data", "k", "cov.coverage", "cov.diversity", "disp.coverage",
                      "disp.diversity"});
  for (const auto& s : settings) {
    const DataSet& data = env.Data(s.kind, s.paper_n, s.dims);
    const auto skyline = SkylineSFS(data).rows;
    const GammaSets gammas = GammaSets::Compute(data, skyline);
    for (size_t k : ks) {
      const size_t kk = std::min(k, skyline.size());
      const auto cov = GreedyMaxCoverage(gammas, kk).value();
      const auto disp = SimpleGreedyInMemory(data, skyline, kk).value();
      const auto q_cov = EvaluateSelection(gammas, cov.selected);
      const auto q_disp = EvaluateSelection(gammas, disp.selected);
      table.Row({s.label, TablePrinter::Int(kk), TablePrinter::Num(q_cov.coverage),
                 TablePrinter::Num(q_cov.min_diversity),
                 TablePrinter::Num(q_disp.coverage),
                 TablePrinter::Num(q_disp.min_diversity)});
      const std::string tag = std::string(s.label) + " k=" + std::to_string(kk);
      shape.Check(tag + ": coverage-greedy wins on coverage",
                  q_cov.coverage + 1e-9 >= q_disp.coverage);
      shape.Check(tag + ": dispersion wins on diversity",
                  q_disp.min_diversity + 1e-9 >= q_cov.min_diversity);
      if (kk == 2) {
        shape.Check(tag + ": dispersion diversity ~1 at k=2 (paper: 1.000)",
                    q_disp.min_diversity > 0.9);
      }
    }
  }
  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
