// Reproduces Figure 13: the LSH memory-vs-accuracy trade-off at k = 10.
//
// On FC and REC (5d), sweeps the LSH threshold ξ in {0.1, 0.2, 0.3, 0.4}
// and buckets-per-zone B in {10, 20, 50} against MinHash baselines with
// signature sizes t in {20, 50, 100}; the LSH variants band the t = 100
// matrix. Reports memory footprint (bytes) and diversity quality (min
// exact Jaccard distance). Paper's findings: raising ξ shrinks ζ and hence
// memory; LSH can match or beat small-signature MinHash quality while
// using less memory, whereas simply shrinking the MinHash signature
// degrades quality rapidly.

#include <algorithm>
#include <vector>

#include "bench/algos.h"
#include "bench/harness.h"
#include "core/gamma.h"
#include "diversify/evaluate.h"
#include "lsh/lsh.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv,
                "Figure 13: LSH vs MinHashing — memory and quality, k=10")) {
    return 0;
  }
  const size_t k = 10;
  ShapeChecks shape("Figure 13");

  struct Setting {
    WorkloadKind kind;
    RowId paper_n;
    Dim dims;
  };
  const Setting settings[] = {
      {WorkloadKind::kForestCoverLike, 581012, 5},
      {WorkloadKind::kRecipesLike, 365000, 5},
  };

  for (const auto& s : settings) {
    const DataSet& data = env.Data(s.kind, s.paper_n, s.dims);
    const RTree& tree = env.Tree(s.kind, s.paper_n, s.dims);
    const auto skyline = SkylineSFS(data).rows;
    const size_t m = skyline.size();
    const size_t kk = std::min(k, m);
    const GammaSets gammas = GammaSets::Compute(data, skyline);

    // MinHash baselines at t in {20, 50, 100}.
    TablePrinter mh_table({"data", "method", "t", "memory_B", "diversity"});
    double mh100_quality = 0.0, mh100_memory = 0.0;
    double mh20_quality = 0.0;
    for (size_t t : {20u, 50u, 100u}) {
      const auto mh = RunMH(data, skyline, kk, t, &tree, env.seed());
      const double q = EvaluateSelection(gammas, mh.selected).min_diversity;
      mh_table.Row({WorkloadKindName(s.kind), "MH", TablePrinter::Int(t),
                    TablePrinter::Int(mh.memory_bytes), TablePrinter::Num(q)});
      if (t == 100) {
        mh100_quality = q;
        mh100_memory = static_cast<double>(mh.memory_bytes);
      }
      if (t == 20) mh20_quality = q;
    }

    // LSH sweeps banding the t = 100 signatures.
    TablePrinter lsh_table(
        {"data", "threshold", "B", "zones", "memory_B", "diversity"});
    double lsh_q_02_b20 = 0.0, lsh_mem_02_b20 = 0.0;
    std::vector<double> mem_by_threshold;
    for (double xi : {0.1, 0.2, 0.3, 0.4}) {
      double mem_this_threshold = 0.0;
      for (size_t buckets : {10u, 20u, 50u}) {
        const auto lsh =
            RunLSH(data, skyline, kk, 100, xi, buckets, &tree, env.seed());
        const double q = EvaluateSelection(gammas, lsh.selected).min_diversity;
        const auto params = ChooseZones(100, xi, buckets).value();
        lsh_table.Row({WorkloadKindName(s.kind), TablePrinter::Num(xi, 1),
                       TablePrinter::Int(buckets), TablePrinter::Int(params.zones),
                       TablePrinter::Int(lsh.memory_bytes), TablePrinter::Num(q)});
        if (xi == 0.2 && buckets == 20) {
          lsh_q_02_b20 = q;
          lsh_mem_02_b20 = static_cast<double>(lsh.memory_bytes);
        }
        mem_this_threshold = static_cast<double>(lsh.memory_bytes);
      }
      mem_by_threshold.push_back(mem_this_threshold);
    }

    const std::string tag = WorkloadKindName(s.kind);
    shape.Check(tag + ": memory shrinks as the threshold grows (fewer zones)",
                std::is_sorted(mem_by_threshold.rbegin(), mem_by_threshold.rend()));
    shape.Check(tag + ": LSH(0.2, B=20) uses less memory than MH100",
                lsh_mem_02_b20 < mh100_memory);
    shape.Check(tag + ": LSH(0.2, B=20) quality within 0.15 of MH100 "
                      "(paper: 0.88 vs 0.93)",
                lsh_q_02_b20 + 0.15 >= mh100_quality);
    shape.Check(tag + ": LSH(0.2, B=20) quality >= MH20 - 0.1 (shrinking t "
                      "is the worse trade)",
                lsh_q_02_b20 + 0.1 >= mh20_quality);
  }
  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
