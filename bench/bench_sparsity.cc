// Reproduces the Section 3.2 sparsity remark: for 10,000 uniformly
// distributed points, the domination matrix is ~45% zeros at 3d, ~84% at
// 5d and ~97% at 7d — the reason sampling D - S cannot estimate Jaccard
// distances reliably. Also reports the skyline cardinality growth that
// drives the sparsity.

#include "bench/harness.h"
#include "core/gamma.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv,
                "Section 3.2: domination-matrix sparsity of 10K uniform points "
                "(paper: 45% @3d, 84% @5d, 97% @7d)",
                /*default_scale=*/1.0)) {
    return 0;
  }
  ShapeChecks shape("Sparsity (Sec. 3.2)");
  TablePrinter table({"dims", "n", "skyline_m", "zeros_pct"});
  const RowId n = env.Scaled(10000);
  double prev = 0.0;
  const struct {
    Dim d;
    double paper_lo, paper_hi;
  } grid[] = {{3, 0.30, 0.60}, {5, 0.70, 0.92}, {7, 0.90, 0.995}};
  for (const auto& g : grid) {
    const DataSet data = GenerateIndependent(n, g.d, env.seed());
    const auto skyline = SkylineSFS(data).rows;
    const GammaSets gammas = GammaSets::Compute(data, skyline);
    const double sparsity = gammas.MatrixSparsity();
    table.Row({TablePrinter::Int(g.d), TablePrinter::Int(n),
               TablePrinter::Int(skyline.size()),
               TablePrinter::Num(sparsity * 100.0, 1)});
    shape.Check("d=" + std::to_string(g.d) + ": sparsity in the paper's band",
                sparsity > g.paper_lo && sparsity < g.paper_hi);
    shape.Check("d=" + std::to_string(g.d) + ": sparsity grows with d",
                sparsity > prev);
    prev = sparsity;
  }
  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
