// Scale-invariance experiment (the paper's Section 2 argument, made
// measurable): "the Euclidean distance is sensitive to dimension scaling
// ... by selecting an off-the-shelf distance measure, the scale
// independence property of skylines is disregarded."
//
// Dominance — hence the skyline, hence Γ sets, hence SkyDiver's Jaccard
// measure — is invariant under strictly monotone per-dimension transforms.
// The Euclidean representative baseline ([32]) is not. We rescale one
// dimension by x1000 (think: price in cents instead of dollars) and
// measure how much each method's selection changes (Jaccard overlap of
// the selected row sets before/after).

#include <algorithm>
#include <set>
#include <vector>

#include "bench/harness.h"
#include "diversify/euclidean_representative.h"
#include "diversify/simple_greedy.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

double SelectionOverlap(const std::vector<RowId>& a, const std::vector<RowId>& b) {
  const std::set<RowId> sa(a.begin(), a.end());
  const std::set<RowId> sb(b.begin(), b.end());
  size_t inter = 0;
  for (RowId r : sa) inter += sb.count(r);
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv,
                "Scale invariance: SkyDiver (dominance-based) vs Euclidean "
                "representatives under per-dimension rescaling")) {
    return 0;
  }
  ShapeChecks shape("Scale invariance");
  const size_t k = 10;
  TablePrinter table({"data", "method", "overlap_after_x1000_rescale"});

  for (WorkloadKind kind :
       {WorkloadKind::kIndependent, WorkloadKind::kForestCoverLike}) {
    const RowId paper_n = kind == WorkloadKind::kIndependent ? 5000000u : 581012u;
    const DataSet& data = env.Data(kind, paper_n, 4);

    // Rescaled copy: dimension 0 multiplied by 1000 (a pure unit change).
    std::vector<Coord> scaled_values(data.values());
    for (size_t i = 0; i < scaled_values.size(); i += data.dims()) {
      scaled_values[i] *= 1000.0;
    }
    const DataSet scaled(data.dims(), std::move(scaled_values));

    const auto skyline = SkylineSFS(data).rows;
    const auto skyline_scaled = SkylineSFS(scaled).rows;
    shape.Check(std::string(WorkloadKindName(kind)) +
                    ": the skyline itself is scale-invariant",
                skyline == skyline_scaled);
    const size_t kk = std::min<size_t>(k, skyline.size());

    // SkyDiver (exact Jaccard distances, index-free).
    const auto sky_before = SimpleGreedyInMemory(data, skyline, kk).value();
    const auto sky_after = SimpleGreedyInMemory(scaled, skyline_scaled, kk).value();
    std::vector<RowId> sky_rows_before, sky_rows_after;
    for (size_t idx : sky_before.selected) sky_rows_before.push_back(skyline[idx]);
    for (size_t idx : sky_after.selected) sky_rows_after.push_back(skyline_scaled[idx]);
    const double sky_overlap = SelectionOverlap(sky_rows_before, sky_rows_after);

    // Euclidean representatives ([32]-style baseline).
    const auto euc_before = EuclideanRepresentatives(data, skyline, kk).value();
    const auto euc_after =
        EuclideanRepresentatives(scaled, skyline_scaled, kk).value();
    std::vector<RowId> euc_rows_before, euc_rows_after;
    for (size_t idx : euc_before.selected) euc_rows_before.push_back(skyline[idx]);
    for (size_t idx : euc_after.selected) euc_rows_after.push_back(skyline_scaled[idx]);
    const double euc_overlap = SelectionOverlap(euc_rows_before, euc_rows_after);

    table.Row({WorkloadKindName(kind), "SkyDiver(Jaccard)",
               TablePrinter::Num(sky_overlap)});
    table.Row({WorkloadKindName(kind), "Euclidean-repr [32]",
               TablePrinter::Num(euc_overlap)});
    shape.Check(std::string(WorkloadKindName(kind)) +
                    ": SkyDiver's selection is exactly scale-invariant",
                sky_overlap == 1.0);
    shape.Check(std::string(WorkloadKindName(kind)) +
                    ": the Euclidean baseline's selection shifts under rescaling",
                euc_overlap < 1.0);
  }
  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
