// Reproduces Figure 10: end-to-end diversification runtime (k = 10) vs
// dimensionality for BF, SG, MH100 and LSH100 on IND, ANT, FC and REC.
//
// Paper's findings: BF is hopeless even at k = 2 (it is run at k = 2 here
// as in the paper, and skipped when the skyline makes even that
// intractable); SG sits 2-3 orders of magnitude above MH/LSH because of
// range-query I/O; MH and LSH are nearly indistinguishable at this
// granularity. SG wins only for IND 2D, where the skyline has a handful of
// points and signature generation does not pay off.

#include <vector>

#include "bench/algos.h"
#include "bench/harness.h"
#include "skyline/skyline.h"

namespace skydiver::bench {
namespace {

int Run(int argc, char** argv) {
  BenchEnv env;
  if (!env.Init(argc, argv,
                "Figure 10: runtime for k=10 diverse points vs dimensionality "
                "(BF at k=2, as in the paper)",
                /*default_scale=*/100.0)) {
    return 0;
  }
  const size_t k = 10;
  const size_t t = 100;
  ShapeChecks shape("Figure 10");
  TablePrinter table({"data", "dims", "m", "BF(k=2)_s", "SG_s", "MH100_s",
                      "LSH100_s"});

  struct Setting {
    WorkloadKind kind;
    RowId paper_n;
    std::vector<Dim> dims;
  };
  const Setting settings[] = {
      {WorkloadKind::kIndependent, 5000000, {2, 3, 4, 6}},
      {WorkloadKind::kAnticorrelated, 5000000, {2, 3, 4, 6}},
      {WorkloadKind::kForestCoverLike, 581012, {4, 5, 7}},
      {WorkloadKind::kRecipesLike, 365000, {4, 5, 7}},
  };

  for (const auto& s : settings) {
    for (Dim d : s.dims) {
      const DataSet& data = env.Data(s.kind, s.paper_n, d);
      const RTree& tree = env.Tree(s.kind, s.paper_n, d);
      const auto skyline = SkylineSFS(data).rows;
      const size_t m = skyline.size();

      // The paper could only run BF at k = 2 (and not at all on ANT).
      const auto bf =
          s.kind == WorkloadKind::kAnticorrelated
              ? AlgoResult{}
              : RunBF(data, skyline, std::min<size_t>(2, m), tree);
      const auto sg = RunSG(data, skyline, std::min(k, m), tree);
      const auto mh = RunMH(data, skyline, std::min(k, m), t, &tree, env.seed());
      const auto lsh = RunLSH(data, skyline, std::min(k, m), t, 0.2, 20, &tree,
                              env.seed());
      auto cell = [](const AlgoResult& r) {
        return r.ran ? TablePrinter::Secs(r.total_seconds) : std::string("n/a");
      };
      table.Row({WorkloadKindName(s.kind), TablePrinter::Int(d),
                 TablePrinter::Int(m), cell(bf), cell(sg), cell(mh), cell(lsh)});

      const std::string tag =
          std::string(WorkloadKindName(s.kind)) + " d=" + std::to_string(d);
      if (sg.ran && mh.ran && m > 50) {
        shape.Check(tag + ": MH beats SG (paper: by orders of magnitude)",
                    mh.total_seconds < sg.total_seconds);
      }
      if (bf.ran && mh.ran && m > 50) {
        shape.Check(tag + ": BF(k=2) slower than MH(k=10)",
                    bf.total_seconds > mh.total_seconds);
      }
    }
  }
  shape.Summarize();
  return 0;
}

}  // namespace
}  // namespace skydiver::bench

int main(int argc, char** argv) { return skydiver::bench::Run(argc, argv); }
