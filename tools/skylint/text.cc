// Lexical preprocessing for skylint: comment/string blanking and
// statement splitting. Token-level by design — no preprocessor, no
// templates, just enough C++ lexing that rules never fire inside comments
// or literals.

#include "skylint.h"

namespace skylint {

namespace {

enum class LexState { kCode, kLineComment, kBlockComment, kString, kChar };

}  // namespace

std::vector<std::string> StripCommentsAndStrings(
    const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  LexState state = LexState::kCode;
  for (const std::string& line : lines) {
    std::string blanked(line.size(), ' ');
    if (state == LexState::kLineComment) state = LexState::kCode;
    for (size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case LexState::kCode:
          if (c == '/' && next == '/') {
            state = LexState::kLineComment;
            ++i;
          } else if (c == '/' && next == '*') {
            state = LexState::kBlockComment;
            ++i;
          } else if (c == '"') {
            state = LexState::kString;
            blanked[i] = '"';
          } else if (c == '\'') {
            state = LexState::kChar;
            blanked[i] = '\'';
          } else {
            blanked[i] = c;
          }
          break;
        case LexState::kLineComment:
          break;  // rest of the line is comment
        case LexState::kBlockComment:
          if (c == '*' && next == '/') {
            state = LexState::kCode;
            ++i;
          }
          break;
        case LexState::kString:
          if (c == '\\') {
            ++i;  // skip the escaped character
          } else if (c == '"') {
            state = LexState::kCode;
            blanked[i] = '"';
          }
          break;
        case LexState::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = LexState::kCode;
            blanked[i] = '\'';
          }
          break;
      }
      if (state == LexState::kLineComment && blanked[i] == ' ') {
        // nothing; comments stay blank
      }
    }
    if (state == LexState::kString || state == LexState::kChar) {
      // Unterminated literal on this line (e.g. a multi-line raw string we
      // do not model). Reset rather than poison the rest of the file.
      state = LexState::kCode;
    }
    out.push_back(std::move(blanked));
  }
  return out;
}

std::vector<Statement> SplitStatements(const std::vector<std::string>& code) {
  std::vector<Statement> out;
  std::string current;
  size_t start_line = 1;
  bool in_statement = false;
  // Parenthesis depth: a ';' inside a for(...) header must not end the
  // statement, or the pieces would look like bare expressions.
  int paren_depth = 0;
  bool continuation = false;  // previous line ended in a backslash
  for (size_t ln = 0; ln < code.size(); ++ln) {
    const std::string& line = code[ln];
    const size_t last = line.find_last_not_of(" \t");
    const bool escapes_newline = last != std::string::npos && line[last] == '\\';
    const size_t first = line.find_first_not_of(" \t");
    const bool directive = first != std::string::npos && line[first] == '#';
    if (directive || continuation) {
      // Preprocessor directives (and their '\'-continued bodies) are not
      // part of any runtime statement.
      continuation = escapes_newline && (directive || continuation);
      continue;
    }
    continuation = false;
    for (char c : line) {
      if (c == '(') ++paren_depth;
      if (c == ')' && paren_depth > 0) --paren_depth;
      if ((c == ';' && paren_depth == 0) || c == '{' || c == '}') {
        if (c == ';') current += c;
        if (in_statement) {
          out.push_back(Statement{current, start_line});
        }
        current.clear();
        in_statement = false;
        paren_depth = 0;
        continue;
      }
      if (!in_statement && (c == ' ' || c == '\t')) continue;
      if (!in_statement) {
        in_statement = true;
        start_line = ln + 1;
      }
      current += c;
    }
    if (in_statement) current += ' ';  // newlines separate tokens
  }
  if (in_statement) out.push_back(Statement{current, start_line});
  return out;
}

}  // namespace skylint
