// Tree walking and orchestration for skylint.

#include "skylint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace skylint {

namespace fs = std::filesystem;

namespace {

bool HasLintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

SourceFile LoadFile(const std::string& root, const std::string& rel) {
  SourceFile file;
  file.path = rel;
  std::ifstream in(fs::path(root) / rel);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    file.raw.push_back(line);
  }
  file.code = StripCommentsAndStrings(file.raw);
  return file;
}

}  // namespace

std::vector<std::string> DefaultFileSet(const std::string& root) {
  std::vector<std::string> out;
  for (const char* top : {"src", "tools", "bench", "tests"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !HasLintableExtension(entry.path())) continue;
      const std::string rel =
          fs::relative(entry.path(), fs::path(root)).generic_string();
      // Fixtures are deliberately bad code exercised by the self-tests.
      if (rel.rfind("tests/skylint_fixtures/", 0) == 0) continue;
      out.push_back(rel);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Violation> LintTree(const std::string& root,
                                const std::vector<std::string>& paths) {
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& rel : paths) files.push_back(LoadFile(root, rel));

  LintContext context;
  context.registry = BuildStatusRegistry(files);
  context.paths = paths;
  std::sort(context.paths.begin(), context.paths.end());

  std::vector<Violation> violations;
  for (const SourceFile& file : files) LintFile(file, context, &violations);
  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return violations;
}

}  // namespace skylint
