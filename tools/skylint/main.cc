// skylint CLI.
//
//   skylint --root <repo-root> [--rules a,b,c] [relative-paths...]
//
// With no explicit paths, lints every .cc/.h under src/, tools/, bench/
// and tests/ (minus tests/skylint_fixtures). Prints one line per finding:
//
//   file:line: rule-id: message
//
// and always ends with a summary line (`skylint: N violations across M
// files`, with a per-rule breakdown when nonzero) so CI logs show at a
// glance which rule tripped. `--rules` restricts reporting to a
// comma-separated subset of rule ids.
//
// Exit code 0 = clean, 1 = findings, 2 = usage error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "skylint.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: skylint [--root DIR] [--rules a,b,c] [paths...]\n"
               "  --root DIR     repository root to lint (default: .)\n"
               "  --rules a,b,c  only report these rule ids (default: all)\n"
               "  paths          root-relative files to lint (default: all of\n"
               "                 src/, tools/, bench/, tests/)\n");
}

/// Splits a comma-separated rule list; returns false (after printing the
/// offender and the known ids) when any name is not a real rule, so a typo
/// in CI fails loudly instead of silently filtering everything out.
bool ParseRuleFilter(const std::string& arg, std::set<std::string>* out) {
  const std::vector<std::string>& known = skylint::KnownRules();
  size_t begin = 0;
  while (begin <= arg.size()) {
    const size_t comma = arg.find(',', begin);
    const size_t end = comma == std::string::npos ? arg.size() : comma;
    const std::string rule = arg.substr(begin, end - begin);
    if (!rule.empty()) {
      if (std::find(known.begin(), known.end(), rule) == known.end()) {
        std::fprintf(stderr, "skylint: unknown rule '%s' in --rules\n",
                     rule.c_str());
        std::string all;
        for (const std::string& k : known) {
          if (!all.empty()) all += ", ";
          all += k;
        }
        std::fprintf(stderr, "skylint: known rules: %s\n", all.c_str());
        return false;
      }
      out->insert(rule);
    }
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::set<std::string> rule_filter;  // empty = all rules
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0) {
      if (i + 1 >= argc) {
        PrintUsage();
        return 2;
      }
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--rules") == 0) {
      if (i + 1 >= argc) {
        PrintUsage();
        return 2;
      }
      if (!ParseRuleFilter(argv[++i], &rule_filter)) {
        PrintUsage();
        return 2;
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage();
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "skylint: unknown flag '%s'\n", argv[i]);
      PrintUsage();
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) paths = skylint::DefaultFileSet(root);
  if (paths.empty()) {
    std::fprintf(stderr, "skylint: nothing to lint under '%s'\n", root.c_str());
    return 2;
  }

  std::vector<skylint::Violation> violations = skylint::LintTree(root, paths);
  if (!rule_filter.empty()) {
    violations.erase(std::remove_if(violations.begin(), violations.end(),
                                    [&](const skylint::Violation& v) {
                                      return rule_filter.count(v.rule) == 0;
                                    }),
                     violations.end());
  }

  std::set<std::string> dirty_files;
  std::map<std::string, size_t> by_rule;
  for (const skylint::Violation& v : violations) {
    std::printf("%s:%zu: %s: %s\n", v.path.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
    dirty_files.insert(v.path);
    ++by_rule[v.rule];
  }

  if (violations.empty()) {
    std::printf("skylint: 0 violations across %zu files\n", paths.size());
    return 0;
  }
  std::string breakdown;
  for (const auto& [rule, count] : by_rule) {
    if (!breakdown.empty()) breakdown += ", ";
    breakdown += rule + ": " + std::to_string(count);
  }
  std::printf("skylint: %zu violations across %zu files (%s)\n",
              violations.size(), dirty_files.size(), breakdown.c_str());
  return 1;
}
