// skylint CLI.
//
//   skylint --root <repo-root> [relative-paths...]
//
// With no explicit paths, lints every .cc/.h under src/, tools/, bench/
// and tests/ (minus tests/skylint_fixtures). Prints one line per finding:
//
//   file:line: rule-id: message
//
// Exit code 0 = clean, 1 = findings, 2 = usage error.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "skylint.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: skylint [--root DIR] [paths...]\n"
               "  --root DIR   repository root to lint (default: .)\n"
               "  paths        root-relative files to lint (default: all of\n"
               "               src/, tools/, bench/, tests/)\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0) {
      if (i + 1 >= argc) {
        PrintUsage();
        return 2;
      }
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage();
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "skylint: unknown flag '%s'\n", argv[i]);
      PrintUsage();
      return 2;
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.empty()) paths = skylint::DefaultFileSet(root);
  if (paths.empty()) {
    std::fprintf(stderr, "skylint: nothing to lint under '%s'\n", root.c_str());
    return 2;
  }

  const std::vector<skylint::Violation> violations = skylint::LintTree(root, paths);
  for (const skylint::Violation& v : violations) {
    std::printf("%s:%zu: %s: %s\n", v.path.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "skylint: %zu violation(s) in %zu file(s) linted\n",
                 violations.size(), paths.size());
    return 1;
  }
  return 0;
}
