# Self-test driver for skylint's golden bad fixtures.
#
# Each case directory under ${FIXTURES} mirrors a miniature repo tree and
# carries an `expected_rule` file naming the rule-id that must fire on it.
# The special `clean` case must produce no findings at all. Run with:
#   cmake -DSKYLINT=... -DFIXTURES=... -P run_selftest.cmake

if(NOT DEFINED SKYLINT OR NOT DEFINED FIXTURES)
  message(FATAL_ERROR "usage: cmake -DSKYLINT=<bin> -DFIXTURES=<dir> -P run_selftest.cmake")
endif()

file(GLOB cases RELATIVE ${FIXTURES} ${FIXTURES}/*)
set(failures 0)
set(ran 0)

foreach(case ${cases})
  if(NOT IS_DIRECTORY ${FIXTURES}/${case})
    continue()
  endif()
  math(EXPR ran "${ran} + 1")
  execute_process(
    COMMAND ${SKYLINT} --root ${FIXTURES}/${case}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)

  if(case STREQUAL "clean")
    if(NOT rc EQUAL 0)
      message(SEND_ERROR "fixture '${case}': expected exit 0, got ${rc}\n${out}${err}")
      math(EXPR failures "${failures} + 1")
    endif()
    continue()
  endif()

  if(NOT EXISTS ${FIXTURES}/${case}/expected_rule)
    message(SEND_ERROR "fixture '${case}': missing expected_rule file")
    math(EXPR failures "${failures} + 1")
    continue()
  endif()
  file(READ ${FIXTURES}/${case}/expected_rule expected)
  string(STRIP "${expected}" expected)

  if(rc EQUAL 0)
    message(SEND_ERROR "fixture '${case}': expected a '${expected}' finding, got exit 0")
    math(EXPR failures "${failures} + 1")
  elseif(NOT rc EQUAL 1)
    message(SEND_ERROR "fixture '${case}': skylint errored (exit ${rc})\n${out}${err}")
    math(EXPR failures "${failures} + 1")
  elseif(NOT out MATCHES ": ${expected}: ")
    message(SEND_ERROR "fixture '${case}': no '${expected}' finding in output:\n${out}")
    math(EXPR failures "${failures} + 1")
  endif()
endforeach()

if(ran EQUAL 0)
  message(FATAL_ERROR "no fixture cases found under ${FIXTURES}")
endif()
if(failures GREATER 0)
  message(FATAL_ERROR "${failures} fixture case(s) failed")
endif()
message(STATUS "all ${ran} skylint fixture case(s) passed")
