# Self-test driver for skylint's golden bad fixtures and its CLI.
#
# Each case directory under ${FIXTURES} mirrors a miniature repo tree and
# carries an `expected_rule` file naming the rule-id that must fire on it.
# Cases whose name starts with `clean` must produce no findings at all
# (the clean_allow_* cases prove per-line and per-file skylint:allow
# suppression). A trailing block exercises the CLI itself: the --rules
# filter (including its unknown-rule usage error) and the summary line.
# Run with:
#   cmake -DSKYLINT=... -DFIXTURES=... -P run_selftest.cmake

if(NOT DEFINED SKYLINT OR NOT DEFINED FIXTURES)
  message(FATAL_ERROR "usage: cmake -DSKYLINT=<bin> -DFIXTURES=<dir> -P run_selftest.cmake")
endif()

file(GLOB cases RELATIVE ${FIXTURES} ${FIXTURES}/*)
set(failures 0)
set(ran 0)

foreach(case ${cases})
  if(NOT IS_DIRECTORY ${FIXTURES}/${case})
    continue()
  endif()
  math(EXPR ran "${ran} + 1")
  execute_process(
    COMMAND ${SKYLINT} --root ${FIXTURES}/${case}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)

  if(case MATCHES "^clean")
    if(NOT rc EQUAL 0)
      message(SEND_ERROR "fixture '${case}': expected exit 0, got ${rc}\n${out}${err}")
      math(EXPR failures "${failures} + 1")
    endif()
    continue()
  endif()

  if(NOT EXISTS ${FIXTURES}/${case}/expected_rule)
    message(SEND_ERROR "fixture '${case}': missing expected_rule file")
    math(EXPR failures "${failures} + 1")
    continue()
  endif()
  file(READ ${FIXTURES}/${case}/expected_rule expected)
  string(STRIP "${expected}" expected)

  if(rc EQUAL 0)
    message(SEND_ERROR "fixture '${case}': expected a '${expected}' finding, got exit 0")
    math(EXPR failures "${failures} + 1")
  elseif(NOT rc EQUAL 1)
    message(SEND_ERROR "fixture '${case}': skylint errored (exit ${rc})\n${out}${err}")
    math(EXPR failures "${failures} + 1")
  elseif(NOT out MATCHES ": ${expected}: ")
    message(SEND_ERROR "fixture '${case}': no '${expected}' finding in output:\n${out}")
    math(EXPR failures "${failures} + 1")
  endif()
endforeach()

if(ran EQUAL 0)
  message(FATAL_ERROR "no fixture cases found under ${FIXTURES}")
endif()

# ---------------------------------------------------------------------------
# CLI: --rules filter and the summary line (run against the lock_discipline
# fixture, whose one finding makes the expectations exact).
# ---------------------------------------------------------------------------

# Filtering to a rule the fixture does NOT violate must report clean, and
# the always-printed summary line must say so.
execute_process(
  COMMAND ${SKYLINT} --root ${FIXTURES}/lock_discipline --rules relaxed-ordering
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(SEND_ERROR "--rules filter: expected exit 0 when filtering to an "
                     "unviolated rule, got ${rc}\n${out}${err}")
  math(EXPR failures "${failures} + 1")
elseif(NOT out MATCHES "skylint: 0 violations across [0-9]+ files")
  message(SEND_ERROR "--rules filter: clean summary line missing:\n${out}")
  math(EXPR failures "${failures} + 1")
endif()

# Filtering to the violated rule must still fail, and the summary must
# carry the per-rule breakdown.
execute_process(
  COMMAND ${SKYLINT} --root ${FIXTURES}/lock_discipline --rules lock-discipline
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(SEND_ERROR "--rules filter: expected exit 1 when filtering to the "
                     "violated rule, got ${rc}\n${out}${err}")
  math(EXPR failures "${failures} + 1")
elseif(NOT out MATCHES ": lock-discipline: ")
  message(SEND_ERROR "--rules filter: lock-discipline finding missing:\n${out}")
  math(EXPR failures "${failures} + 1")
elseif(NOT out MATCHES "skylint: [0-9]+ violations across 1 files \\(lock-discipline: [0-9]+\\)")
  message(SEND_ERROR "--rules filter: summary breakdown missing:\n${out}")
  math(EXPR failures "${failures} + 1")
endif()

# A typo'd rule id must be a loud usage error, not a silent empty filter.
execute_process(
  COMMAND ${SKYLINT} --root ${FIXTURES}/lock_discipline --rules bogus-rule
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 2)
  message(SEND_ERROR "--rules filter: expected usage error (exit 2) for an "
                     "unknown rule, got ${rc}\n${out}${err}")
  math(EXPR failures "${failures} + 1")
elseif(NOT err MATCHES "unknown rule 'bogus-rule'")
  message(SEND_ERROR "--rules filter: unknown-rule diagnostic missing:\n${err}")
  math(EXPR failures "${failures} + 1")
endif()

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} fixture/CLI case(s) failed")
endif()
message(STATUS "all ${ran} skylint fixture case(s) + CLI checks passed")
