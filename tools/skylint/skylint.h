// skylint — SkyDiver's project-specific static analysis.
//
// A deliberately small, dependency-free (token/line-level, no libclang)
// linter that machine-checks the conventions the library's correctness
// story leans on:
//
//   discarded-status   A call to a Status/Result-returning function used as
//                      a bare statement. The compiler enforces this through
//                      [[nodiscard]] + -Werror; skylint is the backstop for
//                      builds with warnings off, and documents the rule.
//   layering           src/common and src/core must not reach up into
//                      engine/ or skydiver/; src/kernels may include
//                      nothing above core; only src/serve (the serving
//                      layer atop the engine) may also include engine/ and
//                      skydiver/ headers, and nothing in src/ may include
//                      serve/; no test-framework includes anywhere under
//                      src/.
//   shared-state       In src/engine/ and src/serve/ — the layers whose
//                      objects (SkySnapshot, Runtime, SkyServer) are shared
//                      by reference across query threads — no mutable
//                      non-const statics and no `mutable` members that are
//                      not a std::atomic / mutex / once_flag: the
//                      concurrent-serving guarantee is "immutable after
//                      publication", and a mutable counter in a const
//                      object is a data race waiting for a second client.
//   determinism        No raw std::thread / std::mt19937 / rand() /
//                      argless time() outside src/parallel/ and
//                      src/common/rng.* — the paper's experiments are
//                      reproducible because every random draw goes through
//                      the seeded Rng and every thread through ThreadPool.
//   assert             No bare assert( outside src/common/check.h; invariants
//                      go through SKYDIVER_CHECK / SKYDIVER_DCHECK, which
//                      log what broke before aborting.
//   intrinsics         Vendor intrinsics headers (immintrin.h, arm_neon.h,
//                      ...) only under src/kernels/ — vector code is
//                      confined to the kernel layer, which owns the per-ISA
//                      compile flags and the runtime CPU probe; everything
//                      else goes through the DomKernel dispatch.
//   view-loops         In src/skyline/ — every skyline algorithm computes
//                      over a query-scoped DataView, so dimensionality is
//                      read through view.dims()/view.proj(); a raw
//                      data.dims() loop would silently ignore the query's
//                      projection mask. (view.data().dims() — the FULL
//                      dimensionality, e.g. for R-tree validation — is
//                      fine and does not match.)
//   include-hygiene    Headers carry #pragma once; a foo.cc with a sibling
//                      foo.h includes it first (keeps headers
//                      self-contained); no "../" relative includes.
//   guarded-mutex      In src/ (common/mutex.h excepted, the one sanctioned
//                      home of the std primitives): no raw std::mutex /
//                      shared_mutex / condition_variable — they are
//                      invisible to Clang Thread Safety Analysis; and every
//                      `mutable` member must be a synchronization primitive
//                      or carry SKYDIVER_GUARDED_BY naming its lock.
//   lock-discipline    No naked .lock()/.unlock() (or .Lock()/.Unlock())
//                      calls and no std::lock_guard/unique_lock/scoped_lock
//                      in src/: critical sections go through the annotated
//                      RAII guards (MutexLock & co in common/mutex.h) so no
//                      path can leak a lock.
//   relaxed-ordering   Every memory_order_relaxed site in src/ must carry a
//                      skylint:allow(relaxed-ordering) tag citing the
//                      protocol that carries the ordering the atomic gives
//                      up (e.g. the ThreadPool harvest contract).
//   pin-discipline     In src/: never bind a node reference (RTreeNode& /
//                      auto&) directly to a ReadNode() call. On the disk
//                      backend ReadNode returns a pinned PageRef; binding
//                      through the temporary drops the pin at the end of
//                      the full-expression and the reference dangles into
//                      an evictable cache frame. Name the ref, check
//                      RefOk, borrow via NodeOf (rtree/page_cache.h);
//                      provably in-memory-only sites tag the line.
//
// Suppressions: a comment containing `skylint:allow(<rule-id>)` silences
// that rule on its line or, when placed in the contiguous comment block
// directly above, on the finding below it; `skylint:allow-file(<rule-id>)`
// anywhere in a file silences the rule for the whole file. Violations print
// `file:line: rule-id: message` and the process exits nonzero.

#pragma once

#include <string>
#include <vector>

namespace skylint {

/// One finding. `path` is relative to the linted root.
struct Violation {
  std::string path;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

/// A source file prepared for analysis.
struct SourceFile {
  std::string path;                // relative to root, '/'-separated
  std::vector<std::string> raw;    // original lines
  std::vector<std::string> code;   // comments and string literals blanked
};

/// Blanks comments, string and character literals (preserving line
/// structure and column positions) so token rules never fire inside text.
std::vector<std::string> StripCommentsAndStrings(const std::vector<std::string>& lines);

/// Splits blanked code into statements (text between `;`, `{`, `}`),
/// remembering each statement's 1-based starting line.
struct Statement {
  std::string text;
  size_t line = 0;
};
std::vector<Statement> SplitStatements(const std::vector<std::string>& code);

/// Names of functions declared to return Status/Result<T> somewhere in the
/// tree, minus names that are also declared with a different return type
/// (a token-level linter cannot resolve overloads across receiver types).
struct StatusRegistry {
  std::vector<std::string> names;  // sorted, deduplicated
  bool Contains(const std::string& name) const;
};

/// Scans every file for function declarations and builds the registry.
StatusRegistry BuildStatusRegistry(const std::vector<SourceFile>& files);

/// Whole-tree context the per-file rules consult: the Status registry and
/// the set of linted paths (for sibling-header existence checks).
struct LintContext {
  StatusRegistry registry;
  std::vector<std::string> paths;  // sorted, root-relative
  bool HasFile(const std::string& path) const;
};

/// Sorted list of every rule id the linter implements (what `--rules`
/// validates against).
const std::vector<std::string>& KnownRules();

/// Runs every rule over `file`, appending findings to `out`.
void LintFile(const SourceFile& file, const LintContext& context,
              std::vector<Violation>* out);

/// Loads + lints all of `paths` (relative to `root`). Returns findings
/// sorted by path and line.
std::vector<Violation> LintTree(const std::string& root,
                                const std::vector<std::string>& paths);

/// Lists the .cc/.h/.cpp files under root's src/, tools/, bench/, tests/
/// (skipping tests/skylint_fixtures — fixtures are deliberately bad).
std::vector<std::string> DefaultFileSet(const std::string& root);

}  // namespace skylint
