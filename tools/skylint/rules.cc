// Rule implementations for skylint. Everything here works on blanked code
// (comments/strings removed) produced by text.cc; see skylint.h for the
// rule catalogue.

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>

#include "skylint.h"

namespace skylint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True when `text` contains `token` at a position not preceded/followed by
/// an identifier character (so `assert` does not match `static_assert`).
size_t FindToken(const std::string& text, const std::string& token, size_t from = 0) {
  size_t pos = text.find(token, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) return pos;
    pos = text.find(token, pos + 1);
  }
  return std::string::npos;
}

bool IsCommentLine(const std::string& raw) {
  const size_t first = raw.find_first_not_of(" \t");
  return first != std::string::npos && raw.compare(first, 2, "//") == 0;
}

/// Rule suppression: `skylint:allow(rule)` on the finding's line or in the
/// contiguous comment block directly above it (so the tag can carry a
/// full-sentence justification), or `skylint:allow-file(rule)` anywhere in
/// the file.
bool Suppressed(const SourceFile& file, size_t line, const std::string& rule) {
  const std::string line_tag = "skylint:allow(" + rule + ")";
  if (line >= 1 && line <= file.raw.size() &&
      file.raw[line - 1].find(line_tag) != std::string::npos) {
    return true;
  }
  for (size_t above = line - 1;
       above >= 1 && above <= file.raw.size() && IsCommentLine(file.raw[above - 1]);
       --above) {
    if (file.raw[above - 1].find(line_tag) != std::string::npos) return true;
  }
  const std::string file_tag = "skylint:allow-file(" + rule + ")";
  for (const std::string& raw : file.raw) {
    if (raw.find(file_tag) != std::string::npos) return true;
  }
  return false;
}

void Report(const SourceFile& file, size_t line, const std::string& rule,
            const std::string& message, std::vector<Violation>* out) {
  if (Suppressed(file, line, rule)) return;
  out->push_back(Violation{file.path, line, rule, message});
}

// -------------------------------------------------------------------------
// discarded-status
// -------------------------------------------------------------------------

// Matches declarations/definitions returning Status or Result<...>:
//   [[nodiscard]] static Result<Foo> Name(
const std::regex kStatusDeclRe(
    R"((?:^|[;{}\s])(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+|inline\s+|friend\s+)*(?:Status|Result<[^;()]*>)\s+(?:\w+::)*(\w+)\s*\()");

// Matches declarations with any other single-token (possibly qualified /
// templated) return type, used to find names that are ambiguous at the
// token level: `void Insert(...)` vs `Status Insert(...)`.
const std::regex kOtherDeclRe(
    R"((?:^|[;{}\s])(?:\[\[nodiscard\]\]\s*)?(?:static\s+|virtual\s+|inline\s+|constexpr\s+|friend\s+)*((?:\w+::)*\w+(?:<[^;()]*>)?(?:\s*[*&])?)\s+(?:\w+::)*(\w+)\s*\()");

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch", "return", "sizeof",
      "case",   "new",    "delete", "else",   "do",     "catch",
      "static_assert", "alignof", "decltype", "co_return", "co_await",
      "co_yield", "throw", "goto", "using", "typedef", "template",
      "operator", "public", "private", "protected", "explicit",
  };
  return kw;
}

void ScanDeclarations(const SourceFile& file, std::set<std::string>* status_names,
                      std::set<std::string>* other_names) {
  for (const Statement& stmt : SplitStatements(file.code)) {
    std::smatch m;
    std::string::const_iterator begin = stmt.text.cbegin();
    while (std::regex_search(begin, stmt.text.cend(), m, kStatusDeclRe)) {
      status_names->insert(m[1].str());
      begin = m[0].second;
    }
    begin = stmt.text.cbegin();
    while (std::regex_search(begin, stmt.text.cend(), m, kOtherDeclRe)) {
      const std::string ret = m[1].str();
      const std::string name = m[2].str();
      if (!StartsWith(ret, "Status") && !StartsWith(ret, "Result<") &&
          Keywords().count(ret) == 0 && Keywords().count(name) == 0 &&
          ret != "return") {
        other_names->insert(name);
      }
      begin = m[0].second;
    }
  }
}

// A bare-call statement: `receiver.chain->Name(args);` with nothing before
// the chain and nothing after the closing paren. Assignments, returns,
// comparisons, macro wraps all fail this shape.
const std::regex kBareCallRe(
    R"(^(?:\(\s*void\s*\)\s*)?((?:\w+(?:\.|->|::))*)(\w+)\s*\(.*\)\s*;$)");

void CheckDiscardedStatus(const SourceFile& file, const StatusRegistry& registry,
                          std::vector<Violation>* out) {
  for (const Statement& stmt : SplitStatements(file.code)) {
    std::smatch m;
    if (!std::regex_match(stmt.text, m, kBareCallRe)) continue;
    if (stmt.text.find("(void)") == 0 || StartsWith(stmt.text, "( void )")) {
      continue;  // explicit discard is the sanctioned opt-out
    }
    const std::string name = m[2].str();
    if (Keywords().count(name) != 0) continue;
    if (!registry.Contains(name)) continue;
    Report(file, stmt.line, "discarded-status",
           "call to Status/Result-returning '" + name +
               "' used as a bare statement; handle the status, propagate it "
               "with SKYDIVER_RETURN_NOT_OK, or cast to (void) with a reason",
           out);
  }
}

// -------------------------------------------------------------------------
// layering
// -------------------------------------------------------------------------

/// First path component under src/ (empty when not under src/).
std::string SrcDir(const std::string& path) {
  if (!StartsWith(path, "src/")) return "";
  const size_t end = path.find('/', 4);
  if (end == std::string::npos) return "";
  return path.substr(4, end - 4);
}

const std::regex kProjectIncludeRe(R"|(^\s*#\s*include\s+"([^"]+)")|");
const std::regex kSystemIncludeRe(R"(^\s*#\s*include\s+<([^>]+)>)");

/// Include targets live inside string literals, which the blanking pass
/// erases. Extract them from the raw line, but only when the blanked line
/// still shows a `#` directive — a commented-out include has no directive
/// left after blanking and must not count.
bool IsDirectiveLine(const std::string& code_line) {
  const size_t first = code_line.find_first_not_of(" \t");
  return first != std::string::npos && code_line[first] == '#';
}

void CheckLayering(const SourceFile& file, std::vector<Violation>* out) {
  const std::string dir = SrcDir(file.path);
  const bool in_src = StartsWith(file.path, "src/");
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (!IsDirectiveLine(file.code[i])) continue;
    std::smatch m;
    std::string target;
    if (std::regex_search(file.raw[i], m, kProjectIncludeRe)) {
      target = m[1].str();
    } else if (std::regex_search(file.raw[i], m, kSystemIncludeRe)) {
      // Only test-framework headers are restricted among <> includes.
      const std::string sys = m[1].str();
      if (in_src && (StartsWith(sys, "gtest/") || StartsWith(sys, "gmock/") ||
                     StartsWith(sys, "catch2/"))) {
        Report(file, i + 1, "layering",
               "test-framework include <" + sys + "> inside src/", out);
      }
      continue;
    } else {
      continue;
    }

    const std::string inc_dir = target.substr(0, target.find('/'));
    if (dir == "common" && inc_dir != "common") {
      Report(file, i + 1, "layering",
             "src/common is the bottom layer and may only include common/ "
             "headers (found \"" + target + "\")",
             out);
    } else if ((dir == "core" || dir == "kernels") &&
               inc_dir != "common" && inc_dir != "core" && inc_dir != "kernels") {
      Report(file, i + 1, "layering",
             "src/" + dir + " may only include common/, core/ and kernels/ "
             "headers (found \"" + target + "\")",
             out);
    } else if (in_src && dir != "engine" && dir != "skydiver" && dir != "serve" &&
               (inc_dir == "engine" || inc_dir == "skydiver")) {
      Report(file, i + 1, "layering",
             "src/" + dir + " may not include " + inc_dir +
                 "/ headers (library layers below the engine must not "
                 "depend on it)",
             out);
    } else if (in_src && dir != "serve" && inc_dir == "serve") {
      Report(file, i + 1, "layering",
             "src/" + dir + " may not include serve/ headers (the serving "
             "layer sits on top of the engine; nothing in src/ depends on it)",
             out);
    }
  }
}

// -------------------------------------------------------------------------
// shared-state
// -------------------------------------------------------------------------

// The snapshot/serving layers' thread-safety story is "immutable after
// publication": a SkySnapshot is shared by reference across query threads,
// so any mutable escape hatch must be a synchronization primitive. Two
// shapes are banned in src/engine/ and src/serve/:
//   * non-const namespace/class statics (shared across every query with no
//     owner — `static constexpr` / `static const` data and static member
//     FUNCTIONS stay fine);
//   * `mutable` members whose declaration is not a std::atomic / mutex /
//     shared_mutex / once_flag / condition_variable (a mutable counter in
//     a const-shared object is a data race waiting for a second client).

bool SharedStateScoped(const std::string& path) {
  return StartsWith(path, "src/engine/") || StartsWith(path, "src/serve/");
}

bool HasSyncPrimitive(const std::string& text) {
  static const std::vector<std::string> kSync = {
      "atomic", "mutex", "shared_mutex", "once_flag", "condition_variable",
      // The project's annotated wrappers (common/mutex.h) — what mutable
      // members in src/ should actually be declared as.
      "Mutex", "SharedMutex", "CondVar",
  };
  for (const std::string& token : kSync) {
    if (FindToken(text, token) != std::string::npos) return true;
  }
  return false;
}

void CheckSharedState(const SourceFile& file, std::vector<Violation>* out) {
  if (!SharedStateScoped(file.path)) return;
  for (const Statement& stmt : SplitStatements(file.code)) {
    if (FindToken(stmt.text, "static") != std::string::npos &&
        stmt.text.find('(') == std::string::npos &&
        FindToken(stmt.text, "const") == std::string::npos &&
        FindToken(stmt.text, "constexpr") == std::string::npos) {
      Report(file, stmt.line, "shared-state",
             "mutable static in the snapshot/serving layer; engine state "
             "shared across query threads must be constant or live behind "
             "a synchronization primitive",
             out);
    }
    if (FindToken(stmt.text, "mutable") != std::string::npos &&
        !HasSyncPrimitive(stmt.text)) {
      Report(file, stmt.line, "shared-state",
             "non-atomic mutable member in the snapshot/serving layer; "
             "objects here are shared const across query threads, so "
             "mutable state must be a std::atomic / mutex / once_flag",
             out);
    }
  }
}

// -------------------------------------------------------------------------
// determinism
// -------------------------------------------------------------------------

bool DeterminismExempt(const std::string& path) {
  return StartsWith(path, "src/parallel/") ||
         StartsWith(path, "src/common/rng.");
}

const std::regex kArglessTimeRe(R"((^|[^\w.:>])time\s*\(\s*(NULL|nullptr|0)?\s*\))");
const std::regex kRandCallRe(R"((^|[^\w.:>])s?rand\s*\()");

void CheckDeterminism(const SourceFile& file, std::vector<Violation>* out) {
  if (DeterminismExempt(file.path)) return;
  static const std::vector<std::pair<std::string, std::string>> kBanned = {
      {"std::thread", "spawn threads through parallel/ThreadPool"},
      {"std::jthread", "spawn threads through parallel/ThreadPool"},
      {"std::mt19937", "draw randomness through common/Rng with an explicit seed"},
      {"std::mt19937_64", "draw randomness through common/Rng with an explicit seed"},
      {"std::random_device", "nondeterministic seeds break experiment reproducibility"},
      {"std::default_random_engine", "draw randomness through common/Rng"},
  };
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    for (const auto& [token, why] : kBanned) {
      if (FindToken(line, token) != std::string::npos) {
        Report(file, i + 1, "determinism", token + " outside src/parallel/: " + why,
               out);
      }
    }
    std::smatch m;
    if (std::regex_search(line, m, kRandCallRe)) {
      Report(file, i + 1, "determinism",
             "rand()/srand() is global, unseeded state; use common/Rng", out);
    }
    if (std::regex_search(line, m, kArglessTimeRe)) {
      Report(file, i + 1, "determinism",
             "wall-clock time() as a value feeds nondeterminism into "
             "experiments; plumb an explicit seed or timestamp",
             out);
    }
  }
}

// -------------------------------------------------------------------------
// assert
// -------------------------------------------------------------------------

void CheckAssert(const SourceFile& file, std::vector<Violation>* out) {
  if (file.path == "src/common/check.h") return;  // the one sanctioned home
  for (size_t i = 0; i < file.code.size(); ++i) {
    size_t pos = FindToken(file.code[i], "assert");
    while (pos != std::string::npos) {
      // Must be a call: next non-space is '('.
      size_t j = pos + 6;
      while (j < file.code[i].size() && file.code[i][j] == ' ') ++j;
      if (j < file.code[i].size() && file.code[i][j] == '(') {
        Report(file, i + 1, "assert",
               "bare assert() is silent about what broke and vanishes under "
               "NDEBUG; use SKYDIVER_CHECK / SKYDIVER_DCHECK from "
               "common/check.h",
               out);
        break;  // one report per line is enough
      }
      pos = FindToken(file.code[i], "assert", pos + 1);
    }
  }
}

// -------------------------------------------------------------------------
// intrinsics
// -------------------------------------------------------------------------

// Vendor intrinsics headers are confined to src/kernels/: every other layer
// must stay ISA-agnostic and reach vector code only through the DomKernel
// dispatch, so a single directory owns the per-ISA compile flags and the
// runtime-probe discipline (no AVX2 instructions outside TUs built with
// -mavx2).
bool IsIntrinsicsHeader(const std::string& header) {
  static const std::set<std::string> kExact = {
      "immintrin.h", "x86intrin.h", "arm_neon.h", "arm_sve.h",
      "emmintrin.h", "smmintrin.h", "avxintrin.h", "avx2intrin.h",
  };
  if (kExact.count(header) != 0) return true;
  return EndsWith(header, "mmintrin.h");
}

void CheckIntrinsics(const SourceFile& file, std::vector<Violation>* out) {
  if (StartsWith(file.path, "src/kernels/")) return;  // the sanctioned home
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (!IsDirectiveLine(file.code[i])) continue;
    std::smatch m;
    std::string target;
    if (std::regex_search(file.raw[i], m, kSystemIncludeRe)) {
      target = m[1].str();
    } else if (std::regex_search(file.raw[i], m, kProjectIncludeRe)) {
      target = m[1].str();
    } else {
      continue;
    }
    if (IsIntrinsicsHeader(target)) {
      Report(file, i + 1, "intrinsics",
             "intrinsics header <" + target +
                 "> outside src/kernels/; vector code is confined to the "
                 "kernel layer — go through the DomKernel dispatch instead",
             out);
    }
  }
}

// -------------------------------------------------------------------------
// view-loops
// -------------------------------------------------------------------------

// Skyline algorithms take their dimensionality from a query-scoped
// DataView (view.dims() / view.proj()), never from the raw DataSet: a
// direct `data.dims()` loop silently ignores the query's projection mask.
// Token-level like everything here — `view.data().dims()` (reading the
// FULL dimensionality through the view, e.g. to validate an R-tree) does
// not match, because the member access interposes a call.
void CheckViewLoops(const SourceFile& file, std::vector<Violation>* out) {
  if (!StartsWith(file.path, "src/skyline/")) return;
  static const char* const kPatterns[] = {"data.dims()", "data_.dims()",
                                          "data->dims()"};
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    for (const char* pattern : kPatterns) {
      for (size_t pos = line.find(pattern); pos != std::string::npos;
           pos = line.find(pattern, pos + 1)) {
        if (pos != 0 && IsIdentChar(line[pos - 1])) continue;
        Report(file, i + 1, "view-loops",
               "skyline code must read dimensionality through a DataView "
               "(view.dims()/view.proj()); a raw DataSet dimension loop "
               "ignores the query's projection mask",
               out);
        break;
      }
    }
  }
}

// -------------------------------------------------------------------------
// include-hygiene
// -------------------------------------------------------------------------

void CheckIncludeHygiene(const SourceFile& file, const LintContext& context,
                         std::vector<Violation>* out) {
  const bool is_header = EndsWith(file.path, ".h") || EndsWith(file.path, ".hpp");
  if (is_header) {
    bool has_pragma = false;
    for (const std::string& line : file.code) {
      if (line.find("#pragma once") != std::string::npos) {
        has_pragma = true;
        break;
      }
    }
    if (!has_pragma) {
      Report(file, 1, "include-hygiene", "header is missing #pragma once", out);
    }
  }

  // "../" escapes the include-root discipline (-I src with full paths).
  for (size_t i = 0; i < file.code.size(); ++i) {
    std::smatch m;
    if (IsDirectiveLine(file.code[i]) &&
        std::regex_search(file.raw[i], m, kProjectIncludeRe) &&
        m[1].str().find("../") != std::string::npos) {
      Report(file, i + 1, "include-hygiene",
             "relative \"../\" include; use a root-relative path", out);
    }
  }

  // foo.cc with a sibling foo.h must include that header first: the
  // cheap, compiler-backed way to keep headers self-contained.
  if (EndsWith(file.path, ".cc") || EndsWith(file.path, ".cpp")) {
    const size_t slash = file.path.rfind('/');
    const size_t dot = file.path.rfind('.');
    const std::string stem = file.path.substr(slash + 1, dot - slash - 1);
    const std::string sibling = file.path.substr(0, dot) + ".h";
    if (!context.HasFile(sibling)) return;
    std::string first_include;
    size_t first_line = 0;
    for (size_t i = 0; i < file.code.size() && first_include.empty(); ++i) {
      if (!IsDirectiveLine(file.code[i])) continue;
      std::smatch m;
      if (std::regex_search(file.raw[i], m, kProjectIncludeRe)) {
        first_include = m[1].str();
        first_line = i + 1;
      } else if (std::regex_search(file.raw[i], m, kSystemIncludeRe)) {
        first_include = "<" + m[1].str() + ">";
        first_line = i + 1;
      }
    }
    if (!first_include.empty() && !EndsWith(first_include, "/" + stem + ".h") &&
        first_include != stem + ".h") {
      Report(file, first_line, "include-hygiene",
             "a .cc file should include its own header first to prove the "
             "header is self-contained (first include is \"" +
                 first_include + "\")",
             out);
    }
  }
}

// -------------------------------------------------------------------------
// pin-discipline
// -------------------------------------------------------------------------

// DiskRTree::ReadNode hands out a pinned PageRef whose frame becomes
// evictable the moment the ref dies. Binding a node reference straight to
// the call —
//     const RTreeNode& node = tree.ReadNode(id);      // or auto&
// — compiles fine against the in-memory RTree but is a use-after-evict
// against the disk tree: the temporary ref (and its pin) dies at the end
// of the full-expression and the reference dangles into the cache. Code
// generic over both backends must name the ref first and borrow through
// it (rtree/page_cache.h documents the protocol):
//     decltype(auto) ref = tree.ReadNode(id);
//     if (!RefOk(ref)) return RefStatus(ref);
//     const RTreeNode& node = NodeOf(ref);
// RTree-only sites where the reference provably targets the stable
// in-memory store may carry a skylint:allow(pin-discipline) tag saying so.

const std::regex kNodeRefLhsRe(R"((RTreeNode|auto)\s*&)");

void CheckPinDiscipline(const SourceFile& file, std::vector<Violation>* out) {
  if (!StartsWith(file.path, "src/")) return;
  for (const Statement& stmt : SplitStatements(file.code)) {
    const size_t call = FindToken(stmt.text, "ReadNode");
    if (call == std::string::npos) continue;
    const size_t eq = stmt.text.find('=');
    if (eq == std::string::npos || eq > call) continue;  // decl/defn, no init
    const std::string lhs = stmt.text.substr(0, eq);
    if (!std::regex_search(lhs, kNodeRefLhsRe)) continue;
    Report(file, stmt.line, "pin-discipline",
           "node reference bound directly to ReadNode(); the pin dies with "
           "the temporary and the reference dangles into the page cache on "
           "the disk backend — name the ref, check RefOk, then borrow via "
           "NodeOf (see rtree/page_cache.h)",
           out);
  }
}

// -------------------------------------------------------------------------
// guarded-mutex / lock-discipline / relaxed-ordering
// -------------------------------------------------------------------------

// The concurrency rules are the token-level backstop for Clang Thread
// Safety Analysis (common/thread_annotations.h): TSA only checks what is
// annotated, so these rules make sure the raw std primitives that TSA
// cannot see never appear in src/ in the first place. common/mutex.h is
// the one sanctioned home of the underlying std types.

bool ConcurrencyScoped(const std::string& path) {
  return StartsWith(path, "src/") && path != "src/common/mutex.h";
}

void CheckGuardedMutex(const SourceFile& file, std::vector<Violation>* out) {
  if (!ConcurrencyScoped(file.path)) return;
  // Raw std synchronization types defeat the thread-safety analysis (they
  // carry no capability annotations); the wrappers in common/mutex.h are
  // the sanctioned spelling.
  static const std::vector<std::string> kRawPrimitives = {
      "std::mutex",          "std::timed_mutex",
      "std::recursive_mutex", "std::recursive_timed_mutex",
      "std::shared_mutex",   "std::shared_timed_mutex",
      "std::condition_variable", "std::condition_variable_any",
  };
  for (size_t i = 0; i < file.code.size(); ++i) {
    for (const std::string& token : kRawPrimitives) {
      if (FindToken(file.code[i], token) != std::string::npos) {
        Report(file, i + 1, "guarded-mutex",
               token + " is invisible to thread-safety analysis; use the "
               "annotated wrappers in common/mutex.h (Mutex, SharedMutex, "
               "CondVar, MutexLock)",
               out);
        break;  // one report per line is enough
      }
    }
  }
  // A `mutable` member is cross-thread mutable state in any const-shared
  // object: it must be a synchronization primitive, an atomic, or carry a
  // GUARDED_BY annotation naming the lock that protects it. (Checked only
  // when `mutable` opens the statement, so `mutable` lambdas never match.)
  for (const Statement& stmt : SplitStatements(file.code)) {
    if (!StartsWith(stmt.text, "mutable") ||
        (stmt.text.size() > 7 && IsIdentChar(stmt.text[7]))) {
      continue;
    }
    if (HasSyncPrimitive(stmt.text) ||
        stmt.text.find("SKYDIVER_GUARDED_BY") != std::string::npos ||
        stmt.text.find("SKYDIVER_PT_GUARDED_BY") != std::string::npos) {
      continue;
    }
    Report(file, stmt.line, "guarded-mutex",
           "mutable member is neither a synchronization primitive nor "
           "SKYDIVER_GUARDED_BY an annotated lock; tie it to its capability "
           "or tag the line with the reason it needs no guard",
           out);
  }
}

void CheckLockDiscipline(const SourceFile& file, std::vector<Violation>* out) {
  if (!ConcurrencyScoped(file.path)) return;
  // Naked acquire/release calls can leak a lock on any early return or
  // exception, and hand-unlocked sections are exactly the holes TSA's
  // scoped-capability checking cannot vouch for. RAII guards only.
  static const char* const kNakedCalls[] = {
      ".lock(",  "->lock(",  ".unlock(",  "->unlock(",
      ".Lock(",  "->Lock(",  ".Unlock(",  "->Unlock(",
  };
  // The std RAII guards are banned alongside: they manage a raw std::mutex
  // and carry no scoped-capability annotation.
  static const std::vector<std::string> kRawGuards = {
      "std::lock_guard", "std::unique_lock", "std::scoped_lock",
  };
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    bool reported = false;
    for (const char* pattern : kNakedCalls) {
      if (line.find(pattern) != std::string::npos) {
        Report(file, i + 1, "lock-discipline",
               std::string("naked '") + pattern +
                   ")' call; critical sections use the RAII guards from "
                   "common/mutex.h (MutexLock, ReaderMutexLock, "
                   "WriterMutexLock) so no path can leak the lock",
               out);
        reported = true;
        break;
      }
    }
    if (reported) continue;
    for (const std::string& token : kRawGuards) {
      if (FindToken(line, token) != std::string::npos) {
        Report(file, i + 1, "lock-discipline",
               token + " guards a raw std::mutex the thread-safety analysis "
               "cannot track; use MutexLock / ReaderMutexLock / "
               "WriterMutexLock from common/mutex.h",
               out);
        break;
      }
    }
  }
}

void CheckThreadIdReduction(const SourceFile& file, std::vector<Violation>* out) {
  if (!ConcurrencyScoped(file.path)) return;
  // Thread identity is a scheduling accident. State indexed by it (a
  // this_thread::get_id()-keyed accumulator map, a pthread_self() slot
  // picker) folds reductions in whatever order the OS ran the threads —
  // the exact nondeterminism the morsel protocol exists to kill. Index
  // reduction slots by morsel/claim id instead (parallel/morsel.h;
  // DESIGN.md §10 explains why thread-id accumulation is banned).
  static const char* const kIdentityCalls[] = {
      "this_thread::get_id",
      "pthread_self",
  };
  for (size_t i = 0; i < file.code.size(); ++i) {
    for (const char* pattern : kIdentityCalls) {
      const size_t pos = file.code[i].find(pattern);
      if (pos == std::string::npos) continue;
      if (pos != 0 && IsIdentChar(file.code[i][pos - 1])) continue;
      Report(file, i + 1, "thread-id-reduction",
             std::string(pattern) +
                 " reads thread identity, which is a scheduling accident; "
                 "accumulate into slots indexed by morsel/claim id "
                 "(parallel/morsel.h) so reductions fold deterministically",
             out);
      break;  // one report per line is enough
    }
  }
}

void CheckRelaxedOrdering(const SourceFile& file, std::vector<Violation>* out) {
  if (!ConcurrencyScoped(file.path)) return;
  // memory_order_relaxed is correct only when some OTHER mechanism carries
  // the ordering (a mutex, a fence protocol). Every site must say which,
  // via a skylint:allow(relaxed-ordering) tag citing the protocol doc —
  // the report below is what forces the tag to exist.
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (FindToken(file.code[i], "memory_order_relaxed") != std::string::npos) {
      Report(file, i + 1, "relaxed-ordering",
             "memory_order_relaxed without a skylint:allow(relaxed-ordering) "
             "tag; cite the protocol that carries the ordering this atomic "
             "gives up (e.g. the ThreadPool harvest contract)",
             out);
    }
  }
}

}  // namespace

const std::vector<std::string>& KnownRules() {
  static const std::vector<std::string> kRules = {
      "assert",           "determinism",     "discarded-status",
      "guarded-mutex",    "include-hygiene", "intrinsics",
      "layering",         "lock-discipline", "pin-discipline",
      "relaxed-ordering", "shared-state",    "thread-id-reduction",
      "view-loops",
  };
  return kRules;
}

bool StatusRegistry::Contains(const std::string& name) const {
  return std::binary_search(names.begin(), names.end(), name);
}

StatusRegistry BuildStatusRegistry(const std::vector<SourceFile>& files) {
  std::set<std::string> status_names;
  std::set<std::string> other_names;
  for (const SourceFile& file : files) {
    ScanDeclarations(file, &status_names, &other_names);
  }
  StatusRegistry registry;
  for (const std::string& name : status_names) {
    // Names also declared with a non-Status return type are ambiguous for
    // a token-level tool (e.g. RTree::Insert returns void while
    // StreamingSkyline::Insert returns Status); the compiler's
    // [[nodiscard]] enforcement covers those precisely.
    if (other_names.count(name) == 0) registry.names.push_back(name);
  }
  return registry;
}

bool LintContext::HasFile(const std::string& path) const {
  return std::binary_search(paths.begin(), paths.end(), path);
}

void LintFile(const SourceFile& file, const LintContext& context,
              std::vector<Violation>* out) {
  CheckDiscardedStatus(file, context.registry, out);
  CheckLayering(file, out);
  CheckSharedState(file, out);
  CheckDeterminism(file, out);
  CheckAssert(file, out);
  CheckIntrinsics(file, out);
  CheckViewLoops(file, out);
  CheckIncludeHygiene(file, context, out);
  CheckPinDiscipline(file, out);
  CheckGuardedMutex(file, out);
  CheckLockDiscipline(file, out);
  CheckRelaxedOrdering(file, out);
  CheckThreadIdReduction(file, out);
}

}  // namespace skylint
