// skydiver_cli — run the full SkyDiver pipeline from the command line.
//
// Works on your own CSV data or on the built-in workload generators, with
// every knob of the paper exposed:
//
//   # 10 diverse skyline points from a CSV (minimize all columns)
//   skydiver_cli --csv hotels.csv --k 10
//
//   # mixed preferences: minimize col 0, maximize col 1, minimize col 2
//   skydiver_cli --csv hotels.csv --pref min,max,min --k 5
//
//   # synthetic anticorrelated data, index-based pipeline, LSH selection
//   skydiver_cli --workload ANT --n 100000 --dims 4 --index
//                --select lsh --lsh-threshold 0.2 --lsh-buckets 20
//
//   # persist / reuse the index across runs
//   skydiver_cli --workload IND --n 500000 --dims 4 --index --save-tree idx.skyd
//   skydiver_cli --workload IND --n 500000 --dims 4 --load-tree idx.skyd

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "common/flags.h"
#include "core/sky_query.h"
#include "core/dataset_io.h"
#include "core/preference.h"
#include "datagen/csv.h"
#include "datagen/generators.h"
#include "parallel/thread_pool.h"
#include "rtree/disk_rtree.h"
#include "rtree/rtree.h"
#include "serve/serve.h"
#include "skydiver/advisor.h"
#include "skydiver/profile.h"
#include "skydiver/skydiver.h"

namespace skydiver {
namespace {

Result<Preference> ParsePreference(const std::string& spec, Dim dims) {
  if (spec.empty()) return Preference::AllMin(dims);
  std::vector<Pref> prefs;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token == "min") {
      prefs.push_back(Pref::kMin);
    } else if (token == "max") {
      prefs.push_back(Pref::kMax);
    } else {
      return Status::InvalidArgument("--pref entries must be 'min' or 'max', got '" +
                                     token + "'");
    }
  }
  if (prefs.size() != dims) {
    return Status::InvalidArgument("--pref lists " + std::to_string(prefs.size()) +
                                   " directions but the data has " +
                                   std::to_string(dims) + " columns");
  }
  return Preference(std::move(prefs));
}

// One side of a '--constrain lo:hi' pair. Empty text leaves the side open
// (`open` is the matching infinity); anything else must parse fully as a
// double, so 'inf'/'-inf' also work.
Result<Coord> ParseBound(const std::string& text, Coord open) {
  if (text.empty()) return open;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("--constrain bound '" + text +
                                   "' is not a number");
  }
  return value;
}

// Parses '--constrain lo:hi,lo:hi,...' (one pair per column, in column
// order) into the query's box. Bounds are given in the ORIGINAL column
// values; maximized columns are mirrored into minimization space below.
Status ParseConstraint(const std::string& spec, SkyQuery* query) {
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    const size_t colon = token.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "--constrain entries must be 'lo:hi' (either side may be empty), "
          "got '" + token + "'");
    }
    auto lo = ParseBound(token.substr(0, colon),
                         -std::numeric_limits<Coord>::infinity());
    if (!lo.ok()) return lo.status();
    auto hi = ParseBound(token.substr(colon + 1),
                         std::numeric_limits<Coord>::infinity());
    if (!hi.ok()) return hi.status();
    query->lo.push_back(*lo);
    query->hi.push_back(*hi);
  }
  if (query->lo.empty()) {
    return Status::InvalidArgument("--constrain lists no 'lo:hi' pairs");
  }
  return Status::OK();
}

// Parses '--project d0,d2,...' (the 'd' prefix is optional) into the
// query's projection mask.
Status ParseProjection(const std::string& spec, SkyQuery* query) {
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    std::string digits = token;
    if (!digits.empty() && (digits[0] == 'd' || digits[0] == 'D')) {
      digits = digits.substr(1);
    }
    char* end = nullptr;
    const unsigned long value = std::strtoul(digits.c_str(), &end, 10);
    if (digits.empty() || end != digits.c_str() + digits.size() ||
        digits[0] == '-') {
      return Status::InvalidArgument(
          "--project entries must be column indices like 'd0' or '2', got '" +
          token + "'");
    }
    query->project.push_back(static_cast<Dim>(value));
  }
  if (query->project.empty()) {
    return Status::InvalidArgument("--project lists no columns");
  }
  return Status::OK();
}

int Run(int argc, char** argv) {
  std::string csv, workload = "IND", pref_spec, select = "mh", kernel = "simd";
  std::string save_tree, load_tree, save_data;
  std::string constrain_spec, project_spec;
  std::string disk_path, disk_backend_name = "pread";
  bool disk_prefetch = false;
  int64_t n = 100000, dims = 4, k = 10, t = 100, lsh_buckets = 20, seed = 42;
  int64_t threads = 0, shards = 1, morsel = 0;
  double lsh_threshold = 0.2;
  bool use_index = false, skip_header = false, quiet = false;
  bool describe = false, advise = false, explain = false;

  Flags flags;
  flags.AddString("csv", &csv, "input CSV of numeric rows (overrides --workload)");
  flags.AddBool("skip-header", &skip_header, "drop the first CSV line");
  flags.AddString("workload", &workload, "generator: IND|CORR|ANT|CLUSTER|FC|REC");
  flags.AddInt64("n", &n, "generated cardinality");
  flags.AddInt64("dims", &dims, "generated dimensionality");
  flags.AddString("pref", &pref_spec,
                  "comma list of min/max per column (default: all min)");
  flags.AddInt64("k", &k, "number of diverse skyline points");
  flags.AddInt64("t", &t, "MinHash signature size");
  flags.AddString("select", &select, "selection distance: mh | lsh | bf (exact, small m)");
  flags.AddInt64("threads", &threads,
                 "worker threads (0 = serial; 1+ picks the pooled plan backends)");
  flags.AddInt64("morsel", &morsel,
                 "rows per work-stealing morsel for the pooled backends "
                 "(0 = auto; multiples of 64, bit-identical output for any value)");
  flags.AddString("kernel", &kernel,
                  "dominance kernel: simd (runtime-dispatched AVX2/NEON sweeps, "
                  "falls back to tiled) | tiled (batched 64-row sweeps) | scalar");
  flags.AddString("constrain", &constrain_spec,
                  "closed constraint box 'lo:hi,lo:hi,...' (one pair per "
                  "column, original values; an empty side is unbounded: "
                  "':5', '2:')");
  flags.AddString("project", &project_spec,
                  "subspace for dominance, e.g. 'd0,d2' (default: all columns)");
  flags.AddInt64("shards", &shards,
                 "split the rows into this many chunks, skyline each and "
                 "cross-filter merge — same output, parallel with --threads");
  flags.AddBool("explain", &explain, "print the resolved execution plan and exit");
  int64_t serve_clients = 0, serve_queries = 200;
  flags.AddInt64("serve", &serve_clients,
                 "serve mode: freeze a snapshot and answer a mixed MH/LSH query "
                 "schedule from this many concurrent clients (0 = off)");
  flags.AddInt64("serve-queries", &serve_queries, "serve mode: schedule length");
  flags.AddDouble("lsh-threshold", &lsh_threshold, "LSH banding threshold xi");
  flags.AddInt64("lsh-buckets", &lsh_buckets, "LSH buckets per zone B");
  flags.AddBool("index", &use_index, "build an aggregate R*-tree (BBS + SigGen-IB)");
  flags.AddString("disk", &disk_path,
                  "serialize the index to this page file and run the disk "
                  "pipeline off it (real page reads through the pinned cache)");
  flags.AddString("disk-backend", &disk_backend_name,
                  "physical page I/O for --disk: pread | mmap");
  flags.AddBool("disk-prefetch", &disk_prefetch,
                "arm async child-page prefetch for --disk (pool size = "
                "--threads; 0 = hardware concurrency)");
  flags.AddString("save-tree", &save_tree, "persist the built index to this path");
  flags.AddString("load-tree", &load_tree, "load a persisted index instead of building");
  flags.AddString("save-data", &save_data, "persist the dataset in binary form");
  flags.AddInt64("seed", &seed, "RNG seed");
  flags.AddBool("quiet", &quiet, "print only the selected rows");
  flags.AddBool("describe", &describe, "print a dataset profile and exit");
  flags.AddBool("advise", &advise,
                "print the paper's IB/IF recommendation (assumes a disk-resident index)");

  const Status parse = flags.Parse(argc, argv);
  if (!parse.ok()) {
    std::fprintf(stderr, "%s\n%s", parse.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  // --- data ------------------------------------------------------------------
  Result<DataSet> data = Status::Internal("unset");
  if (!csv.empty()) {
    data = ReadCsv(csv, skip_header);
  } else {
    auto kind = ParseWorkloadKind(workload);
    if (!kind.ok()) {
      std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
      return 2;
    }
    data = GenerateWorkload(*kind, static_cast<RowId>(n), static_cast<Dim>(dims),
                            static_cast<uint64_t>(seed));
  }
  if (!data.ok()) {
    std::fprintf(stderr, "loading data failed: %s\n", data.status().ToString().c_str());
    return 1;
  }
  if (const Status finite = CheckFinite(*data); !finite.ok()) {
    std::fprintf(stderr, "bad input data: %s\n", finite.ToString().c_str());
    return 1;
  }
  if (!save_data.empty()) {
    const Status st = SaveDataSet(*data, save_data);
    if (!st.ok()) {
      std::fprintf(stderr, "saving data failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  if (describe) {
    auto profile = ProfileDataSet(*data);
    if (!profile.ok()) {
      std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", FormatProfile(*profile).c_str());
    if (!advise) return 0;
  }
  if (advise) {
    const auto advice = RecommendSigGenMode(*data, IndexResidency::kDiskResident);
    std::printf("siggen recommendation: %s  [%s; mean corr %.3f]\n",
                advice.mode == SigGenMode::kIndexBased ? "index-based (IB)"
                                                       : "index-free (IF)",
                advice.rationale.c_str(), advice.mean_correlation);
    return 0;
  }

  auto pref = ParsePreference(pref_spec, data->dims());
  if (!pref.ok()) {
    std::fprintf(stderr, "%s\n", pref.status().ToString().c_str());
    return 2;
  }
  auto canonical = data->Canonicalize(*pref);
  if (!canonical.ok()) {
    std::fprintf(stderr, "%s\n", canonical.status().ToString().c_str());
    return 1;
  }

  // --- optional index ----------------------------------------------------------
  Result<RTree> tree = Status::Internal("unset");
  bool have_tree = false;
  if (!load_tree.empty()) {
    tree = RTree::LoadFromFile(load_tree);
    have_tree = true;
  } else if (use_index) {
    tree = RTree::BulkLoad(*canonical);
    have_tree = true;
  }
  if (have_tree && !tree.ok()) {
    std::fprintf(stderr, "index failed: %s\n", tree.status().ToString().c_str());
    return 1;
  }
  if (have_tree && !save_tree.empty()) {
    const Status st = tree->SaveToFile(save_tree);
    if (!st.ok()) {
      std::fprintf(stderr, "saving index failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // --- optional disk tree ------------------------------------------------------
  Result<DiskRTree> disk = Status::Internal("unset");
  std::optional<ThreadPool> prefetch_pool;
  bool have_disk = false;
  if (!disk_path.empty()) {
    if (!have_tree) {
      tree = RTree::BulkLoad(*canonical);
      if (!tree.ok()) {
        std::fprintf(stderr, "index failed: %s\n", tree.status().ToString().c_str());
        return 1;
      }
      have_tree = true;
    }
    if (const Status st = DiskRTree::Write(*tree, disk_path); !st.ok()) {
      std::fprintf(stderr, "writing page file failed: %s\n", st.ToString().c_str());
      return 1;
    }
    auto backend = ParseDiskBackend(disk_backend_name);
    if (!backend.ok()) {
      std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
      return 2;
    }
    DiskTreeOptions options;
    options.backend = *backend;
    if (disk_prefetch) {
      prefetch_pool.emplace(threads > 0 ? static_cast<size_t>(threads) : 0);
      options.prefetch_pool = &*prefetch_pool;
    }
    disk = DiskRTree::Open(disk_path, options);
    if (!disk.ok()) {
      std::fprintf(stderr, "opening page file failed: %s\n",
                   disk.status().ToString().c_str());
      return 1;
    }
    have_disk = true;
  }

  // --- pipeline ----------------------------------------------------------------
  SkyDiverConfig config;
  config.k = static_cast<size_t>(k);
  config.signature_size = static_cast<size_t>(t);
  config.seed = static_cast<uint64_t>(seed);
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    return 2;
  }
  config.threads = static_cast<size_t>(threads);
  if (morsel < 0) {
    std::fprintf(stderr, "--morsel must be >= 0\n");
    return 2;
  }
  config.morsel_rows = static_cast<size_t>(morsel);
  auto parsed_kernel = ParseDomKernel(kernel);
  if (!parsed_kernel.ok()) {
    std::fprintf(stderr, "%s\n", parsed_kernel.status().ToString().c_str());
    return 2;
  }
  config.kernel = *parsed_kernel;
  if (select == "lsh") {
    config.select = SelectMode::kLsh;
    config.lsh_threshold = lsh_threshold;
    config.lsh_buckets = static_cast<size_t>(lsh_buckets);
  } else if (select == "bf") {
    config.select = SelectMode::kBruteForce;
  } else if (select != "mh") {
    std::fprintf(stderr, "--select must be 'mh', 'lsh' or 'bf'\n");
    return 2;
  }
  if (!constrain_spec.empty()) {
    if (const Status st = ParseConstraint(constrain_spec, &config.query); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
    if (config.query.lo.size() != data->dims()) {
      std::fprintf(stderr,
                   "--constrain lists %zu 'lo:hi' pairs but the data has %u "
                   "columns\n",
                   config.query.lo.size(), data->dims());
      return 2;
    }
    // The pipeline runs over canonicalized (minimization-space) data; a
    // maximized column is negated there, which mirrors and swaps its bounds.
    for (Dim d = 0; d < data->dims(); ++d) {
      if (pref->at(d) == Pref::kMax) {
        const Coord lo = config.query.lo[d], hi = config.query.hi[d];
        config.query.lo[d] = -hi;
        config.query.hi[d] = -lo;
      }
    }
  }
  if (!project_spec.empty()) {
    if (const Status st = ParseProjection(project_spec, &config.query); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 2;
    }
  }
  if (shards < 1 || static_cast<size_t>(shards) > kMaxQueryShards) {
    std::fprintf(stderr, "--shards must be in [1, %zu]\n", kMaxQueryShards);
    return 2;
  }
  config.query.shards = static_cast<size_t>(shards);
  if (const Status st = ValidateQueryShape(config.query); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }

  if (explain) {
    PlanResources resources;
    // The planner takes at most one tree; the disk tree wins when both
    // exist (the in-memory one only seeded the page file).
    resources.disk_tree = have_disk ? &*disk : nullptr;
    resources.tree = (have_tree && !have_disk) ? &*tree : nullptr;
    auto plan = Planner::Resolve(config, resources);
    if (!plan.ok()) {
      std::fprintf(stderr, "planning failed: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", ExplainPlan(*plan, config).c_str());
    return 0;
  }

  // --- serve mode --------------------------------------------------------------
  if (serve_clients > 0) {
    if (serve_queries <= 0) {
      std::fprintf(stderr, "--serve-queries must be positive\n");
      return 2;
    }
    PlanResources resources;
    resources.disk_tree = have_disk ? &*disk : nullptr;
    resources.tree = (have_tree && !have_disk) ? &*tree : nullptr;
    auto snapshot = SkySnapshot::Build(*canonical, config, resources);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "snapshot build failed: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    const size_t m = (*snapshot)->skyline().size();
    const size_t k1 = std::min(config.k, m);
    const size_t k2 = std::max<size_t>(1, k1 / 2);
    // Mixed schedule around the configured knobs: both distance families,
    // two k values, repeated to length (repeats exercise the result cache).
    std::vector<QuerySpec> base;
    for (const size_t kk : {k1, k2}) {
      QuerySpec mh;
      mh.mode = SelectMode::kMinHash;
      mh.k = kk;
      base.push_back(mh);
      QuerySpec lsh;
      lsh.mode = SelectMode::kLsh;
      lsh.k = kk;
      lsh.lsh_threshold = lsh_threshold;
      lsh.lsh_buckets = static_cast<size_t>(lsh_buckets);
      base.push_back(lsh);
    }
    std::vector<QuerySpec> schedule;
    schedule.reserve(static_cast<size_t>(serve_queries));
    for (size_t i = 0; i < static_cast<size_t>(serve_queries); ++i) {
      schedule.push_back(base[i % base.size()]);
    }
    SkyServer server(*snapshot);
    auto loop = ServeLoop(server, schedule, static_cast<size_t>(serve_clients));
    if (!loop.ok()) {
      std::fprintf(stderr, "serve loop failed: %s\n", loop.status().ToString().c_str());
      return 1;
    }
    if (!quiet) {
      std::printf("# serve: n=%u m=%zu clients=%zu queries=%zu\n", data->size(), m,
                  static_cast<size_t>(serve_clients), schedule.size());
      std::printf("# qps=%.1f p50_ms=%.4f p99_ms=%.4f\n", loop->qps, loop->p50_ms,
                  loop->p99_ms);
      std::printf("# cache: result %llu hit / %llu miss, plan %llu hit / %llu miss\n",
                  static_cast<unsigned long long>(loop->stats.result_hits),
                  static_cast<unsigned long long>(loop->stats.result_misses),
                  static_cast<unsigned long long>(loop->stats.plan_hits),
                  static_cast<unsigned long long>(loop->stats.plan_misses));
      std::printf("# row, original values... (first query, k=%zu, mh)\n", k1);
    }
    for (RowId row : loop->results.front()->rows) {
      std::printf("%u", row);
      for (Coord v : data->row(row)) std::printf(",%g", v);
      std::printf("\n");
    }
    return 0;
  }

  auto report = have_disk
                    ? SkyDiver::RunOnDisk(*canonical, config, *disk)
                    : SkyDiver::Run(*canonical, config, have_tree ? &*tree : nullptr);
  if (!report.ok()) {
    std::fprintf(stderr, "SkyDiver failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  if (!quiet) {
    std::printf("# n=%u d=%u skyline=%zu k=%zu select=%s index=%s\n", data->size(),
                data->dims(), report->skyline.size(), config.k, select.c_str(),
                have_disk ? "disk" : (have_tree ? "yes" : "no"));
    if (!report->plan.query.identity()) {
      std::printf("# query: %s\n", ToString(report->plan.query).c_str());
    }
    std::printf(
        "# plan: skyline=%s fingerprint=%s select=%s threads=%zu kernel=%s "
        "morsel=%zu\n",
        ToString(report->plan.skyline), ToString(report->plan.fingerprint),
        ToString(report->plan.select), report->plan.threads,
        ToString(report->plan.kernel), report->plan.morsel_rows);
    std::printf("# objective (working min pairwise distance): %.4f\n",
                report->objective);
    const CostModel& cost = config.cost_model;
    std::printf("# time_s skyline=%.4f fingerprint=%.4f selection=%.4f\n",
                report->skyline_phase.TotalSeconds(cost),
                report->fingerprint_phase.TotalSeconds(cost),
                report->selection_phase.TotalSeconds(cost));
    std::printf("# row, original values...\n");
  }
  for (RowId row : report->selected_rows) {
    std::printf("%u", row);
    for (Coord v : data->row(row)) std::printf(",%g", v);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace skydiver

int main(int argc, char** argv) { return skydiver::Run(argc, argv); }
