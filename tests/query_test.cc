// Query-shaped skylines: SkyQuery normalization, DataView semantics, and
// the correctness story of the view-based backends.
//
//   * Identity bit-parity — the identity query on every backend (BNL, SFS,
//     D&C, sharded, BBS) and every kernel flavour hashes to goldens
//     captured from the pre-refactor code paths (n=2000, seed 42), so the
//     refactor provably changed nothing for the paper's pipeline.
//   * Randomized differential — constrained / projected / sharded queries
//     across IND/CORR/ANT and d = 2..12 match an independent brute-force
//     oracle that filters and projects a copy of the data.
//   * Shape plumbing — NormalizeQuery / QueryKey / DataView / the
//     view-scoped validators / the engine's plan.query surface.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "core/data_view.h"
#include "core/dataset.h"
#include "core/sky_query.h"
#include "datagen/generators.h"
#include "parallel/parallel_ops.h"
#include "parallel/thread_pool.h"
#include "rtree/rtree.h"
#include "skydiver/skydiver.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr DomKernel kFlavours[] = {DomKernel::kScalar, DomKernel::kTiled,
                                   DomKernel::kSimd};

// ---------------------------------------------------------------------------
// Brute-force oracle, written independently of the library's dominance
// helpers: filter to the in-box rows, then O(n^2) strict dominance over the
// projected dimension list.
std::vector<RowId> OracleSkyline(const DataSet& data, const SkyQuery& q) {
  std::vector<Dim> dims(q.project.begin(), q.project.end());
  if (dims.empty()) {
    dims.resize(data.dims());
    std::iota(dims.begin(), dims.end(), Dim{0});
  }
  std::vector<RowId> inbox;
  for (RowId r = 0; r < data.size(); ++r) {
    bool in = true;
    for (size_t d = 0; d < q.lo.size(); ++d) {
      if (data.at(r, static_cast<Dim>(d)) < q.lo[d] ||
          data.at(r, static_cast<Dim>(d)) > q.hi[d]) {
        in = false;
        break;
      }
    }
    if (in) inbox.push_back(r);
  }
  std::vector<RowId> sky;
  for (RowId r : inbox) {
    bool dominated = false;
    for (RowId s : inbox) {
      if (s == r) continue;
      bool all_le = true, one_lt = false;
      for (Dim d : dims) {
        if (data.at(s, d) > data.at(r, d)) {
          all_le = false;
          break;
        }
        if (data.at(s, d) < data.at(r, d)) one_lt = true;
      }
      if (all_le && one_lt) {
        dominated = true;
        break;
      }
    }
    if (!dominated) sky.push_back(r);
  }
  return sky;
}

// FNV-1a over the row ids, 4 little-endian bytes each — the same digest the
// goldens below were captured with on the pre-refactor tree.
uint64_t FnvRows(const std::vector<RowId>& rows) {
  uint64_t h = 1469598103934665603ull;
  for (RowId r : rows) {
    for (int b = 0; b < 4; ++b) {
      h ^= (r >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

DataView MakeView(const DataSet& data, const SkyQuery& q) {
  auto normalized = NormalizeQuery(q, data.dims());
  EXPECT_TRUE(normalized.ok()) << normalized.status().ToString();
  return DataView(data, *normalized);
}

// ---------------------------------------------------------------------------
// SkyQuery shape algebra.

TEST(SkyQueryTest, ValidateQueryShapeRejectsMalformedQueries) {
  SkyQuery mismatched;
  mismatched.lo = {0.0, 0.0};
  mismatched.hi = {1.0};
  EXPECT_FALSE(ValidateQueryShape(mismatched).ok());

  SkyQuery inverted;
  inverted.lo = {1.0};
  inverted.hi = {0.0};
  EXPECT_FALSE(ValidateQueryShape(inverted).ok());

  SkyQuery nan_box;
  nan_box.lo = {std::nan("")};
  nan_box.hi = {1.0};
  EXPECT_FALSE(ValidateQueryShape(nan_box).ok());

  SkyQuery dup_proj;
  dup_proj.project = {2, 2};
  EXPECT_FALSE(ValidateQueryShape(dup_proj).ok());

  SkyQuery too_many_shards;
  too_many_shards.shards = kMaxQueryShards + 1;
  EXPECT_FALSE(ValidateQueryShape(too_many_shards).ok());

  SkyQuery fine;
  fine.lo = {-kInf, 0.25};
  fine.hi = {0.75, kInf};
  fine.project = {1, 0};
  fine.shards = 8;
  EXPECT_TRUE(ValidateQueryShape(fine).ok());
}

TEST(SkyQueryTest, CanonicalShapeNormalizesWithoutData) {
  SkyQuery q;
  q.lo = {-kInf, -kInf};
  q.hi = {kInf, kInf};
  q.project = {3, 1, 3};
  q.shards = 0;
  const SkyQuery c = CanonicalShape(q);
  EXPECT_FALSE(c.constrained());  // everywhere-unbounded box is dropped
  EXPECT_EQ(c.project, (std::vector<Dim>{1, 3}));
  EXPECT_EQ(c.shards, 1u);
  EXPECT_TRUE(CanonicalShape(SkyQuery{}).identity());
}

TEST(SkyQueryTest, NormalizeQueryChecksArityAndCollapsesFullSpace) {
  SkyQuery wrong_arity;
  wrong_arity.lo = {0.0};
  wrong_arity.hi = {1.0};
  EXPECT_FALSE(NormalizeQuery(wrong_arity, 3).ok());

  SkyQuery out_of_range;
  out_of_range.project = {5};
  EXPECT_FALSE(NormalizeQuery(out_of_range, 3).ok());

  SkyQuery full_space;
  full_space.project = {2, 0, 1};
  const auto normalized = NormalizeQuery(full_space, 3);
  ASSERT_TRUE(normalized.ok());
  EXPECT_TRUE(normalized->identity());  // full-space list == identity mask
}

TEST(SkyQueryTest, QueryKeyIsStableAndInjectiveOnShape) {
  EXPECT_EQ(QueryKey(SkyQuery{}), "id");

  SkyQuery a, b;
  a.lo = {0.0};
  a.hi = {0.5};
  b.lo = {0.0};
  b.hi = {0.5000000001};
  EXPECT_NE(QueryKey(a), QueryKey(b));
  EXPECT_EQ(QueryKey(a), QueryKey(a));

  SkyQuery sharded;
  sharded.shards = 4;
  EXPECT_NE(QueryKey(sharded), "id");
}

// ---------------------------------------------------------------------------
// DataView semantics.

TEST(DataViewTest, IdentityViewIsTheWholeDataset) {
  const DataSet data =
      GenerateWorkload(WorkloadKind::kIndependent, 50, 3, 7).value();
  const DataView view(data);
  EXPECT_TRUE(view.identity());
  EXPECT_TRUE(view.full_space());
  EXPECT_EQ(view.size(), data.size());
  EXPECT_EQ(view.dims(), data.dims());
  std::vector<Coord> scratch;
  // Full space: ProjectedRow is the raw row span (zero copy).
  EXPECT_EQ(view.ProjectedRow(3, scratch).data(), data.row(3).data());
}

TEST(DataViewTest, ConstrainedProjectedViewFiltersAndGathers) {
  DataSet data(3);
  data.Append({0.1, 0.9, 0.5});
  data.Append({0.7, 0.2, 0.4});
  data.Append({0.3, 0.3, 0.9});
  SkyQuery q;
  q.lo = {0.0, 0.0, 0.0};
  q.hi = {0.5, 1.0, 1.0};
  q.project = {0, 2};
  const DataView view = MakeView(data, q);
  EXPECT_EQ(view.rows(), (std::vector<RowId>{0, 2}));  // row 1 fails d0 <= 0.5
  EXPECT_EQ(view.dims(), 2u);
  EXPECT_TRUE(view.InBox(data.row(0)));
  EXPECT_FALSE(view.InBox(data.row(1)));
  std::vector<Coord> scratch;
  const auto p = view.ProjectedRow(2, scratch);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], 0.3);
  EXPECT_EQ(p[1], 0.9);
  EXPECT_EQ(view.at(2, 1), 0.9);  // view dim 1 == data dim 2
}

// ---------------------------------------------------------------------------
// Identity bit-parity: goldens captured from the pre-refactor code paths.

struct Golden {
  WorkloadKind kind;
  Dim dims;
  size_t size;
  uint64_t hash;
};

constexpr Golden kGoldens[] = {
    {WorkloadKind::kIndependent, 2, 5, 0xfbcf1485aea78f25ull},
    {WorkloadKind::kIndependent, 4, 102, 0x6fcdcc3ef27155eeull},
    {WorkloadKind::kIndependent, 8, 923, 0x877715367b75fcd9ull},
    {WorkloadKind::kCorrelated, 2, 2, 0x65e7cb0b1618da29ull},
    {WorkloadKind::kCorrelated, 4, 3, 0x6d4dd942a256aaebull},
    {WorkloadKind::kCorrelated, 8, 11, 0x07674cc7b35af9e9ull},
    {WorkloadKind::kAnticorrelated, 2, 17, 0x3070258d589168c2ull},
    {WorkloadKind::kAnticorrelated, 4, 336, 0xfeee9961a8fc8930ull},
    {WorkloadKind::kAnticorrelated, 8, 1420, 0x02941f0a0a2b3a62ull},
};

TEST(QueryGoldenTest, IdentityQueryIsBitIdenticalOnEveryBackendAndKernel) {
  for (const Golden& g : kGoldens) {
    const DataSet data = GenerateWorkload(g.kind, 2000, g.dims, 42).value();
    const DataView view(data);
    const auto tree = RTree::BulkLoad(data).value();
    for (const DomKernel kernel : kFlavours) {
      const std::vector<RowId> sfs = SkylineSFS(view, kernel).rows;
      ASSERT_EQ(sfs.size(), g.size)
          << static_cast<int>(g.kind) << "/" << g.dims;
      ASSERT_EQ(FnvRows(sfs), g.hash)
          << static_cast<int>(g.kind) << "/" << g.dims;
      EXPECT_EQ(SkylineBNL(view, kernel).rows, sfs);
      EXPECT_EQ(SkylineDC(view, 256, kernel).rows, sfs);
      EXPECT_EQ(SkylineSharded(view, 4, kernel).rows, sfs);
      const auto bbs = SkylineBBS(view, tree, kernel);
      ASSERT_TRUE(bbs.ok());
      EXPECT_EQ(bbs->rows, sfs);
      // The DataSet overloads are the identity view by construction.
      EXPECT_EQ(SkylineSFS(data, kernel).rows, sfs);
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized differential: shaped queries vs the brute-force oracle.

SkyQuery RandomQuery(Rng& rng, const DataSet& data) {
  SkyQuery q;
  const Dim d = data.dims();
  if (rng.NextDouble() < 0.7) {
    q.lo.assign(d, -kInf);
    q.hi.assign(d, kInf);
    // Constrain a random subset of dimensions around random quantiles.
    const Dim boxed = static_cast<Dim>(rng.NextInt(1, d));
    for (Dim i = 0; i < boxed; ++i) {
      const Dim dd = static_cast<Dim>(rng.NextBounded(d));
      const double a = rng.NextDouble(-0.2, 1.0);
      const double b = rng.NextDouble(-0.2, 1.2);
      if (rng.NextDouble() < 0.25) {
        q.lo[dd] = std::min(a, b);  // one-sided from below
        q.hi[dd] = kInf;
      } else {
        q.lo[dd] = std::min(a, b);
        q.hi[dd] = std::max(a, b);
      }
    }
  }
  if (rng.NextDouble() < 0.7 && d > 1) {
    const Dim width = static_cast<Dim>(rng.NextInt(1, d - 1));
    std::vector<Dim> all(d);
    std::iota(all.begin(), all.end(), Dim{0});
    for (Dim i = 0; i < width; ++i) {
      std::swap(all[i], all[i + rng.NextBounded(d - i)]);
    }
    q.project.assign(all.begin(), all.begin() + width);
  }
  q.shards = static_cast<size_t>(rng.NextInt(1, 5));
  return q;
}

TEST(QueryDifferentialTest, ShapedQueriesMatchBruteForceOracle) {
  constexpr WorkloadKind kKinds[] = {WorkloadKind::kIndependent,
                                     WorkloadKind::kCorrelated,
                                     WorkloadKind::kAnticorrelated};
  Rng rng(20260809);
  for (const WorkloadKind kind : kKinds) {
    for (const Dim d : {Dim{2}, Dim{3}, Dim{5}, Dim{8}, Dim{12}}) {
      const DataSet data = GenerateWorkload(kind, 400, d, 100 + d).value();
      const auto tree = RTree::BulkLoad(data).value();
      for (int trial = 0; trial < 6; ++trial) {
        const SkyQuery q = RandomQuery(rng, data);
        ASSERT_TRUE(ValidateQueryShape(q).ok());
        const std::vector<RowId> expected = OracleSkyline(data, q);
        const DataView view = MakeView(data, q);
        for (const DomKernel kernel : kFlavours) {
          EXPECT_EQ(SkylineSFS(view, kernel).rows, expected);
          EXPECT_EQ(SkylineBNL(view, kernel).rows, expected);
          EXPECT_EQ(SkylineDC(view, 64, kernel).rows, expected);
          EXPECT_EQ(SkylineSharded(view, q.shards, kernel).rows, expected);
          const auto bbs = SkylineBBS(view, tree, kernel);
          ASSERT_TRUE(bbs.ok());
          EXPECT_EQ(bbs->rows, expected);
        }
        EXPECT_TRUE(IsSkyline(view, expected));
      }
    }
  }
}

TEST(QueryDifferentialTest, ShardedMatchesUnshardedSerialAndPooled) {
  const DataSet data =
      GenerateWorkload(WorkloadKind::kAnticorrelated, 3000, 5, 99).value();
  const DataView view(data);
  const std::vector<RowId> reference = SkylineSFS(view).rows;
  ThreadPool pool(4);
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{16}}) {
    EXPECT_EQ(SkylineSharded(view, shards).rows, reference);
    EXPECT_EQ(ShardedSkyline(view, shards, &pool).rows, reference);
    EXPECT_EQ(ShardedSkyline(view, shards, nullptr).rows, reference);
  }
  // More shards than rows degenerates gracefully.
  DataSet tiny(2);
  tiny.Append({0.5, 0.5});
  tiny.Append({0.2, 0.9});
  const DataView tiny_view(tiny);
  EXPECT_EQ(SkylineSharded(tiny_view, 64).rows, SkylineSFS(tiny_view).rows);
}

// ---------------------------------------------------------------------------
// View-scoped validators.

TEST(QueryValidationTest, ViewScopedValidatorAcceptsEmptyOnlyWhenConstrained) {
  DataSet data(2);
  data.Append({0.1, 0.2});
  data.Append({0.9, 0.8});
  const DataView identity(data);
  EXPECT_FALSE(ValidateSkylineRows(std::vector<RowId>{}, identity).ok());

  SkyQuery excludes;
  excludes.lo = {2.0, 2.0};
  excludes.hi = {3.0, 3.0};
  const DataView empty_view = MakeView(data, excludes);
  EXPECT_TRUE(empty_view.empty());
  EXPECT_TRUE(ValidateSkylineRows(std::vector<RowId>{}, empty_view).ok());

  SkyQuery half;
  half.lo = {0.0, 0.0};
  half.hi = {0.5, 0.5};
  const DataView half_view = MakeView(data, half);
  // Row 1 is outside the box: structurally invalid for this view.
  EXPECT_FALSE(ValidateSkylineRows(std::vector<RowId>{1}, half_view).ok());
  EXPECT_TRUE(ValidateSkylineRows(std::vector<RowId>{0}, half_view).ok());
}

TEST(QueryValidationTest, MaskAwareIsSkylineSeesSubspaceDominance) {
  DataSet data(3);
  data.Append({0.1, 0.9, 0.5});  // dominates row 1 in subspace {0}
  data.Append({0.2, 0.1, 0.1});
  SkyQuery q;
  q.project = {0};
  const DataView view = MakeView(data, q);
  EXPECT_TRUE(IsSkyline(view, {0}));
  EXPECT_FALSE(IsSkyline(view, {0, 1}));
  // Full-space both rows are incomparable.
  EXPECT_TRUE(IsSkyline(data, {0, 1}));
}

// ---------------------------------------------------------------------------
// Engine plumbing: config.query flows to plan.query and shapes the skyline.

TEST(QueryEngineTest, ShapedQueryRunsThroughTheFullPipeline) {
  const DataSet data =
      GenerateWorkload(WorkloadKind::kIndependent, 1500, 4, 11).value();
  SkyDiverConfig config;
  config.k = 2;
  config.query.lo = {-kInf, -kInf, -kInf, -kInf};
  config.query.hi = {kInf, 0.8, kInf, kInf};
  config.query.project = {1, 3};
  config.query.shards = 4;
  const auto report = SkyDiver::Run(data, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->plan.skyline, SkylineBackend::kSharded);
  EXPECT_EQ(report->plan.query.shards, 4u);
  SkyQuery oracle_q = report->plan.query;
  EXPECT_EQ(report->skyline, OracleSkyline(data, oracle_q));
  EXPECT_EQ(report->selected_rows.size(), 2u);
}

TEST(QueryEngineTest, IdentityQueryReportsIdentityPlan) {
  const DataSet data =
      GenerateWorkload(WorkloadKind::kCorrelated, 500, 3, 21).value();
  SkyDiverConfig config;
  config.k = 1;
  const auto report = SkyDiver::Run(data, config);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->plan.query.identity());
}

TEST(QueryEngineTest, BoxExcludingEveryPointIsAnError) {
  const DataSet data =
      GenerateWorkload(WorkloadKind::kIndependent, 200, 2, 5).value();
  SkyDiverConfig config;
  config.k = 3;
  config.query.lo = {5.0, 5.0};
  config.query.hi = {6.0, 6.0};
  const auto report = SkyDiver::Run(data, config);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().ToString().find("constraint box"), std::string::npos);
}

TEST(QueryEngineTest, PlannerRejectsMalformedShapes) {
  const DataSet data =
      GenerateWorkload(WorkloadKind::kIndependent, 100, 2, 5).value();
  SkyDiverConfig config;
  config.k = 3;
  config.query.lo = {1.0, 1.0};
  config.query.hi = {0.0, 0.0};  // inverted box
  EXPECT_FALSE(SkyDiver::Run(data, config).ok());

  SkyDiverConfig arity;
  arity.k = 3;
  arity.query.lo = {0.0};
  arity.query.hi = {1.0};  // wrong arity for d=2: caught at NormalizeQuery
  EXPECT_FALSE(SkyDiver::Run(data, arity).ok());
}

}  // namespace
}  // namespace skydiver
