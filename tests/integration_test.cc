// Cross-module integration tests: the full pipeline against ground truth,
// IF/IB consistency, MH vs LSH vs SG selection agreement in quality, and
// the Table-1 coverage-vs-diversity contrast.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/gamma.h"
#include "datagen/generators.h"
#include "diversify/coverage.h"
#include "diversify/evaluate.h"
#include "diversify/simple_greedy.h"
#include "lsh/lsh.h"
#include "minhash/siggen.h"
#include "rtree/rtree.h"
#include "skydiver/skydiver.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

struct Pipeline {
  DataSet data = DataSet(1);
  std::vector<RowId> skyline;
  GammaSets gammas;

  static Pipeline Make(WorkloadKind kind, RowId n, Dim d, uint64_t seed) {
    Pipeline p;
    p.data = GenerateWorkload(kind, n, d, seed).value();
    p.skyline = SkylineSFS(p.data).rows;
    p.gammas = GammaSets::Compute(p.data, p.skyline);
    return p;
  }
};

// --------------------------------------------------------------------------
// IF and IB signatures estimate the same distances.
// --------------------------------------------------------------------------

TEST(IntegrationTest, IfAndIbEstimatesAgreeWithinNoise) {
  const auto p = Pipeline::Make(WorkloadKind::kIndependent, 4000, 4, 23);
  const auto family = MinHashFamily::Create(200, p.data.size(), 31);
  auto tree = RTree::BulkLoad(p.data);
  ASSERT_TRUE(tree.ok());
  auto if_result = SigGenIF(p.data, p.skyline, family);
  auto ib_result = SigGenIB(p.data, p.skyline, family, *tree);
  ASSERT_TRUE(if_result.ok());
  ASSERT_TRUE(ib_result.ok());
  const size_t m = p.skyline.size();
  double sum_abs_diff = 0.0;
  size_t pairs = 0;
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a + 1; b < m; ++b) {
      sum_abs_diff += std::fabs(if_result->signatures.EstimatedSimilarity(a, b) -
                                ib_result->signatures.EstimatedSimilarity(a, b));
      ++pairs;
    }
  }
  ASSERT_GT(pairs, 0u);
  // Different permutation enumerations, same underlying Jaccard: estimates
  // must agree on average within MinHash noise for t = 200.
  EXPECT_LT(sum_abs_diff / static_cast<double>(pairs), 0.06);
}

// --------------------------------------------------------------------------
// Selection methods ranked by fidelity: SG (exact) >= MH >= LSH roughly.
// --------------------------------------------------------------------------

TEST(IntegrationTest, QualityOrderingSgMhLsh) {
  const auto p = Pipeline::Make(WorkloadKind::kIndependent, 6000, 4, 29);
  const size_t k = std::min<size_t>(10, p.skyline.size());
  ASSERT_GE(p.skyline.size(), k);

  auto sg = SimpleGreedyInMemory(p.data, p.skyline, k);
  ASSERT_TRUE(sg.ok());
  const double q_sg = EvaluateSelection(p.gammas, sg->selected).min_diversity;

  SkyDiverConfig mh_config;
  mh_config.k = k;
  auto mh = SkyDiver::Run(p.data, mh_config, nullptr, &p.skyline);
  ASSERT_TRUE(mh.ok());
  const double q_mh = EvaluateSelection(p.gammas, mh->selected).min_diversity;

  SkyDiverConfig lsh_config = mh_config;
  lsh_config.select = SelectMode::kLsh;
  auto lsh = SkyDiver::Run(p.data, lsh_config, nullptr, &p.skyline);
  ASSERT_TRUE(lsh.ok());
  const double q_lsh = EvaluateSelection(p.gammas, lsh->selected).min_diversity;

  // SG uses exact distances: it should be (weakly) best. MH tracks it
  // closely; LSH trades accuracy for memory. Allow approximation slack —
  // the orderings the paper reports are statistical, not per-instance.
  EXPECT_GE(q_sg + 0.15, q_mh);
  EXPECT_GE(q_mh + 0.25, q_lsh);
  EXPECT_GT(q_sg, 0.4);
  EXPECT_GT(q_mh, 0.3);
}

// --------------------------------------------------------------------------
// Table 1's contrast: dispersion maximizes diversity, coverage maximizes
// coverage, and they genuinely differ.
// --------------------------------------------------------------------------

class CoverageVsDiversityTest : public testing::TestWithParam<WorkloadKind> {};

TEST_P(CoverageVsDiversityTest, EachObjectiveWinsItsOwnGame) {
  const auto p = Pipeline::Make(GetParam(), 5000, 4, 37);
  const size_t k = std::min<size_t>(10, p.skyline.size());
  if (p.skyline.size() < k || k < 2) GTEST_SKIP() << "skyline too small";

  auto cov = GreedyMaxCoverage(p.gammas, k);
  ASSERT_TRUE(cov.ok());
  auto disp = SimpleGreedyInMemory(p.data, p.skyline, k);
  ASSERT_TRUE(disp.ok());

  const auto q_cov = EvaluateSelection(p.gammas, cov->selected);
  const auto q_disp = EvaluateSelection(p.gammas, disp->selected);

  EXPECT_GE(q_cov.coverage + 1e-9, q_disp.coverage);
  EXPECT_GE(q_disp.min_diversity + 1e-9, q_cov.min_diversity);
  // Paper Table 1: dispersion still achieves decent coverage.
  EXPECT_GT(q_disp.coverage, 0.4);
}

INSTANTIATE_TEST_SUITE_P(Workloads, CoverageVsDiversityTest,
                         testing::Values(WorkloadKind::kIndependent,
                                         WorkloadKind::kForestCoverLike,
                                         WorkloadKind::kRecipesLike),
                         [](const testing::TestParamInfo<WorkloadKind>& info) {
                           return WorkloadKindName(info.param);
                         });

// --------------------------------------------------------------------------
// The I/O story: SG performs range queries whose I/O dwarfs MH selection.
// --------------------------------------------------------------------------

TEST(IntegrationTest, SgIncursRangeQueryIoMhDoesNot) {
  const auto p = Pipeline::Make(WorkloadKind::kIndependent, 20000, 4, 41);
  const size_t k = std::min<size_t>(10, p.skyline.size());
  auto tree = RTree::BulkLoad(p.data);
  ASSERT_TRUE(tree.ok());

  auto sg = SimpleGreedy(p.data, p.skyline, k, *tree);
  ASSERT_TRUE(sg.ok());

  // MH's selection phase operates purely on signatures: zero index I/O.
  const auto family = MinHashFamily::Create(100, p.data.size(), 43);
  auto sig = SigGenIF(p.data, p.skyline, family);
  ASSERT_TRUE(sig.ok());
  EXPECT_GT(sg->io.page_reads, 0u);
  // SG's range queries touch far more pages than one sequential data pass.
  EXPECT_GT(sg->io.page_reads, sig->io.page_reads);
}

// --------------------------------------------------------------------------
// End-to-end: BBS skyline + IB signatures + LSH selection on one tree.
// --------------------------------------------------------------------------

TEST(IntegrationTest, FullyIndexedPipeline) {
  const auto data = GenerateAnticorrelated(8000, 3, 47);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  SkyDiverConfig config;
  config.k = 10;
  config.select = SelectMode::kLsh;
  config.siggen = SigGenMode::kIndexBased;
  auto report = SkyDiver::Run(data, config, &*tree);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(IsSkyline(data, report->skyline));
  EXPECT_EQ(report->selected_rows.size(), 10u);
  EXPECT_GT(report->skyline_phase.io.page_reads, 0u);       // BBS traffic
  EXPECT_GT(report->fingerprint_phase.io.page_reads, 0u);   // IB traffic
  EXPECT_EQ(report->selection_phase.io.page_reads, 0u);     // signatures only
}

// --------------------------------------------------------------------------
// Projections: one generated dataset swept across dimensionalities stays
// consistent (used by the dimension-sweep benchmarks).
// --------------------------------------------------------------------------

TEST(IntegrationTest, ProjectedPipelinesRun) {
  const DataSet base = GenerateIndependent(3000, 6, 53);
  for (Dim d : {2u, 3u, 4u, 6u}) {
    auto proj = base.Project(d);
    ASSERT_TRUE(proj.ok());
    SkyDiverConfig config;
    config.k = 2;
    auto report = SkyDiver::Run(*proj, config);
    ASSERT_TRUE(report.ok()) << "d=" << d << ": " << report.status().ToString();
    EXPECT_TRUE(IsSkyline(*proj, report->skyline));
  }
}

}  // namespace
}  // namespace skydiver
