// Unit tests for top-k dominating queries and local-search dispersion
// refinement.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "datagen/generators.h"
#include "diversify/brute_force.h"
#include "diversify/dispersion.h"
#include "diversify/local_search.h"
#include "rtree/rtree.h"
#include "skyline/skyline.h"
#include "skyline/topk_dominating.h"

namespace skydiver {
namespace {

// --------------------------------------------------------------------------
// TopKDominating
// --------------------------------------------------------------------------

TEST(TopKDominatingTest, ScanToyExample) {
  DataSet d(2);
  d.Append({1.0, 1.0});  // dominates everything below
  d.Append({2.0, 2.0});  // dominates 2
  d.Append({3.0, 3.0});
  d.Append({0.5, 9.0});  // dominates nothing
  auto top = TopKDominatingScan(d, 2);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);
  EXPECT_EQ((*top)[0].row, 0u);
  EXPECT_EQ((*top)[0].score, 2u);
  EXPECT_EQ((*top)[1].row, 1u);
  EXPECT_EQ((*top)[1].score, 1u);
}

TEST(TopKDominatingTest, IndexMatchesScan) {
  const DataSet data = GenerateIndependent(2000, 3, 97);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  const auto scan = TopKDominatingScan(data, 10).value();
  const auto indexed = TopKDominating(data, *tree, 10).value();
  ASSERT_EQ(scan.size(), indexed.size());
  for (size_t i = 0; i < scan.size(); ++i) {
    EXPECT_EQ(scan[i].row, indexed[i].row) << i;
    EXPECT_EQ(scan[i].score, indexed[i].score) << i;
  }
}

TEST(TopKDominatingTest, TopDominatorIsOnTheSkyline) {
  // The global top-1 dominating point is always a skyline point: anything
  // dominating it would dominate a superset.
  const DataSet data = GenerateAnticorrelated(3000, 3, 99);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  const auto skyline = SkylineSFS(data).rows;
  const auto top = TopKDominating(data, *tree, 1).value();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_TRUE(std::find(skyline.begin(), skyline.end(), top[0].row) != skyline.end());
}

TEST(TopKDominatingTest, CandidateRestriction) {
  const DataSet data = GenerateIndependent(1500, 3, 101);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  const auto skyline = SkylineSFS(data).rows;
  const auto top =
      TopKDominating(data, *tree, skyline.size(), &skyline).value();
  EXPECT_EQ(top.size(), skyline.size());
  // Scores must be sorted descending.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

TEST(TopKDominatingTest, Validation) {
  DataSet empty(2);
  EXPECT_TRUE(TopKDominatingScan(empty, 1).status().IsInvalidArgument());
  const DataSet data = GenerateIndependent(100, 2, 103);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(TopKDominating(data, *tree, 0).status().IsInvalidArgument());
  const std::vector<RowId> bad{999};
  EXPECT_TRUE(TopKDominating(data, *tree, 1, &bad).status().IsInvalidArgument());
}

// --------------------------------------------------------------------------
// RefineDispersion (local search)
// --------------------------------------------------------------------------

TEST(LocalSearchTest, ValidatesInput) {
  auto d = [](size_t, size_t) { return 1.0; };
  EXPECT_TRUE(RefineDispersion(5, {0}, d).status().IsInvalidArgument());       // k < 2
  EXPECT_TRUE(RefineDispersion(2, {0, 1, 2}, d).status().IsInvalidArgument()); // k > m
  EXPECT_TRUE(RefineDispersion(5, {0, 0}, d).status().IsInvalidArgument());    // dup
  EXPECT_TRUE(RefineDispersion(5, {0, 9}, d).status().IsInvalidArgument());    // range
}

TEST(LocalSearchTest, FixesAKnownSuboptimalSelection) {
  // Line positions: {0, 1, 10}; start from the bad pair {0, 1}; the swap
  // 1 -> 2 lifts the objective from 1 to 10.
  const std::vector<double> pos{0.0, 1.0, 10.0};
  auto d = [&](size_t a, size_t b) { return std::fabs(pos[a] - pos[b]); };
  auto refined = RefineDispersion(3, {0, 1}, d).value();
  EXPECT_DOUBLE_EQ(refined.min_pairwise, 10.0);
  EXPECT_EQ(refined.swaps, 1u);
}

TEST(LocalSearchTest, NeverDecreasesObjective) {
  Rng rng(105);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t m = 15, k = 4;
    std::vector<double> xs(m), ys(m);
    for (size_t i = 0; i < m; ++i) {
      xs[i] = rng.NextDouble();
      ys[i] = rng.NextDouble();
    }
    auto dist = [&](size_t a, size_t b) {
      return std::hypot(xs[a] - xs[b], ys[a] - ys[b]);
    };
    auto greedy = SelectDiverseSet(m, k, dist, [](size_t) { return 0.0; }).value();
    auto refined = RefineDispersion(m, greedy.selected, dist).value();
    EXPECT_GE(refined.min_pairwise + 1e-12, greedy.min_pairwise);
    // And refinement can never beat the true optimum.
    auto opt = BruteForceMaxMin(m, k, dist).value();
    EXPECT_LE(refined.min_pairwise, opt.min_pairwise + 1e-12);
  }
}

TEST(LocalSearchTest, LocalOptimumIsStable) {
  const std::vector<double> pos{0.0, 5.0, 10.0};
  auto d = [&](size_t a, size_t b) { return std::fabs(pos[a] - pos[b]); };
  auto refined = RefineDispersion(3, {0, 2}, d).value();
  EXPECT_EQ(refined.swaps, 0u);  // already optimal
  EXPECT_DOUBLE_EQ(refined.min_pairwise, 10.0);
}

}  // namespace
}  // namespace skydiver
