// Tests for the execution engine: planner backend resolution, ExplainPlan,
// QueryContext accounting, and — the load-bearing part — plan parity: the
// engine-driven SkyDiver::Run must reproduce the legacy hand-wired
// pipeline bit-for-bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "datagen/generators.h"
#include "diversify/dispersion.h"
#include "engine/engine.h"
#include "engine/query_context.h"
#include "engine/plan.h"
#include "engine/planner.h"
#include "lsh/lsh.h"
#include "minhash/siggen.h"
#include "parallel/parallel_ops.h"
#include "rtree/rtree.h"
#include "skydiver/session.h"
#include "skydiver/skydiver.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

// ---------------------------------------------------------------------------
// Planner

TEST(PlannerTest, SerialIndexFreePlan) {
  SkyDiverConfig config;
  auto plan = Planner::Resolve(config, PlanResources{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->skyline, SkylineBackend::kSfs);
  EXPECT_EQ(plan->fingerprint, FingerprintBackend::kSigGenIf);
  EXPECT_EQ(plan->select, SelectBackend::kMinHash);
  EXPECT_EQ(plan->threads, 0u);
}

TEST(PlannerTest, PooledConfigPicksParallelBackends) {
  SkyDiverConfig config;
  config.threads = 4;
  auto plan = Planner::Resolve(config, PlanResources{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->skyline, SkylineBackend::kParallelSfs);
  EXPECT_EQ(plan->fingerprint, FingerprintBackend::kParallelIf);
  EXPECT_EQ(plan->threads, 4u);
}

TEST(PlannerTest, TreePicksIndexedBackends) {
  const DataSet data = GenerateIndependent(500, 3, 3);
  const auto tree = RTree::BulkLoad(data).value();
  PlanResources resources;
  resources.tree = &tree;

  SkyDiverConfig config;
  auto serial = Planner::Resolve(config, resources);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->skyline, SkylineBackend::kBbs);
  EXPECT_EQ(serial->fingerprint, FingerprintBackend::kSigGenIb);

  config.threads = 2;
  auto pooled = Planner::Resolve(config, resources);
  ASSERT_TRUE(pooled.ok());
  EXPECT_EQ(pooled->skyline, SkylineBackend::kBbs);
  EXPECT_EQ(pooled->fingerprint, FingerprintBackend::kParallelIb);
}

TEST(PlannerTest, IndexFreeOverrideKeepsBbsSkyline) {
  const DataSet data = GenerateIndependent(500, 3, 5);
  const auto tree = RTree::BulkLoad(data).value();
  PlanResources resources;
  resources.tree = &tree;
  SkyDiverConfig config;
  config.siggen = SigGenMode::kIndexFree;
  auto plan = Planner::Resolve(config, resources);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->skyline, SkylineBackend::kBbs);
  EXPECT_EQ(plan->fingerprint, FingerprintBackend::kSigGenIf);
}

TEST(PlannerTest, PrecomputedSkylineAndSelectionModes) {
  const std::vector<RowId> rows{1, 2, 3};
  PlanResources resources;
  resources.precomputed_skyline = &rows;
  SkyDiverConfig config;
  config.select = SelectMode::kLsh;
  auto plan = Planner::Resolve(config, resources);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->skyline, SkylineBackend::kPrecomputed);
  EXPECT_EQ(plan->select, SelectBackend::kLsh);

  config.select = SelectMode::kBruteForce;
  EXPECT_EQ(Planner::Resolve(config, resources)->select, SelectBackend::kBruteForce);

  auto session_plan = Planner::Resolve(config, resources, /*run_selection=*/false);
  ASSERT_TRUE(session_plan.ok());
  EXPECT_EQ(session_plan->select, SelectBackend::kNone);
}

TEST(PlannerTest, RejectsInvalidConfigs) {
  SkyDiverConfig config;
  config.k = 0;
  EXPECT_TRUE(Planner::Resolve(config, PlanResources{}).status().IsInvalidArgument());
  // ... but k is ignored for fingerprint-only plans.
  EXPECT_TRUE(Planner::Resolve(config, PlanResources{}, false).ok());

  config = SkyDiverConfig{};
  config.signature_size = 0;
  EXPECT_TRUE(Planner::Resolve(config, PlanResources{}).status().IsInvalidArgument());

  config = SkyDiverConfig{};
  config.threads = Planner::kMaxThreads + 1;
  EXPECT_TRUE(Planner::Resolve(config, PlanResources{}).status().IsInvalidArgument());

  config = SkyDiverConfig{};
  config.siggen = SigGenMode::kIndexBased;
  EXPECT_TRUE(Planner::Resolve(config, PlanResources{}).status().IsInvalidArgument());
}

TEST(PlannerTest, ExplainPlanNamesEveryStage) {
  SkyDiverConfig config;
  config.threads = 2;
  const auto plan = Planner::Resolve(config, PlanResources{}).value();
  const std::string text = ExplainPlan(plan, config);
  EXPECT_NE(text.find("parallel-sfs"), std::string::npos) << text;
  EXPECT_NE(text.find("parallel-siggen-if"), std::string::npos) << text;
  EXPECT_NE(text.find("greedy-minhash"), std::string::npos) << text;
  EXPECT_NE(text.find("threads=2"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Plan parity: engine output == the legacy hand-wired pipeline, bit for bit.

// The pre-refactor SkyDiver::Run serial pipeline, composed directly from
// the primitives it used to call (SFS -> SigGen-IF -> greedy selection).
struct LegacyOutput {
  std::vector<RowId> skyline;
  std::vector<size_t> selected;
  std::vector<RowId> selected_rows;
  double objective = 0.0;
};

LegacyOutput LegacyRun(const DataSet& data, const SkyDiverConfig& config,
                       ThreadPool* pool) {
  LegacyOutput out;
  SigGenResult sig;
  const auto family =
      MinHashFamily::Create(config.signature_size, data.size(), config.seed);
  if (pool != nullptr) {
    out.skyline = ParallelSkyline(data, *pool).rows;
    sig = ParallelSigGenIF(data, out.skyline, family, *pool).value();
  } else {
    out.skyline = SkylineSFS(data).rows;
    sig = SigGenIF(data, out.skyline, family).value();
  }
  const size_t m = out.skyline.size();
  auto score = [&](size_t j) { return static_cast<double>(sig.domination_scores[j]); };
  DispersionResult selection;
  if (config.select == SelectMode::kMinHash) {
    auto distance = [&](size_t a, size_t b) {
      return sig.signatures.EstimatedDistance(a, b);
    };
    selection = SelectDiverseSet(m, config.k, distance, score).value();
  } else {
    const auto params = ChooseZones(config.signature_size, config.lsh_threshold,
                                    config.lsh_buckets)
                            .value();
    const auto index =
        LshIndex::Build(sig.signatures, params, config.seed ^ 0xdecaf).value();
    auto distance = [&](size_t a, size_t b) { return index.Distance(a, b); };
    selection = SelectDiverseSet(m, config.k, distance, score).value();
  }
  out.selected = std::move(selection.selected);
  out.objective = selection.min_pairwise;
  for (size_t idx : out.selected) out.selected_rows.push_back(out.skyline[idx]);
  return out;
}

struct ParityCase {
  WorkloadKind workload;
  SelectMode select;
  size_t threads;  // 0 = serial reference; 1+ = pooled (ParallelSigGenIF semantics)
};

class PlanParityTest : public testing::TestWithParam<ParityCase> {};

TEST_P(PlanParityTest, EngineMatchesLegacyPipelineBitForBit) {
  const ParityCase& c = GetParam();
  const DataSet data = GenerateWorkload(c.workload, 4000, 4, 1234).value();

  SkyDiverConfig config;
  // Correlated workloads have tiny skylines; keep k feasible everywhere.
  config.k = std::min<size_t>(8, SkylineSFS(data).rows.size());
  config.signature_size = 64;
  config.select = c.select;
  config.threads = c.threads;

  ThreadPool reference_pool(c.threads == 0 ? 1 : c.threads);
  const LegacyOutput legacy =
      LegacyRun(data, config, c.threads == 0 ? nullptr : &reference_pool);

  const auto report = SkyDiver::Run(data, config);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->skyline, legacy.skyline);
  EXPECT_EQ(report->selected, legacy.selected);
  EXPECT_EQ(report->selected_rows, legacy.selected_rows);
  EXPECT_DOUBLE_EQ(report->objective, legacy.objective);
  EXPECT_FALSE(report->plan_explain.empty());
}

INSTANTIATE_TEST_SUITE_P(
    DistributionsTimesPlans, PlanParityTest,
    testing::Values(
        // Six serial (distribution x plan) combinations...
        ParityCase{WorkloadKind::kIndependent, SelectMode::kMinHash, 0},
        ParityCase{WorkloadKind::kCorrelated, SelectMode::kMinHash, 0},
        ParityCase{WorkloadKind::kAnticorrelated, SelectMode::kMinHash, 0},
        ParityCase{WorkloadKind::kIndependent, SelectMode::kLsh, 0},
        ParityCase{WorkloadKind::kCorrelated, SelectMode::kLsh, 0},
        ParityCase{WorkloadKind::kAnticorrelated, SelectMode::kLsh, 0},
        // ...and pooled plans against the ParallelSigGenIF min-merge path.
        ParityCase{WorkloadKind::kIndependent, SelectMode::kMinHash, 3},
        ParityCase{WorkloadKind::kCorrelated, SelectMode::kMinHash, 3},
        ParityCase{WorkloadKind::kAnticorrelated, SelectMode::kMinHash, 3}),
    [](const testing::TestParamInfo<ParityCase>& info) {
      std::string name = WorkloadKindName(info.param.workload);
      name += info.param.select == SelectMode::kMinHash ? "_mh" : "_lsh";
      name += info.param.threads == 0 ? "_serial" : "_pooled";
      return name;
    });

// Pooled and serial MH plans agree exactly: ParallelSkyline == SFS and
// ParallelSigGenIF min-merges to the identical matrix, so the whole
// pipeline is thread-count invariant.
TEST(EngineTest, PooledPlanIsBitIdenticalToSerialPlan) {
  const DataSet data = GenerateIndependent(5000, 4, 21);
  SkyDiverConfig serial;
  serial.k = 10;
  SkyDiverConfig pooled = serial;
  pooled.threads = 4;
  const auto a = SkyDiver::Run(data, serial);
  const auto b = SkyDiver::Run(data, pooled);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->skyline, b->skyline);
  EXPECT_EQ(a->selected_rows, b->selected_rows);
  EXPECT_DOUBLE_EQ(a->objective, b->objective);
  EXPECT_EQ(a->fingerprint_phase.io.page_faults, b->fingerprint_phase.io.page_faults);
}

// ---------------------------------------------------------------------------
// QueryContext accounting

TEST(EngineTest, ContextRecordsPhasesTraceAndCumulativeIo) {
  const DataSet data = GenerateIndependent(2000, 3, 31);
  SkyDiverConfig config;
  config.k = 5;
  const PlanResources resources;
  const auto plan = Planner::Resolve(config, resources).value();
  QueryContext ctx(config);
  const auto output = Engine::Execute(ctx, plan, config, data, resources);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  ASSERT_EQ(ctx.phases().size(), 3u);
  EXPECT_EQ(ctx.phases()[0].first, "skyline");
  EXPECT_EQ(ctx.phases()[1].first, "fingerprint");
  EXPECT_EQ(ctx.phases()[2].first, "select");
  ASSERT_EQ(ctx.trace().size(), 3u);
  IoStats sum;
  for (const auto& [name, metrics] : ctx.phases()) sum += metrics.io;
  EXPECT_EQ(ctx.io_stats().page_reads, sum.page_reads);
  EXPECT_EQ(ctx.io_stats().page_faults, sum.page_faults);
  EXPECT_GT(ctx.io_stats().page_faults, 0u);  // IF charges sequential faults
  // The report's phase metrics are the context's, verbatim.
  EXPECT_EQ(output.value().report.fingerprint_phase.io.page_faults,
            ctx.phases()[1].second.io.page_faults);
  // Serial context never spawns a pool.
  EXPECT_EQ(ctx.threads(), 0u);
}

TEST(EngineTest, SessionCreateMatchesEngineFingerprints) {
  const DataSet data = GenerateIndependent(2500, 3, 41);
  const auto session = SkyDiverSession::Create(data, 32, 7).value();
  // Direct primitive composition (the pre-refactor Create body).
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(32, data.size(), 7);
  const auto sig = SigGenIF(data, skyline, family).value();
  EXPECT_EQ(session.skyline(), skyline);
  EXPECT_EQ(session.domination_scores(), sig.domination_scores);
  for (size_t j = 0; j < skyline.size(); ++j) {
    for (size_t i = 0; i < 32; ++i) {
      ASSERT_EQ(session.signatures().at(j, i), sig.signatures.at(j, i));
    }
  }
}

TEST(EngineTest, BruteForceSelectFindsOptimumOnSmallSkyline) {
  const DataSet data = GenerateAnticorrelated(300, 3, 51);
  SkyDiverConfig greedy_config;
  greedy_config.k = 3;
  greedy_config.signature_size = 32;
  SkyDiverConfig exact_config = greedy_config;
  exact_config.select = SelectMode::kBruteForce;
  const auto greedy = SkyDiver::Run(data, greedy_config);
  const auto exact = SkyDiver::Run(data, exact_config);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  // The exact optimum is at least the greedy objective (2-approx bound).
  EXPECT_GE(exact->objective, greedy->objective);
  EXPECT_EQ(exact->selected_rows.size(), 3u);
}

}  // namespace
}  // namespace skydiver
