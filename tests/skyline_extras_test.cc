// Tests for the divide-and-conquer skyline, the skyline-cardinality
// estimators, R-tree k-nearest-neighbor search, and finite-data validation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "core/dataset.h"
#include "datagen/generators.h"
#include "rtree/rtree.h"
#include "skyline/bbs_scan.h"
#include "skyline/cardinality.h"
#include "skyline/external.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

// --------------------------------------------------------------------------
// SkylineDC
// --------------------------------------------------------------------------

class SkylineDCTest
    : public testing::TestWithParam<std::tuple<WorkloadKind, Dim, size_t>> {};

TEST_P(SkylineDCTest, MatchesSFS) {
  const auto [kind, dims, leaf] = GetParam();
  const auto data = GenerateWorkload(kind, 3000, dims, 151).value();
  EXPECT_EQ(SkylineDC(data, leaf).rows, SkylineSFS(data).rows);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SkylineDCTest,
    testing::Combine(testing::Values(WorkloadKind::kIndependent,
                                     WorkloadKind::kAnticorrelated,
                                     WorkloadKind::kForestCoverLike),
                     testing::Values(Dim{2}, Dim{4}),
                     testing::Values<size_t>(16, 256)),
    [](const testing::TestParamInfo<std::tuple<WorkloadKind, Dim, size_t>>& info) {
      return WorkloadKindName(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_leaf" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SkylineDCTest, HandlesHeavyTies) {
  // All coordinates from {0, 1}: duplicates and ties across the median.
  Rng rng(153);
  DataSet d(3);
  for (int i = 0; i < 500; ++i) {
    d.Append({std::floor(rng.NextDouble() * 2), std::floor(rng.NextDouble() * 2),
              std::floor(rng.NextDouble() * 2)});
  }
  EXPECT_EQ(SkylineDC(d, 8).rows, SkylineBNL(d).rows);
}

TEST(SkylineDCTest, EmptyAndSingleton) {
  DataSet empty(2);
  EXPECT_TRUE(SkylineDC(empty).rows.empty());
  DataSet one(2);
  one.Append({1.0, 2.0});
  EXPECT_EQ(SkylineDC(one).rows, std::vector<RowId>{0});
}

// --------------------------------------------------------------------------
// Skyline cardinality estimation
// --------------------------------------------------------------------------

TEST(CardinalityTest, OneDimensionIsAlwaysOne) {
  for (uint64_t n : {1ULL, 10ULL, 100000ULL}) {
    EXPECT_DOUBLE_EQ(ExpectedSkylineSizeUniform(n, 1), 1.0);
  }
}

TEST(CardinalityTest, TwoDimensionsIsHarmonicNumber) {
  // E(n, 2) = H_n, a classical identity.
  double harmonic = 0.0;
  for (uint64_t i = 1; i <= 1000; ++i) {
    harmonic += 1.0 / static_cast<double>(i);
    if (i == 10 || i == 100 || i == 1000) {
      EXPECT_NEAR(ExpectedSkylineSizeUniform(i, 2), harmonic, 1e-9) << i;
    }
  }
}

TEST(CardinalityTest, MonotoneInNAndD) {
  EXPECT_LT(ExpectedSkylineSizeUniform(1000, 3), ExpectedSkylineSizeUniform(10000, 3));
  EXPECT_LT(ExpectedSkylineSizeUniform(10000, 3), ExpectedSkylineSizeUniform(10000, 5));
}

TEST(CardinalityTest, PredictsMeasuredSkylineSizes) {
  // Average measured skyline size over a few seeds should sit near the
  // exact expectation (within 25% for these n).
  for (Dim d : {2u, 3u, 4u}) {
    const uint64_t n = 20000;
    double measured = 0.0;
    for (uint64_t seed = 0; seed < 3; ++seed) {
      measured += static_cast<double>(
          SkylineSFS(GenerateIndependent(static_cast<RowId>(n), d, 200 + seed))
              .rows.size());
    }
    measured /= 3.0;
    const double expected = ExpectedSkylineSizeUniform(n, d);
    EXPECT_NEAR(measured, expected, 0.25 * expected) << "d = " << d;
  }
}

TEST(CardinalityTest, AsymptoticTracksExactForLargeN) {
  // (ln n)^{d-1}/(d-1)! is a first-order approximation: same order of
  // magnitude for large n.
  const double exact = ExpectedSkylineSizeUniform(5000000, 4);
  const double asym = AsymptoticSkylineSizeUniform(5000000, 4);
  EXPECT_GT(asym, exact * 0.5);
  EXPECT_LT(asym, exact * 2.0);
}

// --------------------------------------------------------------------------
// BbsScan (progressive BBS)
// --------------------------------------------------------------------------

TEST(BbsScanTest, EmitsFullSkylineInMindistOrder) {
  const DataSet data = GenerateAnticorrelated(4000, 3, 183);
  const auto tree = RTree::BulkLoad(data).value();
  BbsScan<RTree> scan(data, tree);
  std::vector<RowId> emitted;
  double prev_sum = -1.0;
  while (auto row = scan.Next()) {
    emitted.push_back(*row);
    double s = 0.0;
    for (Coord v : data.row(*row)) s += v;
    EXPECT_GE(s, prev_sum - 1e-12) << "progressive order violated";
    prev_sum = s;
  }
  std::sort(emitted.begin(), emitted.end());
  EXPECT_EQ(emitted, SkylineSFS(data).rows);
}

TEST(BbsScanTest, EarlyStopReadsFewerPages) {
  const DataSet data = GenerateAnticorrelated(20000, 3, 185);
  const auto tree = RTree::BulkLoad(data).value();
  tree.ResetIoStats();
  {
    BbsScan<RTree> preview(data, tree);
    for (int i = 0; i < 3 && preview.Next(); ++i) {
    }
  }
  const uint64_t preview_reads = tree.io_stats().page_reads;
  tree.pool().Clear();
  tree.ResetIoStats();
  {
    BbsScan<RTree> full(data, tree);
    while (full.Next()) {
    }
  }
  const uint64_t full_reads = tree.io_stats().page_reads;
  EXPECT_GT(preview_reads, 0u);
  EXPECT_LT(preview_reads, full_reads / 2);  // preview is much cheaper
}

TEST(BbsScanTest, EmptyTreeYieldsNothing) {
  DataSet data(2);
  data.Append({0.5, 0.5});
  const auto tree = RTree::BulkLoad(data).value();
  BbsScan<RTree> scan(data, tree);
  EXPECT_EQ(scan.Next().value(), 0u);
  EXPECT_FALSE(scan.Next().has_value());
  EXPECT_EQ(scan.emitted().size(), 1u);
}

// --------------------------------------------------------------------------
// R-tree nearest neighbors
// --------------------------------------------------------------------------

TEST(NearestNeighborsTest, MatchesLinearScan) {
  const DataSet data = GenerateClustered(3000, 3, 157);
  const auto tree = RTree::BulkLoad(data).value();
  Rng rng(159);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Coord> q{rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    const auto knn = tree.NearestNeighbors(q, 5);
    ASSERT_EQ(knn.size(), 5u);
    // Reference: sort all rows by distance.
    std::vector<std::pair<double, RowId>> ref;
    for (RowId r = 0; r < data.size(); ++r) {
      double s = 0;
      for (Dim i = 0; i < 3; ++i) {
        const double diff = data.at(r, i) - q[i];
        s += diff * diff;
      }
      ref.emplace_back(std::sqrt(s), r);
    }
    std::sort(ref.begin(), ref.end());
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(knn[i].distance, ref[i].first, 1e-12) << "rank " << i;
    }
    // Distances must be sorted ascending.
    for (size_t i = 1; i < knn.size(); ++i) {
      EXPECT_GE(knn[i].distance, knn[i - 1].distance);
    }
  }
}

TEST(NearestNeighborsTest, KLargerThanTree) {
  DataSet d(2);
  d.Append({0.1, 0.1});
  d.Append({0.9, 0.9});
  const auto tree = RTree::BulkLoad(d).value();
  const std::vector<Coord> q{0.0, 0.0};
  const auto knn = tree.NearestNeighbors(q, 10);
  ASSERT_EQ(knn.size(), 2u);
  EXPECT_EQ(knn[0].row, 0u);
  EXPECT_EQ(knn[1].row, 1u);
  EXPECT_TRUE(tree.NearestNeighbors(q, 0).empty());
}

TEST(NearestNeighborsTest, ExactHitHasZeroDistance) {
  const DataSet data = GenerateIndependent(500, 2, 161);
  const auto tree = RTree::BulkLoad(data).value();
  const auto knn = tree.NearestNeighbors(data.row(123), 1);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_EQ(knn[0].row, 123u);
  EXPECT_DOUBLE_EQ(knn[0].distance, 0.0);
}

// --------------------------------------------------------------------------
// SkylineExternal (bounded-window, multi-pass)
// --------------------------------------------------------------------------

class ExternalSkylineTest
    : public testing::TestWithParam<std::tuple<WorkloadKind, size_t>> {};

TEST_P(ExternalSkylineTest, MatchesInMemorySkylineForAnyWindow) {
  const auto [kind, window] = GetParam();
  const auto data = GenerateWorkload(kind, 2500, 3, 171).value();
  const auto expected = SkylineSFS(data).rows;
  const auto result = SkylineExternal(data, window).value();
  EXPECT_EQ(result.rows, expected);
  EXPECT_GE(result.passes, 1u);
  // Pass bound: each pass confirms up to `window` skyline points.
  const auto min_passes =
      (expected.size() + window - 1) / std::max<size_t>(1, window);
  EXPECT_GE(result.passes, static_cast<uint32_t>(min_passes));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExternalSkylineTest,
    testing::Combine(testing::Values(WorkloadKind::kIndependent,
                                     WorkloadKind::kAnticorrelated),
                     testing::Values<size_t>(1, 8, 64, 100000)),
    [](const testing::TestParamInfo<std::tuple<WorkloadKind, size_t>>& info) {
      return WorkloadKindName(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ExternalSkylineTest, LargeWindowFinishesInOnePass) {
  const auto data = GenerateIndependent(2000, 3, 173);
  const auto result = SkylineExternal(data, data.size()).value();
  EXPECT_EQ(result.passes, 1u);
}

TEST(ExternalSkylineTest, SmallerWindowsCostMoreIo) {
  const auto data = GenerateAnticorrelated(4000, 3, 175);
  const auto big = SkylineExternal(data, 100000).value();
  const auto small = SkylineExternal(data, 16).value();
  EXPECT_EQ(big.rows, small.rows);
  EXPECT_GT(small.passes, big.passes);
  EXPECT_GT(small.io.page_reads, big.io.page_reads);
  EXPECT_GT(small.io.page_writes, big.io.page_writes);  // overflow spills
}

TEST(ExternalSkylineTest, Validation) {
  DataSet empty(2);
  EXPECT_TRUE(SkylineExternal(empty, 8).status().IsInvalidArgument());
  DataSet one(2);
  one.Append({1.0, 1.0});
  EXPECT_TRUE(SkylineExternal(one, 0).status().IsInvalidArgument());
  EXPECT_TRUE(SkylineExternalBNL(empty, 8).status().IsInvalidArgument());
  EXPECT_TRUE(SkylineExternalBNL(one, 0).status().IsInvalidArgument());
}

// --------------------------------------------------------------------------
// SkylineExternalBNL (no presort, timestamp confirmation)
// --------------------------------------------------------------------------

class ExternalBnlTest
    : public testing::TestWithParam<std::tuple<WorkloadKind, size_t>> {};

TEST_P(ExternalBnlTest, MatchesInMemorySkylineForAnyWindow) {
  const auto [kind, window] = GetParam();
  const auto data = GenerateWorkload(kind, 2500, 3, 177).value();
  const auto result = SkylineExternalBNL(data, window).value();
  EXPECT_EQ(result.rows, SkylineSFS(data).rows);
  EXPECT_GE(result.passes, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExternalBnlTest,
    testing::Combine(testing::Values(WorkloadKind::kIndependent,
                                     WorkloadKind::kAnticorrelated,
                                     WorkloadKind::kRecipesLike),
                     testing::Values<size_t>(1, 8, 64, 100000)),
    [](const testing::TestParamInfo<std::tuple<WorkloadKind, size_t>>& info) {
      return WorkloadKindName(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ExternalBnlTest, TieHeavyData) {
  Rng rng(179);
  DataSet d(3);
  for (int i = 0; i < 600; ++i) {
    d.Append({std::floor(rng.NextDouble() * 3), std::floor(rng.NextDouble() * 3),
              std::floor(rng.NextDouble() * 3)});
  }
  EXPECT_EQ(SkylineExternalBNL(d, 4).value().rows, SkylineBNL(d).rows);
}

TEST(ExternalBnlTest, PresortNeedsNoMorePasses) {
  // The presorted variant (SkylineExternal) confirms a full window per
  // pass; plain BNL may confirm less. On a tight window, presort's pass
  // count is a lower bound.
  const auto data = GenerateAnticorrelated(3000, 3, 181);
  const auto sorted = SkylineExternal(data, 32).value();
  const auto bnl = SkylineExternalBNL(data, 32).value();
  EXPECT_EQ(sorted.rows, bnl.rows);
  EXPECT_LE(sorted.passes, bnl.passes);
}

// --------------------------------------------------------------------------
// CheckFinite
// --------------------------------------------------------------------------

TEST(CheckFiniteTest, AcceptsCleanData) {
  EXPECT_TRUE(CheckFinite(GenerateIndependent(100, 3, 163)).ok());
}

TEST(CheckFiniteTest, RejectsNaNAndInfinity) {
  DataSet nan_data(2);
  nan_data.Append({1.0, std::numeric_limits<Coord>::quiet_NaN()});
  EXPECT_TRUE(CheckFinite(nan_data).IsInvalidArgument());
  DataSet inf_data(2);
  inf_data.Append({std::numeric_limits<Coord>::infinity(), 0.0});
  EXPECT_TRUE(CheckFinite(inf_data).IsInvalidArgument());
}

}  // namespace
}  // namespace skydiver
