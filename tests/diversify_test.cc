// Unit tests for src/diversify: greedy dispersion, brute force, coverage,
// Simple-Greedy, and the evaluators.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/gamma.h"
#include "datagen/generators.h"
#include "diversify/brute_force.h"
#include "diversify/coverage.h"
#include "diversify/dispersion.h"
#include "diversify/euclidean_representative.h"
#include "diversify/evaluate.h"
#include "diversify/simple_greedy.h"
#include "rtree/rtree.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

// Points on a line at positions given by `pos`; distance = |a - b|.
DistanceFn LineDistance(const std::vector<double>& pos) {
  return [pos](size_t a, size_t b) { return std::fabs(pos[a] - pos[b]); };
}

ScoreFn UniformScore() {
  return [](size_t) { return 0.0; };
}

// --------------------------------------------------------------------------
// SelectDiverseSet (Fig. 6)
// --------------------------------------------------------------------------

TEST(SelectDiverseSetTest, ValidatesArguments) {
  auto d = LineDistance({0.0});
  EXPECT_TRUE(SelectDiverseSet(0, 1, d, UniformScore()).status().IsInvalidArgument());
  EXPECT_TRUE(SelectDiverseSet(1, 0, d, UniformScore()).status().IsInvalidArgument());
  EXPECT_TRUE(SelectDiverseSet(1, 2, d, UniformScore()).status().IsInvalidArgument());
}

TEST(SelectDiverseSetTest, SeedsWithMaxScore) {
  auto score = [](size_t i) { return i == 2 ? 5.0 : 1.0; };
  auto result = SelectDiverseSet(4, 1, LineDistance({0, 1, 2, 3}), score);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected, std::vector<size_t>{2});
  EXPECT_EQ(result->min_pairwise, 0.0);  // singleton
}

TEST(SelectDiverseSetTest, PicksFarthestPoints) {
  // Points at 0, 1, 2, 10. Seed scores make 0 the seed; farthest is 10.
  auto score = [](size_t i) { return i == 0 ? 1.0 : 0.0; };
  auto result = SelectDiverseSet(4, 2, LineDistance({0, 1, 2, 10}), score);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected, (std::vector<size_t>{0, 3}));
  EXPECT_DOUBLE_EQ(result->min_pairwise, 10.0);
}

TEST(SelectDiverseSetTest, MaximizesMinimumDistanceGreedily) {
  // Line: 0, 4, 5, 10; seed 0, then 10 (d=10), then 4 or 5 (min-dist 4 vs 5
  // -> pick 5: min(5, 5) = 5 beats min(4, 6) = 4).
  auto score = [](size_t i) { return i == 0 ? 1.0 : 0.0; };
  auto result = SelectDiverseSet(4, 3, LineDistance({0, 4, 5, 10}), score);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected, (std::vector<size_t>{0, 3, 2}));
  EXPECT_DOUBLE_EQ(result->min_pairwise, 5.0);
}

TEST(SelectDiverseSetTest, BreaksTiesByScore) {
  // Positions 0, 5, 5 (indices 1 and 2 equidistant); higher score wins.
  auto score = [](size_t i) { return i == 2 ? 9.0 : (i == 0 ? 10.0 : 0.0); };
  auto result = SelectDiverseSet(3, 2, LineDistance({0, 5, 5}), score);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected, (std::vector<size_t>{0, 2}));
}

TEST(SelectDiverseSetTest, LinearDistanceEvaluationBudget) {
  const size_t m = 200, k = 10;
  auto result = SelectDiverseSet(m, k, LineDistance(std::vector<double>(m, 0.0)),
                                 UniformScore());
  ASSERT_TRUE(result.ok());
  // With min-distance caching: (k-1) rounds x at most m evaluations.
  EXPECT_LE(result->distance_evaluations, (k - 1) * m);
}

TEST(SelectDiverseSetTest, GreedyHasThePrefixProperty) {
  // Selecting k points and truncating to k' < k equals selecting k'
  // directly: the greedy never revisits earlier picks, so its output is a
  // progressive ranking users can cut at any length.
  Rng rng(107);
  const size_t m = 40;
  std::vector<double> xs(m), ys(m);
  for (size_t i = 0; i < m; ++i) {
    xs[i] = rng.NextDouble();
    ys[i] = rng.NextDouble();
  }
  auto dist = [&](size_t a, size_t b) {
    return std::hypot(xs[a] - xs[b], ys[a] - ys[b]);
  };
  auto score = [&](size_t j) { return xs[j]; };
  const auto full = SelectDiverseSet(m, 12, dist, score).value();
  for (size_t k : {1u, 3u, 7u, 12u}) {
    const auto partial = SelectDiverseSet(m, k, dist, score).value();
    const std::vector<size_t> prefix(full.selected.begin(),
                                     full.selected.begin() + static_cast<long>(k));
    EXPECT_EQ(partial.selected, prefix) << "k = " << k;
  }
}

TEST(SelectDiverseSetTest, SelectsAllWhenKEqualsM) {
  auto result = SelectDiverseSet(5, 5, LineDistance({0, 1, 2, 3, 4}), UniformScore());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(std::set<size_t>(result->selected.begin(), result->selected.end()).size(), 5u);
}

// --------------------------------------------------------------------------
// Two-approximation property against brute force (the paper's Lemma 4).
// --------------------------------------------------------------------------

class TwoApproxTest : public testing::TestWithParam<int> {};

TEST_P(TwoApproxTest, GreedyIsWithinTwiceOptimal) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t m = 12;
  const size_t k = 4;
  // Random points in the plane; L2 distance is a metric.
  std::vector<double> xs(m), ys(m);
  for (size_t i = 0; i < m; ++i) {
    xs[i] = rng.NextDouble();
    ys[i] = rng.NextDouble();
  }
  auto dist = [&](size_t a, size_t b) {
    return std::hypot(xs[a] - xs[b], ys[a] - ys[b]);
  };
  auto opt = BruteForceMaxMin(m, k, dist);
  ASSERT_TRUE(opt.ok());
  auto greedy = SelectDiverseSet(m, k, dist, UniformScore());
  ASSERT_TRUE(greedy.ok());
  EXPECT_GE(greedy->min_pairwise * 2.0 + 1e-12, opt->min_pairwise);
  EXPECT_LE(greedy->min_pairwise, opt->min_pairwise + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoApproxTest, testing::Range(1, 21));

// --------------------------------------------------------------------------
// Brute force
// --------------------------------------------------------------------------

TEST(BruteForceTest, Binomial) {
  EXPECT_EQ(BinomialOrSaturate(5, 2), 10u);
  EXPECT_EQ(BinomialOrSaturate(10, 0), 1u);
  EXPECT_EQ(BinomialOrSaturate(3, 5), 0u);
  EXPECT_EQ(BinomialOrSaturate(60, 30), 118264581564861424ULL);
  EXPECT_EQ(BinomialOrSaturate(200, 100), UINT64_MAX);  // saturates
}

TEST(BruteForceTest, FindsExactOptimum) {
  // Positions 0, 1, 6, 10: best 2-subset is {0, 10}; best 3-subset
  // {0, 6, 10}? min distances: {0,6,10} -> min(6,4,10)=4; {0,1,10} -> 1;
  // {1,6,10} -> 4; {0,1,6} -> 1. Optimum 4 (two ways).
  auto d = LineDistance({0, 1, 6, 10});
  auto r2 = BruteForceMaxMin(4, 2, d);
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r2->min_pairwise, 10.0);
  auto r3 = BruteForceMaxMin(4, 3, d);
  ASSERT_TRUE(r3.ok());
  EXPECT_DOUBLE_EQ(r3->min_pairwise, 4.0);
}

TEST(BruteForceTest, MaxSumDiffersFromMaxMin) {
  // The paper's Fig. 2 scenario: MSDP tolerates one small distance if the
  // total is larger. Positions 0, 5.5, 6, 10:
  //   max-min 3-subset: {0, 5.5, 10} (min 4.5) vs {0, 6, 10} (min 4).
  //   max-sum 3-subset: {0, 6, 10}: 6+10+4 = 20 vs {0, 5.5, 10}: 5.5+10+4.5 = 20
  // Use asymmetric positions so the two objectives disagree cleanly.
  auto d = LineDistance({0, 4.9, 5.0, 10});
  auto mmdp = BruteForceMaxMin(4, 3, d);
  auto msdp = BruteForceMaxSum(4, 3, d);
  ASSERT_TRUE(mmdp.ok());
  ASSERT_TRUE(msdp.ok());
  // k-MMDP keeps distances balanced; its minimum is >= MSDP's minimum.
  EXPECT_GE(mmdp->min_pairwise, msdp->min_pairwise);
}

TEST(BruteForceTest, EnumerationCapTriggers) {
  auto d = LineDistance(std::vector<double>(64, 0.0));
  EXPECT_TRUE(BruteForceMaxMin(64, 20, d, /*max_subsets=*/1000).status().IsOutOfRange());
}

TEST(BruteForceTest, RequiresKAtLeastTwo) {
  auto d = LineDistance({0, 1});
  EXPECT_TRUE(BruteForceMaxMin(2, 1, d).status().IsInvalidArgument());
}

// --------------------------------------------------------------------------
// Greedy max-sum
// --------------------------------------------------------------------------

TEST(SelectMaxSumSetTest, PrefersLargeTotalOverBalanced) {
  // Seed at 0 (score); candidates 1, 2, 3 at positions 4.9, 5.0, 10.
  auto score = [](size_t i) { return i == 0 ? 1.0 : 0.0; };
  auto result = SelectMaxSumSet(4, 2, LineDistance({0, 4.9, 5.0, 10}), score);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected, (std::vector<size_t>{0, 3}));
}

// --------------------------------------------------------------------------
// Coverage
// --------------------------------------------------------------------------

TEST(CoverageTest, GreedyCoversGreedily) {
  DataSet d(2);
  d.Append({0.0, 3.0});  // sky 0: dominates rows 3, 4
  d.Append({1.0, 1.0});  // sky 1: dominates rows 3, 4, 5
  d.Append({3.0, 0.0});  // sky 2: dominates row 5
  d.Append({2.0, 4.0});
  d.Append({1.5, 3.5});
  d.Append({3.5, 2.0});
  const GammaSets g = GammaSets::Compute(d, {0, 1, 2});
  auto r1 = GreedyMaxCoverage(g, 1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->selected, std::vector<size_t>{1});  // covers all 3
  EXPECT_DOUBLE_EQ(r1->coverage_fraction, 1.0);
  auto r2 = GreedyMaxCoverage(g, 2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->covered, 3u);
}

TEST(CoverageTest, Validates) {
  DataSet d(2);
  d.Append({0.0, 0.0});
  const GammaSets g = GammaSets::Compute(d, {0});
  EXPECT_TRUE(GreedyMaxCoverage(g, 0).status().IsInvalidArgument());
  EXPECT_TRUE(GreedyMaxCoverage(g, 2).status().IsInvalidArgument());
}

TEST(CoverageTest, GreedyWithinClassicBoundOfOptimum) {
  // Greedy max-coverage is a (1 - 1/e)-approximation; on dominance set
  // systems (finite VC dimension, paper Lemma 1) it usually does much
  // better. Check the bound against the exact optimum on small skylines.
  for (uint64_t seed : {301u, 302u, 303u}) {
    const DataSet data = GenerateIndependent(400, 3, seed);
    const auto skyline = SkylineSFS(data).rows;
    const GammaSets gammas = GammaSets::Compute(data, skyline);
    const size_t k = std::min<size_t>(4, skyline.size());
    if (k < 2 || skyline.size() > 25) continue;
    const auto greedy = GreedyMaxCoverage(gammas, k).value();
    const auto exact = BruteForceMaxCoverage(gammas, k).value();
    EXPECT_LE(greedy.covered, exact.covered);
    EXPECT_GE(static_cast<double>(greedy.covered) + 1e-9,
              (1.0 - 1.0 / 2.718281828) * static_cast<double>(exact.covered))
        << "seed " << seed;
  }
}

TEST(CoverageTest, BruteForceValidates) {
  DataSet d(2);
  d.Append({0.0, 0.0});
  const GammaSets g = GammaSets::Compute(d, {0});
  EXPECT_TRUE(BruteForceMaxCoverage(g, 0).status().IsInvalidArgument());
  EXPECT_TRUE(BruteForceMaxCoverage(g, 2).status().IsInvalidArgument());
}

TEST(CoverageTest, CoverageAtLeastGreedyDiversityCoverage) {
  // Table 1's qualitative claim: coverage-greedy achieves >= coverage of
  // the dispersion selection.
  const DataSet data = GenerateIndependent(3000, 4, 47);
  const auto skyline = SkylineSFS(data).rows;
  const GammaSets gammas = GammaSets::Compute(data, skyline);
  const size_t k = std::min<size_t>(10, skyline.size());
  auto cov = GreedyMaxCoverage(gammas, k);
  ASSERT_TRUE(cov.ok());
  auto disp = SimpleGreedyInMemory(data, skyline, k);
  ASSERT_TRUE(disp.ok());
  const auto q_disp = EvaluateSelection(gammas, disp->selected);
  EXPECT_GE(cov->coverage_fraction + 1e-9, q_disp.coverage);
  // And conversely the dispersion pick is at least as diverse.
  const auto q_cov = EvaluateSelection(gammas, cov->selected);
  EXPECT_GE(q_disp.min_diversity + 1e-9, q_cov.min_diversity);
}

// --------------------------------------------------------------------------
// Simple-Greedy
// --------------------------------------------------------------------------

TEST(SimpleGreedyTest, IndexAndInMemoryAgree) {
  const DataSet data = GenerateIndependent(2500, 3, 53);
  const auto skyline = SkylineSFS(data).rows;
  const size_t k = std::min<size_t>(5, skyline.size());
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  auto indexed = SimpleGreedy(data, skyline, k, *tree);
  ASSERT_TRUE(indexed.ok());
  auto memory = SimpleGreedyInMemory(data, skyline, k);
  ASSERT_TRUE(memory.ok());
  EXPECT_EQ(indexed->dispersion.selected, memory->selected);
  EXPECT_NEAR(indexed->dispersion.min_pairwise, memory->min_pairwise, 1e-12);
  EXPECT_GT(indexed->range_queries, 0u);
  EXPECT_GT(indexed->io.page_reads, 0u);
}

TEST(SimpleGreedyTest, RejectsForeignTree) {
  const DataSet data = GenerateIndependent(100, 2, 3);
  const DataSet other = GenerateIndependent(90, 2, 3);
  auto tree = RTree::BulkLoad(other);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(SimpleGreedy(data, {0}, 1, *tree).status().IsInvalidArgument());
}

// --------------------------------------------------------------------------
// EuclideanRepresentatives (the paper's [32]-style baseline)
// --------------------------------------------------------------------------

TEST(EuclideanRepresentativeTest, CoversTheSkyline) {
  const DataSet data = GenerateAnticorrelated(3000, 3, 63);
  const auto skyline = SkylineSFS(data).rows;
  const size_t k = std::min<size_t>(8, skyline.size());
  auto result = EuclideanRepresentatives(data, skyline, k);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->selected.size(), k);
  EXPECT_GE(result->max_covering_radius, 0.0);
  // More representatives never increase the covering radius.
  if (skyline.size() > k) {
    auto more = EuclideanRepresentatives(data, skyline, k + 1).value();
    EXPECT_LE(more.max_covering_radius, result->max_covering_radius + 1e-12);
  }
}

TEST(EuclideanRepresentativeTest, Validation) {
  const DataSet data = GenerateIndependent(100, 2, 65);
  EXPECT_TRUE(EuclideanRepresentatives(data, {}, 1).status().IsInvalidArgument());
  EXPECT_TRUE(EuclideanRepresentatives(data, {0}, 0).status().IsInvalidArgument());
  EXPECT_TRUE(EuclideanRepresentatives(data, {0}, 2).status().IsInvalidArgument());
  EXPECT_TRUE(EuclideanRepresentatives(data, {999}, 1).status().IsInvalidArgument());
}

TEST(ScaleInvarianceTest, JaccardSelectionInvariantUnderMonotoneTransforms) {
  // Dominance only sees the order of values, so ANY strictly monotone
  // per-dimension transform must leave the SkyDiver selection unchanged.
  const DataSet data = GenerateIndependent(2000, 3, 67);
  const auto skyline = SkylineSFS(data).rows;
  const size_t k = std::min<size_t>(6, skyline.size());
  const auto before = SimpleGreedyInMemory(data, skyline, k).value();

  DataSet transformed(3);
  transformed.Reserve(data.size());
  for (RowId r = 0; r < data.size(); ++r) {
    const auto row = data.row(r);
    // dim0: x1000 scale; dim1: cube (monotone on [0,1]); dim2: exp.
    transformed.Append(
        {row[0] * 1000.0, row[1] * row[1] * row[1], std::exp(row[2])});
  }
  EXPECT_EQ(SkylineSFS(transformed).rows, skyline);
  const auto after = SimpleGreedyInMemory(transformed, skyline, k).value();
  EXPECT_EQ(after.selected, before.selected);
}

// --------------------------------------------------------------------------
// Evaluate
// --------------------------------------------------------------------------

TEST(EvaluateTest, SingletonHasZeroDiversity) {
  const DataSet data = GenerateIndependent(500, 3, 59);
  const auto skyline = SkylineSFS(data).rows;
  const GammaSets gammas = GammaSets::Compute(data, skyline);
  const auto q = EvaluateSelection(gammas, {0});
  EXPECT_EQ(q.min_diversity, 0.0);
  EXPECT_EQ(q.avg_diversity, 0.0);
  EXPECT_GT(q.coverage, 0.0);
}

TEST(EvaluateTest, MinNeverExceedsAvg) {
  const DataSet data = GenerateAnticorrelated(2000, 3, 61);
  const auto skyline = SkylineSFS(data).rows;
  const GammaSets gammas = GammaSets::Compute(data, skyline);
  auto sel = SimpleGreedyInMemory(data, skyline, std::min<size_t>(8, skyline.size()));
  ASSERT_TRUE(sel.ok());
  const auto q = EvaluateSelection(gammas, sel->selected);
  EXPECT_LE(q.min_diversity, q.avg_diversity + 1e-12);
  EXPECT_GE(q.min_diversity, 0.0);
  EXPECT_LE(q.avg_diversity, 1.0);
}

}  // namespace
}  // namespace skydiver
