// Tests for SkyDiverSession (fingerprint once, select many) and the
// paper's §5.2 IB/IF advisor.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>

#include "datagen/generators.h"
#include "rtree/rtree.h"
#include "skydiver/advisor.h"
#include "skydiver/profile.h"
#include "skydiver/session.h"
#include "skydiver/skydiver.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

// --------------------------------------------------------------------------
// SkyDiverSession
// --------------------------------------------------------------------------

TEST(SessionTest, CreateAndSelect) {
  const DataSet data = GenerateIndependent(4000, 4, 221);
  auto session = SkyDiverSession::Create(data, 100, 223);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->skyline(), SkylineSFS(data).rows);
  const size_t m = session->skyline().size();
  ASSERT_GE(m, 10u);

  const auto mh5 = session->SelectMinHash(5).value();
  EXPECT_EQ(mh5.size(), 5u);
  const std::set<RowId> sky(session->skyline().begin(), session->skyline().end());
  for (RowId r : mh5) EXPECT_TRUE(sky.count(r));

  // Prefix property across k.
  const auto mh10 = session->SelectMinHash(10).value();
  EXPECT_TRUE(std::equal(mh5.begin(), mh5.end(), mh10.begin()));

  // LSH selections with different knobs all work on the same fingerprints.
  for (double xi : {0.1, 0.3}) {
    const auto lsh = session->SelectLsh(5, xi, 20).value();
    EXPECT_EQ(lsh.size(), 5u);
    for (RowId r : lsh) EXPECT_TRUE(sky.count(r));
  }
}

TEST(SessionTest, MatchesFacadePipeline) {
  const DataSet data = GenerateForestCoverLike(5000, 4, 225);
  auto session = SkyDiverSession::Create(data, 100, 42);
  ASSERT_TRUE(session.ok());
  SkyDiverConfig config;
  config.k = 7;
  config.seed = 42;
  auto report = SkyDiver::Run(data, config);
  ASSERT_TRUE(report.ok());
  // Same seed, same t, same (index-free) path -> identical selection.
  EXPECT_EQ(session->SelectMinHash(7).value(), report->selected_rows);
}

TEST(SessionTest, IndexedCreateUsesBbs) {
  const DataSet data = GenerateAnticorrelated(3000, 3, 227);
  auto tree = RTree::BulkLoad(data);
  ASSERT_TRUE(tree.ok());
  auto session = SkyDiverSession::Create(data, 64, 229, &*tree);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->skyline(), SkylineSFS(data).rows);
  EXPECT_EQ(session->SelectMinHash(3).value().size(), 3u);
}

TEST(SessionTest, SaveLoadRoundTripSelectsIdentically) {
  const std::string path = testing::TempDir() + "/session_roundtrip.skyd";
  const DataSet data = GenerateIndependent(3000, 4, 231);
  auto session = SkyDiverSession::Create(data, 100, 233);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->SaveToFile(path).ok());

  auto loaded = SkyDiverSession::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->skyline(), session->skyline());
  EXPECT_EQ(loaded->domination_scores(), session->domination_scores());
  // Selection WITHOUT the dataset: identical to the live session's.
  EXPECT_EQ(loaded->SelectMinHash(8).value(), session->SelectMinHash(8).value());
  EXPECT_EQ(loaded->SelectLsh(8, 0.2, 20).value(),
            session->SelectLsh(8, 0.2, 20).value());
  std::remove(path.c_str());
}

TEST(SessionTest, Validation) {
  DataSet empty(2);
  EXPECT_TRUE(SkyDiverSession::Create(empty, 10, 1).status().IsInvalidArgument());
  const DataSet data = GenerateIndependent(100, 2, 235);
  EXPECT_TRUE(SkyDiverSession::Create(data, 0, 1).status().IsInvalidArgument());
  auto session = SkyDiverSession::Create(data, 10, 1);
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->SelectMinHash(10000).status().IsInvalidArgument());
  EXPECT_TRUE(
      SkyDiverSession::LoadFromFile("/nonexistent/ses.skyd").status().IsIoError());
}

// --------------------------------------------------------------------------
// Profile
// --------------------------------------------------------------------------

TEST(ProfileTest, SummarizesDataset) {
  const DataSet data = GenerateRecipesLike(5000, 5, 247);
  auto profile = ProfileDataSet(data);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->rows, 5000u);
  EXPECT_EQ(profile->dims, 5u);
  ASSERT_EQ(profile->dimensions.size(), 5u);
  for (const auto& d : profile->dimensions) {
    EXPECT_LE(d.min, d.max);
    EXPECT_GE(d.mean, d.min);
    EXPECT_LE(d.mean, d.max);
    EXPECT_GE(d.stddev, 0.0);
  }
  // REC zero-inflates optional nutrients (dims 2..4) but never core ones.
  EXPECT_EQ(profile->dimensions[0].zero_fraction, 0.0);
  EXPECT_GT(profile->dimensions[3].zero_fraction, 0.1);
  EXPECT_GT(profile->expected_uniform_skyline, 1.0);
  const std::string text = FormatProfile(*profile);
  EXPECT_NE(text.find("rows: 5000"), std::string::npos);
  EXPECT_NE(text.find("expected skyline"), std::string::npos);
}

TEST(ProfileTest, RejectsEmpty) {
  DataSet empty(3);
  EXPECT_TRUE(ProfileDataSet(empty).status().IsInvalidArgument());
}

// --------------------------------------------------------------------------
// Advisor (paper §5.2 user guide)
// --------------------------------------------------------------------------

TEST(AdvisorTest, CorrelationEstimates) {
  EXPECT_GT(EstimateMeanCorrelation(GenerateCorrelated(20000, 3, 237)), 0.3);
  EXPECT_LT(EstimateMeanCorrelation(GenerateAnticorrelated(20000, 3, 237)), -0.1);
  EXPECT_NEAR(EstimateMeanCorrelation(GenerateIndependent(20000, 3, 237)), 0.0, 0.05);
}

TEST(AdvisorTest, MemoryResidentAlwaysIb) {
  for (WorkloadKind kind : {WorkloadKind::kIndependent, WorkloadKind::kAnticorrelated}) {
    const auto data = GenerateWorkload(kind, 5000, 2, 239).value();
    const auto advice = RecommendSigGenMode(data, IndexResidency::kMemoryResident);
    EXPECT_EQ(advice.mode, SigGenMode::kIndexBased) << WorkloadKindName(kind);
  }
}

TEST(AdvisorTest, DiskResidentHighDimensionalIsIb) {
  const auto data = GenerateAnticorrelated(5000, 5, 241);
  const auto advice = RecommendSigGenMode(data, IndexResidency::kDiskResident);
  EXPECT_EQ(advice.mode, SigGenMode::kIndexBased);
  EXPECT_NE(advice.rationale.find("d >= 4"), std::string::npos);
}

TEST(AdvisorTest, DiskResidentTwoDimensionalIndIsIb) {
  const auto data = GenerateIndependent(5000, 2, 243);
  const auto advice = RecommendSigGenMode(data, IndexResidency::kDiskResident);
  EXPECT_EQ(advice.mode, SigGenMode::kIndexBased);
}

TEST(AdvisorTest, DiskResidentLowDimensionalAntIsIf) {
  const auto data2 = GenerateAnticorrelated(5000, 2, 245);
  EXPECT_EQ(RecommendSigGenMode(data2, IndexResidency::kDiskResident).mode,
            SigGenMode::kIndexFree);
  const auto data3 = GenerateAnticorrelated(5000, 3, 245);
  EXPECT_EQ(RecommendSigGenMode(data3, IndexResidency::kDiskResident).mode,
            SigGenMode::kIndexFree);
}

}  // namespace
}  // namespace skydiver
