// Tests for the batched dominance kernels: tile-level property tests
// against the scalar reference, the tiled counting rule, and end-to-end
// parity — every rewired consumer (skyline algorithms, SigGen-IF, Γ sets,
// streaming, the pooled backends, whole engine plans) must produce
// bit-identical outputs under kScalar and kTiled.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/dominance.h"
#include "core/gamma.h"
#include "datagen/generators.h"
#include "engine/engine.h"
#include "engine/exec_context.h"
#include "engine/planner.h"
#include "kernels/dominance_kernel.h"
#include "kernels/tile_view.h"
#include "minhash/siggen.h"
#include "parallel/parallel_ops.h"
#include "parallel/thread_pool.h"
#include "rtree/rtree.h"
#include "stream/streaming.h"
#include "skyline/skyline.h"

namespace skydiver {
namespace {

// ---------------------------------------------------------------------------
// Tile-level property tests: tiled masks == per-pair core dominance.

// Builds a tile of `rows` random points over a tiny value alphabet (heavy
// duplication → plenty of dominated / equal / incomparable pairs).
Tile RandomTile(Rng& rng, Dim dims, size_t rows) {
  Tile tile(dims);
  std::vector<Coord> point(dims);
  for (size_t r = 0; r < rows; ++r) {
    for (Dim d = 0; d < dims; ++d) point[d] = static_cast<Coord>(rng.NextInt(0, 3));
    tile.PushRow(static_cast<RowId>(r), point);
  }
  return tile;
}

void ExpectKernelAgreesWithCore(std::span<const Coord> p, const Tile& tile) {
  const DominanceKernel scalar(DomKernel::kScalar);
  const DominanceKernel tiled(DomKernel::kTiled);
  const TileView view = tile.view();

  uint64_t want_dominated = 0, want_dominators = 0, want_weak = 0;
  for (size_t r = 0; r < view.rows; ++r) {
    std::vector<Coord> row(view.dims);
    for (size_t d = 0; d < view.dims; ++d) row[d] = view.at(r, d);
    if (Dominates(p, row)) want_dominated |= uint64_t{1} << r;
    if (Dominates(row, p)) want_dominators |= uint64_t{1} << r;
    if (WeaklyDominates(p, row)) want_weak |= uint64_t{1} << r;
  }

  for (const DominanceKernel& kernel : {scalar, tiled}) {
    EXPECT_EQ(kernel.FilterDominated(p, view), want_dominated);
    EXPECT_EQ(kernel.FilterDominators(p, view), want_dominators);
    EXPECT_EQ(kernel.FilterWeaklyDominated(p, view), want_weak);
    EXPECT_EQ(kernel.AnyDominator(p, view), want_dominators != 0);
    const BlockClassification cls = kernel.ClassifyBlock(p, view);
    EXPECT_EQ(cls.dominated, want_dominated);
    EXPECT_EQ(cls.dominators, want_dominators);
  }
}

TEST(DominanceKernelTest, RandomTilesMatchScalarReference) {
  Rng rng(7);
  for (const Dim dims : {Dim{1}, Dim{2}, Dim{4}, Dim{7}}) {
    for (const size_t rows : {size_t{1}, size_t{5}, size_t{63}, size_t{64}}) {
      for (int iter = 0; iter < 20; ++iter) {
        const Tile tile = RandomTile(rng, dims, rows);
        std::vector<Coord> probe(dims);
        for (Dim d = 0; d < dims; ++d) probe[d] = static_cast<Coord>(rng.NextInt(0, 3));
        ExpectKernelAgreesWithCore(probe, tile);
      }
    }
  }
}

TEST(DominanceKernelTest, AllEqualRowsAreNeitherDominatedNorDominators) {
  const Dim dims = 3;
  Tile tile(dims);
  const std::vector<Coord> point{1.0, 2.0, 3.0};
  for (size_t r = 0; r < 10; ++r) tile.PushRow(static_cast<RowId>(r), point);

  for (const DomKernel kind : {DomKernel::kScalar, DomKernel::kTiled}) {
    const DominanceKernel kernel(kind);
    const BlockClassification cls = kernel.ClassifyBlock(point, tile.view());
    EXPECT_EQ(cls.dominated, 0u);
    EXPECT_EQ(cls.dominators, 0u);
    // Equal rows ARE weakly dominated.
    EXPECT_EQ(kernel.FilterWeaklyDominated(point, tile.view()),
              tile.view().FullMask());
    EXPECT_FALSE(kernel.AnyDominator(point, tile.view()));
  }
}

TEST(DominanceKernelTest, RaggedAndSingleDimensionTiles) {
  Rng rng(11);
  // d = 1: dominance degenerates to strict less-than.
  for (int iter = 0; iter < 10; ++iter) {
    const Tile tile = RandomTile(rng, 1, 37);  // ragged: 37 < kTileRows
    for (Coord v : {0.0, 1.0, 2.0, 3.0}) {
      const std::vector<Coord> probe{v};
      ExpectKernelAgreesWithCore(probe, tile);
    }
  }
}

TEST(DominanceKernelTest, CountingRuleChargesTileRowsPerCall) {
  Rng rng(13);
  const Tile tile = RandomTile(rng, 4, 29);
  const std::vector<Coord> probe{1.0, 1.0, 1.0, 1.0};

  const DominanceKernel tiled(DomKernel::kTiled);
  uint64_t total_before = DominanceCounter::Count();
  uint64_t tiled_before = DominanceCounter::TiledCount();
  (void)tiled.ClassifyBlock(probe, tile.view());
  EXPECT_EQ(DominanceCounter::Count() - total_before, tile.rows());
  EXPECT_EQ(DominanceCounter::TiledCount() - tiled_before, tile.rows());

  // The scalar kernel never touches the tiled counter.
  const DominanceKernel scalar(DomKernel::kScalar);
  total_before = DominanceCounter::Count();
  tiled_before = DominanceCounter::TiledCount();
  (void)scalar.FilterDominated(probe, tile.view());
  EXPECT_EQ(DominanceCounter::Count() - total_before, tile.rows());
  EXPECT_EQ(DominanceCounter::TiledCount() - tiled_before, 0u);
}

// ---------------------------------------------------------------------------
// Tile containers.

TEST(TileSetTest, AppendCompactAndDropPreserveOrder) {
  TileSet tiles(2);
  const std::vector<Coord> p{1.0, 2.0};
  for (RowId r = 0; r < 100; ++r) tiles.Append(r, p);
  ASSERT_EQ(tiles.size(), 100u);
  ASSERT_EQ(tiles.tiles().size(), 2u);
  EXPECT_EQ(tiles.tiles()[0].rows(), kTileRows);
  EXPECT_EQ(tiles.tiles()[1].rows(), 100u - kTileRows);

  // Keep only even rows of tile 0; ids must survive compaction in order.
  uint64_t keep = 0;
  for (size_t r = 0; r < kTileRows; r += 2) keep |= uint64_t{1} << r;
  tiles.CompactTile(0, keep);
  EXPECT_EQ(tiles.tiles()[0].rows(), kTileRows / 2);
  for (size_t r = 0; r < kTileRows / 2; ++r) {
    EXPECT_EQ(tiles.tiles()[0].id(r), static_cast<RowId>(2 * r));
  }

  tiles.CompactTile(1, 0);  // empty it out
  tiles.DropEmptyTiles();
  ASSERT_EQ(tiles.tiles().size(), 1u);
  EXPECT_EQ(tiles.size(), kTileRows / 2);
}

// ---------------------------------------------------------------------------
// Algorithm parity: every skyline algorithm, scalar vs tiled.

class KernelParityTest : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(KernelParityTest, SkylineAlgorithmsMatchScalar) {
  const DataSet data = GenerateWorkload(GetParam(), 3000, 4, 99).value();

  EXPECT_EQ(SkylineBNL(data, DomKernel::kTiled).rows,
            SkylineBNL(data, DomKernel::kScalar).rows);
  EXPECT_EQ(SkylineSFS(data, DomKernel::kTiled).rows,
            SkylineSFS(data, DomKernel::kScalar).rows);
  EXPECT_EQ(SkylineDC(data, 256, DomKernel::kTiled).rows,
            SkylineDC(data, 256, DomKernel::kScalar).rows);

  const auto tree = RTree::BulkLoad(data).value();
  EXPECT_EQ(SkylineBBS(data, tree, DomKernel::kTiled).value().rows,
            SkylineBBS(data, tree, DomKernel::kScalar).value().rows);
}

TEST_P(KernelParityTest, SigGenIfMatchesScalarExactly) {
  const DataSet data = GenerateWorkload(GetParam(), 2000, 4, 17).value();
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(32, data.size(), 5);

  const auto scalar = SigGenIF(data, skyline, family, DomKernel::kScalar).value();
  const auto tiled = SigGenIF(data, skyline, family, DomKernel::kTiled).value();

  EXPECT_EQ(tiled.domination_scores, scalar.domination_scores);
  for (size_t j = 0; j < skyline.size(); ++j) {
    for (size_t i = 0; i < 32; ++i) {
      ASSERT_EQ(tiled.signatures.at(j, i), scalar.signatures.at(j, i));
    }
  }
  // The IF pass is exhaustive — no early exits for tiling to forgo — so
  // even the dominance counts agree exactly: (n - m) * m.
  EXPECT_EQ(tiled.dominance_checks, scalar.dominance_checks);
  EXPECT_EQ(scalar.dominance_checks,
            (data.size() - skyline.size()) * skyline.size());
}

TEST_P(KernelParityTest, GammaSetsMatchScalar) {
  const DataSet data = GenerateWorkload(GetParam(), 1500, 4, 23).value();
  const auto skyline = SkylineSFS(data).rows;

  const GammaSets scalar = GammaSets::Compute(data, skyline, DomKernel::kScalar);
  const GammaSets tiled = GammaSets::Compute(data, skyline, DomKernel::kTiled);
  ASSERT_EQ(tiled.size(), scalar.size());
  for (size_t j = 0; j < scalar.size(); ++j) {
    EXPECT_EQ(tiled.DominationScore(j), scalar.DominationScore(j));
    EXPECT_EQ(tiled.gamma(j), scalar.gamma(j));
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, KernelParityTest,
                         ::testing::Values(WorkloadKind::kIndependent,
                                           WorkloadKind::kCorrelated,
                                           WorkloadKind::kAnticorrelated),
                         [](const auto& info) {
                           switch (info.param) {
                             case WorkloadKind::kIndependent: return "IND";
                             case WorkloadKind::kCorrelated: return "CORR";
                             case WorkloadKind::kAnticorrelated: return "ANT";
                             default: return "other";
                           }
                         });

TEST(KernelFallbackTest, TinyInputsFallBackToScalarCounts) {
  // Below one tile the tiled request runs the scalar reference, so even
  // the dominance counts match.
  const DataSet data = GenerateIndependent(40, 3, 3);
  const auto scalar = SkylineSFS(data, DomKernel::kScalar);
  const auto tiled = SkylineSFS(data, DomKernel::kTiled);
  EXPECT_EQ(tiled.rows, scalar.rows);
  EXPECT_EQ(tiled.dominance_checks, scalar.dominance_checks);
}

TEST(KernelParseTest, ParseAndPrint) {
  EXPECT_EQ(ParseDomKernel("scalar").value(), DomKernel::kScalar);
  EXPECT_EQ(ParseDomKernel("tiled").value(), DomKernel::kTiled);
  EXPECT_FALSE(ParseDomKernel("simd").ok());
  EXPECT_STREQ(ToString(DomKernel::kScalar), "scalar");
  EXPECT_STREQ(ToString(DomKernel::kTiled), "tiled");
}

// ---------------------------------------------------------------------------
// Streaming parity.

TEST(KernelStreamingTest, TiledStreamMatchesScalarStream) {
  const DataSet data = GenerateWorkload(WorkloadKind::kAnticorrelated, 800, 3, 31).value();
  StreamingSkyDiver scalar(3, 24, 77, 1 << 12, DomKernel::kScalar);
  StreamingSkyDiver tiled(3, 24, 77, 1 << 12, DomKernel::kTiled);
  for (RowId r = 0; r < data.size(); ++r) {
    ASSERT_TRUE(scalar.Insert(data.row(r)).ok());
    ASSERT_TRUE(tiled.Insert(data.row(r)).ok());
  }
  const auto rows = scalar.SkylineRows();
  ASSERT_EQ(tiled.SkylineRows(), rows);
  for (RowId r : rows) {
    EXPECT_EQ(tiled.Signature(r).value(), scalar.Signature(r).value());
    EXPECT_EQ(tiled.DominationScore(r).value(), scalar.DominationScore(r).value());
  }
  EXPECT_EQ(tiled.stats().demotions, scalar.stats().demotions);
  EXPECT_EQ(tiled.stats().signature_updates, scalar.stats().signature_updates);
}

// ---------------------------------------------------------------------------
// Pooled dominance-check accounting (the thread_local undercount fix).

TEST(PooledCountingTest, ParallelSigGenIfReportsSerialCounts) {
  const DataSet data = GenerateWorkload(WorkloadKind::kIndependent, 3000, 4, 43).value();
  const auto skyline = SkylineSFS(data).rows;
  const auto family = MinHashFamily::Create(16, data.size(), 3);
  ThreadPool pool(4);

  for (const DomKernel kernel : {DomKernel::kScalar, DomKernel::kTiled}) {
    const auto serial = SigGenIF(data, skyline, family, kernel).value();
    const auto pooled = ParallelSigGenIF(data, skyline, family, pool, kernel).value();
    // The IF pass does the same (n - m) x m work however it is sharded.
    EXPECT_GT(pooled.dominance_checks, 0u);
    EXPECT_EQ(pooled.dominance_checks, serial.dominance_checks);
    EXPECT_EQ(pooled.domination_scores, serial.domination_scores);
  }
}

TEST(PooledCountingTest, ParallelSkylineReportsNonZeroCounts) {
  const DataSet data = GenerateWorkload(WorkloadKind::kIndependent, 3000, 4, 47).value();
  ThreadPool pool(4);
  const SkylineResult pooled = ParallelSkyline(data, pool);
  EXPECT_EQ(pooled.rows, SkylineSFS(data).rows);
  EXPECT_GT(pooled.dominance_checks, 0u);
}

TEST(PooledCountingTest, HarvestFoldsIntoCallerCounters) {
  const DataSet data = GenerateWorkload(WorkloadKind::kIndependent, 2000, 4, 53).value();
  ThreadPool pool(4);
  const uint64_t before = DominanceCounter::Count();
  (void)ParallelSkyline(data, pool);
  // Pool-side work must be visible to the calling thread's counter (this
  // is what stage-level accounting relies on).
  EXPECT_GT(DominanceCounter::Count() - before, 0u);
}

// ---------------------------------------------------------------------------
// Engine-level parity: whole plans, scalar vs tiled, serial and pooled.

TEST(KernelPlanTest, PlanCarriesKernelAndExplainPrintsIt) {
  SkyDiverConfig config;
  EXPECT_EQ(config.kernel, DomKernel::kTiled);  // planner default
  auto plan = Planner::Resolve(config, PlanResources{});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->kernel, DomKernel::kTiled);
  EXPECT_NE(ExplainPlan(*plan, config).find("kernel=tiled"), std::string::npos);

  config.kernel = DomKernel::kScalar;
  plan = Planner::Resolve(config, PlanResources{});
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(ExplainPlan(*plan, config).find("kernel=scalar"), std::string::npos);
}

TEST(KernelPlanTest, EnginePlansMatchAcrossKernelsSerialAndPooled) {
  const DataSet data = GenerateWorkload(WorkloadKind::kAnticorrelated, 2500, 4, 61).value();

  for (const size_t threads : {size_t{0}, size_t{3}}) {
    SkyDiverConfig scalar_config;
    scalar_config.k = 5;
    scalar_config.signature_size = 32;
    scalar_config.threads = threads;
    scalar_config.kernel = DomKernel::kScalar;
    SkyDiverConfig tiled_config = scalar_config;
    tiled_config.kernel = DomKernel::kTiled;

    auto run = [&](const SkyDiverConfig& config) {
      const PlanResources resources;
      const Plan plan = Planner::Resolve(config, resources).value();
      ExecContext ctx(config);
      return Engine::Execute(ctx, plan, config, data, resources).value();
    };
    const EngineOutput scalar_out = run(scalar_config);
    const EngineOutput tiled_out = run(tiled_config);

    EXPECT_EQ(tiled_out.report.skyline, scalar_out.report.skyline);
    EXPECT_EQ(tiled_out.report.selected_rows, scalar_out.report.selected_rows);
    EXPECT_EQ(tiled_out.domination_scores, scalar_out.domination_scores);
    ASSERT_EQ(tiled_out.signatures.columns(), scalar_out.signatures.columns());
    for (size_t j = 0; j < scalar_out.signatures.columns(); ++j) {
      for (size_t i = 0; i < 32; ++i) {
        ASSERT_EQ(tiled_out.signatures.at(j, i), scalar_out.signatures.at(j, i));
      }
    }
  }
}

TEST(KernelPlanTest, PooledStagesReportSerialMatchingDominanceChecks) {
  // Anticorrelated so the skyline comfortably exceeds one 64-row tile.
  const DataSet data =
      GenerateWorkload(WorkloadKind::kAnticorrelated, 2500, 4, 71).value();

  auto run = [&](size_t threads) {
    SkyDiverConfig config;
    config.k = 5;
    config.signature_size = 16;
    config.threads = threads;
    const PlanResources resources;
    const Plan plan = Planner::Resolve(config, resources).value();
    ExecContext ctx(config);
    return Engine::Execute(ctx, plan, config, data, resources).value();
  };
  const EngineOutput serial = run(0);
  const EngineOutput pooled = run(2);

  // Before the harvest fix, pooled fingerprint stages reported 0 checks.
  EXPECT_GT(pooled.report.skyline_phase.dominance_checks, 0u);
  EXPECT_GT(pooled.report.fingerprint_phase.dominance_checks, 0u);
  // The IF fingerprint pass is exhaustive: pooled == serial exactly.
  EXPECT_EQ(pooled.report.fingerprint_phase.dominance_checks,
            serial.report.fingerprint_phase.dominance_checks);
  // Default plans are tiled; with m >= one tile every fingerprint check is
  // a tiled one.
  EXPECT_EQ(pooled.report.fingerprint_phase.dominance_checks_tiled,
            pooled.report.fingerprint_phase.dominance_checks);
}

}  // namespace
}  // namespace skydiver
